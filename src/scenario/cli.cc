#include "scenario/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/catalog.h"
#include "scenario/runner.h"
#include "scenario/spec_json.h"

namespace wcs::scenario {

namespace {

struct CliOptions {
  std::string scenario;
  std::string bench_name = "bench";  // argv[0] basename
  std::size_t tasks = 6000;
  bool fast = false;
  RunOptions run;
  bool list = false;
  bool dump = false;
  bool flat_index = false;    // --flat-index: reference decision path
  bool full_realloc = false;  // --full-realloc: reference flow rebalancing
};

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << message << '\n';
  std::exit(2);
}

CliOptions parse(const std::string& default_scenario, int argc, char** argv) {
  CliOptions opt;
  opt.scenario = default_scenario;
  if (argc > 0 && argv[0] != nullptr && *argv[0] != '\0') {
    std::string self = argv[0];
    std::size_t slash = self.find_last_of('/');
    opt.bench_name =
        slash == std::string::npos ? self : self.substr(slash + 1);
  }
  bool no_report = false;
  if (const char* env = std::getenv("WCS_BENCH_FAST"); env && *env == '1')
    opt.fast = true;
  if (const char* env = std::getenv("WCS_BENCH_JOBS"); env && *env)
    opt.run.jobs = std::stoul(env);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--list-scenarios") {
      opt.list = true;
    } else if (arg == "--dump-scenario") {
      opt.dump = true;
      // Optional value: --dump-scenario NAME selects like --scenario.
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.scenario = argv[++i];
    } else if (arg == "--tasks") {
      opt.tasks = std::stoul(next());
    } else if (arg == "--seeds") {
      opt.run.seeds = std::stoul(next());
    } else if (arg == "--jobs") {
      opt.run.jobs = std::stoul(next());
    } else if (arg == "--csv") {
      opt.run.csv_path = next();
    } else if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--audit") {
      opt.run.audit = true;
    } else if (arg == "--report") {
      opt.run.report_path = next();
    } else if (arg == "--no-report") {
      no_report = true;
    } else if (arg == "--trace-out") {
      opt.run.trace_out = next();
    } else if (arg == "--flat-index") {
      opt.flat_index = true;
    } else if (arg == "--full-realloc") {
      opt.full_realloc = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --scenario NAME --list-scenarios "
                   "--dump-scenario [NAME]\n         --tasks N --seeds K "
                   "--jobs N --csv PATH --fast --audit\n         --report "
                   "PATH --no-report --trace-out PATH --flat-index\n"
                   "         --full-realloc\n";
      std::exit(0);
    } else {
      usage_error("unknown option " + arg);
    }
  }
  if (opt.tasks == 0)
    usage_error("--tasks must be >= 1 (0 would produce an empty sweep)");
  if (opt.run.seeds == 0)
    usage_error("--seeds must be >= 1 (0 would produce an empty sweep)");
  if (opt.run.jobs == 0) opt.run.jobs = 1;
  if (opt.fast) {
    opt.tasks = std::min<std::size_t>(opt.tasks, 1500);
    opt.run.seeds = std::min<std::size_t>(opt.run.seeds, 2);
  }

  // The report keeps the binary's artifact name when the shim runs its
  // own scenario (CI consumes results/<bench>.json); a --scenario
  // override reports under the scenario's name instead.
  opt.run.report_name =
      opt.scenario == default_scenario ? opt.bench_name : opt.scenario;
  if (!opt.run.report_path)
    opt.run.report_path = "results/" + opt.run.report_name + ".json";
  if (no_report) opt.run.report_path.reset();
  opt.run.tasks = opt.tasks;
  opt.run.fast = opt.fast;
  return opt;
}

}  // namespace

int scenario_main(const std::string& default_scenario, int argc,
                  char** argv) {
  register_builtin_scenarios();
  CliOptions opt = parse(default_scenario, argc, argv);

  if (opt.list) {
    for (const std::string& name : scenario_names())
      std::cout << name << (name == default_scenario ? " (default)" : "")
                << "\n    " << scenario_summary(name) << '\n';
    return 0;
  }
  if (!has_scenario(opt.scenario)) {
    std::cerr << "unknown scenario " << opt.scenario
              << " (try --list-scenarios)\n";
    return 2;
  }

  BuildOptions build;
  build.tasks = opt.tasks;
  build.fast = opt.fast;
  ScenarioSpec spec = build_scenario(opt.scenario, build);

  // --flat-index: run every scheduler on the flat reference decision
  // path instead of the sharded pending-task index. Totals are
  // byte-identical either way; the escape hatch exists for A/B timing
  // and for debugging the index itself.
  if (opt.flat_index) {
    for (sched::SchedulerSpec& s : spec.schedulers)
      s.options.use_sharded_index = false;
    for (Point& pt : spec.points)
      for (sched::SchedulerSpec& s : pt.schedulers)
        s.options.use_sharded_index = false;
  }

  // --full-realloc: recompute every flow's max-min share from scratch on
  // each flow start/finish instead of rebalancing only the dirty
  // component. Totals are byte-identical either way; the escape hatch
  // exists for A/B timing and for debugging the dirty-set logic itself.
  if (opt.full_realloc) {
    spec.base_config.flow.incremental = false;
    for (Point& pt : spec.points) pt.config.flow.incremental = false;
  }

  if (opt.dump) {
    dump_scenario(spec, std::cout);
    return 0;
  }
  return run_scenario(spec, opt.run);
}

}  // namespace wcs::scenario
