#include "scenario/cli.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "scenario/catalog.h"
#include "scenario/runner.h"
#include "scenario/spec_json.h"
#include "workload/registry.h"

namespace wcs::scenario {

namespace {

struct CliOptions {
  std::string scenario;
  std::string bench_name = "bench";  // argv[0] basename
  std::size_t tasks = 6000;
  bool fast = false;
  RunOptions run;
  bool list = false;
  bool dump = false;
  bool flat_index = false;    // --flat-index: reference decision path
  bool full_realloc = false;  // --full-realloc: reference flow rebalancing
  bool whole_file = false;    // --whole-file-cache: reference data plane
  double block_size_mb = 0;   // --block-size: override, MB (0 = spec's)
  std::string replication;    // --replication-policy: none|random|...
  // Open-system workload-plane overrides (empty = leave the spec alone).
  std::string workload;  // --workload: generator name
  std::string tenants;   // --tenants: count or comma-separated weights
  std::string arrival;   // --arrival: t0|poisson|diurnal|bursty
};

// --tenants accepts a count ("3": three equal-weight tenants) or an
// explicit comma-separated weight list ("3,1,2").
std::vector<wcs::workload::TenantInfo> parse_tenants(const std::string& arg) {
  std::vector<wcs::workload::TenantInfo> tenants;
  if (arg.find(',') == std::string::npos) {
    const std::size_t count = std::stoul(arg);
    tenants.resize(count);
    return tenants;
  }
  std::size_t pos = 0;
  while (pos <= arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    wcs::workload::TenantInfo t;
    t.weight = static_cast<std::uint32_t>(
        std::stoul(arg.substr(pos, comma - pos)));
    tenants.push_back(t);
    pos = comma + 1;
  }
  return tenants;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << message << '\n';
  std::exit(2);
}

CliOptions parse(const std::string& default_scenario, int argc, char** argv) {
  CliOptions opt;
  opt.scenario = default_scenario;
  if (argc > 0 && argv[0] != nullptr && *argv[0] != '\0') {
    std::string self = argv[0];
    std::size_t slash = self.find_last_of('/');
    opt.bench_name =
        slash == std::string::npos ? self : self.substr(slash + 1);
  }
  bool no_report = false;
  if (const char* env = std::getenv("WCS_BENCH_FAST"); env && *env == '1')
    opt.fast = true;
  if (const char* env = std::getenv("WCS_BENCH_JOBS"); env && *env)
    opt.run.jobs = std::stoul(env);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--list-scenarios") {
      opt.list = true;
    } else if (arg == "--dump-scenario") {
      opt.dump = true;
      // Optional value: --dump-scenario NAME selects like --scenario.
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.scenario = argv[++i];
    } else if (arg == "--tasks") {
      opt.tasks = std::stoul(next());
    } else if (arg == "--seeds") {
      opt.run.seeds = std::stoul(next());
    } else if (arg == "--jobs") {
      opt.run.jobs = std::stoul(next());
    } else if (arg == "--csv") {
      opt.run.csv_path = next();
    } else if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--audit") {
      opt.run.audit = true;
    } else if (arg == "--report") {
      opt.run.report_path = next();
    } else if (arg == "--no-report") {
      no_report = true;
    } else if (arg == "--trace-out") {
      opt.run.trace_out = next();
    } else if (arg == "--flat-index") {
      opt.flat_index = true;
    } else if (arg == "--full-realloc") {
      opt.full_realloc = true;
    } else if (arg == "--whole-file-cache") {
      opt.whole_file = true;
    } else if (arg == "--block-size") {
      opt.block_size_mb = std::stod(next());
      if (opt.block_size_mb <= 0) usage_error("--block-size must be > 0 MB");
    } else if (arg == "--replication-policy") {
      opt.replication = next();
    } else if (arg == "--workload") {
      opt.workload = next();
    } else if (arg == "--tenants") {
      opt.tenants = next();
    } else if (arg == "--arrival") {
      opt.arrival = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --scenario NAME --list-scenarios "
                   "--dump-scenario [NAME]\n         --tasks N --seeds K "
                   "--jobs N --csv PATH --fast --audit\n         --report "
                   "PATH --no-report --trace-out PATH --flat-index\n"
                   "         --full-realloc --whole-file-cache "
                   "--block-size MB\n"
                   "         --replication-policy none|random|least-loaded|"
                   "hierarchical|network-cost\n"
                   "         --workload NAME --tenants N|W1,W2,... "
                   "--arrival t0|poisson|diurnal|bursty\n";
      std::exit(0);
    } else {
      usage_error("unknown option " + arg);
    }
  }
  if (opt.tasks == 0)
    usage_error("--tasks must be >= 1 (0 would produce an empty sweep)");
  if (opt.run.seeds == 0)
    usage_error("--seeds must be >= 1 (0 would produce an empty sweep)");
  if (opt.run.jobs == 0) opt.run.jobs = 1;
  if (opt.fast) {
    opt.tasks = std::min<std::size_t>(opt.tasks, 1500);
    opt.run.seeds = std::min<std::size_t>(opt.run.seeds, 2);
  }

  // The report keeps the binary's artifact name when the shim runs its
  // own scenario (CI consumes results/<bench>.json); a --scenario
  // override reports under the scenario's name instead.
  opt.run.report_name =
      opt.scenario == default_scenario ? opt.bench_name : opt.scenario;
  if (!opt.run.report_path)
    opt.run.report_path = "results/" + opt.run.report_name + ".json";
  if (no_report) opt.run.report_path.reset();
  opt.run.tasks = opt.tasks;
  opt.run.fast = opt.fast;
  return opt;
}

}  // namespace

int scenario_main(const std::string& default_scenario, int argc,
                  char** argv) {
  register_builtin_scenarios();
  CliOptions opt = parse(default_scenario, argc, argv);

  if (opt.list) {
    for (const std::string& name : scenario_names())
      std::cout << name << (name == default_scenario ? " (default)" : "")
                << "\n    " << scenario_summary(name) << '\n';
    return 0;
  }
  if (!has_scenario(opt.scenario)) {
    std::cerr << "unknown scenario " << opt.scenario
              << " (try --list-scenarios)\n";
    return 2;
  }

  BuildOptions build;
  build.tasks = opt.tasks;
  build.fast = opt.fast;
  ScenarioSpec spec = build_scenario(opt.scenario, build);

  // --flat-index: run every scheduler on the flat reference decision
  // path instead of the sharded pending-task index. Totals are
  // byte-identical either way; the escape hatch exists for A/B timing
  // and for debugging the index itself.
  if (opt.flat_index) {
    for (sched::SchedulerSpec& s : spec.schedulers)
      s.options.use_sharded_index = false;
    for (Point& pt : spec.points)
      for (sched::SchedulerSpec& s : pt.schedulers)
        s.options.use_sharded_index = false;
  }

  // --full-realloc: recompute every flow's max-min share from scratch on
  // each flow start/finish instead of rebalancing only the dirty
  // component. Totals are byte-identical either way; the escape hatch
  // exists for A/B timing and for debugging the dirty-set logic itself.
  if (opt.full_realloc) {
    spec.base_config.flow.incremental = false;
    for (Point& pt : spec.points) pt.config.flow.incremental = false;
  }

  // --whole-file-cache: the reference data plane — caches account whole
  // files, no block sharing. Byte-identical to block mode at content
  // overlap 0 (the default); the escape hatch pins that equivalence and
  // serves as the dedup baseline. --block-size resizes the block grid.
  if (opt.whole_file && opt.block_size_mb > 0)
    usage_error("--whole-file-cache and --block-size are mutually exclusive");
  if (opt.whole_file) {
    spec.base_config.block_store.reset();
    for (Point& pt : spec.points) pt.config.block_store.reset();
  } else if (opt.block_size_mb > 0) {
    auto resize = [&](grid::GridConfig& c) {
      if (!c.block_store) c.block_store.emplace();
      c.block_store->block_size = megabytes(opt.block_size_mb);
    };
    resize(spec.base_config);
    for (Point& pt : spec.points) resize(pt.config);
  }

  // --replication-policy: engage (or disable) the proactive replicator
  // with the named placement, overriding whatever the scenario chose.
  if (!opt.replication.empty()) {
    if (opt.replication == "none") {
      spec.base_config.replication.reset();
      for (Point& pt : spec.points) pt.config.replication.reset();
    } else {
      replication::Placement placement;
      if (!replication::parse_placement(opt.replication, &placement))
        usage_error("unknown replication policy " + opt.replication +
                    " (want none|random|least-loaded|hierarchical|"
                    "network-cost)");
      auto engage = [&](grid::GridConfig& c) {
        if (!c.replication) c.replication.emplace();
        c.replication->placement = placement;
      };
      engage(spec.base_config);
      for (Point& pt : spec.points) engage(pt.config);
    }
  }

  // Open-system workload-plane overrides. --tenants/--arrival on the
  // default coadd generator switch to the multi-tenant/stamped-arrival
  // paths; an explicit --workload always wins.
  if (!opt.tenants.empty()) {
    spec.workload.open.tenants = parse_tenants(opt.tenants);
    if (opt.workload.empty() && spec.workload.open.tenants.size() > 1 &&
        spec.workload.generator == "coadd")
      spec.workload.generator = "multi-tenant";
  }
  if (!opt.arrival.empty())
    spec.workload.open.process = workload::parse_arrival_process(opt.arrival);
  if (!opt.workload.empty()) {
    workload::register_builtin_generators();
    if (!workload::has_generator(opt.workload)) {
      std::cerr << "unknown workload generator " << opt.workload << " (have:";
      for (const std::string& g : workload::generator_names())
        std::cerr << ' ' << g;
      std::cerr << ")\n";
      return 2;
    }
    spec.workload.generator = opt.workload;
  }

  // An open workload (timed arrivals and/or a tenant roster) can only
  // run pull schedulers — task-centric push placement would act on
  // tasks that have not arrived. Drop the incompatible rows with a
  // notice instead of aborting mid-run.
  const bool open_requested =
      spec.workload.open.process != workload::ArrivalProcess::kAtT0 ||
      spec.workload.open.tenants.size() > 1;
  if (open_requested && (!opt.tenants.empty() || !opt.arrival.empty() ||
                         !opt.workload.empty())) {
    auto drop_push = [](std::vector<sched::SchedulerSpec>& specs) {
      const std::size_t before = specs.size();
      std::erase_if(specs, [](const sched::SchedulerSpec& s) {
        const bool pull = sched::make_scheduler(s)->supports_arrivals();
        if (!pull)
          std::cerr << "  [dropping " << s.name()
                    << ": task-centric, cannot take timed arrivals]\n";
        return !pull;
      });
      return specs.size() != before;
    };
    drop_push(spec.schedulers);
    for (Point& pt : spec.points)
      // Row labels are parallel to the per-point scheduler list; once
      // rows are dropped the renames no longer line up, so fall back to
      // the specs' own names.
      if (drop_push(pt.schedulers)) pt.row_labels.clear();
    if (spec.schedulers.empty() &&
        (spec.points.empty() || spec.points.front().schedulers.empty())) {
      std::cerr << "no scheduler in this scenario supports open-system "
                   "arrivals (pull schedulers: workqueue, overlap, rest, "
                   "combined)\n";
      return 2;
    }
  }

  if (opt.dump) {
    dump_scenario(spec, std::cout);
    return 0;
  }
  return run_scenario(spec, opt.run);
}

}  // namespace wcs::scenario
