// Shared bench CLI: every bench binary is a shim over scenario_main().
//
// scenario_main(default_scenario, argc, argv) registers the built-in
// catalog, parses the shared flag set, and runs the selected scenario:
//
//   --scenario NAME   run a different catalog entry (default: the shim's)
//   --list-scenarios  print every registered scenario and exit
//   --dump-scenario [NAME]  print the built spec as JSON and exit
//   --tasks N         workload size (default 6000 = the paper's slice)
//   --seeds K         topology repetitions (default 5)
//   --jobs N          worker threads for independent runs (default: all
//                     hardware threads; output is identical at any level)
//   --csv PATH        also write the series as CSV
//   --fast            1500 tasks, 2 seeds, coarser sweep axes
//   --audit           run every simulation with the invariant auditor on
//                     (src/audit); read-only checkers, identical output
//   --report PATH     write the machine-readable run report here (default
//                     results/<bench>.json; --no-report disables)
//   --trace-out P     additionally run one representative simulation with
//                     full observability and dump its Chrome trace to P
//   --flat-index      resolve scheduling decisions with the flat O(T)
//                     reference scans instead of the sharded pending-task
//                     index (sched/sharded_index.h); totals are
//                     byte-identical, only the wall-clock differs
//   --full-realloc    recompute every flow's max-min share from scratch
//                     on each flow start/finish instead of rebalancing
//                     only the dirty component (net/flow_manager.h);
//                     totals are byte-identical, only the wall-clock
//                     differs
//   --workload NAME   override the spec's workload generator (registry
//                     names: coadd, uniform, zipf, partitioned, trace,
//                     multi-tenant)
//   --tenants N|W,..  open-system tenant roster: a count (equal weights)
//                     or comma-separated weights; with the default coadd
//                     generator this implies --workload multi-tenant
//   --arrival P       arrival process: t0 (closed, default), poisson,
//                     diurnal, or bursty
//   --whole-file-cache  account site caches in whole files (the
//                     pre-block-store reference) instead of the default
//                     block-granular store (storage/block_store.h); at
//                     content overlap 0 totals are byte-identical either
//                     way (docs/data-plane.md); excludes --block-size
//   --block-size MB   block size for the block-granular store (default
//                     1 MB); observable only under content overlap
//   --replication-policy P  replica placement: none (disable), random,
//                     least-loaded, hierarchical, or network-cost
//                     (replication/data_replicator.h)
//
// WCS_BENCH_FAST=1 in the environment implies --fast (used by CI-style
// smoke runs); WCS_BENCH_JOBS=N sets the default for --jobs. WCS_AUDIT=1
// implies --audit (see audit::default_enabled()).
#pragma once

#include <string>

namespace wcs::scenario {

// Returns the process exit code. `default_scenario` must name a built-in
// catalog entry (scenario/catalog.h).
int scenario_main(const std::string& default_scenario, int argc, char** argv);

}  // namespace wcs::scenario
