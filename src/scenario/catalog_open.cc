// Open-system scenarios O1–O3: the workload plane's simulated-time
// arrivals and multi-tenant weighted-fair sharing (DESIGN.md §Workload
// plane). The closed paper scenarios submit every task at t = 0; these
// sweep what the paper holds fixed — offered load, tenant weight mixes,
// and the arrival process shape — using the pull schedulers (the
// task-centric baselines make premature placements and cannot take timed
// arrivals).
#include <string>
#include <vector>

#include "scenario/catalog.h"

namespace wcs::scenario::detail {

namespace {

// Mean per-task service time on one paper-platform worker, measured
// from the golden closed runs (makespan * workers / tasks ~= 7800 s at
// Table 1 defaults). Offered load rho on W workers then fixes the
// Poisson mean inter-arrival gap at kMeanServiceS / (W * rho).
constexpr double kMeanServiceS = 7800.0;

double interarrival_for_load(const grid::GridConfig& config, double rho) {
  const double workers =
      static_cast<double>(config.tiers.num_sites) *
      static_cast<double>(config.tiers.workers_per_site);
  return kMeanServiceS / (workers * rho);
}

// The pull schedulers, paper order: workqueue baseline, then the
// worker-centric metrics (rest/combined at ChooseTask 1 and 2).
std::vector<sched::SchedulerSpec> pull_schedulers() {
  std::vector<sched::SchedulerSpec> specs;
  sched::SchedulerSpec wq;
  wq.algorithm = sched::Algorithm::kWorkqueue;
  specs.push_back(wq);
  for (int n : {1, 2}) {
    for (sched::Algorithm a :
         {sched::Algorithm::kRest, sched::Algorithm::kCombined}) {
      sched::SchedulerSpec s;
      s.algorithm = a;
      s.choose_n = n;
      specs.push_back(s);
    }
  }
  return specs;
}

ScenarioSpec open_base(const char* name, const BuildOptions& options) {
  ScenarioSpec spec;
  spec.name = name;
  spec.workload.coadd = paper_workload(options);
  spec.schedulers = pull_schedulers();
  spec.base_config = paper_platform();
  return spec;
}

}  // namespace

void register_open_scenarios() {
  // O1: saturation sweep. Single tenant, Poisson arrivals; the offered
  // load rho scales the arrival rate against the platform's service
  // capacity. Below saturation the makespan is arrival-dominated and
  // algorithms converge; past rho = 1 the backlog grows and the
  // locality-aware metrics pull ahead again.
  register_scenario(
      "open_saturation", "O1: open-system saturation sweep (Poisson load)",
      [](const BuildOptions& options) {
        ScenarioSpec spec = open_base("open_saturation", options);
        spec.title = "Open O1: makespan vs offered load";
        spec.x_axis = "load";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        std::vector<double> loads = {0.5, 0.8, 1.2};
        if (options.fast) loads = {0.5, 1.2};
        for (double rho : loads) {
          Point pt;
          pt.x = rho;
          pt.label = "rho=" + std::to_string(rho).substr(0, 3);
          pt.config = paper_platform();
          workload::GeneratorSpec wl = spec.workload;
          wl.open.process = workload::ArrivalProcess::kPoisson;
          wl.open.mean_interarrival_s = interarrival_for_load(pt.config, rho);
          pt.workload = wl;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: arrivals gate the pending set, so below saturation "
            "every pull scheduler tracks the arrival curve; data-aware "
            "ChooseTask matters again once the backlog builds (rho > 1).";
        return spec;
      });

  // O2: tenant-mix ablation. Multi-tenant Coadd bag streams under the
  // WRR layer; the sweep varies the weight mix at fixed total load. The
  // per-tenant report sections carry the fairness observables (served
  // shares, Jain's index, per-tenant sojourn percentiles).
  register_scenario(
      "open_tenant_mix",
      "O2: multi-tenant weight-mix ablation (WRR fairness)",
      [](const BuildOptions& options) {
        ScenarioSpec spec = open_base("open_tenant_mix", options);
        spec.title = "Open O2: weighted fair sharing vs tenant weight mix";
        spec.x_axis = "weights";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        std::vector<std::vector<std::uint32_t>> mixes = {
            {1, 1}, {3, 1}, {3, 1, 2}};
        if (options.fast) mixes = {{1, 1}, {3, 1}};
        for (const std::vector<std::uint32_t>& weights : mixes) {
          Point pt;
          pt.x = static_cast<double>(weights.size());
          std::string label;
          for (std::uint32_t w : weights) {
            if (!label.empty()) label += ':';
            label += std::to_string(w);
          }
          pt.label = label;
          pt.config = paper_platform();
          workload::GeneratorSpec wl = spec.workload;
          wl.generator = "multi-tenant";
          wl.open.process = workload::ArrivalProcess::kPoisson;
          // Fixed total offered load: each tenant contributes its share
          // of the per-worker service capacity.
          wl.open.mean_interarrival_s =
              interarrival_for_load(pt.config, 0.9) *
              static_cast<double>(weights.size());
          for (std::uint32_t w : weights) {
            workload::TenantInfo t;
            t.weight = w;
            wl.open.tenants.push_back(t);
          }
          pt.workload = wl;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: the WRR layer serves worker requests proportionally "
            "to tenant weight; jain_fairness and the per-tenant sojourn "
            "percentiles in the run report quantify it.";
        return spec;
      });

  // O3: burst vs steady. Same mean arrival rate, three process shapes —
  // Poisson (memoryless), diurnal (thinned sinusoidal rate), and
  // heavy-tailed bursts (Pareto gaps between geometric-size batches).
  register_scenario(
      "open_burst", "O3: burst-vs-steady arrival-process comparison",
      [](const BuildOptions& options) {
        ScenarioSpec spec = open_base("open_burst", options);
        spec.title = "Open O3: makespan vs arrival-process shape";
        spec.x_axis = "process";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        std::vector<workload::ArrivalProcess> processes = {
            workload::ArrivalProcess::kPoisson,
            workload::ArrivalProcess::kDiurnal,
            workload::ArrivalProcess::kBursty};
        if (options.fast)
          processes = {workload::ArrivalProcess::kPoisson,
                       workload::ArrivalProcess::kBursty};
        double x = 0;
        for (workload::ArrivalProcess process : processes) {
          Point pt;
          pt.x = x++;
          pt.label = workload::to_string(process);
          pt.config = paper_platform();
          workload::GeneratorSpec wl = spec.workload;
          wl.open.process = process;
          wl.open.mean_interarrival_s =
              interarrival_for_load(pt.config, 0.9);
          pt.workload = wl;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: at equal mean rate, bursty arrivals pile the pending "
            "set up and briefly re-create the closed-batch regime where "
            "data-aware ChooseTask wins; steady arrivals keep queues short.";
        return spec;
      });
}

}  // namespace wcs::scenario::detail
