// Declarative scenario registry.
//
// A ScenarioSpec is a plain data description of one paper figure/table
// experiment: the workload, the sweep axis (one GridConfig per point),
// the scheduler set, and the headline metric. Bench binaries are thin
// shims that look a spec up by name and hand it to the runner
// (scenario/runner.h); the catalog of every paper figure/table plus the
// ablation and extension studies lives in scenario/catalog.h.
//
// Because sweep axes depend on run options (--fast shrinks them, --tasks
// resizes the workload), the registry stores BUILDERS: functions from
// BuildOptions to ScenarioSpec. Builders are pure — building a spec runs
// no simulation — so `--dump-scenario` can print exactly what would run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/units.h"
#include "grid/config.h"
#include "metrics/results.h"
#include "sched/factory.h"
#include "workload/registry.h"

namespace wcs::scenario {

// The headline metric a figure plots (the series column of the console
// output and the `metric` field of the run report).
enum class Metric {
  kMakespanMinutes,
  kTransfersPerSite,
  kWaitingHoursPerSite,
};

[[nodiscard]] const char* to_string(Metric metric);
[[nodiscard]] double metric_value(Metric metric,
                                  const metrics::AveragedResult& row);

// One sweep point: an x value and the platform it runs on.
struct Point {
  double x = 0;
  std::string label;  // x_label in tables, series, and the report
  grid::GridConfig config;

  // Regenerate the workload with this file size for this point (same
  // seed: identical task -> file structure, new sizes). Figure 8 only.
  std::optional<Bytes> file_size;

  // Per-point workload override (open-system sweeps vary the arrival
  // process / offered load / tenant roster per point); empty = the
  // spec-level workload.
  std::optional<workload::GeneratorSpec> workload;

  // Per-point scheduler override; empty = the spec-level set. Used when
  // the "rows" of a point are variants rather than algorithms (e.g. the
  // replication extension pairs each spec with a platform change).
  std::vector<sched::SchedulerSpec> schedulers;

  // Optional row renames, parallel to the effective scheduler list (e.g.
  // "rest.2 +data-repl"); empty = the specs' own names.
  std::vector<std::string> row_labels;
};

// Workload-stats scenarios (Figure 3 / Table 2) run no simulations: the
// stats callback prints the analysis and returns the placeholder (x,
// x_label) for the schema-checked run report.
struct StatsResult {
  double x = 0;
  std::string x_label;
};

struct ScenarioSpec {
  std::string name;   // registry key, e.g. "fig5_transfers"
  std::string title;  // human title, e.g. "Figure 5: ..."
  std::string x_axis;
  Metric metric = Metric::kMakespanMinutes;
  std::string metric_name;  // human label, e.g. "makespan (minutes)"

  // Base workload description (builders bake BuildOptions::tasks in, so
  // a dumped spec shows the workload that would actually run). Selects a
  // generator from the workload registry (workload/registry.h); the
  // default is the closed synthetic Coadd bag. Open-system scenarios set
  // workload.open (tenants + arrival process) and run through the
  // arrival-aware engine path.
  workload::GeneratorSpec workload;

  // The algorithm set, one table/series row per spec (paper order).
  std::vector<sched::SchedulerSpec> schedulers;

  std::vector<Point> points;

  // Platform for the --trace-out representative run (Table 1 defaults).
  grid::GridConfig base_config;

  // Optional trailing interpretation paragraph ("reading: ...").
  std::string notes;

  // Non-null for workload-stats scenarios; `csv_path` is the --csv
  // destination (stats scenarios own their CSV schema).
  std::function<StatsResult(const workload::Job& job, std::ostream& out,
                            const std::optional<std::string>& csv_path)>
      stats;

  [[nodiscard]] bool is_stats() const { return static_cast<bool>(stats); }
};

// Options a builder may shape the spec by. `fast` coarsens sweep axes
// (fewer points), exactly like the old per-bench --fast behaviour;
// `tasks` is the workload slice size (already capped by --fast).
struct BuildOptions {
  std::size_t tasks = 6000;
  bool fast = false;
};

using Builder = std::function<ScenarioSpec(const BuildOptions&)>;

// --- Registry ----------------------------------------------------------
// Names are unique; registration order is the --list-scenarios order.

void register_scenario(const std::string& name, const std::string& summary,
                       Builder builder);

[[nodiscard]] bool has_scenario(const std::string& name);

// All registered names, in registration order.
[[nodiscard]] std::vector<std::string> scenario_names();

// One-line summary for --list-scenarios. The name must exist.
[[nodiscard]] const std::string& scenario_summary(const std::string& name);

// Builds the named spec. WCS_CHECKs that the name exists and that the
// built spec is well-formed (name matches, points or stats present).
[[nodiscard]] ScenarioSpec build_scenario(const std::string& name,
                                          const BuildOptions& options);

}  // namespace wcs::scenario
