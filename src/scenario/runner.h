// Scenario runner: executes a ScenarioSpec under the paper's measurement
// protocol (5 topology seeds, averaged rows, run_matrix fan-out) and
// emits the standard artifact set: per-point tables, the headline-metric
// series, optional CSV, the machine-readable run report (obs::RunReport
// schema v2; open-system scenarios add per-tenant sections), and an
// optional Chrome trace of one representative run.
//
// This is the engine behind every bench binary; the CLI wrapper
// (scenario/cli.h) parses the shared flag set into RunOptions.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "scenario/scenario.h"

namespace wcs::scenario {

struct RunOptions {
  std::size_t seeds = 5;  // topology repetitions (Sec. 5.2)
  std::size_t jobs = ThreadPool::default_concurrency();
  std::optional<std::string> csv_path;
  bool audit = false;  // sticky: can only turn auditing on
  std::string report_name = "scenario";    // report `bench` field
  std::optional<std::string> report_path;  // none = reporting disabled
  std::optional<std::string> trace_out;    // Chrome trace destination

  std::ostream* out = nullptr;  // tables/series; null = std::cout
  std::ostream* err = nullptr;  // progress stream; null = std::cerr

  // Run-report config echo (the runner does not re-derive these from the
  // spec so the report matches what the user asked for on the CLI).
  std::size_t tasks = 6000;
  bool fast = false;

  std::chrono::steady_clock::time_point started =  // detlint: nondet-source -- run-harness wall-clock timing, reported as metadata only
      std::chrono::steady_clock::now();  // detlint: nondet-source -- run-harness wall-clock timing, reported as metadata only

  [[nodiscard]] std::vector<std::uint64_t> topology_seeds() const {
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= seeds; ++i) s.push_back(i);
    return s;
  }
};

// Runs the scenario to completion; returns a process exit code (0 on
// success). Simulation output is deterministic for fixed options; wall
// clocks and progress lines are host-dependent.
int run_scenario(const ScenarioSpec& spec, const RunOptions& options);

}  // namespace wcs::scenario
