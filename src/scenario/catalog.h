// Built-in scenario catalog: every table and figure of the paper plus
// the ablation and extension studies (DESIGN.md §4). One registry entry
// per artifact:
//
//   table2_workload     Table 2   Coadd workload characteristics
//   fig3_cdf            Fig. 3    file-access CDF of Coadd
//   fig4_capacity       Fig. 4    makespan vs data-server capacity
//   fig5_transfers      Fig. 5    file transfers vs capacity
//   fig6_workers        Fig. 6    makespan vs workers per site
//   table3_contention   Table 3   rest: per-site waiting/transfer times
//   fig7_sites          Fig. 7    makespan vs number of sites
//   fig8_filesize       Fig. 8    makespan vs file size
//   ablation_combined   A1        combined formula, prose vs verbatim
//   ablation_choosetask A2        ChooseTask(n) sweep
//   ablation_eviction   A3        eviction policy x capacity
//   ablation_baselines  A4        baselines vs estimate quality
//   ext_replication     E1        data/task replication mechanisms
//   ext_churn           E2        makespan under worker churn
//   open_saturation     O1        open-system saturation sweep
//   open_tenant_mix     O2        multi-tenant weight-mix ablation
//   open_burst          O3        burst-vs-steady arrival processes
//   data_block_size     R1        dedup vs block size at coadd overlap
//   data_eviction_dedup R2        eviction policy x content overlap
//   data_replication_policy R3    replication placement x topology
//
// register_builtin_scenarios() is idempotent and must be called before
// looking any of these up (static registrars would be dropped by the
// linker from a static library, so registration is explicit).
#pragma once

#include "scenario/scenario.h"

namespace wcs::scenario {

void register_builtin_scenarios();

namespace detail {

// Paper Table 1 platform defaults (10 sites, 1 worker/site, 6,000-file
// data servers) — the base every scenario perturbs.
[[nodiscard]] grid::GridConfig paper_platform();

// The paper's Coadd slice resized to `options.tasks`, default parameters
// otherwise (25 MB files unless a scenario overrides).
[[nodiscard]] workload::CoaddParams paper_workload(
    const BuildOptions& options);

void register_paper_scenarios();      // table2, fig3..fig8, table3
void register_ablation_scenarios();   // A1..A4
void register_extension_scenarios();  // E1, E2
void register_open_scenarios();       // O1..O3
void register_data_scenarios();       // R1..R3

}  // namespace detail

}  // namespace wcs::scenario
