// Paper-series scenarios: Tables 2/3 and Figures 3–8 (DESIGN.md §4).
#include <iomanip>
#include <string>

#include "common/csv.h"
#include "scenario/catalog.h"
#include "workload/job.h"

namespace wcs::scenario::detail {

grid::GridConfig paper_platform() {
  grid::GridConfig c;
  c.tiers.num_sites = 10;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 6000;
  return c;
}

workload::CoaddParams paper_workload(const BuildOptions& options) {
  workload::CoaddParams p = workload::CoaddParams::paper_6000();
  p.num_tasks = options.tasks;
  return p;
}

namespace {

ScenarioSpec sweep_base(const char* name, const BuildOptions& options) {
  ScenarioSpec spec;
  spec.name = name;
  spec.workload.coadd = paper_workload(options);
  spec.schedulers = sched::SchedulerSpec::paper_algorithms();
  spec.base_config = paper_platform();
  return spec;
}

// Figures 4/5 share the capacity axis (paper Sec. 5.4).
std::vector<Point> capacity_points() {
  std::vector<Point> points;
  for (std::size_t cap : {3000u, 6000u, 15000u, 30000u}) {
    Point pt;
    pt.x = static_cast<double>(cap);
    pt.label = std::to_string(cap);
    pt.config = paper_platform();
    pt.config.capacity_files = cap;
    points.push_back(std::move(pt));
  }
  return points;
}

void register_table2(const char* name) {
  register_scenario(
      name, "Table 2: Coadd workload characteristics (no simulations)",
      [name = std::string(name)](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = name;
        spec.title = "Table 2: Coadd workload characteristics";
        spec.x_axis = "tasks";
        spec.metric_name = "files per task";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        spec.stats = [](const workload::Job& job, std::ostream& out,
                        const std::optional<std::string>& csv_path) {
          workload::JobStats stats = workload::compute_stats(job);
          out << "Table 2. Characteristics of Coadd with " << stats.num_tasks
              << " tasks (synthetic generator; paper values in "
                 "parentheses)\n\n";
          auto row = [&out](const std::string& label, double ours,
                            const char* paper) {
            out << "  " << std::left << std::setw(44) << label << std::right
                << std::setw(12) << std::fixed << std::setprecision(4) << ours
                << "   (paper: " << paper << ")\n";
          };
          row("Total number of files",
              static_cast<double>(stats.distinct_files), "53390");
          row("Max number of files needed by a task",
              static_cast<double>(stats.max_files_per_task), "101");
          row("Min number of files needed by a task",
              static_cast<double>(stats.min_files_per_task), "36");
          row("Average number of files needed by a task",
              stats.avg_files_per_task, "78.4327");
          if (csv_path) {
            CsvWriter csv(*csv_path);
            csv.header({"metric", "value"});
            csv.row("total_files", stats.distinct_files);
            csv.row("max_files_per_task", stats.max_files_per_task);
            csv.row("min_files_per_task", stats.min_files_per_task);
            csv.row("avg_files_per_task", stats.avg_files_per_task);
          }
          return StatsResult{static_cast<double>(stats.num_tasks),
                             std::to_string(stats.num_tasks) + " tasks"};
        };
        return spec;
      });
}

void register_fig3(const char* name) {
  register_scenario(
      name, "Figure 3: Coadd file-access CDF (no simulations)",
      [name = std::string(name)](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = name;
        spec.title = "Figure 3: Coadd file access distribution";
        spec.x_axis = "min_refs";
        spec.metric_name = "fraction of files";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        spec.stats = [](const workload::Job& job, std::ostream& out,
                        const std::optional<std::string>& csv_path) {
          workload::JobStats stats = workload::compute_stats(job);
          out << "Figure 3. File access distribution of Coadd with "
              << stats.num_tasks << " tasks\n";
          out << "(fraction of files accessed by >= x tasks; paper: ~0.85 "
                 "at x = 6)\n\n";
          out << "  x (refs)   % of files (cumulative)\n";
          for (std::size_t x = 12; x >= 1; --x) {
            double frac = stats.refs_cdf.fraction_at_least(x) * 100.0;
            out << "  " << std::setw(8) << x << "   " << std::setw(8)
                << std::fixed << std::setprecision(2) << frac << "  |";
            int bars = static_cast<int>(frac / 2.0);
            for (int b = 0; b < bars; ++b) out << '#';
            out << '\n';
          }
          out << "\n  fraction >= 6 refs: "
              << stats.refs_cdf.fraction_at_least(6) << "  (paper: ~0.85)\n";
          if (csv_path) {
            CsvWriter csv(*csv_path);
            csv.header({"min_refs", "fraction_of_files"});
            for (std::size_t x = 1; x <= 20; ++x)
              csv.row(x, stats.refs_cdf.fraction_at_least(x));
          }
          return StatsResult{6, ">=6 refs"};
        };
        return spec;
      });
}

}  // namespace

void register_paper_scenarios() {
  register_table2("table2_workload");
  register_fig3("fig3_cdf");

  register_scenario(
      "fig4_capacity", "Figure 4: makespan vs data-server capacity",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("fig4_capacity", options);
        spec.title = "Figure 4: makespan vs data-server capacity";
        spec.x_axis = "capacity_files";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.points = capacity_points();
        return spec;
      });

  register_scenario(
      "fig5_transfers", "Figure 5: file transfers vs data-server capacity",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("fig5_transfers", options);
        spec.title = "Figure 5: file transfers vs data-server capacity";
        spec.x_axis = "capacity_files";
        spec.metric = Metric::kTransfersPerSite;
        spec.metric_name = "file transfers per data server";
        spec.points = capacity_points();
        return spec;
      });

  register_scenario(
      "fig6_workers", "Figure 6: makespan vs workers per site",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("fig6_workers", options);
        spec.title = "Figure 6: makespan vs workers per site";
        spec.x_axis = "workers_per_site";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        std::vector<int> counts{2, 3, 4, 5, 6, 7, 8, 9, 10};
        if (options.fast) counts = {2, 4, 6, 8, 10};
        for (int workers : counts) {
          Point pt;
          pt.x = workers;
          pt.label = std::to_string(workers);
          pt.config = paper_platform();
          pt.config.tiers.workers_per_site = workers;
          spec.points.push_back(std::move(pt));
        }
        return spec;
      });

  register_scenario(
      "table3_contention",
      "Table 3: rest metric per-site waiting/transfer vs workers",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("table3_contention", options);
        spec.title = "Table 3: rest metric per-site contention";
        spec.x_axis = "workers_per_site";
        spec.metric = Metric::kWaitingHoursPerSite;
        spec.metric_name = "waiting (hours)";
        sched::SchedulerSpec rest;
        rest.algorithm = sched::Algorithm::kRest;
        spec.schedulers = {rest};
        for (int workers : {2, 4, 6, 8}) {
          Point pt;
          pt.x = workers;
          pt.label = std::to_string(workers) + " workers";
          pt.config = paper_platform();
          pt.config.tiers.workers_per_site = workers;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: transfers and transfer time fall monotonically with "
            "more workers\n(more sharing), but waiting time peaks at an "
            "intermediate worker count — the\nserial data server's queue is "
            "the bottleneck (paper Sec. 5.5).";
        return spec;
      });

  register_scenario(
      "fig7_sites", "Figure 7: makespan vs number of sites",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("fig7_sites", options);
        spec.title = "Figure 7: makespan vs number of sites";
        spec.x_axis = "num_sites";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        std::vector<int> counts{10, 14, 18, 22, 26};
        if (options.fast) counts = {10, 18, 26};
        for (int sites : counts) {
          Point pt;
          pt.x = sites;
          pt.label = std::to_string(sites);
          pt.config = paper_platform();
          pt.config.tiers.num_sites = sites;
          spec.points.push_back(std::move(pt));
        }
        return spec;
      });

  register_scenario(
      "fig8_filesize", "Figure 8: makespan vs file size",
      [](const BuildOptions& options) {
        ScenarioSpec spec = sweep_base("fig8_filesize", options);
        spec.title = "Figure 8: makespan vs file size";
        spec.x_axis = "file_size";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        for (double mb : {5.0, 25.0, 50.0}) {
          Point pt;
          pt.x = mb;
          pt.label = std::to_string(static_cast<int>(mb)) + "MB";
          pt.config = paper_platform();
          pt.file_size = megabytes(mb);
          spec.points.push_back(std::move(pt));
        }
        return spec;
      });
}

}  // namespace wcs::scenario::detail

namespace wcs::scenario {

void register_builtin_scenarios() {
  static const bool registered = [] {
    detail::register_paper_scenarios();
    detail::register_ablation_scenarios();
    detail::register_extension_scenarios();
    detail::register_open_scenarios();
    detail::register_data_scenarios();
    return true;
  }();
  (void)registered;
}

}  // namespace wcs::scenario
