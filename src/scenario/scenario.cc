#include "scenario/scenario.h"

#include <utility>

#include "common/check.h"

namespace wcs::scenario {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kMakespanMinutes:
      return "makespan_minutes";
    case Metric::kTransfersPerSite:
      return "transfers_per_site";
    case Metric::kWaitingHoursPerSite:
      return "waiting_hours_per_site";
  }
  return "unknown";
}

double metric_value(Metric metric, const metrics::AveragedResult& row) {
  switch (metric) {
    case Metric::kMakespanMinutes:
      return row.makespan_minutes;
    case Metric::kTransfersPerSite:
      return row.transfers_per_site;
    case Metric::kWaitingHoursPerSite:
      return row.waiting_hours_per_site;
  }
  return 0;
}

namespace {

struct Entry {
  std::string name;
  std::string summary;
  Builder build;
};

std::vector<Entry>& entries() {
  static std::vector<Entry> registry;
  return registry;
}

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : entries())
    if (e.name == name) return &e;
  return nullptr;
}

}  // namespace

void register_scenario(const std::string& name, const std::string& summary,
                       Builder builder) {
  WCS_CHECK_MSG(!name.empty(), "scenario name must be non-empty");
  WCS_CHECK_MSG(builder != nullptr, "scenario " << name << " has no builder");
  WCS_CHECK_MSG(find_entry(name) == nullptr,
                "scenario " << name << " registered twice");
  entries().push_back({name, summary, std::move(builder)});
}

bool has_scenario(const std::string& name) {
  return find_entry(name) != nullptr;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(entries().size());
  for (const Entry& e : entries()) names.push_back(e.name);
  return names;
}

const std::string& scenario_summary(const std::string& name) {
  const Entry* e = find_entry(name);
  WCS_CHECK_MSG(e != nullptr, "unknown scenario " << name);
  return e->summary;
}

ScenarioSpec build_scenario(const std::string& name,
                            const BuildOptions& options) {
  const Entry* e = find_entry(name);
  WCS_CHECK_MSG(e != nullptr, "unknown scenario " << name);
  ScenarioSpec spec = e->build(options);
  WCS_CHECK_MSG(spec.name == name, "scenario " << name
                                               << " built a spec named "
                                               << spec.name);
  if (spec.is_stats()) {
    WCS_CHECK_MSG(spec.points.empty(),
                  "stats scenario " << name << " must not declare points");
  } else {
    WCS_CHECK_MSG(!spec.points.empty(),
                  "scenario " << name << " built an empty sweep");
    WCS_CHECK_MSG(!spec.schedulers.empty() ||
                      !spec.points.front().schedulers.empty(),
                  "scenario " << name << " has no schedulers");
    for (const Point& pt : spec.points) {
      const std::size_t rows = pt.schedulers.empty() ? spec.schedulers.size()
                                                     : pt.schedulers.size();
      WCS_CHECK_MSG(rows > 0, "scenario " << name << " point " << pt.label
                                          << " has no schedulers");
      WCS_CHECK_MSG(pt.row_labels.empty() || pt.row_labels.size() == rows,
                    "scenario " << name << " point " << pt.label
                                << " row_labels/schedulers mismatch");
    }
  }
  return spec;
}

}  // namespace wcs::scenario
