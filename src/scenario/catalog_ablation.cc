// Ablation scenarios A1–A4 (DESIGN.md §4): deviations and sensitivity
// studies around the paper's algorithms.
#include <string>

#include "scenario/catalog.h"
#include "storage/file_cache.h"

namespace wcs::scenario::detail {

namespace {

Point single_point(const char* label) {
  Point pt;
  pt.x = 0;
  pt.label = label;
  pt.config = paper_platform();
  return pt;
}

}  // namespace

void register_ablation_scenarios() {
  // A1: the `combined` metric as PRINTED in the paper (ref_t/totalRef +
  // totalRest/rest_t) versus the prose-consistent normalization we ship
  // as default. The printed formula REWARDS tasks that need more
  // transfers, contradicting both the paper's stated intuition and its
  // results; this scenario quantifies how much worse it is, as evidence
  // for the deviation recorded in DESIGN.md §1/§6.
  register_scenario(
      "ablation_combined", "A1: combined formula, prose vs verbatim",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ablation_combined";
        spec.title = "Ablation A1: combined formula, prose vs verbatim";
        spec.x_axis = "config";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        for (int n : {1, 2}) {
          for (auto formula : {sched::CombinedFormula::kProse,
                               sched::CombinedFormula::kVerbatim}) {
            sched::SchedulerSpec s;
            s.algorithm = sched::Algorithm::kCombined;
            s.choose_n = n;
            s.combined_formula = formula;
            spec.schedulers.push_back(s);
          }
        }
        sched::SchedulerSpec rest;  // reference point
        rest.algorithm = sched::Algorithm::kRest;
        spec.schedulers.push_back(rest);
        spec.points.push_back(single_point("table1-defaults"));
        return spec;
      });

  // A2: ChooseTask(n) for n in {1, 2, 4, 8}. The paper reports trying
  // several n and keeping only 1 and 2 ("only 1 and 2 give good
  // results", Sec. 5.3): n = 2 edges out n = 1 by dodging sub-optimal
  // deterministic choices, while larger n dilutes the metric with
  // weight-proportional noise.
  register_scenario(
      "ablation_choosetask", "A2: ChooseTask(n) sweep",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ablation_choosetask";
        spec.title = "Ablation A2: ChooseTask(n) sweep";
        spec.x_axis = "config";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        for (auto algorithm :
             {sched::Algorithm::kRest, sched::Algorithm::kCombined})
          for (int n : {1, 2, 4, 8}) {
            sched::SchedulerSpec s;
            s.algorithm = algorithm;
            s.choose_n = n;
            spec.schedulers.push_back(s);
          }
        spec.points.push_back(single_point("table1-defaults"));
        return spec;
      });

  // A3: data-server eviction policy (LRU / FIFO / MinRef) under the
  // tight-capacity regime, where policy actually matters. The paper
  // fixes its replacement policy implicitly; this scenario shows how
  // much of the small-capacity behaviour is policy-dependent.
  register_scenario(
      "ablation_eviction", "A3: eviction policy x capacity",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ablation_eviction";
        spec.title = "Ablation A3: eviction policy x capacity";
        spec.x_axis = "policy@capacity";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        sched::SchedulerSpec rest;
        rest.algorithm = sched::Algorithm::kRest;
        sched::SchedulerSpec sa;
        sa.algorithm = sched::Algorithm::kStorageAffinity;
        spec.schedulers = {rest, sa};
        for (std::size_t cap : {3000u, 6000u}) {
          for (auto policy :
               {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
                storage::EvictionPolicy::kMinRef}) {
            Point pt;
            pt.x = static_cast<double>(cap);
            pt.label = std::string(storage::to_string(policy)) + "@" +
                       std::to_string(cap);
            pt.config = paper_platform();
            pt.config.capacity_files = cap;
            pt.config.eviction = policy;
            spec.points.push_back(std::move(pt));
          }
        }
        return spec;
      });

  // A4: baselines panorama + estimate quality. Compares the paper's best
  // pull scheduler against the no-information baseline (workqueue) and
  // the dynamic-information baseline (XSufferage) while degrading the
  // platform estimates XSufferage depends on — the paper's Sec. 2.4
  // thesis regenerated as a curve.
  register_scenario(
      "ablation_baselines", "A4: baselines vs estimate quality",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ablation_baselines";
        spec.title = "Ablation A4: baselines vs estimate quality";
        spec.x_axis = "estimate_error";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        sched::SchedulerSpec wq;
        wq.algorithm = sched::Algorithm::kWorkqueue;
        sched::SchedulerSpec xs;
        xs.algorithm = sched::Algorithm::kXSufferage;
        sched::SchedulerSpec rest2;
        rest2.algorithm = sched::Algorithm::kRest;
        rest2.choose_n = 2;
        spec.schedulers = {wq, xs, rest2};
        for (double error : {0.0, 1.0, 3.0, 9.0}) {
          Point pt;
          pt.x = error;
          std::string label(error == 0 ? "exact" : "x");
          if (error != 0) label.append(std::to_string(1.0 + error), 0, 4);
          pt.label = std::move(label);
          pt.config = paper_platform();
          pt.config.estimate_error = error;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: workqueue and rest.2 never read estimates (columns "
            "constant).\nxsufferage tolerates static per-site estimate bias "
            "(within-site rankings are\nscale-invariant) and only extreme "
            "error misroutes tasks; the case against\nestimate-driven "
            "scheduling is availability/temporal variance, not static "
            "bias.";
        return spec;
      });
}

}  // namespace wcs::scenario::detail
