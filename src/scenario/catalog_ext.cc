// Extension scenarios E1/E2: claims the paper states but does not
// evaluate (replication orthogonality, Sec. 3.1/3.2; resource
// unreliability, Sec. 1).
#include <string>

#include "replication/data_replicator.h"
#include "scenario/catalog.h"

namespace wcs::scenario::detail {

void register_extension_scenarios() {
  // E1: replication mechanisms. Task-centric scheduling NEEDS auxiliary
  // mechanisms (data/task replication) to fix the imbalance its
  // assignment creates; for worker-centric scheduling both are
  // orthogonal ("they might help ... but are not necessary"). Each
  // variant pairs one scheduler with one platform, so rows are points
  // with per-point scheduler overrides rather than a spec-level set.
  register_scenario(
      "ext_replication", "E1: data/task replication mechanisms",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ext_replication";
        spec.title = "Extension E1: replication mechanisms";
        spec.x_axis = "variant";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();

        auto rest = [](bool task_replication) {
          sched::SchedulerSpec s;
          s.algorithm = sched::Algorithm::kRest;
          s.choose_n = 2;
          s.task_replication = task_replication;
          return s;
        };
        sched::SchedulerSpec sa;
        sa.algorithm = sched::Algorithm::kStorageAffinity;

        struct Variant {
          std::string label;
          sched::SchedulerSpec spec;
          bool data_replication;
        };
        const std::vector<Variant> variants = {
            {"storage-affinity", sa, false},
            {"storage-affinity +data-repl", sa, true},
            {"rest.2", rest(false), false},
            {"rest.2 +data-repl", rest(false), true},
            {"rest.2 +task-repl", rest(true), false},
            {"rest.2 +both", rest(true), true},
        };
        for (std::size_t i = 0; i < variants.size(); ++i) {
          const Variant& v = variants[i];
          Point pt;
          pt.x = static_cast<double>(i);
          pt.label = v.label;
          pt.config = paper_platform();
          if (v.data_replication) {
            replication::DataReplicatorParams rp;
            rp.popularity_threshold = 8;
            rp.placement = replication::Placement::kLeastLoaded;
            pt.config.replication = rp;
          }
          pt.schedulers = {v.spec};
          pt.row_labels = {v.label};  // distinguish ±replication variants
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: data replication should recover a chunk of storage "
            "affinity's gap;\nfor rest.2 both mechanisms should move the "
            "needle far less (orthogonality).";
        return spec;
      });

  // E2: scheduling under worker churn. The paper motivates
  // worker-centric scheduling partly by grid-resource unreliability
  // (PlanetLab's "seven deadly sins") but evaluates only stable
  // platforms; this scenario injects exponential crash/recover churn and
  // sweeps the mean uptime.
  register_scenario(
      "ext_churn", "E2: makespan under worker churn",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "ext_churn";
        spec.title = "Extension E2: makespan under worker churn";
        spec.x_axis = "mean_uptime_h";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();

        sched::SchedulerSpec sa;
        sa.algorithm = sched::Algorithm::kStorageAffinity;
        sched::SchedulerSpec rest2;
        rest2.algorithm = sched::Algorithm::kRest;
        rest2.choose_n = 2;
        sched::SchedulerSpec rest2_repl = rest2;
        rest2_repl.task_replication = true;
        spec.schedulers = {sa, rest2, rest2_repl};

        // Mean uptimes, in hours of simulated time (0 = no churn); mean
        // downtime = uptime / 6.
        for (double up_h : {0.0, 168.0, 48.0, 12.0}) {
          Point pt;
          pt.x = up_h;
          pt.label = up_h == 0
                         ? std::string("none")
                         : std::to_string(static_cast<int>(up_h)) + "h";
          pt.config = paper_platform();
          if (up_h > 0) {
            grid::GridConfig::ChurnParams churn;
            churn.mean_uptime_s = hours(up_h);
            churn.mean_downtime_s = hours(up_h) / 6.0;
            pt.config.churn = churn;
          }
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "reading: pull scheduling degrades gracefully; the task-centric "
            "baseline pays\nmore per crash (whole queues lost + active "
            "re-placement), and task\nreplication recovers part of the tail "
            "for the pull scheduler.";
        return spec;
      });
}

}  // namespace wcs::scenario::detail
