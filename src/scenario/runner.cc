#include "scenario/runner.h"

#include <cstdint>
#include <iostream>
#include <utility>

#include "common/check.h"
#include "common/csv.h"
#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "obs/run_report.h"
#include "workload/registry.h"

namespace wcs::scenario {

namespace {

// One row of a figure series: x value + averaged results per row label.
struct SweepPoint {
  double x = 0;
  std::string label;
  double wall_seconds = 0;
  std::vector<metrics::AveragedResult> rows;
};

double elapsed_s(const RunOptions& options) {
  // detlint: nondet-source -- run-harness wall-clock timing, reported as metadata only
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       options.started)
      .count();
}

// --trace-out support: run ONE representative simulation (first scenario
// algorithm, seed 1, Table 1 platform) with full observability and dump
// its Chrome trace. Kept out of the parallel sweep so concurrent runs
// never share a trace file.
std::optional<obs::PhaseProfiler> trace_representative_run(
    const ScenarioSpec& spec, const RunOptions& options,
    const workload::Workload& workload, std::ostream& out,
    std::ostream& err) {
  if (!options.trace_out) return std::nullopt;
  grid::GridConfig config = spec.base_config;
  config.audit = config.audit || options.audit;
  config.obs = obs::Options::all();
  config.obs.trace_path = *options.trace_out;
  config.tiers.seed = 1;
  sched::SchedulerSpec scheduler =
      spec.schedulers.empty() ? spec.points.front().schedulers.front()
                              : spec.schedulers.front();
  err << "  [traced run: " << scheduler.name() << "]\n";
  const workload::ArrivalSchedule* arrivals =
      workload.open() ? &workload.arrivals : nullptr;
  grid::GridSimulation sim(config, workload,
                           sched::make_scheduler(scheduler, arrivals));
  (void)sim.run();
  out << "\nChrome trace written to " << *options.trace_out << '\n';
  return *sim.observability()->profiler();
}

void write_report(const ScenarioSpec& spec,
                  const std::vector<SweepPoint>& points,
                  const RunOptions& options, const obs::PhaseProfiler* phases,
                  std::ostream& out) {
  if (!options.report_path) return;
  obs::RunReport report;
  report.bench = options.report_name;
  report.title = spec.title;
  report.x_axis = spec.x_axis;
  report.metric = spec.metric_name;
  report.config.tasks = options.tasks;
  report.config.seeds = options.seeds;
  report.config.jobs = options.jobs;
  report.config.fast = options.fast;
  report.config.audit = options.audit;
  report.config.trace = options.trace_out.has_value();
  for (const SweepPoint& pt : points) {
    obs::ReportPoint rp;
    rp.x = pt.x;
    rp.x_label = pt.label;
    rp.wall_seconds = pt.wall_seconds;
    for (const auto& r : pt.rows) rp.rows.push_back(obs::ReportRow::from(r));
    report.points.push_back(std::move(rp));
  }
  report.total_wall_seconds = elapsed_s(options);
  report.phases = phases;
  report.write(*options.report_path);
  out << "Run report written to " << *options.report_path << '\n';
}

int run_stats_scenario(const ScenarioSpec& spec, const RunOptions& options,
                       std::ostream& out) {
  const workload::Workload wl = workload::build_workload(spec.workload);
  StatsResult sr = spec.stats(wl.job, out, options.csv_path);

  // No simulations here: the run report records config/wall time plus a
  // placeholder row so the schema-checked artifact set stays complete.
  metrics::AveragedResult row;
  row.scheduler = "workload-stats";
  row.runs = 1;
  SweepPoint pt;
  pt.x = sr.x;
  pt.label = sr.x_label;
  pt.wall_seconds = elapsed_s(options);
  pt.rows.push_back(std::move(row));
  write_report(spec, {pt}, options, nullptr, out);
  return 0;
}

}  // namespace

int run_scenario(const ScenarioSpec& spec, const RunOptions& options) {
  std::ostream& out = options.out != nullptr ? *options.out : std::cout;
  std::ostream& err = options.err != nullptr ? *options.err : std::cerr;
  workload::register_builtin_generators();  // idempotent

  if (spec.is_stats()) return run_stats_scenario(spec, options, out);

  const workload::Workload base_workload =
      workload::build_workload(spec.workload);
  const std::vector<std::uint64_t> seeds = options.topology_seeds();

  std::vector<SweepPoint> points;
  for (const Point& point : spec.points) {
    grid::GridConfig config = point.config;
    config.audit = config.audit || options.audit;

    // File size and workload overrides live in the catalog, so those
    // axes regenerate the workload per point (same seed: identical
    // task -> file structure; only the overridden knob changes).
    workload::Workload point_workload;
    const bool regenerate = point.file_size || point.workload;
    if (regenerate) {
      workload::GeneratorSpec sized =
          point.workload ? *point.workload : spec.workload;
      if (point.file_size) sized.coadd.file_size = *point.file_size;
      point_workload = workload::build_workload(sized);
    }
    const workload::Workload& wl =
        regenerate ? point_workload : base_workload;

    const std::vector<sched::SchedulerSpec>& schedulers =
        point.schedulers.empty() ? spec.schedulers : point.schedulers;

    SweepPoint pt;
    pt.x = point.x;
    pt.label = point.label;
    pt.rows = grid::run_matrix(
        config, wl, schedulers, seeds,
        [&](const std::string& s) {
          err << "  [" << point.label << ": " << s << "]\n";
        },
        options.jobs);
    for (std::size_t i = 0; i < point.row_labels.size(); ++i)
      pt.rows[i].scheduler = point.row_labels[i];
    pt.wall_seconds = elapsed_s(options);
    points.push_back(std::move(pt));
  }

  std::optional<obs::PhaseProfiler> phases =
      trace_representative_run(spec, options, base_workload, out, err);

  for (const SweepPoint& pt : points)
    grid::print_table(out, spec.title + " — " + spec.x_axis + " = " + pt.label,
                      pt.rows);

  out << "\nSeries (" << spec.metric_name << " vs " << spec.x_axis << "):\n";
  out << spec.x_axis;
  for (const auto& r : points.front().rows) out << '\t' << r.scheduler;
  out << '\n';
  for (const SweepPoint& pt : points) {
    out << pt.label;
    for (const auto& r : pt.rows)
      out << '\t'
          << static_cast<std::uint64_t>(metric_value(spec.metric, r) + 0.5);
    out << '\n';
  }

  if (options.csv_path) {
    CsvWriter csv(*options.csv_path);
    csv.header({spec.x_axis, "algorithm", "makespan_min", "transfers_per_site",
                "total_transfers", "gigabytes", "waiting_h_per_site",
                "transfer_h_per_site", "replicas"});
    for (const SweepPoint& pt : points)
      for (const auto& r : pt.rows)
        csv.row(pt.label, r.scheduler, r.makespan_minutes,
                r.transfers_per_site, r.total_file_transfers,
                r.total_gigabytes, r.waiting_hours_per_site,
                r.transfer_hours_per_site, r.replicas_started);
    out << "\nCSV written to " << *options.csv_path << '\n';
  }

  write_report(spec, points, options, phases ? &*phases : nullptr, out);

  if (!spec.notes.empty()) out << '\n' << spec.notes << '\n';
  return 0;
}

}  // namespace wcs::scenario
