#include "scenario/spec_json.h"

#include <cstdint>

#include "obs/json.h"
#include "storage/file_cache.h"

namespace wcs::scenario {

namespace {

void write_schedulers(obs::JsonWriter& w,
                      const std::vector<sched::SchedulerSpec>& specs) {
  w.begin_array();
  for (const sched::SchedulerSpec& s : specs) w.value(s.name());
  w.end_array();
}

void write_config(obs::JsonWriter& w, const grid::GridConfig& c) {
  w.begin_object();
  w.member("num_sites", c.tiers.num_sites);
  w.member("workers_per_site", c.tiers.workers_per_site);
  w.member("capacity_files", static_cast<std::uint64_t>(c.capacity_files));
  w.member("eviction", storage::to_string(c.eviction));
  w.member("estimate_error", c.estimate_error);
  w.key("block_store");
  if (c.block_store) {
    w.begin_object();
    w.member("block_size_mb", to_megabytes(c.block_store->block_size));
    w.member("content_overlap", c.block_store->content_overlap);
    w.end_object();
  } else {
    w.null();  // whole-file reference mode
  }
  w.key("churn");
  if (c.churn) {
    w.begin_object();
    w.member("mean_uptime_s", c.churn->mean_uptime_s);
    w.member("mean_downtime_s", c.churn->mean_downtime_s);
    w.end_object();
  } else {
    w.null();
  }
  w.key("replication");
  if (c.replication) {
    w.begin_object();
    w.member("placement", replication::to_string(c.replication->placement));
    w.member("popularity_threshold",
             static_cast<std::uint64_t>(c.replication->popularity_threshold));
    w.end_object();
  } else {
    w.null();
  }
  w.end_object();
}

// Full generator block, shared by the spec-level workload and the
// per-point overrides so both round-trip every parameter a generator
// actually reads (a per-point override replaces the whole spec).
void write_workload(obs::JsonWriter& w, const workload::GeneratorSpec& ws) {
  w.begin_object();
  w.member("generator", ws.generator);
  w.member("num_tasks", static_cast<std::uint64_t>(ws.coadd.num_tasks));
  w.member("file_size_mb", to_megabytes(ws.coadd.file_size));
  if (ws.open.process != workload::ArrivalProcess::kAtT0 ||
      ws.open.tenants.size() > 1) {
    w.key("open");
    w.begin_object();
    w.member("arrival_process", workload::to_string(ws.open.process));
    w.member("mean_interarrival_s", ws.open.mean_interarrival_s);
    w.key("tenants");
    w.begin_array();
    for (const workload::TenantInfo& t : ws.open.tenants) {
      w.begin_object();
      w.member("name", t.name);
      w.member("weight", t.weight);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

}  // namespace

void dump_scenario(const ScenarioSpec& spec, std::ostream& out) {
  obs::JsonWriter w(out);
  w.begin_object();
  w.member("name", spec.name);
  w.member("title", spec.title);
  w.member("kind", spec.is_stats() ? "workload-stats" : "sweep");
  w.member("x_axis", spec.x_axis);
  w.member("metric", to_string(spec.metric));
  w.member("metric_name", spec.metric_name);

  w.key("workload");
  write_workload(w, spec.workload);

  w.key("schedulers");
  write_schedulers(w, spec.schedulers);

  w.key("points");
  w.begin_array();
  for (const Point& pt : spec.points) {
    w.begin_object();
    w.member("x", pt.x);
    w.member("label", pt.label);
    w.key("config");
    write_config(w, pt.config);
    if (pt.file_size) {
      w.member("file_size_mb", to_megabytes(*pt.file_size));
    }
    if (pt.workload) {
      w.key("workload");
      write_workload(w, *pt.workload);
    }
    if (!pt.schedulers.empty()) {
      w.key("schedulers");
      write_schedulers(w, pt.schedulers);
    }
    if (!pt.row_labels.empty()) {
      w.key("row_labels");
      w.begin_array();
      for (const std::string& label : pt.row_labels) w.value(label);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();

  if (!spec.notes.empty()) w.member("notes", spec.notes);
  w.end_object();
  out << '\n';
}

}  // namespace wcs::scenario
