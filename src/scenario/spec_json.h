// JSON dump of a built ScenarioSpec (`--dump-scenario`).
//
// Emitted with the deterministic obs::JsonWriter and designed to be read
// back with obs::parse_json (test_scenario pins that round trip). The
// dump reflects exactly what run_scenario() would execute: the resolved
// workload, scheduler names, and every sweep point's platform deltas.
#pragma once

#include <ostream>

#include "scenario/scenario.h"

namespace wcs::scenario {

void dump_scenario(const ScenarioSpec& spec, std::ostream& out);

}  // namespace wcs::scenario
