// Data-plane scenarios R1–R3: the block-store ablations
// (docs/data-plane.md). Coadd's defining property — consecutive stacking
// windows share most of their input pixels — is modeled by the block
// store's content_overlap knob: at overlap w, file f+1 shares a w
// fraction of file f's blocks, so demand fetches and proactive replicas
// ship only the blocks a site is missing.
#include <string>
#include <vector>

#include "replication/data_replicator.h"
#include "scenario/catalog.h"

namespace wcs::scenario::detail {

namespace {

// The overlap the R-scenarios model unless a point sweeps it: half of
// each window is shared with its neighbor, coadd's typical stride.
constexpr double kCoaddOverlap = 0.5;

sched::SchedulerSpec rest2() {
  sched::SchedulerSpec s;
  s.algorithm = sched::Algorithm::kRest;
  s.choose_n = 2;
  return s;
}

sched::SchedulerSpec storage_affinity() {
  sched::SchedulerSpec s;
  s.algorithm = sched::Algorithm::kStorageAffinity;
  return s;
}

}  // namespace

void register_data_scenarios() {
  // R1: block-size sweep. Smaller blocks track the shared content more
  // precisely (higher dedup ratio) but model a finer transfer grid; the
  // sweep locates the knee. Overlap is fixed at the coadd stride.
  register_scenario(
      "data_block_size", "R1: dedup vs block size at coadd overlap",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "data_block_size";
        spec.title = "Data plane R1: dedup vs block size";
        spec.x_axis = "block_size_mb";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        spec.schedulers = {rest2(), storage_affinity()};
        std::vector<double> sizes = {0.25, 0.5, 1.0, 2.0, 4.0};
        if (options.fast) sizes = {0.5, 1.0, 4.0};
        for (double mb : sizes) {
          Point pt;
          pt.x = mb;
          pt.label = (mb < 1.0 ? std::to_string(mb).substr(0, 4)
                               : std::to_string(static_cast<int>(mb))) +
                     "MB";
          pt.config = paper_platform();
          pt.config.block_store.emplace();
          pt.config.block_store->block_size = megabytes(mb);
          pt.config.block_store->content_overlap = kCoaddOverlap;
          spec.points.push_back(std::move(pt));
        }
        spec.notes =
            "the dedup ratio (report field dedup_ratio) is flat "
            "across block\nsizes for this uniform workload — overlap is "
            "block-aligned — while the\nmakespan tracks the saved wire "
            "bytes; compare against --whole-file-cache\nfor the no-dedup "
            "baseline.";
        return spec;
      });

  // R2: eviction policy x dedup. Shared blocks change what an eviction
  // actually frees (evicting a file whose neighbor is resident frees
  // only the exclusive tail), so policies that agree in whole-file mode
  // can diverge under overlap. Tight capacity forces steady eviction.
  register_scenario(
      "data_eviction_dedup", "R2: eviction policy x content overlap",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "data_eviction_dedup";
        spec.title = "Data plane R2: eviction policy x content overlap";
        spec.x_axis = "policy@mode";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        spec.schedulers = {rest2()};
        for (double overlap : {0.0, kCoaddOverlap}) {
          for (auto policy :
               {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
                storage::EvictionPolicy::kMinRef}) {
            Point pt;
            pt.x = static_cast<double>(spec.points.size());
            pt.label = std::string(storage::to_string(policy)) +
                       (overlap > 0 ? "@dedup" : "@disjoint");
            pt.config = paper_platform();
            pt.config.capacity_files = 3000;  // force steady eviction
            pt.config.eviction = policy;
            pt.config.block_store.emplace();
            pt.config.block_store->content_overlap = overlap;
            spec.points.push_back(std::move(pt));
          }
        }
        spec.notes =
            "at overlap 0 the three policies reproduce A3's "
            "ordering; under\ndedup the gap narrows — evicting a shared "
            "file frees only its exclusive\nblocks, so cache pressure is "
            "effectively lower at the same capacity.";
        return spec;
      });

  // R3: replication placement x topology. The four placements ablated
  // against no replication, on the default MAN fan-out and on a flatter
  // hierarchy (2 sites per MAN router), with the block store at coadd
  // overlap so replicas also ship only missing blocks.
  register_scenario(
      "data_replication_policy", "R3: replication placement x topology",
      [](const BuildOptions& options) {
        ScenarioSpec spec;
        spec.name = "data_replication_policy";
        spec.title = "Data plane R3: replication placement x topology";
        spec.x_axis = "policy@sites_per_man";
        spec.metric = Metric::kMakespanMinutes;
        spec.metric_name = "makespan (minutes)";
        spec.workload.coadd = paper_workload(options);
        spec.base_config = paper_platform();
        // Placement matters most for the scheduler whose assignment
        // creates hot spots (the paper's task-centric baseline).
        spec.schedulers = {storage_affinity()};

        struct Policy {
          const char* label;
          bool enabled;
          replication::Placement placement;
        };
        std::vector<Policy> policies = {
            {"none", false, replication::Placement::kRandom},
            {"random", true, replication::Placement::kRandom},
            {"least-loaded", true, replication::Placement::kLeastLoaded},
            {"hierarchical", true,
             replication::Placement::kHierarchicalParent},
            {"network-cost", true, replication::Placement::kNetworkCost},
        };
        if (options.fast)
          policies = {policies[0], policies[2], policies[3], policies[4]};
        std::vector<int> fanouts = {4, 2};
        if (options.fast) fanouts = {4};
        for (int per_man : fanouts) {
          for (const Policy& p : policies) {
            Point pt;
            pt.x = static_cast<double>(spec.points.size());
            pt.label = std::string(p.label) + "@" + std::to_string(per_man);
            pt.config = paper_platform();
            pt.config.tiers.sites_per_man = per_man;
            pt.config.block_store.emplace();
            pt.config.block_store->content_overlap = kCoaddOverlap;
            if (p.enabled) {
              replication::DataReplicatorParams rp;
              rp.popularity_threshold = 8;
              rp.placement = p.placement;
              pt.config.replication = rp;
            }
            spec.points.push_back(std::move(pt));
          }
        }
        spec.notes =
            "hierarchical placement should beat random where MAN "
            "groups are\nwide (demand concentrates under one router) and "
            "lose its edge on the\nflat fan-out; network-cost tracks "
            "least-loaded but prices the uplink,\nso it wins when uplinks "
            "are uneven.";
        return spec;
      });
}

}  // namespace wcs::scenario::detail
