// Classic workqueue (Cirne et al.): the traditional worker-centric
// baseline the paper mentions in Sec. 2.3 — an idle worker simply gets
// the next task in FIFO order, with no data awareness at all. Useful as
// the no-locality lower bound in ablations (A4 measures it paying ~5x
// the makespan of the data-aware metrics at Table 1 defaults).
//
// This scheduler reads nothing from the engine beyond the task list and
// worker liveness — no cache events, no estimates — so it is also the
// smallest working example of the Scheduler interface contract
// (scheduler.h): every decision happens inside on_worker_idle /
// on_worker_failed, and a worker that cannot be served immediately is
// parked on a starving list and fed on the next state change.
#pragma once

#include <algorithm>
#include <deque>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace wcs::sched {

class WorkqueueScheduler final : public Scheduler {
 public:
  // Rebuilds the FIFO from the engine's task list in id order (dense,
  // 0-based — validate_job guarantees it). Open-system runs start with
  // only the tasks already arrived at t=0; the rest join the FIFO tail
  // through on_tasks_arrived in arrival order.
  void on_job_submitted() override {
    const workload::ArrivalSchedule* arrivals = engine().arrivals();
    pending_.clear();
    for (const workload::Task& t : engine().job().tasks())
      if (arrivals == nullptr || arrivals->arrival(t.id) <= 0)
        pending_.push_back(t.id);
  }

  void on_tasks_arrived(const std::vector<TaskId>& tasks) override {
    for (TaskId t : tasks) pending_.push_back(t);
    feed_starving();
  }

  [[nodiscard]] bool supports_arrivals() const override { return true; }

  // Hands the FIFO head to the requester, or parks it on the starving
  // list when the bag is empty (drained by on_worker_failed re-queues).
  void on_worker_idle(WorkerId worker) override {
    obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
    starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                    starving_.end());
    if (pending_.empty()) {
      starving_.push_back(worker);
      return;
    }
    TaskId t = pending_.front();
    pending_.pop_front();
    engine().assign_task(t, worker);
  }

  void on_task_completed(TaskId, WorkerId) override {}

  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override {
    starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                    starving_.end());
    // Lost tasks rejoin the head of the queue (they were dispatched
    // earliest), then any starving worker is fed immediately.
    for (auto it = lost.rbegin(); it != lost.rend(); ++it)
      pending_.push_front(*it);
    feed_starving();
  }

  [[nodiscard]] std::string name() const override { return "workqueue"; }

  // Unassigned tasks still in the FIFO (audit/test hook; running tasks
  // are not counted).
  [[nodiscard]] std::size_t pending_count() const override {
    return pending_.size();
  }

 private:
  void feed_starving() {
    while (!pending_.empty() && !starving_.empty()) {
      WorkerId w = starving_.front();
      starving_.erase(starving_.begin());
      if (!engine().worker_alive(w)) continue;
      TaskId t = pending_.front();
      pending_.pop_front();
      engine().assign_task(t, w);
    }
  }

  std::deque<TaskId> pending_;
  std::vector<WorkerId> starving_;
};

}  // namespace wcs::sched
