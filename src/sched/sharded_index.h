// Sharded pending-task index: the structure behind the O(log B + n)
// ChooseTask(n) fast path (DESIGN.md §Performance architecture, layer 4).
//
// The paper's worker-centric loop scores EVERY pending task on each idle
// worker request. PR 1 made each score O(1) (incremental per-(site, task)
// overlap/ref-sum counters); the scan itself stayed O(|pending|). This
// index removes the scan: pending tasks are partitioned into buckets
// keyed by their site-local weight class —
//
//   overlap metric   key = |F_t|          (files already at the site)
//   rest metric      key = |t| - |F_t|    (files still missing)
//   combined metric  key = |t| - |F_t|,   rank = ref_t within the bucket
//   storage affinity key = byte overlap against the site cache
//
// — so a request walks buckets best-first and stops after the top n
// entries instead of touching every task. Buckets are a std::map (sparse
// key space: byte overlaps reach gigabytes) of std::set entries ordered
// (rank descending, then task id); every mutation is O(log B + log |b|).
//
// COHERENCE INVARIANT: the index holds exactly the schedulable task set,
// and each entry's (key, rank) equals what a brute-force recompute from
// the live cache would produce. Owners re-key entries from the same
// cache-change notifications that maintain the PR 1 counters; under
// --audit, check_sharded_index (audit/checkers.h) cross-validates the
// whole structure against a rescan on every sweep.
//
// EQUIVALENCE INVARIANT: within one bucket the scheduler's weight is
// monotone non-increasing along entry order for every metric (the rest
// term is constant inside a bucket, and ties in rank sort by the same id
// order the flat scan uses to break weight ties), so a best-first bucket
// walk reproduces the flat scan's top-n EXACTLY — identical task choices,
// identical RNG consumption, byte-identical run totals. The flat scan
// stays available as the reference implementation
// (SchedulerOptions::use_sharded_index = false, --flat-index on the CLI).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/ids.h"

namespace wcs::sched {

class ShardedTaskIndex {
 public:
  struct Entry {
    std::uint64_t rank = 0;
    TaskId task;
  };

  // Orders a bucket best-first: rank descending, ties by task id. The
  // worker-centric flat scan breaks weight ties toward the LOWEST id,
  // storage affinity's replica scan toward the HIGHEST; `prefer_high_id`
  // selects which convention this index reproduces.
  struct EntryOrder {
    bool prefer_high_id = false;
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.rank != b.rank) return a.rank > b.rank;
      return prefer_high_id ? a.task > b.task : a.task < b.task;
    }
  };

  // Tree nodes live in a per-index NodeArena (common/arena.h): the
  // steady insert/erase churn recycles node-sized blocks through the
  // arena's freelists instead of hitting the global heap, and reset()
  // rewinds the whole pool in O(1). Node placement cannot change
  // comparator-driven iteration order, so the walk stays byte-identical
  // to the unpooled index.
  using EntryAlloc = common::ArenaAlloc<Entry>;
  using Bucket = std::set<Entry, EntryOrder, EntryAlloc>;
  using BucketAlloc =
      common::ArenaAlloc<std::pair<const std::uint64_t, Bucket>>;
  using BucketMap =
      std::map<std::uint64_t, Bucket, std::less<std::uint64_t>, BucketAlloc>;

  explicit ShardedTaskIndex(bool prefer_high_id = false)
      : order_{prefer_high_id},
        arena_(std::make_unique<common::NodeArena>()),
        buckets_(BucketAlloc(arena_.get())) {}

  // Copies rebuild the buckets in a fresh arena (allocators must not be
  // shared across independently-destroyed indexes); moves transfer the
  // arena together with the nodes that live in it. Move assignment is
  // destroy-and-rebuild because the default member-wise order would free
  // our arena while buckets_ still holds nodes inside it.
  ShardedTaskIndex(const ShardedTaskIndex& other)
      : order_(other.order_),
        arena_(std::make_unique<common::NodeArena>()),
        buckets_(BucketAlloc(arena_.get())),
        slots_(other.slots_),
        size_(other.size_) {
    for (const auto& [key, bucket] : other.buckets_)
      buckets_.emplace(key, Bucket(bucket.begin(), bucket.end(), order_,
                                   EntryAlloc(arena_.get())));
  }
  ShardedTaskIndex& operator=(const ShardedTaskIndex& other) {
    if (this != &other) {
      ShardedTaskIndex tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }
  ShardedTaskIndex(ShardedTaskIndex&&) noexcept = default;
  ShardedTaskIndex& operator=(ShardedTaskIndex&& other) noexcept {
    if (this != &other) {
      this->~ShardedTaskIndex();
      new (this) ShardedTaskIndex(std::move(other));
    }
    return *this;
  }
  ~ShardedTaskIndex() = default;

  // Drops every entry and sizes the slot table for task ids [0, num_tasks).
  void reset(std::size_t num_tasks);

  // Adds `task` under `key` with `rank`. The task must not be present.
  void insert(TaskId task, std::uint64_t key, std::uint64_t rank = 0);

  // Removes `task`. The task must be present.
  void erase(TaskId task);

  // Re-keys `task` to (key, rank); O(1) when nothing changed. The task
  // must be present.
  void update(TaskId task, std::uint64_t key, std::uint64_t rank = 0);

  [[nodiscard]] bool contains(TaskId task) const {
    return task.value() < slots_.size() && slots_[task.value()].present;
  }
  // Key/rank a task is currently filed under. The task must be present.
  [[nodiscard]] std::uint64_t key_of(TaskId task) const;
  [[nodiscard]] std::uint64_t rank_of(TaskId task) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  // The bucket structure, for the schedulers' best-first walks (ascending
  // key order; iterate in reverse when a larger key is better). Empty
  // buckets are never kept in the map.
  [[nodiscard]] const BucketMap& buckets() const { return buckets_; }

  // Structural self-check for the auditor: every slot marked present has
  // a matching bucket entry, counts agree, no empty bucket survives,
  // and the node arena's accounting balances. Returns human-readable
  // defect descriptions (empty when coherent).
  [[nodiscard]] std::vector<std::string> structural_defects() const;

  // The node arena backing this index (bench/audit hook).
  [[nodiscard]] const common::NodeArena& arena() const { return *arena_; }

 private:
  struct Slot {
    bool present = false;
    std::uint64_t key = 0;
    std::uint64_t rank = 0;
  };

  EntryOrder order_;
  // Declared before buckets_ so the container (and its nodes) is
  // destroyed before the arena that owns their storage.
  std::unique_ptr<common::NodeArena> arena_;
  BucketMap buckets_;
  std::vector<Slot> slots_;  // by task id
  std::size_t size_ = 0;
};

}  // namespace wcs::sched
