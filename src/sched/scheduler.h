// Scheduler abstraction.
//
// The grid engine (grid::GridSimulation) drives a Scheduler through three
// hooks and gives it a narrow view of the system through GridEngine. The
// taxonomy follows the paper's Sec. 2.3:
//
//   - a WORKER-CENTRIC scheduler acts only inside on_worker_idle(): it
//     picks a task for that worker at the moment the worker can execute
//     it (short scheduling-to-execution latency, never unbalanced);
//   - a TASK-CENTRIC scheduler acts in on_job_submitted(): it pushes
//     tasks into worker queues ahead of time, and may use
//     on_worker_idle() for task replication and on_task_completed() for
//     replica cancellation.
//
// Schedulers may only observe per-site storage state (cache contents and
// past reference counts) and the static job description — exactly the
// information the paper's algorithms use. They deliberately get no view
// of CPU load or bandwidth (Sec. 2.4: such dynamic metrics are hard to
// obtain in a real grid).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "common/ids.h"
#include "common/units.h"
#include "grid/config.h"
#include "obs/profiler.h"
#include "storage/file_cache.h"
#include "workload/arrivals.h"
#include "workload/job.h"

namespace wcs::sched {

// Cross-cutting implementation toggles, threaded from SchedulerSpec
// (factory.h) into every scheduler's params struct. These change HOW a
// decision is computed, never WHICH task is chosen: every toggle keeps
// the scheduler's observable behaviour byte-identical.
struct SchedulerOptions {
  // Resolve ChooseTask(n) / replica selection from the sharded
  // pending-task index (sharded_index.h): O(log B + n) per request
  // instead of the flat O(|pending|) scan, with identical task choices.
  // Default on; the flat scan stays available as the reference
  // implementation (`--flat-index` in the scenario CLI) and the auditor
  // cross-validates the index against it under --audit.
  bool use_sharded_index = true;
};

// The engine surface a scheduler is allowed to touch.
class GridEngine {
 public:
  virtual ~GridEngine() = default;

  [[nodiscard]] virtual const workload::Job& job() const = 0;
  [[nodiscard]] virtual std::size_t num_sites() const = 0;
  [[nodiscard]] virtual std::size_t num_workers() const = 0;
  [[nodiscard]] virtual SiteId site_of(WorkerId worker) const = 0;
  [[nodiscard]] virtual const storage::FileCache& site_cache(
      SiteId site) const = 0;

  // Register interest in one site's cache mutations (at most one
  // listener per site — exactly one scheduler drives a run, and it owns
  // the slot). The worker-centric scheduler subscribes for its
  // incremental overlap/ref-sum counters, storage affinity for its
  // incremental byte-overlap index; both re-key their sharded
  // pending-task index from the same events. Notifications fire
  // synchronously inside the cache mutation, i.e. strictly before the
  // next scheduling decision (see grid/control_plane.cc for the event
  // ordering this guarantees).
  virtual void set_cache_listener(SiteId site,
                                  storage::CacheListener listener) = 0;

  // Deliver a task to a worker: appended to the worker's queue; an idle
  // worker starts it immediately (after the control-message latency).
  // Assigning the same task to several workers creates replicas; the
  // engine runs them independently and reports each completion once.
  // The worker must be alive.
  virtual void assign_task(TaskId task, WorkerId worker) = 0;

  // Liveness and backlog, for failure handling and replica placement
  // under churn. Without churn every worker is always alive.
  [[nodiscard]] virtual bool worker_alive(WorkerId worker) const = 0;
  [[nodiscard]] virtual std::size_t worker_backlog(
      WorkerId worker) const = 0;

  // --- Dynamic platform estimates --------------------------------------
  // Exposed ONLY for dynamic-information baselines (XSufferage/MCT). The
  // paper's own schedulers never touch these: its Sec. 2.4 point is that
  // such estimates are hard to obtain in a real grid and that
  // data-placement information alone schedules better. Defaults are the
  // documented fallback constants in grid/config.h.
  [[nodiscard]] virtual double estimated_uplink_bandwidth(SiteId site) const {
    (void)site;
    return grid::kFallbackUplinkBandwidthBps;
  }
  [[nodiscard]] virtual double estimated_site_mflops(SiteId site) const {
    (void)site;
    return grid::kFallbackSiteMflops;
  }
  [[nodiscard]] virtual std::size_t data_server_backlog(SiteId site) const {
    (void)site;
    return 0;
  }

  // Cancel a queued, fetching, or executing task instance on a worker.
  // No-op (returns false) if the worker no longer holds that task.
  virtual bool cancel_task(TaskId task, WorkerId worker) = 0;

  // Open-system arrival metadata, or nullptr for the closed batch
  // (every existing run). When non-null, only tasks with
  // arrivals()->arrival(t) <= 0 are pending at on_job_submitted();
  // the rest are delivered later through on_tasks_arrived().
  [[nodiscard]] virtual const workload::ArrivalSchedule* arrivals() const {
    return nullptr;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Called once before the simulation starts; the engine outlives the
  // scheduler.
  virtual void attach(GridEngine& engine) { engine_ = &engine; }

  // All tasks of engine().job() are known. With engine().arrivals() ==
  // nullptr (the closed batch) every task is pending; otherwise only
  // tasks already arrived at t=0 are, and the engine feeds the rest
  // through on_tasks_arrived() as simulated time advances.
  virtual void on_job_submitted() = 0;

  // Open-system runs only: `tasks` (ascending ids) just arrived and are
  // now pending. The scheduler should feed any starving workers. Only
  // called when supports_arrivals() — the engine validates the pairing
  // before the run starts.
  virtual void on_tasks_arrived(const std::vector<TaskId>& tasks) {
    (void)tasks;
    WCS_CHECK_MSG(false, "scheduler " << name()
                                      << " does not support arrivals");
  }

  // Whether this scheduler implements the open-system contract above.
  // Pull schedulers re-evaluate against the live state on every request
  // and support it naturally; task-centric push schedulers (storage
  // affinity, XSufferage) would make premature placements for tasks
  // that have not arrived, so they opt out.
  [[nodiscard]] virtual bool supports_arrivals() const { return false; }

  // Unassigned tasks currently in this scheduler's bag. Pull schedulers
  // override it (the WRR tenant layer reads it to decide which tenants
  // are eligible for the next idle worker); push schedulers, which hold
  // no bag after submission, keep the 0 default.
  [[nodiscard]] virtual std::size_t pending_count() const { return 0; }

  // `worker` is idle with an empty queue and asks for work. Fired once
  // per idle transition (workers do not re-poll; a scheduler that leaves
  // a worker unassigned keeps it idle until it assigns to it later, e.g.
  // never for the pull schedulers once the bag is empty).
  virtual void on_worker_idle(WorkerId worker) = 0;

  // `task` finished on `worker` (first finisher when replicated; the
  // engine has not yet cancelled sibling replicas — that is the
  // scheduler's decision).
  virtual void on_task_completed(TaskId task, WorkerId worker) = 0;

  // `worker` crashed; `lost` are the incomplete task instances it held
  // (queued, fetching, or computing) which the engine has already
  // withdrawn. The scheduler must eventually re-home any task whose last
  // instance was lost, or the job cannot finish (the engine flags this
  // at drain time). Default: no-op, safe only for churn-free runs.
  virtual void on_worker_failed(WorkerId worker,
                                const std::vector<TaskId>& lost) {
    (void)worker;
    (void)lost;
  }

  [[nodiscard]] virtual std::string name() const = 0;

  // Attach the wall-clock phase profiler (nullptr detaches). Decision
  // hooks bracket themselves with ScopedPhase(kSchedulerDecision);
  // profiling never influences a decision.
  void set_profiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  // Component self-audit, driven by the invariant auditor: append
  // violations of the scheduler's internal bookkeeping (e.g. incremental
  // indexes that drifted from the cache state). Must be read-only.
  // Default: a scheduler with no redundant state has nothing to audit.
  virtual void audit_collect(std::vector<audit::Violation>& out) const {
    (void)out;
  }

 protected:
  [[nodiscard]] GridEngine& engine() const {
    WCS_CHECK_MSG(engine_ != nullptr, "scheduler not attached");
    return *engine_;
  }

  obs::PhaseProfiler* profiler_ = nullptr;

 private:
  GridEngine* engine_ = nullptr;
};

}  // namespace wcs::sched
