#include "sched/xsufferage.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wcs::sched {

void XSufferageScheduler::on_job_submitted() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  const workload::Job& job = engine().job();
  const std::size_t num_tasks = job.num_tasks();
  const std::size_t num_sites = engine().num_sites();

  tasks_of_file_.assign(job.catalog.num_files(), {});
  task_bytes_.assign(num_tasks, 0);
  for (const workload::Task& t : job.tasks()) {
    for (FileId f : t.files) {
      tasks_of_file_[f.value()].push_back(t.id);
      task_bytes_[t.id.value()] +=
          static_cast<double>(job.catalog.size(f));
    }
  }
  double total_bytes = 0;
  for (double b : task_bytes_) total_bytes += b;
  avg_task_bytes_ = num_tasks ? total_bytes / static_cast<double>(num_tasks)
                              : 0.0;

  pending_.assign(num_tasks, 1);
  pending_list_.resize(num_tasks);
  pending_pos_.resize(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    pending_list_[i] = TaskId(static_cast<TaskId::underlying_type>(i));
    pending_pos_[i] = static_cast<std::uint32_t>(i);
  }

  cached_bytes_.assign(num_sites, std::vector<double>(num_tasks, 0));
  for (std::size_t s = 0; s < num_sites; ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    for (FileId f : engine().site_cache(site).contents()) {
      double bytes = static_cast<double>(job.catalog.size(f));
      for (TaskId t : tasks_of_file_[f.value()])
        cached_bytes_[s][t.value()] += bytes;
    }
    engine().set_cache_listener(
        site, [this, site](storage::CacheEvent e, FileId f) {
          on_cache_event(site, e, f);
        });
  }
}

void XSufferageScheduler::on_cache_event(SiteId site,
                                         storage::CacheEvent event,
                                         FileId file) {
  if (event == storage::CacheEvent::kAccessed) return;  // bytes unchanged
  double bytes =
      static_cast<double>(engine().job().catalog.size(file));
  double delta = event == storage::CacheEvent::kAdded ? bytes : -bytes;
  auto& per_task = cached_bytes_[site.value()];
  for (TaskId t : tasks_of_file_[file.value()])
    per_task[t.value()] += delta;
}

double XSufferageScheduler::estimated_completion(TaskId task,
                                                 SiteId site) const {
  const std::size_t s = site.value();
  double bw = engine().estimated_uplink_bandwidth(site);
  double mflops = engine().estimated_site_mflops(site);
  double queue_wait =
      static_cast<double>(engine().data_server_backlog(site)) *
      avg_task_bytes_ / bw;
  double missing =
      std::max(0.0, task_bytes_[task.value()] - cached_bytes_[s][task.value()]);
  return queue_wait + missing / bw +
         engine().job().task(task).mflop / mflops;
}

void XSufferageScheduler::on_worker_idle(WorkerId worker) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                  starving_.end());
  if (pending_list_.empty()) {
    starving_.push_back(worker);
    return;
  }
  const SiteId my_site = engine().site_of(worker);
  const std::size_t num_sites = engine().num_sites();

  TaskId best_sufferage_task = TaskId::invalid();
  double best_sufferage = -1;
  TaskId best_local_task = TaskId::invalid();
  double best_local_ect = std::numeric_limits<double>::infinity();

  for (TaskId t : pending_list_) {
    double ect1 = std::numeric_limits<double>::infinity();
    double ect2 = std::numeric_limits<double>::infinity();
    SiteId arg1 = SiteId::invalid();
    double local_ect = 0;
    for (std::size_t s = 0; s < num_sites; ++s) {
      SiteId site(static_cast<SiteId::underlying_type>(s));
      double ect = estimated_completion(t, site);
      if (site == my_site) local_ect = ect;
      if (ect < ect1) {
        ect2 = ect1;
        ect1 = ect;
        arg1 = site;
      } else if (ect < ect2) {
        ect2 = ect;
      }
    }
    if (local_ect < best_local_ect ||
        (local_ect == best_local_ect && t < best_local_task)) {
      best_local_ect = local_ect;
      best_local_task = t;
    }
    if (arg1 != my_site) continue;
    double sufferage = (num_sites > 1 && std::isfinite(ect2))
                           ? ect2 - ect1
                           : 0.0;
    if (sufferage > best_sufferage ||
        (sufferage == best_sufferage && t < best_sufferage_task)) {
      best_sufferage = sufferage;
      best_sufferage_task = t;
    }
  }

  TaskId chosen = best_sufferage_task.valid() ? best_sufferage_task
                                              : best_local_task;
  WCS_CHECK(chosen.valid());
  remove_pending(chosen);
  engine().assign_task(chosen, worker);
}

void XSufferageScheduler::remove_pending(TaskId task) {
  WCS_CHECK(pending_[task.value()]);
  pending_[task.value()] = 0;
  std::uint32_t pos = pending_pos_[task.value()];
  TaskId last = pending_list_.back();
  pending_list_[pos] = last;
  pending_pos_[last.value()] = pos;
  pending_list_.pop_back();
  for (FileId f : engine().job().task(task).files) {
    auto& vec = tasks_of_file_[f.value()];
    auto it = std::find(vec.begin(), vec.end(), task);
    WCS_DCHECK(it != vec.end());
    *it = vec.back();
    vec.pop_back();
  }
}

void XSufferageScheduler::on_task_completed(TaskId, WorkerId) {}

void XSufferageScheduler::on_worker_failed(WorkerId worker,
                                           const std::vector<TaskId>& lost) {
  starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                  starving_.end());
  const workload::Job& job = engine().job();
  for (TaskId t : lost) {
    // Re-home: rebuild cached-bytes counters and rejoin the pending pool.
    for (std::size_t s = 0; s < cached_bytes_.size(); ++s) {
      SiteId site(static_cast<SiteId::underlying_type>(s));
      const storage::FileCache& cache = engine().site_cache(site);
      double bytes = 0;
      for (FileId f : job.task(t).files)
        if (cache.contains(f))
          bytes += static_cast<double>(job.catalog.size(f));
      cached_bytes_[s][t.value()] = bytes;
    }
    for (FileId f : job.task(t).files)
      tasks_of_file_[f.value()].push_back(t);
    pending_[t.value()] = 1;
    pending_pos_[t.value()] =
        static_cast<std::uint32_t>(pending_list_.size());
    pending_list_.push_back(t);
  }
  while (!pending_list_.empty() && !starving_.empty()) {
    WorkerId w = starving_.front();
    starving_.erase(starving_.begin());
    if (!engine().worker_alive(w)) continue;
    on_worker_idle(w);
  }
}

}  // namespace wcs::sched
