#include "sched/worker_centric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "audit/checkers.h"

namespace wcs::sched {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kOverlap: return "overlap";
    case Metric::kRest: return "rest";
    case Metric::kCombined: return "combined";
  }
  return "?";
}

WorkerCentricScheduler::WorkerCentricScheduler(
    const WorkerCentricParams& params)
    : params_(params), rng_(params.seed) {
  WCS_CHECK_MSG(params.choose_n >= 1, "ChooseTask(n) needs n >= 1");
}

std::string WorkerCentricScheduler::name() const {
  std::string n = to_string(params_.metric);
  if (params_.metric == Metric::kCombined &&
      params_.combined_formula == CombinedFormula::kVerbatim)
    n += "~verbatim";
  if (params_.choose_n >= 2) {
    // Built as two appends: GCC 12's -Wrestrict false-positives on
    // `const char* + std::string&&` under -O2 (PR105651).
    n += '.';
    n += std::to_string(params_.choose_n);
  }
  if (params_.replicate_when_idle) n += "+repl";
  return n;
}

void WorkerCentricScheduler::on_job_submitted() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  build_index();
}

void WorkerCentricScheduler::build_index() {
  const workload::Job& job = engine().job();
  const std::size_t num_tasks = job.num_tasks();
  const std::size_t num_files = job.catalog.num_files();

  tasks_of_file_.assign(num_files, {});
  task_size_.assign(num_tasks, 0);
  std::uint32_t max_task_size = 0;
  for (const workload::Task& t : job.tasks) {
    for (FileId f : t.files) tasks_of_file_[f.value()].push_back(t.id);
    task_size_[t.id.value()] = static_cast<std::uint32_t>(t.files.size());
    max_task_size = std::max(max_task_size, task_size_[t.id.value()]);
  }

  pending_.assign(num_tasks, 1);
  pending_list_.resize(num_tasks);
  pending_pos_.resize(num_tasks);
  placements_.assign(num_tasks, {});
  completed_.assign(num_tasks, 0);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    pending_list_[i] = TaskId(static_cast<TaskId::underlying_type>(i));
    pending_pos_[i] = static_cast<std::uint32_t>(i);
  }

  // Seed the per-site overlap/ref-sum counters from whatever the caches
  // already hold (usually nothing; tests may pre-warm), then subscribe to
  // incremental updates.
  sites_.assign(engine().num_sites(), SiteIndex{});
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    SiteIndex& idx = sites_[s];
    idx.overlap.assign(num_tasks, 0);
    idx.ref_sum.assign(num_tasks, 0);
    const storage::FileCache& cache = engine().site_cache(site);
    for (FileId f : cache.contents()) {
      auto refs = static_cast<std::uint64_t>(cache.ref_count(f));
      for (TaskId t : tasks_of_file_[f.value()]) {
        ++idx.overlap[t.value()];
        idx.ref_sum[t.value()] += refs;
      }
    }
    // Seed the incremental aggregates (every task is pending at submit).
    idx.total_ref = 0;
    idx.missing_hist.assign(max_task_size + 1, 0);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      idx.total_ref += idx.ref_sum[t];
      ++idx.missing_hist[task_size_[t] - idx.overlap[t]];
    }
    engine().set_cache_listener(
        site, [this, site](storage::CacheEvent e, FileId f) {
          on_cache_event(site, e, f);
        });
  }
}

void WorkerCentricScheduler::on_cache_event(SiteId site,
                                            storage::CacheEvent event,
                                            FileId file) {
  SiteIndex& idx = sites_[site.value()];
  // The listener fires after the cache mutated, so ref_count(file) is the
  // post-event value: on kAdded the pre-existing count, on kEvicted the
  // count accumulated while resident (insert/evict do not change counts).
  // The inverted index only holds PENDING tasks (trimmed in
  // remove_pending, restored in re_add_pending), so every task touched
  // here also updates the site's incremental totals.
  switch (event) {
    case storage::CacheEvent::kAdded: {
      auto refs = static_cast<std::uint64_t>(
          engine().site_cache(site).ref_count(file));
      for (TaskId t : tasks_of_file_[file.value()]) {
        const std::uint32_t missing = missing_of(idx, t);
        WCS_DCHECK(missing > 0);  // the file was not resident before
        --idx.missing_hist[missing];
        ++idx.missing_hist[missing - 1];
        ++idx.overlap[t.value()];
        idx.ref_sum[t.value()] += refs;
        idx.total_ref += refs;
      }
      break;
    }
    case storage::CacheEvent::kEvicted: {
      auto refs = static_cast<std::uint64_t>(
          engine().site_cache(site).ref_count(file));
      for (TaskId t : tasks_of_file_[file.value()]) {
        WCS_DCHECK(idx.overlap[t.value()] > 0);
        const std::uint32_t missing = missing_of(idx, t);
        --idx.missing_hist[missing];
        ++idx.missing_hist[missing + 1];
        --idx.overlap[t.value()];
        idx.ref_sum[t.value()] -= refs;
        idx.total_ref -= refs;
      }
      break;
    }
    case storage::CacheEvent::kAccessed:
      // r_i was incremented by exactly one while the file is resident.
      for (TaskId t : tasks_of_file_[file.value()]) {
        idx.ref_sum[t.value()] += 1;
        idx.total_ref += 1;
      }
      break;
  }
}

double WorkerCentricScheduler::rest_of(const SiteIndex& idx,
                                       TaskId task) const {
  WCS_DCHECK_LE(idx.overlap[task.value()], task_size_[task.value()]);
  const std::uint32_t missing = missing_of(idx, task);
  return missing == 0 ? kFullOverlapRestWeight
                      : 1.0 / static_cast<double>(missing);
}

std::pair<double, double> WorkerCentricScheduler::scan_totals(
    const SiteIndex& idx) const {
  double total_ref = 0;
  double total_rest = 0;
  for (TaskId t : pending_list_) {
    total_ref += static_cast<double>(idx.ref_sum[t.value()]);
    total_rest += rest_of(idx, t);
  }
  return {total_ref, total_rest};
}

std::pair<double, double> WorkerCentricScheduler::totals(
    const SiteIndex& idx) const {
  // totalRest from the missing-count histogram: every pending task with m
  // files missing contributes rest_t = 1/m (kFullOverlapRestWeight at
  // m = 0). The histogram is as long as the largest task's file list —
  // a workload constant (~100 for Coadd) independent of |pending|.
  double total_rest = 0;
  if (!idx.missing_hist.empty() && idx.missing_hist[0] > 0)
    total_rest += idx.missing_hist[0] * kFullOverlapRestWeight;
  for (std::size_t m = 1; m < idx.missing_hist.size(); ++m)
    if (idx.missing_hist[m] > 0)
      total_rest += static_cast<double>(idx.missing_hist[m]) /
                    static_cast<double>(m);
#ifndef NDEBUG
  // Cross-validate against the pre-optimization O(|pending|) scan.
  const auto [scan_ref, scan_rest] = scan_totals(idx);
  WCS_DCHECK_EQ(scan_ref, static_cast<double>(idx.total_ref));
  WCS_DCHECK(std::abs(scan_rest - total_rest) <=
             1e-9 * std::max(1.0, std::abs(scan_rest)));
#endif
  return {static_cast<double>(idx.total_ref), total_rest};
}

std::pair<double, double> WorkerCentricScheduler::totals_of(
    SiteId site) const {
  return totals(sites_.at(site.value()));
}

double WorkerCentricScheduler::weight_of(const SiteIndex& idx, TaskId task,
                                         double total_ref,
                                         double total_rest) const {
  switch (params_.metric) {
    case Metric::kOverlap:
      return static_cast<double>(idx.overlap[task.value()]);
    case Metric::kRest:
      return rest_of(idx, task);
    case Metric::kCombined: {
      double ref_term =
          total_ref > 0
              ? static_cast<double>(idx.ref_sum[task.value()]) / total_ref
              : 0.0;
      double rest = rest_of(idx, task);
      if (params_.combined_formula == CombinedFormula::kProse)
        return ref_term + (total_rest > 0 ? rest / total_rest : 0.0);
      return ref_term + total_rest / rest;  // verbatim paper formula
    }
  }
  WCS_CHECK(false);
  return 0;
}

double WorkerCentricScheduler::weight(SiteId site, TaskId task) const {
  WCS_CHECK_MSG(is_pending(task), "weight() of non-pending task " << task);
  const SiteIndex& idx = sites_.at(site.value());
  auto [total_ref, total_rest] = totals(idx);
  return weight_of(idx, task, total_ref, total_rest);
}

double WorkerCentricScheduler::naive_weight(SiteId site, TaskId task) const {
  WCS_CHECK_MSG(is_pending(task), "naive_weight() of non-pending task");
  const workload::Job& job = engine().job();
  const storage::FileCache& cache = engine().site_cache(site);

  auto overlap_and_refs = [&](TaskId t) {
    std::size_t overlap = 0;
    std::uint64_t refs = 0;
    for (FileId f : job.task(t).files) {
      if (cache.contains(f)) {
        ++overlap;
        refs += cache.ref_count(f);
      }
    }
    return std::pair{overlap, refs};
  };
  auto rest_naive = [&](TaskId t) {
    auto [overlap, refs] = overlap_and_refs(t);
    (void)refs;
    std::size_t missing = job.task(t).files.size() - overlap;
    return missing == 0 ? kFullOverlapRestWeight
                        : 1.0 / static_cast<double>(missing);
  };

  switch (params_.metric) {
    case Metric::kOverlap:
      return static_cast<double>(overlap_and_refs(task).first);
    case Metric::kRest:
      return rest_naive(task);
    case Metric::kCombined: {
      double total_ref = 0;
      double total_rest = 0;
      for (TaskId t : pending_list_) {
        total_ref += static_cast<double>(overlap_and_refs(t).second);
        total_rest += rest_naive(t);
      }
      double ref_term =
          total_ref > 0
              ? static_cast<double>(overlap_and_refs(task).second) / total_ref
              : 0.0;
      double rest = rest_naive(task);
      if (params_.combined_formula == CombinedFormula::kProse)
        return ref_term + (total_rest > 0 ? rest / total_rest : 0.0);
      return ref_term + total_rest / rest;
    }
  }
  WCS_CHECK(false);
  return 0;
}

std::size_t WorkerCentricScheduler::overlap_cardinality(SiteId site,
                                                        TaskId task) const {
  return sites_.at(site.value()).overlap.at(task.value());
}

TaskId WorkerCentricScheduler::choose_task(SiteId site) {
  WCS_CHECK(!pending_list_.empty());
  const SiteIndex& idx = sites_[site.value()];

  double total_ref = 0;
  double total_rest = 0;
  if (params_.metric == Metric::kCombined)
    std::tie(total_ref, total_rest) = totals(idx);

  // Top-n selection by (weight desc, task id asc); n is tiny (1 or 2 in
  // the paper), so a small insertion buffer beats sorting T entries.
  const std::size_t n =
      std::min<std::size_t>(static_cast<std::size_t>(params_.choose_n),
                            pending_list_.size());
  struct Candidate {
    double weight;
    TaskId task;
  };
  std::vector<Candidate> best;
  best.reserve(n + 1);
  auto better = [](const Candidate& a, const Candidate& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.task < b.task;
  };
  for (TaskId t : pending_list_) {
    Candidate c{weight_of(idx, t, total_ref, total_rest), t};
    if (best.size() == n && !better(c, best.back())) continue;
    auto pos = std::upper_bound(best.begin(), best.end(), c, better);
    best.insert(pos, c);
    if (best.size() > n) best.pop_back();
  }

  if (best.size() == 1) return best[0].task;

  // Sample among the best-n proportionally to weight (uniform when all
  // weights are zero — see Rng::weighted_index).
  std::vector<double> weights;
  weights.reserve(best.size());
  for (const Candidate& c : best) weights.push_back(c.weight);
  return best[rng_.weighted_index(weights)].task;
}

void WorkerCentricScheduler::remove_pending(TaskId task) {
  WCS_CHECK(is_pending(task));
  pending_[task.value()] = 0;
  std::uint32_t pos = pending_pos_[task.value()];
  TaskId last = pending_list_.back();
  pending_list_[pos] = last;
  pending_pos_[last.value()] = pos;
  pending_list_.pop_back();
  // The task leaves every site's pending aggregates.
  for (SiteIndex& idx : sites_) {
    idx.total_ref -= idx.ref_sum[task.value()];
    WCS_DCHECK(idx.missing_hist[missing_of(idx, task)] > 0);
    --idx.missing_hist[missing_of(idx, task)];
  }
  // Trim the inverted index so cache events stop touching this task.
  for (FileId f : engine().job().task(task).files) {
    auto& vec = tasks_of_file_[f.value()];
    auto it = std::find(vec.begin(), vec.end(), task);
    WCS_DCHECK(it != vec.end());
    *it = vec.back();
    vec.pop_back();
  }
}

void WorkerCentricScheduler::forget_starving(WorkerId worker) {
  std::erase(starving_, worker);
}

void WorkerCentricScheduler::on_worker_idle(WorkerId worker) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  forget_starving(worker);
  if (pending_list_.empty()) {
    // Bag is empty; optionally shave the tail by replicating. A worker
    // left without work is remembered: a crash elsewhere may refill the
    // bag, and feed_starving() then serves it.
    if (params_.replicate_when_idle && replicate_for(worker)) return;
    starving_.push_back(worker);
    return;
  }
  TaskId task = choose_task(engine().site_of(worker));
  remove_pending(task);
  placements_[task.value()].push_back(worker);
  engine().assign_task(task, worker);
}

bool WorkerCentricScheduler::replicate_for(WorkerId worker) {
  const workload::Job& job = engine().job();
  const storage::FileCache& cache =
      engine().site_cache(engine().site_of(worker));

  TaskId best = TaskId::invalid();
  std::size_t best_missing = SIZE_MAX;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i]) continue;
    const auto& instances = placements_[i];
    if (instances.empty()) continue;  // never started (cannot happen late)
    if (instances.size() >= static_cast<std::size_t>(params_.max_replicas))
      continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    if (std::find(instances.begin(), instances.end(), worker) !=
        instances.end())
      continue;
    std::size_t missing = 0;
    for (FileId f : job.task(t).files)
      if (!cache.contains(f)) ++missing;
    // Fewest missing files (the rest metric's criterion applied to
    // replicas); ties to the highest id (assigned latest, most likely to
    // still be far from finishing).
    if (missing < best_missing ||
        (missing == best_missing && best.valid() && t > best)) {
      best_missing = missing;
      best = t;
    }
  }
  if (!best.valid()) return false;
  placements_[best.value()].push_back(worker);
  engine().assign_task(best, worker);
  return true;
}

void WorkerCentricScheduler::on_task_completed(TaskId task, WorkerId worker) {
  completed_[task.value()] = 1;
  auto& instances = placements_[task.value()];
  for (WorkerId w : instances) {
    if (w == worker) continue;
    engine().cancel_task(task, w);
  }
  instances.clear();
}

void WorkerCentricScheduler::re_add_pending(TaskId task) {
  WCS_CHECK(!is_pending(task));
  WCS_CHECK(!completed_[task.value()]);
  const workload::Job& job = engine().job();

  // Rebuild the per-site counters against the LIVE cache state (they went
  // stale the moment the task left the inverted index).
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    const storage::FileCache& cache = engine().site_cache(site);
    std::uint32_t overlap = 0;
    std::uint64_t refs = 0;
    for (FileId f : job.task(task).files) {
      if (cache.contains(f)) {
        ++overlap;
        refs += cache.ref_count(f);
      }
    }
    SiteIndex& idx = sites_[s];
    idx.overlap[task.value()] = overlap;
    idx.ref_sum[task.value()] = refs;
    // The task re-enters the site's pending aggregates.
    idx.total_ref += refs;
    ++idx.missing_hist[missing_of(idx, task)];
  }
  for (FileId f : job.task(task).files)
    tasks_of_file_[f.value()].push_back(task);

  pending_[task.value()] = 1;
  pending_pos_[task.value()] =
      static_cast<std::uint32_t>(pending_list_.size());
  pending_list_.push_back(task);
}

void WorkerCentricScheduler::feed_starving() {
  while (!pending_list_.empty() && !starving_.empty()) {
    WorkerId worker = starving_.front();
    starving_.pop_front();
    if (!engine().worker_alive(worker)) continue;
    TaskId task = choose_task(engine().site_of(worker));
    remove_pending(task);
    placements_[task.value()].push_back(worker);
    engine().assign_task(task, worker);
  }
}

void WorkerCentricScheduler::audit_collect(
    std::vector<audit::Violation>& out) const {
  const workload::Job& job = engine().job();
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const SiteId site(static_cast<SiteId::underlying_type>(s));
    const SiteIndex& idx = sites_[s];

    // Incremental aggregates vs the full scan over pending tasks. Compute
    // the histogram-derived totals inline (totals() would re-run its own
    // debug cross-check).
    double hist_rest = 0;
    if (!idx.missing_hist.empty() && idx.missing_hist[0] > 0)
      hist_rest += idx.missing_hist[0] * kFullOverlapRestWeight;
    for (std::size_t m = 1; m < idx.missing_hist.size(); ++m)
      if (idx.missing_hist[m] > 0)
        hist_rest += static_cast<double>(idx.missing_hist[m]) /
                     static_cast<double>(m);
    const auto [scan_ref, scan_rest] = scan_totals(idx);

    audit::IndexTotalsSnapshot totals_snap;
    totals_snap.label = "site " + std::to_string(s);
    totals_snap.incremental_ref = static_cast<double>(idx.total_ref);
    totals_snap.incremental_rest = hist_rest;
    totals_snap.scanned_ref = scan_ref;
    totals_snap.scanned_rest = scan_rest;
    audit::check_index_coherence(totals_snap, out);

    // Per-task overlap/ref-sum counters vs a full recompute from the live
    // cache. O(files resident * tasks per file), the cost build_index()
    // pays once — affordable at audit-sweep frequency.
    const storage::FileCache& cache = engine().site_cache(site);
    std::vector<std::uint32_t> overlap(task_size_.size(), 0);
    std::vector<std::uint64_t> ref_sum(task_size_.size(), 0);
    for (FileId f : cache.contents()) {
      const auto refs = static_cast<std::uint64_t>(cache.ref_count(f));
      for (TaskId t : tasks_of_file_[f.value()]) {
        ++overlap[t.value()];
        ref_sum[t.value()] += refs;
      }
    }
    for (TaskId t : pending_list_) {
      if (idx.overlap[t.value()] == overlap[t.value()] &&
          idx.ref_sum[t.value()] == ref_sum[t.value()])
        continue;
      std::ostringstream os;
      os << "site " << s << " task " << t << " index drifted: incremental"
         << " overlap " << idx.overlap[t.value()] << " / refSum "
         << idx.ref_sum[t.value()] << " vs recomputed "
         << overlap[t.value()] << " / " << ref_sum[t.value()]
         << " (task has " << job.task(t).files.size() << " files)";
      out.push_back(audit::Violation{"index-coherence", os.str()});
    }
  }
}

void WorkerCentricScheduler::on_worker_failed(
    WorkerId worker, const std::vector<TaskId>& lost) {
  forget_starving(worker);
  for (TaskId t : lost) {
    auto& instances = placements_[t.value()];
    instances.erase(std::remove(instances.begin(), instances.end(), worker),
                    instances.end());
    if (instances.empty() && !completed_[t.value()]) re_add_pending(t);
  }
  feed_starving();
}

}  // namespace wcs::sched
