#include "sched/worker_centric.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "audit/checkers.h"

namespace wcs::sched {

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kOverlap: return "overlap";
    case Metric::kRest: return "rest";
    case Metric::kCombined: return "combined";
  }
  return "?";
}

WorkerCentricScheduler::WorkerCentricScheduler(
    const WorkerCentricParams& params)
    : params_(params), rng_(params.seed) {
  WCS_CHECK_MSG(params.choose_n >= 1, "ChooseTask(n) needs n >= 1");
}

std::string WorkerCentricScheduler::name() const {
  std::string n = to_string(params_.metric);
  if (params_.metric == Metric::kCombined &&
      params_.combined_formula == CombinedFormula::kVerbatim)
    n += "~verbatim";
  if (params_.choose_n >= 2) {
    // Built as two appends: GCC 12's -Wrestrict false-positives on
    // `const char* + std::string&&` under -O2 (PR105651).
    n += '.';
    n += std::to_string(params_.choose_n);
  }
  if (params_.replicate_when_idle) n += "+repl";
  return n;
}

void WorkerCentricScheduler::on_job_submitted() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  build_index();
}

void WorkerCentricScheduler::build_index() {
  const workload::Job& job = engine().job();
  const std::size_t num_tasks = job.num_tasks();
  const std::size_t num_files = job.catalog.num_files();

  // CSR build: count row widths, finalize, fill in task order — each
  // row ends up in the same order the old per-file push_back produced.
  tasks_of_file_.reset(num_files);
  task_size_.assign(num_tasks, 0);
  std::uint32_t max_task_size = 0;
  for (const workload::Task& t : job.tasks()) {
    for (FileId f : t.files) tasks_of_file_.count(f.value());
    task_size_[t.id.value()] = static_cast<std::uint32_t>(t.files.size());
    max_task_size = std::max(max_task_size, task_size_[t.id.value()]);
  }
  tasks_of_file_.finalize();

  // Open-system runs: only tasks already arrived at t=0 start pending.
  // The CSR rows above were COUNTED over all tasks, so a later arrival
  // re-enters its rows through re_add_pending without overflowing them.
  // Closed runs (arrivals == nullptr) take the every-task path verbatim.
  const workload::ArrivalSchedule* arrivals = engine().arrivals();
  auto initially_pending = [arrivals](TaskId t) {
    return arrivals == nullptr || arrivals->arrival(t) <= 0;
  };
  for (const workload::Task& t : job.tasks())
    if (initially_pending(t.id))
      for (FileId f : t.files) tasks_of_file_.push(f.value(), t.id);

  pending_.assign(num_tasks, 0);
  pending_list_.clear();
  pending_list_.reserve(num_tasks);
  pending_pos_.resize(num_tasks);
  placements_.assign(num_tasks, {});
  completed_.assign(num_tasks, 0);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    TaskId id(static_cast<TaskId::underlying_type>(i));
    if (!initially_pending(id)) continue;
    pending_[i] = 1;
    pending_pos_[i] = static_cast<std::uint32_t>(pending_list_.size());
    pending_list_.push_back(id);
  }

  // Seed the per-site overlap/ref-sum counters from whatever the caches
  // already hold (usually nothing; tests may pre-warm), then subscribe to
  // incremental updates.
  sites_.assign(engine().num_sites(), SiteIndex{});
  shards_.assign(sharded() ? engine().num_sites() : 0, ShardedTaskIndex{});
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    SiteIndex& idx = sites_[s];
    idx.overlap.assign(num_tasks, 0);
    idx.ref_sum.assign(num_tasks, 0);
    const storage::FileCache& cache = engine().site_cache(site);
    for (FileId f : cache.contents()) {
      auto refs = static_cast<std::uint64_t>(cache.ref_count(f));
      for (TaskId t : tasks_of_file_.row(f.value())) {
        ++idx.overlap[t.value()];
        idx.ref_sum[t.value()] += refs;
      }
    }
    // Seed the incremental aggregates over the initially-pending bag
    // (every task, in a closed run).
    idx.total_ref = 0;
    idx.missing_hist.assign(max_task_size + 1, 0);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      if (!pending_[t]) continue;
      idx.total_ref += idx.ref_sum[t];
      ++idx.missing_hist[task_size_[t] - idx.overlap[t]];
    }
    if (sharded()) {
      ShardedTaskIndex& shard = shards_[s];
      shard.reset(num_tasks);
      for (std::size_t t = 0; t < num_tasks; ++t) {
        if (!pending_[t]) continue;
        TaskId id(static_cast<TaskId::underlying_type>(t));
        shard.insert(id, shard_key(idx, id), shard_rank(idx, id));
      }
    }
    engine().set_cache_listener(
        site, [this, site](storage::CacheEvent e, FileId f) {
          on_cache_event(site, e, f);
        });
  }
}

void WorkerCentricScheduler::on_cache_event(SiteId site,
                                            storage::CacheEvent event,
                                            FileId file) {
  SiteIndex& idx = sites_[site.value()];
  // The listener fires after the cache mutated, so ref_count(file) is the
  // post-event value: on kAdded the pre-existing count, on kEvicted the
  // count accumulated while resident (insert/evict do not change counts).
  // The inverted index only holds PENDING tasks (trimmed in
  // remove_pending, restored in re_add_pending), so every task touched
  // here also updates the site's incremental totals — and is re-keyed in
  // the site's shard, which indexes exactly the pending bag.
  ShardedTaskIndex* shard = sharded() ? &shards_[site.value()] : nullptr;
  switch (event) {
    case storage::CacheEvent::kAdded: {
      auto refs = static_cast<std::uint64_t>(
          engine().site_cache(site).ref_count(file));
      for (TaskId t : tasks_of_file_.row(file.value())) {
        const std::uint32_t missing = missing_of(idx, t);
        WCS_DCHECK(missing > 0);  // the file was not resident before
        --idx.missing_hist[missing];
        ++idx.missing_hist[missing - 1];
        ++idx.overlap[t.value()];
        idx.ref_sum[t.value()] += refs;
        idx.total_ref += refs;
        if (shard) shard->update(t, shard_key(idx, t), shard_rank(idx, t));
      }
      break;
    }
    case storage::CacheEvent::kEvicted: {
      auto refs = static_cast<std::uint64_t>(
          engine().site_cache(site).ref_count(file));
      for (TaskId t : tasks_of_file_.row(file.value())) {
        WCS_DCHECK(idx.overlap[t.value()] > 0);
        const std::uint32_t missing = missing_of(idx, t);
        --idx.missing_hist[missing];
        ++idx.missing_hist[missing + 1];
        --idx.overlap[t.value()];
        idx.ref_sum[t.value()] -= refs;
        idx.total_ref -= refs;
        if (shard) shard->update(t, shard_key(idx, t), shard_rank(idx, t));
      }
      break;
    }
    case storage::CacheEvent::kAccessed:
      // r_i was incremented by exactly one while the file is resident.
      // Bucket keys do not depend on reference counts, so only the
      // combined metric (ranked by ref_t) needs a shard re-key.
      for (TaskId t : tasks_of_file_.row(file.value())) {
        idx.ref_sum[t.value()] += 1;
        idx.total_ref += 1;
        if (shard && params_.metric == Metric::kCombined)
          shard->update(t, shard_key(idx, t), idx.ref_sum[t.value()]);
      }
      break;
  }
}

double WorkerCentricScheduler::rest_of(const SiteIndex& idx,
                                       TaskId task) const {
  WCS_DCHECK_LE(idx.overlap[task.value()], task_size_[task.value()]);
  const std::uint32_t missing = missing_of(idx, task);
  return missing == 0 ? kFullOverlapRestWeight
                      : 1.0 / static_cast<double>(missing);
}

std::pair<double, double> WorkerCentricScheduler::scan_totals(
    const SiteIndex& idx) const {
  double total_ref = 0;
  double total_rest = 0;
  for (TaskId t : pending_list_) {
    total_ref += static_cast<double>(idx.ref_sum[t.value()]);
    total_rest += rest_of(idx, t);
  }
  return {total_ref, total_rest};
}

std::pair<double, double> WorkerCentricScheduler::totals(
    const SiteIndex& idx) const {
  // totalRest from the missing-count histogram: every pending task with m
  // files missing contributes rest_t = 1/m (kFullOverlapRestWeight at
  // m = 0). The histogram is as long as the largest task's file list —
  // a workload constant (~100 for Coadd) independent of |pending|.
  double total_rest = 0;
  if (!idx.missing_hist.empty() && idx.missing_hist[0] > 0)
    total_rest += idx.missing_hist[0] * kFullOverlapRestWeight;
  for (std::size_t m = 1; m < idx.missing_hist.size(); ++m)
    if (idx.missing_hist[m] > 0)
      total_rest += static_cast<double>(idx.missing_hist[m]) /
                    static_cast<double>(m);
#ifndef NDEBUG
  // Cross-validate against the pre-optimization O(|pending|) scan.
  const auto [scan_ref, scan_rest] = scan_totals(idx);
  WCS_DCHECK_EQ(scan_ref, static_cast<double>(idx.total_ref));
  WCS_DCHECK(std::abs(scan_rest - total_rest) <=
             1e-9 * std::max(1.0, std::abs(scan_rest)));
#endif
  return {static_cast<double>(idx.total_ref), total_rest};
}

std::pair<double, double> WorkerCentricScheduler::totals_of(
    SiteId site) const {
  return totals(sites_.at(site.value()));
}

double WorkerCentricScheduler::weight_of(const SiteIndex& idx, TaskId task,
                                         double total_ref,
                                         double total_rest) const {
  switch (params_.metric) {
    case Metric::kOverlap:
      return static_cast<double>(idx.overlap[task.value()]);
    case Metric::kRest:
      return rest_of(idx, task);
    case Metric::kCombined: {
      double ref_term =
          total_ref > 0
              ? static_cast<double>(idx.ref_sum[task.value()]) / total_ref
              : 0.0;
      double rest = rest_of(idx, task);
      if (params_.combined_formula == CombinedFormula::kProse)
        return ref_term + (total_rest > 0 ? rest / total_rest : 0.0);
      return ref_term + total_rest / rest;  // verbatim paper formula
    }
  }
  WCS_CHECK(false);
  return 0;
}

double WorkerCentricScheduler::weight(SiteId site, TaskId task) const {
  WCS_CHECK_MSG(is_pending(task), "weight() of non-pending task " << task);
  const SiteIndex& idx = sites_.at(site.value());
  auto [total_ref, total_rest] = totals(idx);
  return weight_of(idx, task, total_ref, total_rest);
}

double WorkerCentricScheduler::naive_weight(SiteId site, TaskId task) const {
  WCS_CHECK_MSG(is_pending(task), "naive_weight() of non-pending task");
  const workload::Job& job = engine().job();
  const storage::FileCache& cache = engine().site_cache(site);

  auto overlap_and_refs = [&](TaskId t) {
    std::size_t overlap = 0;
    std::uint64_t refs = 0;
    for (FileId f : job.task(t).files) {
      if (cache.contains(f)) {
        ++overlap;
        refs += cache.ref_count(f);
      }
    }
    return std::pair{overlap, refs};
  };
  auto rest_naive = [&](TaskId t) {
    auto [overlap, refs] = overlap_and_refs(t);
    (void)refs;
    std::size_t missing = job.task(t).files.size() - overlap;
    return missing == 0 ? kFullOverlapRestWeight
                        : 1.0 / static_cast<double>(missing);
  };

  switch (params_.metric) {
    case Metric::kOverlap:
      return static_cast<double>(overlap_and_refs(task).first);
    case Metric::kRest:
      return rest_naive(task);
    case Metric::kCombined: {
      double total_ref = 0;
      double total_rest = 0;
      for (TaskId t : pending_list_) {
        total_ref += static_cast<double>(overlap_and_refs(t).second);
        total_rest += rest_naive(t);
      }
      double ref_term =
          total_ref > 0
              ? static_cast<double>(overlap_and_refs(task).second) / total_ref
              : 0.0;
      double rest = rest_naive(task);
      if (params_.combined_formula == CombinedFormula::kProse)
        return ref_term + (total_rest > 0 ? rest / total_rest : 0.0);
      return ref_term + total_rest / rest;
    }
  }
  WCS_CHECK(false);
  return 0;
}

std::size_t WorkerCentricScheduler::overlap_cardinality(SiteId site,
                                                        TaskId task) const {
  return sites_.at(site.value()).overlap.at(task.value());
}

namespace {

// Top-n candidate buffer ordered by (weight desc, task id asc) — the
// ChooseTask(n) selection order. Both decision paths feed it: the flat
// scan offers every pending task, the sharded walk only bucket prefixes.
// n is tiny (1 or 2 in the paper), so insertion beats sorting T entries.
struct TopN {
  struct Candidate {
    double weight;
    TaskId task;
  };

  explicit TopN(std::size_t limit) : n(limit) { best.reserve(limit + 1); }

  static bool better(const Candidate& a, const Candidate& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.task < b.task;
  }

  // Returns false when the candidate did not make the buffer — in the
  // sharded walk that ends the current bucket (entries behind it are
  // ordered no-better under `better`).
  bool offer(Candidate c) {
    if (best.size() == n && !better(c, best.back())) return false;
    auto pos = std::upper_bound(best.begin(), best.end(), c, better);
    best.insert(pos, c);
    if (best.size() > n) best.pop_back();
    return true;
  }

  [[nodiscard]] bool full() const { return best.size() == n; }

  std::size_t n;
  std::vector<Candidate> best;
};

// Samples among the collected best-n proportionally to weight (uniform
// when all weights are zero — see Rng::weighted_index). Shared tail of
// both decision paths, so RNG consumption is identical by construction.
TaskId pick_from(const TopN& topn, Rng& rng) {
  if (topn.best.size() == 1) return topn.best[0].task;
  std::vector<double> weights;
  weights.reserve(topn.best.size());
  for (const TopN::Candidate& c : topn.best) weights.push_back(c.weight);
  return topn.best[rng.weighted_index(weights)].task;
}

}  // namespace

TaskId WorkerCentricScheduler::choose_task(SiteId site) {
  WCS_CHECK(!pending_list_.empty());
  return sharded() ? choose_task_sharded(site) : choose_task_flat(site);
}

TaskId WorkerCentricScheduler::choose_task_flat(SiteId site) {
  const SiteIndex& idx = sites_[site.value()];

  double total_ref = 0;
  double total_rest = 0;
  if (params_.metric == Metric::kCombined)
    std::tie(total_ref, total_rest) = totals(idx);

  TopN topn(std::min<std::size_t>(
      static_cast<std::size_t>(params_.choose_n), pending_list_.size()));
  for (TaskId t : pending_list_)
    topn.offer({weight_of(idx, t, total_ref, total_rest), t});
  return pick_from(topn, rng_);
}

TaskId WorkerCentricScheduler::choose_task_sharded(SiteId site) {
  const SiteIndex& idx = sites_[site.value()];
  const ShardedTaskIndex& shard = shards_[site.value()];
  WCS_DCHECK_EQ(shard.size(), pending_list_.size());

  double total_ref = 0;
  double total_rest = 0;
  if (params_.metric == Metric::kCombined)
    std::tie(total_ref, total_rest) = totals(idx);

  TopN topn(std::min<std::size_t>(
      static_cast<std::size_t>(params_.choose_n), pending_list_.size()));
  // Within one bucket, weight is monotone non-increasing along entry
  // order (the rest/overlap term is fixed by the key; combined entries
  // sort by ref_t descending, and ties sort by the id order `better`
  // uses), so the first rejected entry ends the bucket.
  auto scan_bucket = [&](const ShardedTaskIndex::Bucket& bucket) {
    for (const ShardedTaskIndex::Entry& e : bucket)
      if (!topn.offer({weight_of(idx, e.task, total_ref, total_rest),
                       e.task}))
        break;
  };
  const auto& buckets = shard.buckets();
  switch (params_.metric) {
    case Metric::kOverlap:
      // Weight == key: larger keys strictly better, so stop as soon as
      // the buffer is full — later buckets cannot displace anything.
      for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
        scan_bucket(it->second);
        if (topn.full()) break;
      }
      break;
    case Metric::kRest:
      // rest = 1/missing (2 at missing = 0) is strictly decreasing in
      // the key, so the ascending walk visits buckets best-first.
      for (const auto& [key, bucket] : buckets) {
        scan_bucket(bucket);
        if (topn.full()) break;
      }
      break;
    case Metric::kCombined:
      // The combined weight mixes a normalized ref term with the rest
      // term, so no single bucket order dominates globally — visit every
      // bucket (B <= max |t| + 1, a workload constant), still with the
      // per-bucket early break.
      for (const auto& [key, bucket] : buckets) scan_bucket(bucket);
      break;
  }
  return pick_from(topn, rng_);
}

void WorkerCentricScheduler::remove_pending(TaskId task) {
  WCS_CHECK(is_pending(task));
  pending_[task.value()] = 0;
  std::uint32_t pos = pending_pos_[task.value()];
  TaskId last = pending_list_.back();
  pending_list_[pos] = last;
  pending_pos_[last.value()] = pos;
  pending_list_.pop_back();
  // The task leaves every site's pending aggregates (and shard).
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    SiteIndex& idx = sites_[s];
    idx.total_ref -= idx.ref_sum[task.value()];
    WCS_DCHECK(idx.missing_hist[missing_of(idx, task)] > 0);
    --idx.missing_hist[missing_of(idx, task)];
    if (sharded()) shards_[s].erase(task);
  }
  // Trim the inverted index so cache events stop touching this task.
  for (FileId f : engine().job().task(task).files) {
    const bool removed = tasks_of_file_.erase_swap(f.value(), task);
    WCS_DCHECK(removed);
    (void)removed;
  }
}

void WorkerCentricScheduler::forget_starving(WorkerId worker) {
  std::erase(starving_, worker);
}

void WorkerCentricScheduler::on_worker_idle(WorkerId worker) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  forget_starving(worker);
  if (pending_list_.empty()) {
    // Bag is empty; optionally shave the tail by replicating. A worker
    // left without work is remembered: a crash elsewhere may refill the
    // bag, and feed_starving() then serves it.
    if (params_.replicate_when_idle && replicate_for(worker)) return;
    starving_.push_back(worker);
    return;
  }
  TaskId task = choose_task(engine().site_of(worker));
  remove_pending(task);
  placements_[task.value()].push_back(worker);
  engine().assign_task(task, worker);
}

bool WorkerCentricScheduler::replicate_for(WorkerId worker) {
  const workload::Job& job = engine().job();
  const storage::FileCache& cache =
      engine().site_cache(engine().site_of(worker));

  TaskId best = TaskId::invalid();
  std::size_t best_missing = SIZE_MAX;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i]) continue;
    const auto& instances = placements_[i];
    if (instances.empty()) continue;  // never started (cannot happen late)
    if (instances.size() >= static_cast<std::size_t>(params_.max_replicas))
      continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    if (instances.contains(worker)) continue;
    std::size_t missing = 0;
    for (FileId f : job.task(t).files)
      if (!cache.contains(f)) ++missing;
    // Fewest missing files (the rest metric's criterion applied to
    // replicas); ties to the highest id (assigned latest, most likely to
    // still be far from finishing).
    if (missing < best_missing ||
        (missing == best_missing && best.valid() && t > best)) {
      best_missing = missing;
      best = t;
    }
  }
  if (!best.valid()) return false;
  placements_[best.value()].push_back(worker);
  engine().assign_task(best, worker);
  return true;
}

void WorkerCentricScheduler::on_task_completed(TaskId task, WorkerId worker) {
  completed_[task.value()] = 1;
  auto& instances = placements_[task.value()];
  for (WorkerId w : instances) {
    if (w == worker) continue;
    engine().cancel_task(task, w);
  }
  instances.clear();
}

void WorkerCentricScheduler::re_add_pending(TaskId task) {
  WCS_CHECK(!is_pending(task));
  WCS_CHECK(!completed_[task.value()]);
  const workload::Job& job = engine().job();

  // Rebuild the per-site counters against the LIVE cache state (they went
  // stale the moment the task left the inverted index).
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    const storage::FileCache& cache = engine().site_cache(site);
    std::uint32_t overlap = 0;
    std::uint64_t refs = 0;
    for (FileId f : job.task(task).files) {
      if (cache.contains(f)) {
        ++overlap;
        refs += cache.ref_count(f);
      }
    }
    SiteIndex& idx = sites_[s];
    idx.overlap[task.value()] = overlap;
    idx.ref_sum[task.value()] = refs;
    // The task re-enters the site's pending aggregates (and shard).
    idx.total_ref += refs;
    ++idx.missing_hist[missing_of(idx, task)];
    if (sharded())
      shards_[s].insert(task, shard_key(idx, task), shard_rank(idx, task));
  }
  for (FileId f : job.task(task).files)
    tasks_of_file_.push(f.value(), task);

  pending_[task.value()] = 1;
  pending_pos_[task.value()] =
      static_cast<std::uint32_t>(pending_list_.size());
  pending_list_.push_back(task);
}

void WorkerCentricScheduler::feed_starving() {
  while (!pending_list_.empty() && !starving_.empty()) {
    WorkerId worker = starving_.front();
    starving_.pop_front();
    if (!engine().worker_alive(worker)) continue;
    TaskId task = choose_task(engine().site_of(worker));
    remove_pending(task);
    placements_[task.value()].push_back(worker);
    engine().assign_task(task, worker);
  }
}

void WorkerCentricScheduler::audit_collect(
    std::vector<audit::Violation>& out) const {
  const workload::Job& job = engine().job();
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const SiteId site(static_cast<SiteId::underlying_type>(s));
    const SiteIndex& idx = sites_[s];

    // Incremental aggregates vs the full scan over pending tasks. Compute
    // the histogram-derived totals inline (totals() would re-run its own
    // debug cross-check).
    double hist_rest = 0;
    if (!idx.missing_hist.empty() && idx.missing_hist[0] > 0)
      hist_rest += idx.missing_hist[0] * kFullOverlapRestWeight;
    for (std::size_t m = 1; m < idx.missing_hist.size(); ++m)
      if (idx.missing_hist[m] > 0)
        hist_rest += static_cast<double>(idx.missing_hist[m]) /
                     static_cast<double>(m);
    const auto [scan_ref, scan_rest] = scan_totals(idx);

    audit::IndexTotalsSnapshot totals_snap;
    totals_snap.label = "site " + std::to_string(s);
    totals_snap.incremental_ref = static_cast<double>(idx.total_ref);
    totals_snap.incremental_rest = hist_rest;
    totals_snap.scanned_ref = scan_ref;
    totals_snap.scanned_rest = scan_rest;
    audit::check_index_coherence(totals_snap, out);

    // Per-task overlap/ref-sum counters vs a full recompute from the live
    // cache. O(files resident * tasks per file), the cost build_index()
    // pays once — affordable at audit-sweep frequency.
    const storage::FileCache& cache = engine().site_cache(site);
    std::vector<std::uint32_t> overlap(task_size_.size(), 0);
    std::vector<std::uint64_t> ref_sum(task_size_.size(), 0);
    for (FileId f : cache.contents()) {
      const auto refs = static_cast<std::uint64_t>(cache.ref_count(f));
      for (TaskId t : tasks_of_file_.row(f.value())) {
        ++overlap[t.value()];
        ref_sum[t.value()] += refs;
      }
    }
    for (TaskId t : pending_list_) {
      if (idx.overlap[t.value()] == overlap[t.value()] &&
          idx.ref_sum[t.value()] == ref_sum[t.value()])
        continue;
      std::ostringstream os;
      os << "site " << s << " task " << t << " index drifted: incremental"
         << " overlap " << idx.overlap[t.value()] << " / refSum "
         << idx.ref_sum[t.value()] << " vs recomputed "
         << overlap[t.value()] << " / " << ref_sum[t.value()]
         << " (task has " << job.task(t).files.size() << " files)";
      out.push_back(audit::Violation{"index-coherence", os.str()});
    }

    // Sharded-index coherence: the shard must hold exactly the pending
    // bag, with every entry keyed/ranked as the brute-force recompute
    // (`overlap`/`ref_sum` above, straight from the cache) dictates.
    if (!sharded()) continue;
    const ShardedTaskIndex& shard = shards_[s];
    audit::ShardedIndexSnapshot shard_snap;
    shard_snap.label = "site " + std::to_string(s) + " shard";
    shard_snap.indexed = shard.size();
    shard_snap.expected = pending_list_.size();
    shard_snap.defects = shard.structural_defects();
    for (TaskId t : pending_list_) {
      if (!shard.contains(t)) {
        std::ostringstream os;
        os << "pending task " << t << " missing from the shard";
        shard_snap.defects.push_back(os.str());
        continue;
      }
      const std::uint32_t scan_overlap = overlap[t.value()];
      const std::uint64_t key =
          params_.metric == Metric::kOverlap
              ? scan_overlap
              : task_size_[t.value()] - scan_overlap;
      const std::uint64_t rank =
          params_.metric == Metric::kCombined ? ref_sum[t.value()] : 0;
      if (shard.key_of(t) != key || shard.rank_of(t) != rank) {
        std::ostringstream os;
        os << "task " << t << " filed under key " << shard.key_of(t)
           << " / rank " << shard.rank_of(t) << " but the rescan wants "
           << key << " / " << rank;
        shard_snap.defects.push_back(os.str());
      }
    }
    audit::check_sharded_index(shard_snap, out);
  }
}

void WorkerCentricScheduler::on_worker_failed(
    WorkerId worker, const std::vector<TaskId>& lost) {
  forget_starving(worker);
  for (TaskId t : lost) {
    auto& instances = placements_[t.value()];
    instances.erase_value(worker);
    if (instances.empty() && !completed_[t.value()]) re_add_pending(t);
  }
  feed_starving();
}

void WorkerCentricScheduler::on_tasks_arrived(
    const std::vector<TaskId>& tasks) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  for (TaskId t : tasks) re_add_pending(t);
  feed_starving();
}

}  // namespace wcs::sched
