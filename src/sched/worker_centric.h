// Worker-centric scheduling (the paper's contribution, Sec. 4).
//
// An idle worker requests a task; the scheduler scores every pending task
// for that worker's site with CalculateWeight() and picks one with
// ChooseTask(n):
//
//   overlap_t  = |F_t|                 (files of t already at the site)
//   rest_t     = 1 / (|t| - |F_t|)     (inverse of files still to move)
//   combined_t = ref_t/totalRef + rest_t/totalRest
//
// where ref_t = sum of past reference counts r_i over i in F_t, and
// totalRef/totalRest sum ref_t/rest_t over all pending tasks. The
// combined formula follows the paper's prose; the verbatim printed
// formula (ref_t/totalRef + totalRest/rest_t, which contradicts the
// prose — see DESIGN.md §1) is available as CombinedFormula::kVerbatim
// for the ablation bench.
//
// ChooseTask(n) takes the n best-weighted tasks and samples one with
// probability proportional to weight; n = 1 is the deterministic
// algorithms (overlap/rest/combined), n = 2 the randomized ones
// (rest.2/combined.2).
//
// Complexity: the paper's algorithm is O(T * I) per request (scan all
// tasks, intersect file sets). Three incremental layers remove that:
//
//   1. per-(site, task) overlap/ref-sum counters, updated from
//      cache-change notifications, make one weight evaluation O(1);
//   2. the combined metric's totalRef/totalRest aggregates (exact
//      integer sum + missing-count histogram) make the normalizers O(1)
//      per decision instead of a second O(T) scan;
//   3. a sharded pending-task index (sharded_index.h) — per-site buckets
//      keyed by the weight class, i.e. |F_t| for overlap and
//      |t| - |F_t| for rest/combined, ranked by ref_t inside a combined
//      bucket — resolves ChooseTask(n) by a best-first bucket walk in
//      O(log B + n) instead of scanning the pending bag.
//
// The semantics are byte-identical at every layer: tests cross-check
// weights against the naive computation, the property suite replays
// random interleavings through the flat and sharded paths, the golden
// runs pin exact totals for both, and --audit cross-validates every
// counter, aggregate, and bucket against a brute-force rescan. The flat
// scan is kept as the reference implementation behind
// SchedulerOptions::use_sharded_index (CLI: --flat-index).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/csr.h"
#include "common/inline_vec.h"
#include "common/rng.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"

namespace wcs::sched {

enum class Metric { kOverlap, kRest, kCombined };

[[nodiscard]] const char* to_string(Metric metric);

enum class CombinedFormula {
  kProse,    // ref_t/totalRef + rest_t/totalRest (both bigger-is-better)
  kVerbatim  // ref_t/totalRef + totalRest/rest_t (as printed in the paper)
};

// Weight of a fully-resident task (|t| == |F_t|) under the rest metric,
// where the paper's 1/(|t|-|F_t|) is undefined. Any finite rest weight is
// at most 1, so 2 makes "nothing to transfer" strictly best.
inline constexpr double kFullOverlapRestWeight = 2.0;

struct WorkerCentricParams {
  Metric metric = Metric::kRest;
  int choose_n = 1;  // ChooseTask(n); >= 1
  CombinedFormula combined_formula = CombinedFormula::kProse;
  std::uint64_t seed = 7;  // only consumed when choose_n >= 2

  // Optional task replication once the bag is empty (paper Sec. 3.2:
  // replication is ORTHOGONAL to worker-centric scheduling — not needed
  // for balance, but can shave the tail). An idle worker with no pending
  // task receives a replica of the incomplete task with the fewest
  // missing files at its site; first finisher wins.
  bool replicate_when_idle = false;
  int max_replicas = 2;  // total concurrent instances per task

  // Cross-cutting toggles (sharded index on/off); see scheduler.h.
  SchedulerOptions options;
};

class WorkerCentricScheduler final : public Scheduler {
 public:
  explicit WorkerCentricScheduler(const WorkerCentricParams& params);

  void on_job_submitted() override;
  void on_worker_idle(WorkerId worker) override;
  void on_task_completed(TaskId task, WorkerId worker) override;
  // Crash handling: lost tasks whose last instance died return to the
  // pending bag (with their index entries rebuilt against the live cache
  // state), and are immediately offered to workers that previously asked
  // for work when the bag was empty.
  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override;
  // Open-system arrivals: each task enters the pending bag exactly like
  // a crash re-home (per-site counters rebuilt against the live cache,
  // aggregate / shard / inverted-index re-insertion), then starving
  // workers are fed.
  void on_tasks_arrived(const std::vector<TaskId>& tasks) override;
  [[nodiscard]] bool supports_arrivals() const override { return true; }
  [[nodiscard]] std::string name() const override;

  // Invariant audit: cross-validates every site's incremental aggregates
  // (total_ref + missing-count histogram) against the O(|pending|) scan,
  // and the per-task overlap/ref-sum counters against a full recompute
  // from the live cache contents. This is the auditable promotion of the
  // debug-only WCS_DCHECK in totals().
  void audit_collect(std::vector<audit::Violation>& out) const override;

  // --- Introspection (tests, examples) ---------------------------------

  // CalculateWeight() of a pending task for a requesting worker at `site`,
  // from the incremental index. Task must be pending.
  [[nodiscard]] double weight(SiteId site, TaskId task) const;

  // Same value computed naively from the site cache — O(T * I); the
  // property tests assert weight() == naive_weight() at every step.
  [[nodiscard]] double naive_weight(SiteId site, TaskId task) const;

  [[nodiscard]] std::size_t pending_count() const override {
    return pending_list_.size();
  }
  [[nodiscard]] bool is_pending(TaskId task) const {
    return task.value() < pending_.size() && pending_[task.value()];
  }
  [[nodiscard]] std::size_t overlap_cardinality(SiteId site,
                                                TaskId task) const;

  // Incrementally-maintained (totalRef, totalRest) over the pending bag
  // for `site`. Tests cross-check this against the O(|pending|) scan the
  // combined metric used to pay on every choose_task().
  [[nodiscard]] std::pair<double, double> totals_of(SiteId site) const;

  // Resolves ChooseTask(n) for a worker at `site` WITHOUT assigning or
  // removing the task — the bench/property-test hook for comparing the
  // flat and sharded decision paths. Consumes exactly the RNG draw the
  // real assignment would (none when the top-n has a single candidate).
  // The pending bag must be non-empty.
  [[nodiscard]] TaskId peek_choice(SiteId site) { return choose_task(site); }

 private:
  struct SiteIndex {
    std::vector<std::uint32_t> overlap;   // |F_t| per task
    std::vector<std::uint64_t> ref_sum;   // sum of r_i over F_t per task
    // Aggregates over PENDING tasks only, maintained incrementally so the
    // combined metric's totals are O(1)-ish per decision instead of an
    // O(|pending|) scan. total_ref is exact integer arithmetic;
    // total_rest is derived from a histogram of missing-file counts
    // (rest_t = 1/missing depends only on `missing`), which keeps it
    // exactly reproducible — no floating-point accumulation drift.
    std::uint64_t total_ref = 0;               // sum of ref_sum[t], t pending
    std::vector<std::uint32_t> missing_hist;   // [m] = # pending tasks with
                                               // m files missing at the site
  };

  void build_index();
  void on_cache_event(SiteId site, storage::CacheEvent event, FileId file);
  void remove_pending(TaskId task);
  [[nodiscard]] double weight_of(const SiteIndex& idx, TaskId task,
                                 double total_ref, double total_rest) const;
  [[nodiscard]] double rest_of(const SiteIndex& idx, TaskId task) const;
  // (total_ref, total_rest) over pending tasks for one site, from the
  // incremental aggregates; cross-validated against scan_totals() in
  // debug builds.
  [[nodiscard]] std::pair<double, double> totals(const SiteIndex& idx) const;
  // The pre-optimization O(|pending|) scan, kept for WCS_DCHECK
  // cross-validation.
  [[nodiscard]] std::pair<double, double> scan_totals(
      const SiteIndex& idx) const;
  [[nodiscard]] std::uint32_t missing_of(const SiteIndex& idx,
                                         TaskId task) const {
    return task_size_[task.value()] - idx.overlap[task.value()];
  }
  // ChooseTask(n): dispatches to the sharded bucket walk or the flat
  // reference scan (params_.options.use_sharded_index); both produce the
  // same ordered top-n, the same RNG consumption, the same task.
  [[nodiscard]] TaskId choose_task(SiteId site);
  [[nodiscard]] TaskId choose_task_flat(SiteId site);
  [[nodiscard]] TaskId choose_task_sharded(SiteId site);

  // --- Sharded pending-task index (layer 3; see file comment) ----------
  [[nodiscard]] bool sharded() const {
    return params_.options.use_sharded_index;
  }
  // Bucket key of a pending task at one site: |F_t| for overlap (bigger
  // is better), |t| - |F_t| for rest/combined (smaller is better).
  [[nodiscard]] std::uint64_t shard_key(const SiteIndex& idx,
                                        TaskId task) const {
    return params_.metric == Metric::kOverlap ? idx.overlap[task.value()]
                                              : missing_of(idx, task);
  }
  // Within-bucket rank: ref_t for combined (weight is strictly
  // increasing in ref_t at fixed missing-count), 0 otherwise (all
  // weights inside a bucket are equal for overlap/rest).
  [[nodiscard]] std::uint64_t shard_rank(const SiteIndex& idx,
                                         TaskId task) const {
    return params_.metric == Metric::kCombined ? idx.ref_sum[task.value()]
                                               : 0;
  }

  // Replication phase (only when params_.replicate_when_idle). Returns
  // true if a replica was assigned to the worker.
  bool replicate_for(WorkerId worker);
  // Return a task to the pending bag, rebuilding its per-site counters.
  void re_add_pending(TaskId task);
  // Hand pending tasks to workers that starved on an empty bag.
  void feed_starving();
  // Drop `worker` from the starving list if present.
  void forget_starving(WorkerId worker);

  WorkerCentricParams params_;
  Rng rng_;
  std::vector<SiteIndex> sites_;
  // One shard per site, holding exactly the pending bag keyed/ranked by
  // shard_key/shard_rank; empty (and never touched) in flat mode.
  std::vector<ShardedTaskIndex> shards_;
  // Inverted file -> pending-tasks index as one CSR pool (three flat
  // arrays) instead of a vector-of-vectors: rows support exactly the
  // mutations the scheduler performs (swap-erase on assignment, bounded
  // re-push after a crash) without per-file heap blocks.
  common::Csr<TaskId> tasks_of_file_;
  std::vector<std::uint32_t> task_size_;  // |t| per task
  std::vector<char> pending_;         // by task id
  std::vector<TaskId> pending_list_;  // dense list for scanning
  std::vector<std::uint32_t> pending_pos_;  // task id -> index in list
  // Replication bookkeeping (kept even when replication is off: the
  // engine reports completions regardless). Two inline slots cover every
  // paper configuration (max_replicas = 2); larger settings spill.
  std::vector<common::InlineVec<WorkerId, 2>> placements_;
  std::vector<char> completed_;
  // Workers that asked for work while the bag was empty, in ask order
  // (deque: feed_starving pops the front in O(1)).
  std::deque<WorkerId> starving_;
};

}  // namespace wcs::sched
