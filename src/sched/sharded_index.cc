#include "sched/sharded_index.h"

#include <sstream>

namespace wcs::sched {

void ShardedTaskIndex::reset(std::size_t num_tasks) {
  buckets_.clear();
  // Every node is back on the freelists now; rewind the bump path so a
  // reused index refills its existing pages from the start.
  arena_->reset();
  slots_.assign(num_tasks, Slot{});
  size_ = 0;
}

void ShardedTaskIndex::insert(TaskId task, std::uint64_t key,
                              std::uint64_t rank) {
  WCS_CHECK_MSG(task.value() < slots_.size(),
                "sharded index: task " << task << " out of range");
  Slot& slot = slots_[task.value()];
  WCS_CHECK_MSG(!slot.present, "sharded index: duplicate insert " << task);
  auto [it, inserted] =
      buckets_.try_emplace(key, Bucket(order_, EntryAlloc(arena_.get())));
  const bool entry_new = it->second.insert(Entry{rank, task}).second;
  WCS_CHECK(entry_new);
  (void)inserted;
  slot = Slot{true, key, rank};
  ++size_;
}

void ShardedTaskIndex::erase(TaskId task) {
  WCS_CHECK_MSG(contains(task), "sharded index: erase of absent " << task);
  Slot& slot = slots_[task.value()];
  auto it = buckets_.find(slot.key);
  WCS_CHECK(it != buckets_.end());
  const std::size_t removed = it->second.erase(Entry{slot.rank, task});
  WCS_CHECK_MSG(removed == 1, "sharded index: entry lost for " << task);
  if (it->second.empty()) buckets_.erase(it);
  slot = Slot{};
  --size_;
}

void ShardedTaskIndex::update(TaskId task, std::uint64_t key,
                              std::uint64_t rank) {
  WCS_CHECK_MSG(contains(task), "sharded index: update of absent " << task);
  Slot& slot = slots_[task.value()];
  if (slot.key == key && slot.rank == rank) return;
  erase(task);
  insert(task, key, rank);
}

std::uint64_t ShardedTaskIndex::key_of(TaskId task) const {
  WCS_CHECK_MSG(contains(task), "sharded index: key_of absent " << task);
  return slots_[task.value()].key;
}

std::uint64_t ShardedTaskIndex::rank_of(TaskId task) const {
  WCS_CHECK_MSG(contains(task), "sharded index: rank_of absent " << task);
  return slots_[task.value()].rank;
}

std::vector<std::string> ShardedTaskIndex::structural_defects() const {
  std::vector<std::string> defects;
  std::size_t entries = 0;
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.empty()) {
      std::ostringstream os;
      os << "empty bucket " << key << " kept in the map";
      defects.push_back(os.str());
    }
    for (const Entry& e : bucket) {
      ++entries;
      const TaskId t = e.task;
      if (t.value() >= slots_.size() || !slots_[t.value()].present ||
          slots_[t.value()].key != key || slots_[t.value()].rank != e.rank) {
        std::ostringstream os;
        os << "entry (task " << t << ", key " << key << ", rank " << e.rank
           << ") has no matching slot";
        defects.push_back(os.str());
      }
    }
  }
  std::size_t present = 0;
  for (const Slot& s : slots_)
    if (s.present) ++present;
  if (entries != size_ || present != size_) {
    std::ostringstream os;
    os << "size drifted: counter " << size_ << ", bucket entries " << entries
       << ", present slots " << present;
    defects.push_back(os.str());
  }
  for (std::string& d : arena_->structural_defects())
    defects.push_back("node arena: " + d);
  return defects;
}

}  // namespace wcs::sched
