// Weighted-round-robin multi-tenant layer over a pull scheduler.
//
// One inner pull scheduler per tenant, each seeing only its tenant's
// tasks; when a worker goes idle, smooth weighted round robin over the
// tenants that currently have pending work decides which inner answers
// the request. Smooth WRR (the nginx variant): every eligible tenant
// earns its weight in credit, the richest tenant (lowest id on ties)
// is served and pays back the total eligible weight. The sequence is
// deterministic — for weights {3, 1, 2} with everyone eligible it is
// exactly 0 2 0 1 2 0 repeating — and over any window each eligible
// tenant is served proportionally to its weight.
//
// Two structural tricks make the decorator exact:
//
//   - Per-tenant engine proxies. Each inner scheduler attaches to a
//     TenantEngineProxy which delegates everything to the real engine
//     except (a) arrivals(): a per-tenant view of the schedule where
//     other tenants' tasks "never arrive" (kNeverArrives), so the inner
//     only ever considers its own tasks pending; and (b)
//     set_cache_listener(): the real engine allows ONE listener per
//     site, so the wrapper owns that slot and fans every event out to
//     all inner listeners in tenant order.
//
//   - The wrapper owns the starving list. Inner on_worker_idle is only
//     invoked when that tenant has pending work (it then always
//     assigns), so inner starving lists stay empty and a worker that
//     starves while ALL tenants are empty parks here, fed again on the
//     next arrival or crash re-home.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace wcs::sched {

class TenantWrrScheduler final : public Scheduler {
 public:
  // Builds one inner scheduler per tenant of `schedule` (copied).
  // `make_inner(tenant)` should derive any inner RNG seed from the
  // tenant index (substream_seed) so tenant streams stay independent.
  using InnerFactory =
      std::function<std::unique_ptr<Scheduler>(std::uint32_t tenant)>;
  TenantWrrScheduler(const workload::ArrivalSchedule& schedule,
                     const InnerFactory& make_inner);
  // Out of line: ~unique_ptr<TenantEngineProxy> needs the complete type.
  ~TenantWrrScheduler() override;

  void attach(GridEngine& engine) override;
  void on_job_submitted() override;
  void on_worker_idle(WorkerId worker) override;
  void on_task_completed(TaskId task, WorkerId worker) override;
  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override;
  void on_tasks_arrived(const std::vector<TaskId>& tasks) override;
  [[nodiscard]] bool supports_arrivals() const override { return true; }
  [[nodiscard]] std::size_t pending_count() const override;
  [[nodiscard]] std::string name() const override;
  void audit_collect(std::vector<audit::Violation>& out) const override;

  // --- Introspection (tests, metrics) ----------------------------------
  [[nodiscard]] std::size_t num_tenants() const { return inners_.size(); }
  [[nodiscard]] const Scheduler& tenant_scheduler(std::size_t t) const {
    return *inners_.at(t);
  }
  // Worker requests served per tenant — the fairness observable.
  [[nodiscard]] const std::vector<std::uint64_t>& served_counts() const {
    return served_;
  }

 private:
  class TenantEngineProxy;

  // Smooth-WRR pick over tenants with pending work; -1 if none.
  [[nodiscard]] int pick_tenant();
  void feed_starving();
  void subscribe(std::uint32_t tenant, SiteId site,
                 storage::CacheListener listener);

  workload::ArrivalSchedule schedule_;
  std::vector<workload::ArrivalSchedule> views_;  // per-tenant filtered
  std::vector<std::unique_ptr<TenantEngineProxy>> proxies_;
  std::vector<std::unique_ptr<Scheduler>> inners_;
  std::vector<std::int64_t> credit_;  // smooth-WRR state
  std::vector<std::uint64_t> served_;
  // Per-site inner cache listeners, in tenant registration order.
  std::vector<std::vector<storage::CacheListener>> fanout_;
  std::deque<WorkerId> starving_;
};

}  // namespace wcs::sched
