// Scheduler specification + factory.
//
// A SchedulerSpec is a value object describing one of the algorithms of
// the paper's Sec. 5.3 (or an ablation variant); the experiment runner
// and benches construct schedulers from specs so a whole experiment is a
// plain data structure. Algorithm fields select WHAT is scheduled and
// show up in name(); the `options` field carries implementation toggles
// (sharded vs flat decision path) that never change a decision and never
// change the name.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "sched/storage_affinity.h"
#include "sched/worker_centric.h"
#include "sched/workqueue.h"
#include "sched/xsufferage.h"

namespace wcs::sched {

enum class Algorithm {
  kWorkqueue,
  kStorageAffinity,
  kOverlap,
  kRest,
  kCombined,
  kXSufferage,  // dynamic-information baseline (related work)
};

struct SchedulerSpec {
  Algorithm algorithm = Algorithm::kRest;
  int choose_n = 1;  // ChooseTask(n); worker-centric metrics only
  CombinedFormula combined_formula = CombinedFormula::kProse;
  int max_replicas = 2;            // storage affinity + replicating variants
  double imbalance_factor = 1.25;  // storage affinity only
  bool task_replication = false;   // worker-centric: replicate when idle
  std::uint64_t seed = 7;          // randomized ChooseTask only

  // Implementation toggles, forwarded into every scheduler's params.
  // options.use_sharded_index = false restores the flat reference scans
  // (scenario CLI: --flat-index); run totals are byte-identical either
  // way (enforced by the golden-run suite).
  SchedulerOptions options;

  // Human-readable algorithm name as used in the paper's figures and in
  // every report/CSV row (e.g. "rest.2", "combined~verbatim+repl").
  // Depends only on algorithm fields, never on `options`.
  [[nodiscard]] std::string name() const;

  // The six algorithms of the paper's evaluation, in its order:
  // task-centric storage affinity, overlap, rest, combined, rest.2,
  // combined.2.
  [[nodiscard]] static std::vector<SchedulerSpec> paper_algorithms();
};

[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const SchedulerSpec& spec);

// Workload-aware construction. Closed workloads (arrivals == nullptr or
// !arrivals->open()) build exactly make_scheduler(spec). A multi-tenant
// schedule wraps one inner pull scheduler per tenant in the WRR tenant
// layer (tenant_wrr.h), deriving each inner's randomized-ChooseTask seed
// from substream_seed(spec.seed, tenant). Single-tenant timed arrivals
// build the plain scheduler, which must support them (checked at run
// start by GridSimulation).
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(
    const SchedulerSpec& spec, const workload::ArrivalSchedule* arrivals);

}  // namespace wcs::sched
