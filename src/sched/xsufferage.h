// XSufferage baseline (Casanova, Zagorodnov, Berman, Legrand — "Heuristics
// for Scheduling Parameter Sweep Applications in Grid Environments",
// HCW'00), the dynamic-information comparator referenced by the paper's
// related work (Sec. 6: storage affinity "shows improved makespan ...
// specially when compared to the XSufferage scheduling heuristic").
//
// XSufferage computes, per task, the site-level minimum estimated
// completion time (MCT) and schedules the task that would "suffer" most
// if denied its best site (largest gap between best and second-best site
// MCT). Unlike the paper's schedulers it consumes dynamic platform
// estimates — bandwidth, CPU speed, queue backlog — which GridEngine
// exposes specifically for such baselines; the paper's argument (Sec.
// 2.4) is precisely that those estimates are hard to obtain and that
// data-placement information alone does better.
//
// Adaptation to the pull engine: scheduling fires when a worker becomes
// idle. Among pending tasks whose best site IS the requester's site, the
// max-sufferage task is assigned; if no pending task prefers this site,
// the task with the smallest MCT at this site is assigned instead (the
// worker is not left idle — XSufferage never idles a free machine).
//
// Estimates per (task, site):
//   ect(t, s) = backlog(s) * avg_task_bytes / bw(s)      -- queue wait
//             + missing_bytes(t, s) / bw(s)              -- own transfer
//             + mflop(t) / mflops(s)                     -- compute
//
// missing_bytes is tracked incrementally from cache events (same device
// as the worker-centric scheduler's index), so a request costs O(T * S).
// Estimate-quality sensitivity is measured in EXPERIMENTS.md ablation
// A4 (GridConfig::estimate_error skews the bandwidth/CPU numbers this
// scheduler sees; the data-aware schedulers never read them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace wcs::sched {

class XSufferageScheduler final : public Scheduler {
 public:
  XSufferageScheduler() = default;

  // Rebuilds the pending set and the per-(site, task) cached-bytes
  // matrix from the engine's current cache contents, then subscribes to
  // cache events to keep the matrix incremental.
  void on_job_submitted() override;
  // Max-sufferage pick among tasks whose best-MCT site is the
  // requester's; falls back to the smallest local MCT so a free worker
  // is never idled while tasks remain.
  void on_worker_idle(WorkerId worker) override;
  void on_task_completed(TaskId task, WorkerId worker) override;
  // Lost tasks rejoin the pending set and any starving workers are fed.
  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override;
  [[nodiscard]] std::string name() const override { return "xsufferage"; }

  // Unassigned tasks (audit/test hook; running tasks are not counted).
  [[nodiscard]] std::size_t pending_count() const {
    return pending_list_.size();
  }
  // Estimated completion time of a pending task at a site (test hook).
  [[nodiscard]] double estimated_completion(TaskId task, SiteId site) const;

 private:
  void remove_pending(TaskId task);
  void on_cache_event(SiteId site, storage::CacheEvent event, FileId file);

  // cached_bytes_[s][t]: bytes of t's input set resident at site s.
  std::vector<std::vector<double>> cached_bytes_;
  std::vector<double> task_bytes_;  // total input bytes per task
  std::vector<std::vector<TaskId>> tasks_of_file_;
  std::vector<char> pending_;
  std::vector<TaskId> pending_list_;
  std::vector<std::uint32_t> pending_pos_;
  std::vector<WorkerId> starving_;
  double avg_task_bytes_ = 0;
};

}  // namespace wcs::sched
