// Task-centric baseline: storage affinity with task replication
// (Santos-Neto et al., JSSPP'04), as characterized by the paper in
// Sec. 3.1:
//
//   "the scheduler first distributes its tasks according to the overlap
//    cardinality. Once the initial assigning is done, it waits until at
//    least one worker becomes idle. Then the scheduler picks a task
//    already assigned to a worker and replicates it to the idle worker.
//    If one of the workers finishes the task, the other cancels the
//    task."
//
// Initial distribution (reconstruction — the paper gives no pseudo-code;
// recorded as a deviation in DESIGN.md §6): tasks are placed one by one,
// each on the site with the largest byte-overlap between the task's
// input set and the site's *projected* storage contents — the files that
// earlier-assigned tasks will have pulled there, tracked with a
// capacity-bounded FIFO "virtual cache" per site. Ties go to the least
// loaded site, then the lowest site id; within a site, to the least
// loaded worker. This reproduces both phenomena the paper attributes to
// task-centric scheduling: sites holding popular files attract more
// tasks (unbalanced assignment), and the placement decision is made long
// before execution (premature decisions — by execution time the real
// cache may have evicted the files the placement assumed).
//
// Replication: an idle worker receives a replica of the incomplete task
// with the largest byte-overlap against the worker's site cache (actual,
// current contents), up to max_replicas instances per task. The first
// instance to finish wins; the scheduler cancels the siblings.
//
// Complexity: the replica pick is the hot path (it runs on every idle
// transition for the rest of the run). The reference implementation
// rescans every task and intersects its file set with the cache,
// O(T * I) per request. With SchedulerOptions::use_sharded_index (the
// default) the scheduler instead maintains, from cache-change
// notifications, an incremental per-(site, task) cached-byte counter and
// a per-site sharded index (sharded_index.h) over the replicable set —
// bucket key = byte overlap, ties broken toward the highest task id,
// matching the flat scan exactly — so a request walks buckets best-first
// in O(log B) and picks the identical task. Orphan pickup keeps an
// ordered id set mirroring the flat lowest-id-first scan. --audit
// cross-validates counters, bucket keys, and the orphan set against a
// brute-force rescan on every sweep.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/csr.h"
#include "common/dense_id_set.h"
#include "common/inline_vec.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"

namespace wcs::sched {

struct StorageAffinityParams {
  int max_replicas = 2;  // total concurrent instances per task

  // Initial-distribution load cap: no worker's queue may exceed
  // imbalance_factor * (num_tasks / num_workers). Without a cap the
  // projected-overlap greedy can funnel an entire popular region onto one
  // site, which the paper's measured storage-affinity baseline clearly
  // does not do (its makespan is comparable to the worker-centric
  // algorithms at large capacities, Fig. 4). Reconstruction choice
  // recorded in DESIGN.md §6.
  double imbalance_factor = 1.25;

  // Cross-cutting toggles (sharded index on/off); see scheduler.h.
  SchedulerOptions options;
};

class StorageAffinityScheduler final : public Scheduler {
 public:
  explicit StorageAffinityScheduler(const StorageAffinityParams& params);

  void on_job_submitted() override;
  void on_worker_idle(WorkerId worker) override;
  void on_task_completed(TaskId task, WorkerId worker) override;
  // Crash handling: a lost task whose last instance died is pushed to
  // the least-backlogged live worker (task-centric recovery — the
  // scheduler must actively re-place, it cannot wait to be asked).
  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override;
  [[nodiscard]] std::string name() const override {
    return "storage-affinity";
  }

  // Invariant audit (sharded mode only; the flat path keeps no redundant
  // state): cross-validates the incremental cached-byte counters and the
  // per-site replica index against a brute-force recompute from the live
  // caches, and the orphan set against the placement table.
  void audit_collect(std::vector<audit::Violation>& out) const override;

  // --- Introspection (tests) -------------------------------------------
  [[nodiscard]] std::span<const WorkerId> placements(TaskId task) const {
    const auto& v = placements_.at(task.value());
    return {v.data(), v.size()};
  }
  [[nodiscard]] bool completed(TaskId task) const {
    return completed_.at(task.value()) != 0;
  }
  [[nodiscard]] std::uint64_t replications() const { return replications_; }

 private:
  void distribute_all();
  // Byte overlap between a task's input set and a site's current cache.
  [[nodiscard]] double cache_affinity(TaskId task, SiteId site) const;

  // --- Sharded replica index (see file comment) -------------------------
  [[nodiscard]] bool sharded() const {
    return params_.options.use_sharded_index;
  }
  // Builds the inverted file->task index, seeds the per-(site, task)
  // cached-byte counters from current cache contents, and subscribes to
  // cache-change notifications.
  void build_affinity_index();
  // Re-keys cached_bytes_ and the replica index for one cache mutation.
  void on_cache_event(SiteId site, storage::CacheEvent event, FileId file);
  // Re-derives `task`'s membership in every site's replica index from
  // its placement/completion state (replicable = incomplete, has at
  // least one instance, below max_replicas).
  void sync_replicable(TaskId task);
  // The sharded twin of the flat on_worker_idle scan: identical choice.
  void on_worker_idle_sharded(WorkerId worker);

  StorageAffinityParams params_;
  // Active instances per task; two inline slots cover max_replicas = 2
  // (every paper configuration), larger settings spill.
  std::vector<common::InlineVec<WorkerId, 2>> placements_;
  std::vector<char> completed_;
  std::vector<std::uint32_t> worker_load_;  // queued+running per worker
  std::uint64_t replications_ = 0;

  // Sharded-mode state; untouched (empty) under --flat-index. The
  // inverted index holds INCOMPLETE tasks only (trimmed on completion)
  // so cache events stop touching finished tasks; it lives in one CSR
  // pool (swap-erase on completion is the only mutation).
  common::Csr<TaskId> tasks_of_file_;
  std::vector<std::vector<Bytes>> cached_bytes_;  // [site][task]
  std::vector<ShardedTaskIndex> replica_index_;   // per site, high-id ties
  // Incomplete tasks with no live instance, as a bitmap whose
  // lowest-member query matches the flat scan's lowest-id-first pickup.
  common::DenseIdSet orphans_;
};

}  // namespace wcs::sched
