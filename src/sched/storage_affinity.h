// Task-centric baseline: storage affinity with task replication
// (Santos-Neto et al., JSSPP'04), as characterized by the paper in
// Sec. 3.1:
//
//   "the scheduler first distributes its tasks according to the overlap
//    cardinality. Once the initial assigning is done, it waits until at
//    least one worker becomes idle. Then the scheduler picks a task
//    already assigned to a worker and replicates it to the idle worker.
//    If one of the workers finishes the task, the other cancels the
//    task."
//
// Initial distribution (reconstruction — the paper gives no pseudo-code;
// recorded as a deviation in DESIGN.md §6): tasks are placed one by one,
// each on the site with the largest byte-overlap between the task's
// input set and the site's *projected* storage contents — the files that
// earlier-assigned tasks will have pulled there, tracked with a
// capacity-bounded FIFO "virtual cache" per site. Ties go to the least
// loaded site, then the lowest site id; within a site, to the least
// loaded worker. This reproduces both phenomena the paper attributes to
// task-centric scheduling: sites holding popular files attract more
// tasks (unbalanced assignment), and the placement decision is made long
// before execution (premature decisions — by execution time the real
// cache may have evicted the files the placement assumed).
//
// Replication: an idle worker receives a replica of the incomplete task
// with the largest byte-overlap against the worker's site cache (actual,
// current contents), up to max_replicas instances per task. The first
// instance to finish wins; the scheduler cancels the siblings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace wcs::sched {

struct StorageAffinityParams {
  int max_replicas = 2;  // total concurrent instances per task

  // Initial-distribution load cap: no worker's queue may exceed
  // imbalance_factor * (num_tasks / num_workers). Without a cap the
  // projected-overlap greedy can funnel an entire popular region onto one
  // site, which the paper's measured storage-affinity baseline clearly
  // does not do (its makespan is comparable to the worker-centric
  // algorithms at large capacities, Fig. 4). Reconstruction choice
  // recorded in DESIGN.md §6.
  double imbalance_factor = 1.25;
};

class StorageAffinityScheduler final : public Scheduler {
 public:
  explicit StorageAffinityScheduler(const StorageAffinityParams& params);

  void on_job_submitted() override;
  void on_worker_idle(WorkerId worker) override;
  void on_task_completed(TaskId task, WorkerId worker) override;
  // Crash handling: a lost task whose last instance died is pushed to
  // the least-backlogged live worker (task-centric recovery — the
  // scheduler must actively re-place, it cannot wait to be asked).
  void on_worker_failed(WorkerId worker,
                        const std::vector<TaskId>& lost) override;
  [[nodiscard]] std::string name() const override {
    return "storage-affinity";
  }

  // --- Introspection (tests) -------------------------------------------
  [[nodiscard]] const std::vector<WorkerId>& placements(TaskId task) const {
    return placements_.at(task.value());
  }
  [[nodiscard]] bool completed(TaskId task) const {
    return completed_.at(task.value()) != 0;
  }
  [[nodiscard]] std::uint64_t replications() const { return replications_; }

 private:
  void distribute_all();
  // Byte overlap between a task's input set and a site's current cache.
  [[nodiscard]] double cache_affinity(TaskId task, SiteId site) const;

  StorageAffinityParams params_;
  std::vector<std::vector<WorkerId>> placements_;  // active instances
  std::vector<char> completed_;
  std::vector<std::uint32_t> worker_load_;  // queued+running per worker
  std::uint64_t replications_ = 0;
};

}  // namespace wcs::sched
