#include "sched/factory.h"

#include "common/rng.h"
#include "sched/tenant_wrr.h"

namespace wcs::sched {

std::string SchedulerSpec::name() const {
  switch (algorithm) {
    case Algorithm::kWorkqueue:
      return "workqueue";
    case Algorithm::kXSufferage:
      return "xsufferage";
    case Algorithm::kStorageAffinity:
      return "storage-affinity";
    case Algorithm::kOverlap:
    case Algorithm::kRest:
    case Algorithm::kCombined: {
      // Delegate to the scheduler's own naming for exact parity.
      WorkerCentricParams p;
      p.metric = algorithm == Algorithm::kOverlap ? Metric::kOverlap
                 : algorithm == Algorithm::kRest  ? Metric::kRest
                                                  : Metric::kCombined;
      p.choose_n = choose_n;
      p.combined_formula = combined_formula;
      p.replicate_when_idle = task_replication;
      return WorkerCentricScheduler(p).name();
    }
  }
  return "?";
}

std::vector<SchedulerSpec> SchedulerSpec::paper_algorithms() {
  std::vector<SchedulerSpec> specs;
  SchedulerSpec sa;
  sa.algorithm = Algorithm::kStorageAffinity;
  specs.push_back(sa);
  for (Algorithm a :
       {Algorithm::kOverlap, Algorithm::kRest, Algorithm::kCombined}) {
    SchedulerSpec s;
    s.algorithm = a;
    s.choose_n = 1;
    specs.push_back(s);
  }
  for (Algorithm a : {Algorithm::kRest, Algorithm::kCombined}) {
    SchedulerSpec s;
    s.algorithm = a;
    s.choose_n = 2;
    specs.push_back(s);
  }
  return specs;
}

std::unique_ptr<Scheduler> make_scheduler(const SchedulerSpec& spec) {
  switch (spec.algorithm) {
    case Algorithm::kWorkqueue:
      return std::make_unique<WorkqueueScheduler>();
    case Algorithm::kXSufferage:
      return std::make_unique<XSufferageScheduler>();
    case Algorithm::kStorageAffinity: {
      StorageAffinityParams p;
      p.max_replicas = spec.max_replicas;
      p.imbalance_factor = spec.imbalance_factor;
      p.options = spec.options;
      return std::make_unique<StorageAffinityScheduler>(p);
    }
    case Algorithm::kOverlap:
    case Algorithm::kRest:
    case Algorithm::kCombined: {
      WorkerCentricParams p;
      p.metric = spec.algorithm == Algorithm::kOverlap ? Metric::kOverlap
                 : spec.algorithm == Algorithm::kRest  ? Metric::kRest
                                                       : Metric::kCombined;
      p.choose_n = spec.choose_n;
      p.combined_formula = spec.combined_formula;
      p.seed = spec.seed;
      p.replicate_when_idle = spec.task_replication;
      p.max_replicas = spec.max_replicas;
      p.options = spec.options;
      return std::make_unique<WorkerCentricScheduler>(p);
    }
  }
  WCS_CHECK(false);
  return nullptr;
}

std::unique_ptr<Scheduler> make_scheduler(
    const SchedulerSpec& spec, const workload::ArrivalSchedule* arrivals) {
  if (arrivals == nullptr || !arrivals->open() ||
      arrivals->num_tenants() <= 1)
    return make_scheduler(spec);
  WCS_CHECK_MSG(!spec.task_replication,
                "task replication under the WRR tenant layer is not "
                "supported (an inner bag going empty is a tenant-local "
                "event, not a job-wide one)");
  return std::make_unique<TenantWrrScheduler>(
      *arrivals, [&spec](std::uint32_t tenant) {
        SchedulerSpec inner = spec;
        // Independent randomized-ChooseTask streams per tenant: adding a
        // tenant must not perturb the draws of the others.
        inner.seed = substream_seed(spec.seed, tenant);
        return make_scheduler(inner);
      });
}

}  // namespace wcs::sched
