#include "sched/tenant_wrr.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace wcs::sched {

// Delegates the whole engine surface to the wrapper's real engine,
// except the per-tenant arrival view and the cache-listener slot (see
// the header comment).
class TenantWrrScheduler::TenantEngineProxy final : public GridEngine {
 public:
  TenantEngineProxy(TenantWrrScheduler& owner, std::uint32_t tenant)
      : owner_(owner), tenant_(tenant) {}

  [[nodiscard]] const workload::Job& job() const override {
    return owner_.engine().job();
  }
  [[nodiscard]] std::size_t num_sites() const override {
    return owner_.engine().num_sites();
  }
  [[nodiscard]] std::size_t num_workers() const override {
    return owner_.engine().num_workers();
  }
  [[nodiscard]] SiteId site_of(WorkerId worker) const override {
    return owner_.engine().site_of(worker);
  }
  [[nodiscard]] const storage::FileCache& site_cache(
      SiteId site) const override {
    return owner_.engine().site_cache(site);
  }
  void set_cache_listener(SiteId site,
                          storage::CacheListener listener) override {
    owner_.subscribe(tenant_, site, std::move(listener));
  }
  void assign_task(TaskId task, WorkerId worker) override {
    owner_.engine().assign_task(task, worker);
  }
  bool cancel_task(TaskId task, WorkerId worker) override {
    return owner_.engine().cancel_task(task, worker);
  }
  [[nodiscard]] bool worker_alive(WorkerId worker) const override {
    return owner_.engine().worker_alive(worker);
  }
  [[nodiscard]] std::size_t worker_backlog(WorkerId worker) const override {
    return owner_.engine().worker_backlog(worker);
  }
  [[nodiscard]] double estimated_uplink_bandwidth(SiteId site) const override {
    return owner_.engine().estimated_uplink_bandwidth(site);
  }
  [[nodiscard]] double estimated_site_mflops(SiteId site) const override {
    return owner_.engine().estimated_site_mflops(site);
  }
  [[nodiscard]] std::size_t data_server_backlog(SiteId site) const override {
    return owner_.engine().data_server_backlog(site);
  }
  [[nodiscard]] const workload::ArrivalSchedule* arrivals() const override {
    return &owner_.views_[tenant_];
  }

 private:
  TenantWrrScheduler& owner_;
  std::uint32_t tenant_;
};

TenantWrrScheduler::~TenantWrrScheduler() = default;

TenantWrrScheduler::TenantWrrScheduler(
    const workload::ArrivalSchedule& schedule, const InnerFactory& make_inner)
    : schedule_(schedule) {
  const std::size_t k = schedule_.num_tenants();
  WCS_CHECK_MSG(k > 1, "WRR layer needs at least two tenants");
  WCS_CHECK_MSG(!schedule_.tenant_of.empty(),
                "multi-tenant schedule has no per-task tenant ids");
  // Materialize all-at-t0 so the per-tenant views below can mask other
  // tenants' tasks even when every arrival is 0.
  if (schedule_.arrival_s.empty())
    schedule_.arrival_s.assign(schedule_.tenant_of.size(), 0.0);
  // Per-tenant views: other tenants' tasks never arrive for this inner.
  views_.assign(k, schedule_);
  for (std::size_t t = 0; t < k; ++t)
    for (std::size_t i = 0; i < views_[t].arrival_s.size(); ++i)
      if (schedule_.tenant_of[i] != t)
        views_[t].arrival_s[i] = workload::kNeverArrives;
  inners_.reserve(k);
  for (std::uint32_t t = 0; t < k; ++t) {
    std::unique_ptr<Scheduler> inner = make_inner(t);
    WCS_CHECK_MSG(inner != nullptr, "inner factory returned null");
    WCS_CHECK_MSG(inner->supports_arrivals(),
                  "inner scheduler " << inner->name()
                                     << " cannot take the per-tenant view "
                                        "(needs arrival support)");
    inners_.push_back(std::move(inner));
  }
  credit_.assign(k, 0);
  served_.assign(k, 0);
}

void TenantWrrScheduler::attach(GridEngine& engine) {
  Scheduler::attach(engine);
  fanout_.assign(engine.num_sites(), {});
  proxies_.clear();
  for (std::uint32_t t = 0; t < inners_.size(); ++t) {
    proxies_.push_back(std::make_unique<TenantEngineProxy>(*this, t));
    inners_[t]->attach(*proxies_.back());
  }
}

void TenantWrrScheduler::subscribe(std::uint32_t tenant, SiteId site,
                                   storage::CacheListener listener) {
  std::vector<storage::CacheListener>& slot = fanout_[site.value()];
  if (slot.empty()) {
    // First subscriber claims the engine's one listener slot; every
    // event fans out to all inner listeners in tenant order.
    engine().set_cache_listener(
        site, [this, site](storage::CacheEvent e, FileId f) {
          for (const storage::CacheListener& cb : fanout_[site.value()])
            cb(e, f);
        });
  }
  WCS_CHECK_MSG(slot.size() == tenant,
                "tenant " << tenant << " subscribed out of order");
  slot.push_back(std::move(listener));
}

void TenantWrrScheduler::on_job_submitted() {
  for (const std::unique_ptr<Scheduler>& inner : inners_)
    inner->on_job_submitted();
}

int TenantWrrScheduler::pick_tenant() {
  std::int64_t total = 0;
  int pick = -1;
  for (std::size_t t = 0; t < inners_.size(); ++t) {
    if (inners_[t]->pending_count() == 0) continue;
    const std::int64_t w = schedule_.tenants.empty()
                               ? 1
                               : schedule_.tenants[t].weight;
    credit_[t] += w;
    total += w;
    if (pick < 0 || credit_[t] > credit_[static_cast<std::size_t>(pick)])
      pick = static_cast<int>(t);
  }
  if (pick >= 0) credit_[static_cast<std::size_t>(pick)] -= total;
  return pick;
}

void TenantWrrScheduler::on_worker_idle(WorkerId worker) {
  starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                  starving_.end());
  const int pick = pick_tenant();
  if (pick < 0) {
    starving_.push_back(worker);
    return;
  }
  ++served_[static_cast<std::size_t>(pick)];
  // The inner has pending work, so it always assigns (never parks the
  // worker on its own starving list).
  inners_[static_cast<std::size_t>(pick)]->on_worker_idle(worker);
}

void TenantWrrScheduler::feed_starving() {
  while (!starving_.empty()) {
    const int pick = pick_tenant();
    if (pick < 0) return;
    WorkerId worker = starving_.front();
    starving_.pop_front();
    if (!engine().worker_alive(worker)) continue;
    ++served_[static_cast<std::size_t>(pick)];
    inners_[static_cast<std::size_t>(pick)]->on_worker_idle(worker);
  }
}

void TenantWrrScheduler::on_task_completed(TaskId task, WorkerId worker) {
  inners_[schedule_.tenant(task)]->on_task_completed(task, worker);
}

void TenantWrrScheduler::on_worker_failed(WorkerId worker,
                                          const std::vector<TaskId>& lost) {
  starving_.erase(std::remove(starving_.begin(), starving_.end(), worker),
                  starving_.end());
  // Route each tenant's lost instances to its inner (order preserved);
  // inners re-home them, which may refill empty bags.
  std::vector<std::vector<TaskId>> per_tenant(inners_.size());
  for (TaskId t : lost) per_tenant[schedule_.tenant(t)].push_back(t);
  for (std::size_t t = 0; t < inners_.size(); ++t)
    inners_[t]->on_worker_failed(worker, per_tenant[t]);
  feed_starving();
}

void TenantWrrScheduler::on_tasks_arrived(const std::vector<TaskId>& tasks) {
  std::vector<std::vector<TaskId>> per_tenant(inners_.size());
  for (TaskId t : tasks) per_tenant[schedule_.tenant(t)].push_back(t);
  for (std::size_t t = 0; t < inners_.size(); ++t)
    if (!per_tenant[t].empty()) inners_[t]->on_tasks_arrived(per_tenant[t]);
  feed_starving();
}

std::size_t TenantWrrScheduler::pending_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Scheduler>& inner : inners_)
    total += inner->pending_count();
  return total;
}

std::string TenantWrrScheduler::name() const {
  return inners_.front()->name() + "+wrr";
}

void TenantWrrScheduler::audit_collect(
    std::vector<audit::Violation>& out) const {
  for (const std::unique_ptr<Scheduler>& inner : inners_)
    inner->audit_collect(out);
}

}  // namespace wcs::sched
