#include "sched/storage_affinity.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

namespace wcs::sched {

StorageAffinityScheduler::StorageAffinityScheduler(
    const StorageAffinityParams& params)
    : params_(params) {
  WCS_CHECK_MSG(params.max_replicas >= 1, "max_replicas must be >= 1");
}

void StorageAffinityScheduler::on_job_submitted() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  const std::size_t num_tasks = engine().job().num_tasks();
  placements_.assign(num_tasks, {});
  completed_.assign(num_tasks, 0);
  worker_load_.assign(engine().num_workers(), 0);
  distribute_all();
}

void StorageAffinityScheduler::distribute_all() {
  const workload::Job& job = engine().job();
  const std::size_t num_sites = engine().num_sites();

  // Projected per-site contents: what the site's storage will hold once
  // the tasks already queued there have run — capacity-bounded FIFO, like
  // the real storage under churn.
  struct VirtualCache {
    std::unordered_set<FileId> present;
    std::deque<FileId> order;
    std::size_t capacity;
  };
  std::vector<VirtualCache> vcache(num_sites);
  std::vector<double> site_load(num_sites, 0);
  for (std::size_t s = 0; s < num_sites; ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    vcache[s].capacity = engine().site_cache(site).capacity();
    // Current contents count toward the projection (empty on a cold run).
    for (FileId f : engine().site_cache(site).contents()) {
      vcache[s].present.insert(f);
      vcache[s].order.push_back(f);
    }
  }

  // Workers grouped by site, for least-loaded worker selection.
  std::vector<std::vector<WorkerId>> site_workers(num_sites);
  for (std::size_t w = 0; w < engine().num_workers(); ++w) {
    WorkerId worker(static_cast<WorkerId::underlying_type>(w));
    site_workers[engine().site_of(worker).value()].push_back(worker);
  }

  // Per-worker queue cap (see StorageAffinityParams::imbalance_factor).
  const double fair_share = static_cast<double>(job.num_tasks()) /
                            static_cast<double>(engine().num_workers());
  const auto load_cap = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(fair_share * params_.imbalance_factor)));

  auto least_loaded_worker = [&](std::size_t site) {
    WorkerId best = WorkerId::invalid();
    for (WorkerId w : site_workers[site])
      if (!best.valid() ||
          worker_load_[w.value()] < worker_load_[best.value()])
        best = w;
    return best;
  };

  for (const workload::Task& task : job.tasks) {
    // Pick the site with maximal projected byte overlap among sites that
    // still have queue headroom; ties to the least loaded site, then the
    // lowest id.
    std::size_t best_site = num_sites;  // invalid
    double best_overlap = -1;
    for (std::size_t s = 0; s < num_sites; ++s) {
      WorkerId candidate = least_loaded_worker(s);
      WCS_CHECK_MSG(candidate.valid(), "site without workers");
      if (worker_load_[candidate.value()] >= load_cap) continue;
      double overlap = 0;
      for (FileId f : task.files)
        if (vcache[s].present.count(f))
          overlap += static_cast<double>(job.catalog.size(f));
      bool wins = best_site == num_sites || overlap > best_overlap ||
                  (overlap == best_overlap &&
                   site_load[s] < site_load[best_site]);
      if (wins) {
        best_overlap = overlap;
        best_site = s;
      }
    }
    // The cap guarantees total headroom >= num_tasks, so a site exists.
    WCS_CHECK_MSG(best_site < num_sites, "no site with queue headroom");
    WorkerId best_worker = least_loaded_worker(best_site);

    placements_[task.id.value()].push_back(best_worker);
    ++worker_load_[best_worker.value()];
    site_load[best_site] += 1;
    engine().assign_task(task.id, best_worker);

    // Update the projection with this task's files.
    VirtualCache& vc = vcache[best_site];
    for (FileId f : task.files) {
      if (!vc.present.insert(f).second) continue;
      vc.order.push_back(f);
      if (vc.present.size() > vc.capacity) {
        FileId victim = vc.order.front();
        vc.order.pop_front();
        vc.present.erase(victim);
      }
    }
  }
}

double StorageAffinityScheduler::cache_affinity(TaskId task,
                                                SiteId site) const {
  const workload::Job& job = engine().job();
  const storage::FileCache& cache = engine().site_cache(site);
  double bytes = 0;
  for (FileId f : job.task(task).files)
    if (cache.contains(f)) bytes += static_cast<double>(job.catalog.size(f));
  return bytes;
}

void StorageAffinityScheduler::on_worker_idle(WorkerId worker) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  // Orphan pickup first: a task may have lost its last instance while no
  // live worker was available (total-outage corner under churn).
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i] || !placements_[i].empty()) continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    placements_[i].push_back(worker);
    engine().assign_task(t, worker);
    return;
  }

  // Replication phase: find the incomplete task with the largest storage
  // affinity to this worker's site among tasks that can still gain an
  // instance.
  const SiteId site = engine().site_of(worker);
  TaskId best = TaskId::invalid();
  double best_affinity = -1;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i]) continue;
    const auto& instances = placements_[i];
    if (instances.empty()) continue;  // defensive; cannot happen
    if (instances.size() >=
        static_cast<std::size_t>(params_.max_replicas))
      continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    if (std::find(instances.begin(), instances.end(), worker) !=
        instances.end())
      continue;  // never two instances on one worker
    double affinity = cache_affinity(t, site);
    // Ties (typically all-zero affinity) go to the HIGHEST task id: queues
    // were filled in task order, so high ids sit at queue tails, farthest
    // from execution — replicating those migrates real work instead of
    // racing a task that is about to start anyway.
    if (affinity > best_affinity || (affinity == best_affinity && t > best)) {
      best_affinity = affinity;
      best = t;
    }
  }
  if (!best.valid()) return;  // nothing replicatable; worker stays idle

  placements_[best.value()].push_back(worker);
  ++replications_;
  engine().assign_task(best, worker);
}

void StorageAffinityScheduler::on_worker_failed(
    WorkerId worker, const std::vector<TaskId>& lost) {
  for (TaskId t : lost) {
    auto& instances = placements_[t.value()];
    instances.erase(std::remove(instances.begin(), instances.end(), worker),
                    instances.end());
    if (!instances.empty() || completed_[t.value()]) continue;
    // Orphaned: push to the least-backlogged live worker (tie: lowest id).
    WorkerId target = WorkerId::invalid();
    for (std::size_t w = 0; w < engine().num_workers(); ++w) {
      WorkerId cand(static_cast<WorkerId::underlying_type>(w));
      if (cand == worker || !engine().worker_alive(cand)) continue;
      if (!target.valid() ||
          engine().worker_backlog(cand) < engine().worker_backlog(target))
        target = cand;
    }
    // With every worker down the task waits for the next failure event
    // of a recovered worker to re-place it — in practice recovery
    // always precedes that, and the engine flags a truly stuck job.
    if (!target.valid()) continue;
    instances.push_back(target);
    engine().assign_task(t, target);
  }
}

void StorageAffinityScheduler::on_task_completed(TaskId task,
                                                 WorkerId worker) {
  completed_[task.value()] = 1;
  for (WorkerId w : placements_[task.value()]) {
    if (w == worker) continue;
    engine().cancel_task(task, w);
  }
  placements_[task.value()].clear();
}

}  // namespace wcs::sched
