#include "sched/storage_affinity.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>
#include <unordered_set>

namespace wcs::sched {

StorageAffinityScheduler::StorageAffinityScheduler(
    const StorageAffinityParams& params)
    : params_(params) {
  WCS_CHECK_MSG(params.max_replicas >= 1, "max_replicas must be >= 1");
}

void StorageAffinityScheduler::on_job_submitted() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  const std::size_t num_tasks = engine().job().num_tasks();
  placements_.assign(num_tasks, {});
  completed_.assign(num_tasks, 0);
  worker_load_.assign(engine().num_workers(), 0);
  orphans_.reset(num_tasks);
  // Subscribe to cache notifications BEFORE any assignment so no
  // mutation can slip past the incremental byte counters.
  if (sharded()) build_affinity_index();
  distribute_all();
  // Seed replica-index membership now that every task holds exactly one
  // instance (distribute_all places all of them; no cache events fire
  // synchronously during assignment, so the byte counters are current).
  if (sharded()) {
    for (std::size_t i = 0; i < num_tasks; ++i)
      sync_replicable(TaskId(static_cast<TaskId::underlying_type>(i)));
  }
}

void StorageAffinityScheduler::build_affinity_index() {
  const workload::Job& job = engine().job();
  const std::size_t num_tasks = job.num_tasks();
  const std::size_t num_sites = engine().num_sites();

  // CSR build: count row widths, finalize, fill in task order — each
  // row ends up in the same order the old per-file push_back produced.
  tasks_of_file_.reset(job.catalog.num_files());
  for (const workload::Task& t : job.tasks())
    for (FileId f : t.files) tasks_of_file_.count(f.value());
  tasks_of_file_.finalize();
  for (const workload::Task& t : job.tasks())
    for (FileId f : t.files) tasks_of_file_.push(f.value(), t.id);

  cached_bytes_.assign(num_sites, std::vector<Bytes>(num_tasks, 0));
  replica_index_.assign(num_sites,
                        ShardedTaskIndex(/*prefer_high_id=*/true));
  for (std::size_t s = 0; s < num_sites; ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    replica_index_[s].reset(num_tasks);
    const storage::FileCache& cache = engine().site_cache(site);
    for (FileId f : cache.contents()) {
      const Bytes sz = job.catalog.size(f);
      for (TaskId t : tasks_of_file_.row(f.value()))
        cached_bytes_[s][t.value()] += sz;
    }
    engine().set_cache_listener(
        site, [this, site](storage::CacheEvent e, FileId f) {
          on_cache_event(site, e, f);
        });
  }
}

void StorageAffinityScheduler::on_cache_event(SiteId site,
                                              storage::CacheEvent event,
                                              FileId file) {
  // Byte overlap only changes when residency changes; accesses bump
  // reference counts, which storage affinity never reads.
  if (event == storage::CacheEvent::kAccessed) return;
  const Bytes sz = engine().job().catalog.size(file);
  std::vector<Bytes>& bytes = cached_bytes_[site.value()];
  ShardedTaskIndex& shard = replica_index_[site.value()];
  for (TaskId t : tasks_of_file_.row(file.value())) {
    if (event == storage::CacheEvent::kAdded) {
      bytes[t.value()] += sz;
    } else {
      WCS_DCHECK(bytes[t.value()] >= sz);
      bytes[t.value()] -= sz;
    }
    if (shard.contains(t)) shard.update(t, bytes[t.value()]);
  }
}

void StorageAffinityScheduler::sync_replicable(TaskId task) {
  const auto& instances = placements_[task.value()];
  const bool want =
      !completed_[task.value()] && !instances.empty() &&
      instances.size() < static_cast<std::size_t>(params_.max_replicas);
  for (std::size_t s = 0; s < replica_index_.size(); ++s) {
    ShardedTaskIndex& shard = replica_index_[s];
    if (want == shard.contains(task)) continue;
    if (want)
      shard.insert(task, cached_bytes_[s][task.value()]);
    else
      shard.erase(task);
  }
}

void StorageAffinityScheduler::distribute_all() {
  const workload::Job& job = engine().job();
  const std::size_t num_sites = engine().num_sites();

  // Projected per-site contents: what the site's storage will hold once
  // the tasks already queued there have run — capacity-bounded FIFO, like
  // the real storage under churn.
  struct VirtualCache {
    std::unordered_set<FileId> present;
    std::deque<FileId> order;
    std::size_t capacity;
  };
  std::vector<VirtualCache> vcache(num_sites);
  std::vector<double> site_load(num_sites, 0);
  for (std::size_t s = 0; s < num_sites; ++s) {
    SiteId site(static_cast<SiteId::underlying_type>(s));
    vcache[s].capacity = engine().site_cache(site).capacity();
    // Current contents count toward the projection (empty on a cold run).
    for (FileId f : engine().site_cache(site).contents()) {
      vcache[s].present.insert(f);
      vcache[s].order.push_back(f);
    }
  }

  // Workers grouped by site, for least-loaded worker selection.
  std::vector<std::vector<WorkerId>> site_workers(num_sites);
  for (std::size_t w = 0; w < engine().num_workers(); ++w) {
    WorkerId worker(static_cast<WorkerId::underlying_type>(w));
    site_workers[engine().site_of(worker).value()].push_back(worker);
  }

  // Per-worker queue cap (see StorageAffinityParams::imbalance_factor).
  const double fair_share = static_cast<double>(job.num_tasks()) /
                            static_cast<double>(engine().num_workers());
  const auto load_cap = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(fair_share * params_.imbalance_factor)));

  auto least_loaded_worker = [&](std::size_t site) {
    WorkerId best = WorkerId::invalid();
    for (WorkerId w : site_workers[site])
      if (!best.valid() ||
          worker_load_[w.value()] < worker_load_[best.value()])
        best = w;
    return best;
  };

  for (const workload::Task& task : job.tasks()) {
    // Pick the site with maximal projected byte overlap among sites that
    // still have queue headroom; ties to the least loaded site, then the
    // lowest id.
    std::size_t best_site = num_sites;  // invalid
    double best_overlap = -1;
    for (std::size_t s = 0; s < num_sites; ++s) {
      WorkerId candidate = least_loaded_worker(s);
      WCS_CHECK_MSG(candidate.valid(), "site without workers");
      if (worker_load_[candidate.value()] >= load_cap) continue;
      double overlap = 0;
      for (FileId f : task.files)
        if (vcache[s].present.count(f))
          overlap += static_cast<double>(job.catalog.size(f));
      bool wins = best_site == num_sites || overlap > best_overlap ||
                  (overlap == best_overlap &&
                   site_load[s] < site_load[best_site]);
      if (wins) {
        best_overlap = overlap;
        best_site = s;
      }
    }
    // The cap guarantees total headroom >= num_tasks, so a site exists.
    WCS_CHECK_MSG(best_site < num_sites, "no site with queue headroom");
    WorkerId best_worker = least_loaded_worker(best_site);

    placements_[task.id.value()].push_back(best_worker);
    ++worker_load_[best_worker.value()];
    site_load[best_site] += 1;
    engine().assign_task(task.id, best_worker);

    // Update the projection with this task's files.
    VirtualCache& vc = vcache[best_site];
    for (FileId f : task.files) {
      if (!vc.present.insert(f).second) continue;
      vc.order.push_back(f);
      if (vc.present.size() > vc.capacity) {
        FileId victim = vc.order.front();
        vc.order.pop_front();
        vc.present.erase(victim);
      }
    }
  }
}

double StorageAffinityScheduler::cache_affinity(TaskId task,
                                                SiteId site) const {
  const workload::Job& job = engine().job();
  const storage::FileCache& cache = engine().site_cache(site);
  double bytes = 0;
  for (FileId f : job.task(task).files)
    if (cache.contains(f)) bytes += static_cast<double>(job.catalog.size(f));
  return bytes;
}

void StorageAffinityScheduler::on_worker_idle(WorkerId worker) {
  obs::ScopedPhase phase(profiler_, obs::Phase::kSchedulerDecision);
  if (sharded()) {
    on_worker_idle_sharded(worker);
    return;
  }
  // Orphan pickup first: a task may have lost its last instance while no
  // live worker was available (total-outage corner under churn).
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i] || !placements_[i].empty()) continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    placements_[i].push_back(worker);
    engine().assign_task(t, worker);
    return;
  }

  // Replication phase: find the incomplete task with the largest storage
  // affinity to this worker's site among tasks that can still gain an
  // instance.
  const SiteId site = engine().site_of(worker);
  TaskId best = TaskId::invalid();
  double best_affinity = -1;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (completed_[i]) continue;
    const auto& instances = placements_[i];
    if (instances.empty()) continue;  // defensive; cannot happen
    if (instances.size() >=
        static_cast<std::size_t>(params_.max_replicas))
      continue;
    TaskId t(static_cast<TaskId::underlying_type>(i));
    if (instances.contains(worker)) continue;  // never two on one worker
    double affinity = cache_affinity(t, site);
    // Ties (typically all-zero affinity) go to the HIGHEST task id: queues
    // were filled in task order, so high ids sit at queue tails, farthest
    // from execution — replicating those migrates real work instead of
    // racing a task that is about to start anyway.
    if (affinity > best_affinity || (affinity == best_affinity && t > best)) {
      best_affinity = affinity;
      best = t;
    }
  }
  if (!best.valid()) return;  // nothing replicatable; worker stays idle

  placements_[best.value()].push_back(worker);
  ++replications_;
  engine().assign_task(best, worker);
}

void StorageAffinityScheduler::on_worker_idle_sharded(WorkerId worker) {
  // Orphan pickup: the ordered set mirrors the flat scan's ascending-id
  // walk, so the lowest orphan id wins in O(log T).
  if (!orphans_.empty()) {
    const TaskId t(static_cast<TaskId::underlying_type>(orphans_.first()));
    orphans_.erase(t.value());
    placements_[t.value()].push_back(worker);
    sync_replicable(t);
    engine().assign_task(t, worker);
    return;
  }

  // Replica pick: best-first bucket walk. Keys are exact byte overlaps
  // (the flat scan's doubles represent the same sums exactly — well
  // below 2^53), buckets sort ties toward the highest id, and tasks
  // already holding an instance on this worker are skipped in place —
  // the first acceptable entry IS the flat scan's argmax.
  const SiteId site = engine().site_of(worker);
  TaskId best = TaskId::invalid();
  const auto& buckets = replica_index_[site.value()].buckets();
  for (auto it = buckets.rbegin(); it != buckets.rend() && !best.valid();
       ++it) {
    for (const ShardedTaskIndex::Entry& e : it->second) {
      const auto& instances = placements_[e.task.value()];
      if (instances.contains(worker)) continue;  // never two on one worker
      best = e.task;
      break;
    }
  }
  if (!best.valid()) return;  // nothing replicatable; worker stays idle

  placements_[best.value()].push_back(worker);
  ++replications_;
  sync_replicable(best);
  engine().assign_task(best, worker);
}

void StorageAffinityScheduler::on_worker_failed(
    WorkerId worker, const std::vector<TaskId>& lost) {
  for (TaskId t : lost) {
    auto& instances = placements_[t.value()];
    instances.erase_value(worker);
    if (sharded()) sync_replicable(t);  // may drop below max_replicas
    if (!instances.empty() || completed_[t.value()]) continue;
    // Orphaned: push to the least-backlogged live worker (tie: lowest id).
    WorkerId target = WorkerId::invalid();
    for (std::size_t w = 0; w < engine().num_workers(); ++w) {
      WorkerId cand(static_cast<WorkerId::underlying_type>(w));
      if (cand == worker || !engine().worker_alive(cand)) continue;
      if (!target.valid() ||
          engine().worker_backlog(cand) < engine().worker_backlog(target))
        target = cand;
    }
    // With every worker down the task waits for the next failure event
    // of a recovered worker to re-place it — in practice recovery
    // always precedes that, and the engine flags a truly stuck job.
    // (Sharded mode parks it in the orphan set so the next idle worker
    // picks it up by lowest id, exactly like the flat orphan scan.)
    if (!target.valid()) {
      if (sharded()) orphans_.insert(t.value());
      continue;
    }
    instances.push_back(target);
    if (sharded()) sync_replicable(t);
    engine().assign_task(t, target);
  }
}

void StorageAffinityScheduler::on_task_completed(TaskId task,
                                                 WorkerId worker) {
  completed_[task.value()] = 1;
  if (sharded()) {
    sync_replicable(task);  // completed: leaves every replica index
    // Trim the inverted index so cache events stop touching this task.
    for (FileId f : engine().job().task(task).files) {
      const bool removed = tasks_of_file_.erase_swap(f.value(), task);
      WCS_DCHECK(removed);
      (void)removed;
    }
  }
  for (WorkerId w : placements_[task.value()]) {
    if (w == worker) continue;
    engine().cancel_task(task, w);
  }
  placements_[task.value()].clear();
}

void StorageAffinityScheduler::audit_collect(
    std::vector<audit::Violation>& out) const {
  if (!sharded() || replica_index_.empty()) return;
  const workload::Job& job = engine().job();

  for (std::size_t s = 0; s < replica_index_.size(); ++s) {
    const SiteId site(static_cast<SiteId::underlying_type>(s));
    const ShardedTaskIndex& shard = replica_index_[s];
    const storage::FileCache& cache = engine().site_cache(site);

    audit::ShardedIndexSnapshot snap;
    snap.label = "site " + std::to_string(s) + " replica index";
    snap.indexed = shard.size();
    snap.defects = shard.structural_defects();
    std::size_t expected = 0;
    for (std::size_t i = 0; i < placements_.size(); ++i) {
      const TaskId t(static_cast<TaskId::underlying_type>(i));
      const auto& instances = placements_[i];
      const bool want =
          !completed_[i] && !instances.empty() &&
          instances.size() < static_cast<std::size_t>(params_.max_replicas);
      if (want) ++expected;
      if (want != shard.contains(t)) {
        std::ostringstream os;
        os << "task " << t << (want ? " replicable but not indexed"
                                    : " indexed but not replicable");
        snap.defects.push_back(os.str());
        continue;
      }
      if (!want) continue;
      // Key vs brute-force byte overlap against the live cache.
      Bytes bytes = 0;
      for (FileId f : job.task(t).files)
        if (cache.contains(f)) bytes += job.catalog.size(f);
      if (shard.key_of(t) != bytes ||
          cached_bytes_[s][t.value()] != bytes) {
        std::ostringstream os;
        os << "task " << t << " filed under " << shard.key_of(t)
           << " bytes (counter " << cached_bytes_[s][t.value()]
           << ") but the rescan finds " << bytes;
        snap.defects.push_back(os.str());
      }
    }
    snap.expected = expected;
    audit::check_sharded_index(snap, out);
  }

  // Orphan set vs the placement table.
  audit::ShardedIndexSnapshot orphan_snap;
  orphan_snap.label = "orphan set";
  orphan_snap.indexed = orphans_.size();
  std::size_t expected_orphans = 0;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    const TaskId t(static_cast<TaskId::underlying_type>(i));
    const bool is_orphan = !completed_[i] && placements_[i].empty();
    // A task completed-and-cleared is not an orphan; one the flat scan
    // would pick up must be in the set.
    if (is_orphan) ++expected_orphans;
    if (is_orphan != orphans_.contains(t.value())) {
      std::ostringstream os;
      os << "task " << t
         << (is_orphan ? " orphaned but not tracked" : " tracked but placed");
      orphan_snap.defects.push_back(os.str());
    }
  }
  orphan_snap.expected = expected_orphans;
  audit::check_sharded_index(orphan_snap, out);
}

}  // namespace wcs::sched
