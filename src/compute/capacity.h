// Worker compute capacities.
//
// The paper draws each worker's capacity "randomly from [the] top500 list
// and divide[s it] by 100, since most of the 500 machines are too
// powerful" (Sec. 5.2). We do not ship the proprietary list; instead we
// embed a synthetic 500-entry Rmax table with the shape of the June-2006
// list (top ~280 TFLOPS, rank-500 ~2.7 TFLOPS, power-law decay in
// between), which is all the evaluation depends on: a heavy-tailed spread
// of worker speeds. Substitution documented in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace wcs::compute {

// Rmax in GFLOPS for ranks 1..500, descending.
[[nodiscard]] const std::vector<double>& top500_rmax_gflops();

// One worker speed in MFLOPS, sampled per the paper's recipe:
// uniform rank from the table, divided by 100.
[[nodiscard]] double sample_worker_mflops(Rng& rng);

struct Worker {
  WorkerId id;
  SiteId site;
  NodeId node;
  double mflops = 0;

  // Execution time of a task costing `mflop` MFLOP.
  [[nodiscard]] double compute_time_s(double mflop) const {
    WCS_CHECK(mflops > 0);
    return mflop / mflops;
  }
};

}  // namespace wcs::compute
