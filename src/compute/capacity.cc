#include "compute/capacity.h"

#include <cmath>

#include "common/units.h"

namespace wcs::compute {

const std::vector<double>& top500_rmax_gflops() {
  static const std::vector<double> table = [] {
    // Power-law interpolation between the June-2006 endpoints:
    // Rmax(1) = 280,600 GF (BlueGene/L), Rmax(500) = 2,737 GF.
    // Rmax(r) = a * r^-b with b chosen to hit both endpoints.
    constexpr double kTop = 280600.0;
    constexpr double kBottom = 2737.0;
    const double b = std::log(kTop / kBottom) / std::log(500.0);
    std::vector<double> t;
    t.reserve(500);
    for (int r = 1; r <= 500; ++r)
      t.push_back(kTop * std::pow(static_cast<double>(r), -b));
    return t;
  }();
  return table;
}

double sample_worker_mflops(Rng& rng) {
  const auto& table = top500_rmax_gflops();
  double gflops = table[rng.index(table.size())];
  return gigaflops_to_mflops(gflops) / 100.0;
}

}  // namespace wcs::compute
