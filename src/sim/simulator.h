// Discrete-event simulation kernel.
//
// This is the SimGrid-equivalent substrate the paper's evaluation runs on
// (see DESIGN.md §2). It is a classic event-queue kernel: callbacks are
// scheduled at absolute simulated times; `run()` pops events in
// (time, insertion-sequence) order, so simultaneous events execute in the
// deterministic order they were scheduled. Everything above (network
// flows, data servers, workers, schedulers) is driven from these events.
//
// Cancellation is lazy: event ids are dense sequence numbers, so
// per-event state lives in a flat byte vector instead of hash sets, and a
// cancelled entry is simply skipped when the heap pops it. Scheduling,
// cancelling, and popping therefore do no hashing on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "obs/profiler.h"

namespace wcs::sim {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable, non-movable: entities capture `this` in callbacks.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Attach a wall-clock phase profiler (nullptr detaches). Profiling is
  // read-only over kernel state: it never alters event order or timing.
  void set_profiler(obs::PhaseProfiler* profiler) { profiler_ = profiler; }

  // Schedule `cb` to run at now() + delay. delay must be >= 0.
  EventId schedule_in(SimTime delay, EventCallback cb) {
    WCS_CHECK_MSG(delay >= 0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  // Schedule `cb` at the absolute simulated time `at` (>= now()).
  EventId schedule_at(SimTime at, EventCallback cb) {
    WCS_CHECK_MSG(at >= now_, "event in the past: " << at << " < " << now_);
    EventId id(next_seq_++);
    state_.push_back(EventState::kLive);  // state_[id.value()]
    ++live_count_;
    if (live_count_ > peak_live_) peak_live_ = live_count_;
    queue_.push(Entry{at, id, std::move(cb)});
    return id;
  }

  // Cancel a pending event. Cancelling an already-fired or
  // already-cancelled event is a no-op (returns false). The heap entry
  // stays behind as a tombstone and is discarded when popped.
  bool cancel(EventId id) {
    if (!id.valid() || id.value() >= state_.size()) return false;
    if (state_[id.value()] != EventState::kLive) return false;
    state_[id.value()] = EventState::kCancelled;
    --live_count_;
    return true;
  }

  // Run a single event. Returns false if no live event remains.
  bool step() {
    while (!queue_.empty()) {
      Entry e = pop();
      EventState& st = state_[e.id.value()];
      if (st == EventState::kCancelled) continue;  // tombstone
      WCS_DCHECK(st == EventState::kLive);
      st = EventState::kFired;
      --live_count_;
      now_ = e.time;
      ++executed_;
      {
        obs::ScopedPhase phase(profiler_, obs::Phase::kEventDispatch);
        e.cb();
      }
      return true;
    }
    return false;
  }

  // Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  // Run events with time <= deadline, then set the clock to the deadline
  // (if it has not already passed it).
  void run_until(SimTime deadline) {
    for (;;) {
      // Tombstones must not gate the deadline check: a cancelled entry at
      // the top says nothing about when the next LIVE event fires.
      while (!queue_.empty() &&
             state_[queue_.top().id.value()] == EventState::kCancelled)
        queue_.pop();
      if (queue_.empty() || queue_.top().time > deadline) break;
      if (!step()) break;
    }
    if (now_ < deadline) now_ = deadline;
  }

  // True when no live (scheduled, uncancelled, unfired) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }
  // High-water mark of simultaneously live events (queue pressure).
  [[nodiscard]] std::size_t peak_live_events() const { return peak_live_; }

  // --- Audit introspection ----------------------------------------------
  // The incrementally-maintained live counter (O(1)), and a full recount
  // of the per-event lifecycle bytes (O(events ever scheduled)). The
  // invariant auditor cross-checks one against the other.
  [[nodiscard]] std::size_t live_events() const { return live_count_; }

  struct EventCounts {
    std::size_t live = 0;
    std::size_t cancelled = 0;
    std::size_t fired = 0;
    std::uint64_t scheduled = 0;  // events ever scheduled
  };
  [[nodiscard]] EventCounts recount_events() const {
    EventCounts counts;
    counts.scheduled = next_seq_;
    for (EventState s : state_) {
      switch (s) {
        case EventState::kLive: ++counts.live; break;
        case EventState::kCancelled: ++counts.cancelled; break;
        case EventState::kFired: ++counts.fired; break;
      }
    }
    return counts;
  }

 private:
  enum class EventState : std::uint8_t { kLive, kCancelled, kFired };

  struct Entry {
    SimTime time = 0;
    EventId id;
    EventCallback cb;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Entry pop() {
    // std::priority_queue::top() returns const&; the callback must be
    // moved out, so we const_cast on the known-safe pattern (the element
    // is removed immediately after).
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    return e;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Per-event lifecycle, indexed by the (dense) event sequence number —
  // one byte per event ever scheduled, in lieu of live/cancelled hash
  // sets.
  std::vector<EventState> state_;
  std::size_t live_count_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t executed_ = 0;
  obs::PhaseProfiler* profiler_ = nullptr;
};

}  // namespace wcs::sim
