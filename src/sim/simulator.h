// Discrete-event simulation kernel.
//
// This is the SimGrid-equivalent substrate the paper's evaluation runs on
// (see DESIGN.md §2). It is a classic event-queue kernel: callbacks are
// scheduled at absolute simulated times; `run()` pops events in
// (time, insertion-sequence) order, so simultaneous events execute in the
// deterministic order they were scheduled. Everything above (network
// flows, data servers, workers, schedulers) is driven from these events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace wcs::sim {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;

  // Non-copyable, non-movable: entities capture `this` in callbacks.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  // Schedule `cb` to run at now() + delay. delay must be >= 0.
  EventId schedule_in(SimTime delay, EventCallback cb) {
    WCS_CHECK_MSG(delay >= 0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  // Schedule `cb` at the absolute simulated time `at` (>= now()).
  EventId schedule_at(SimTime at, EventCallback cb) {
    WCS_CHECK_MSG(at >= now_, "event in the past: " << at << " < " << now_);
    EventId id(next_seq_++);
    queue_.push(Entry{at, id, std::move(cb)});
    live_.insert(id);
    return id;
  }

  // Cancel a pending event. Cancelling an already-fired or
  // already-cancelled event is a no-op (returns false).
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    if (live_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  // Run a single event. Returns false if the queue is empty.
  bool step() {
    while (!queue_.empty()) {
      Entry e = pop();
      if (cancelled_.erase(e.id) > 0) continue;
      live_.erase(e.id);
      now_ = e.time;
      ++executed_;
      e.cb();
      return true;
    }
    return false;
  }

  // Run until the queue drains.
  void run() {
    while (step()) {
    }
  }

  // Run events with time <= deadline, then set the clock to the deadline
  // (if it has not already passed it).
  void run_until(SimTime deadline) {
    while (!queue_.empty() && queue_.top().time <= deadline) {
      if (!step()) break;
    }
    if (now_ < deadline) now_ = deadline;
  }

  // True when no live (scheduled, uncancelled, unfired) events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    EventCallback cb;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Entry pop() {
    // std::priority_queue::top() returns const&; the callback must be
    // moved out, so we const_cast on the known-safe pattern (the element
    // is removed immediately after).
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    return e;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
  std::size_t executed_ = 0;
};

}  // namespace wcs::sim
