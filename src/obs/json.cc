#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wcs::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest representation that round-trips: try increasing precision.
  char buf[32];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::before_value() {
  if (stack_.empty()) {
    WCS_CHECK_MSG(values_at_root_ == 0, "multiple top-level JSON values");
    ++values_at_root_;
    return;
  }
  Frame& top = stack_.back();
  if (top.is_object) {
    WCS_CHECK_MSG(top.has_key, "JSON object value without a key");
    top.has_key = false;
  } else {
    if (top.count > 0) out_ << ',';
    newline_indent();
  }
  ++top.count;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i)
    out_ << ' ';
}

void JsonWriter::open(char c, char, bool is_object) {
  before_value();
  out_ << c;
  stack_.push_back(Frame{is_object, false, 0});
}

void JsonWriter::close(char c, bool is_object) {
  WCS_CHECK_MSG(!stack_.empty(), "unbalanced JSON end");
  WCS_CHECK_MSG(stack_.back().is_object == is_object,
                "mismatched JSON container close");
  WCS_CHECK_MSG(!stack_.back().has_key, "JSON key with no value");
  const bool had_members = stack_.back().count > 0;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_ << c;
  if (stack_.empty()) out_ << '\n';
}

void JsonWriter::key(std::string_view k) {
  WCS_CHECK_MSG(!stack_.empty() && stack_.back().is_object,
                "JSON key outside an object");
  Frame& top = stack_.back();
  WCS_CHECK_MSG(!top.has_key, "two JSON keys in a row");
  if (top.count > 0) out_ << ',';
  newline_indent();
  out_ << '"' << json_escape(k) << "\": ";
  top.has_key = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  out_ << '"' << json_escape(s) << '"';
}

void JsonWriter::value(double v) {
  before_value();
  out_ << json_number(v);
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  out_ << "null";
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (!is_object()) return nullptr;
  for (const auto& [key, value] : object)
    if (key == k) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // Encode as UTF-8 (basic multilingual plane only; surrogate
          // pairs are not needed for the reports we read back).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::runtime_error("cannot open JSON file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str());
}

}  // namespace wcs::obs
