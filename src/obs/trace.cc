#include "obs/trace.h"

#include <fstream>

#include "common/check.h"
#include "obs/json.h"

namespace wcs::obs {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAssign: return "assign";
    case SpanKind::kFetch: return "fetch";
    case SpanKind::kCompute: return "compute";
    case SpanKind::kComplete: return "complete";
    case SpanKind::kCancelled: return "cancelled";
    case SpanKind::kTransfer: return "transfer";
    case SpanKind::kEviction: return "eviction";
    case SpanKind::kWorkerFailed: return "worker-failed";
    case SpanKind::kWorkerRecovered: return "worker-recovered";
  }
  return "?";
}

bool is_instant(SpanKind kind) {
  switch (kind) {
    case SpanKind::kFetch:
    case SpanKind::kCompute:
    case SpanKind::kTransfer: return false;
    default: return true;
  }
}

EventTracer::EventTracer(std::size_t capacity) : capacity_(capacity) {
  WCS_CHECK_MSG(capacity > 0, "tracer needs a non-zero capacity");
  ring_.reserve(capacity);
}

const TraceSpan& EventTracer::span(std::size_t i) const {
  WCS_CHECK(i < ring_.size());
  if (ring_.size() < capacity_) return ring_[i];
  return ring_[(next_ + i) % capacity_];
}

void EventTracer::write_chrome_trace(std::ostream& out) const {
  JsonWriter w(out, /*indent=*/0);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < size(); ++i) {
    const TraceSpan& s = span(i);
    w.begin_object();
    w.member("name", to_string(s.kind));
    w.member("cat", "sim");
    w.member("ph", is_instant(s.kind) ? "i" : "X");
    w.member("ts", s.start * 1e6);  // simulated µs
    if (!is_instant(s.kind)) w.member("dur", s.duration_s * 1e6);
    w.member("pid", std::uint64_t{0});
    w.member("tid", std::uint64_t{s.track});
    if (is_instant(s.kind)) w.member("s", "t");  // thread-scoped instant
    w.key("args");
    w.begin_object();
    if (s.task.valid()) w.member("task", std::uint64_t{s.task.value()});
    if (s.bytes > 0) w.member("bytes", s.bytes);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.member("recorded", recorded());
  w.member("dropped", dropped());
  w.end_object();
  w.end_object();
}

void EventTracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot open trace output " << path);
  write_chrome_trace(out);
}

}  // namespace wcs::obs
