// Low-overhead metrics primitives: named counters, gauges, and
// fixed-bucket histograms behind a registry.
//
// Usage pattern: a component looks its instruments up ONCE (registration
// walks a map) and keeps raw pointers for the hot path, where an update
// is a single add — no hashing, no locking (each simulation owns its own
// registry; the parallel experiment runner never shares one across
// threads). When observability is disabled the component holds null
// pointers and pays one predictable branch per update site.
//
// Counters are unsigned 64-bit and wrap modulo 2^64 on overflow (plain
// unsigned arithmetic, property-tested); histograms have a fixed bucket
// layout chosen at registration so add() is O(1) and merge() across
// runs/shards is exact and associative.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/check.h"

namespace wcs::obs {

class JsonWriter;

// Monotonic event count. Overflow wraps modulo 2^64 by design: deltas
// between two reads stay correct under unsigned arithmetic.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written scalar (e.g. makespan, bytes delivered).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-width histogram over [lo, hi) with explicit underflow/overflow
// buckets. add() is O(1); merge() requires an identical layout and is
// commutative and associative (plain bucket-wise sums).
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] double bucket_lower(std::size_t i) const;
  [[nodiscard]] double bucket_upper(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  [[nodiscard]] bool same_layout(const FixedHistogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           buckets_.size() == other.buckets_.size();
  }

  // Bucket-wise sum; layouts must match (checked).
  void merge(const FixedHistogram& other);

  // Upper-edge quantile estimate, q in [0, 1]: the smallest bucket upper
  // edge whose cumulative count reaches q * count(). Underflow maps to
  // lo(), overflow to hi(). Monotone non-decreasing in q by construction.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_ = 0;
  double hi_ = 0;
  double width_ = 0;  // (hi - lo) / buckets
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

// Name -> instrument map. Lookup/registration is cold-path (std::map);
// returned references are stable for the registry's lifetime, so
// components cache them. Iteration order is name-sorted, which keeps
// JSON dumps deterministic.
class MetricsRegistry {
 public:
  // Returns the existing instrument or creates it.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  // An existing histogram must have the same layout (checked).
  [[nodiscard]] FixedHistogram& histogram(const std::string& name, double lo,
                                          double hi, std::size_t buckets);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const FixedHistogram* find_histogram(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  // name-sorted keys. Emitted as one value (callers position the writer).
  void write_json(JsonWriter& w) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, FixedHistogram> histograms_;
};

}  // namespace wcs::obs
