#include "obs/run_report.h"

#include <filesystem>
#include <fstream>

#include "common/check.h"

namespace wcs::obs {

ReportRow ReportRow::from(const metrics::AveragedResult& r) {
  ReportRow row;
  row.scheduler = r.scheduler;
  row.runs = r.runs;
  row.makespan_minutes = r.makespan_minutes;
  row.transfers_per_site = r.transfers_per_site;
  row.total_file_transfers = r.total_file_transfers;
  row.total_gigabytes = r.total_gigabytes;
  row.waiting_hours_per_site = r.waiting_hours_per_site;
  row.transfer_hours_per_site = r.transfer_hours_per_site;
  row.replicas_started = r.replicas_started;
  row.total_gigabytes_saved = r.total_gigabytes_saved;
  row.dedup_ratio = r.dedup_ratio;
  row.jain_fairness = r.jain_fairness;
  row.tenants = r.tenants;
  return row;
}

void RunReport::write(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", kReportSchemaVersion);
  w.member("bench", bench);
  w.member("title", title);
  w.member("x_axis", x_axis);
  w.member("metric", metric);
  w.key("config");
  w.begin_object();
  w.member("tasks", config.tasks);
  w.member("seeds", config.seeds);
  w.member("jobs", config.jobs);
  w.member("fast", config.fast);
  w.member("audit", config.audit);
  w.member("trace", config.trace);
  w.end_object();
  w.member("total_wall_seconds", total_wall_seconds);
  w.key("points");
  w.begin_array();
  for (const ReportPoint& pt : points) {
    w.begin_object();
    w.member("x", pt.x);
    w.member("x_label", pt.x_label);
    w.member("wall_seconds", pt.wall_seconds);
    w.key("schedulers");
    w.begin_array();
    for (const ReportRow& r : pt.rows) {
      w.begin_object();
      w.member("name", r.scheduler);
      w.member("runs", r.runs);
      w.member("makespan_minutes", r.makespan_minutes);
      w.member("transfers_per_site", r.transfers_per_site);
      w.member("total_file_transfers", r.total_file_transfers);
      w.member("total_gigabytes", r.total_gigabytes);
      w.member("waiting_hours_per_site", r.waiting_hours_per_site);
      w.member("transfer_hours_per_site", r.transfer_hours_per_site);
      w.member("replicas_started", r.replicas_started);
      if (r.total_gigabytes_saved > 0) {
        w.member("total_gigabytes_saved", r.total_gigabytes_saved);
        w.member("dedup_ratio", r.dedup_ratio);
      }
      if (!r.tenants.empty()) {
        w.member("jain_fairness", r.jain_fairness);
        w.key("tenants");
        w.begin_array();
        for (const metrics::TenantResult& t : r.tenants) {
          w.begin_object();
          w.member("name", t.name);
          w.member("weight", t.weight);
          w.member("tasks", t.tasks);
          w.member("completed", t.completed);
          w.member("first_arrival_s", t.first_arrival_s);
          w.member("time_to_first_task_s", t.time_to_first_task_s);
          w.member("makespan_s", t.makespan_s);
          w.member("sojourn_mean_s", t.sojourn_mean_s);
          w.member("sojourn_p50_s", t.sojourn_p50_s);
          w.member("sojourn_p95_s", t.sojourn_p95_s);
          w.member("sojourn_p99_s", t.sojourn_p99_s);
          w.end_object();
        }
        w.end_array();
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (phases) {
    w.key("phases");
    phases->write_json(w);
  }
  w.end_object();
}

void RunReport::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot open report output " << path);
  write(out);
}

namespace {

class Validator {
 public:
  Validator(const JsonValue& doc, const std::string& label)
      : doc_(doc), label_(label) {}

  std::vector<std::string> run() {
    if (!doc_.is_object()) {
      complain("", "top level must be a JSON object");
      return std::move(errors_);
    }
    check_version();
    require_string("bench", /*non_empty=*/true);
    require_string("title", false);
    require_string("x_axis", false);
    require_string("metric", false);
    check_config();
    require_number("total_wall_seconds", doc_, 0.0);
    check_points();
    check_phases();
    return std::move(errors_);
  }

 private:
  void complain(const std::string& where, const std::string& what) {
    errors_.push_back(label_ + (where.empty() ? "" : ": " + where) + ": " +
                      what);
  }

  void check_version() {
    const JsonValue* v = doc_.find("schema_version");
    if (!v || !v->is_number()) {
      complain("schema_version", "missing or not a number");
      return;
    }
    if (v->number < kMinReportSchemaVersion ||
        v->number > kReportSchemaVersion) {
      complain("schema_version",
               "unsupported version " + json_number(v->number) + " (want " +
                   std::to_string(kMinReportSchemaVersion) + ".." +
                   std::to_string(kReportSchemaVersion) + ")");
      return;
    }
    version_ = static_cast<int>(v->number);
  }

  void require_string(const std::string& key, bool non_empty) {
    const JsonValue* v = doc_.find(key);
    if (!v || !v->is_string())
      complain(key, "missing or not a string");
    else if (non_empty && v->string.empty())
      complain(key, "must not be empty");
  }

  // key must exist in `in`, be a number, and be >= min.
  bool require_number(const std::string& key, const JsonValue& in,
                      double min, const std::string& where = "") {
    const std::string at = where.empty() ? key : where + "." + key;
    const JsonValue* v = in.find(key);
    if (!v || !v->is_number()) {
      complain(at, "missing or not a number");
      return false;
    }
    if (v->number < min) {
      complain(at, "must be >= " + json_number(min) + ", got " +
                       json_number(v->number));
      return false;
    }
    return true;
  }

  void require_bool(const std::string& key, const JsonValue& in,
                    const std::string& where) {
    const JsonValue* v = in.find(key);
    if (!v || !v->is_bool()) complain(where + "." + key, "missing or not a bool");
  }

  void check_config() {
    const JsonValue* c = doc_.find("config");
    if (!c || !c->is_object()) {
      complain("config", "missing or not an object");
      return;
    }
    require_number("tasks", *c, 1, "config");
    require_number("seeds", *c, 1, "config");
    require_number("jobs", *c, 1, "config");
    require_bool("fast", *c, "config");
    require_bool("audit", *c, "config");
    require_bool("trace", *c, "config");
  }

  void check_points() {
    const JsonValue* pts = doc_.find("points");
    if (!pts || !pts->is_array()) {
      complain("points", "missing or not an array");
      return;
    }
    if (pts->array.empty()) {
      complain("points", "must contain at least one sweep point");
      return;
    }
    double prev_wall = 0;
    for (std::size_t i = 0; i < pts->array.size(); ++i) {
      const std::string at = "points[" + std::to_string(i) + "]";
      const JsonValue& pt = pts->array[i];
      if (!pt.is_object()) {
        complain(at, "not an object");
        continue;
      }
      const JsonValue* x = pt.find("x");
      if (!x || !x->is_number()) complain(at + ".x", "missing or not a number");
      const JsonValue* label = pt.find("x_label");
      if (!label || !label->is_string() || label->string.empty())
        complain(at + ".x_label", "missing, not a string, or empty");
      if (require_number("wall_seconds", pt, 0.0, at)) {
        const double wall = pt.find("wall_seconds")->number;
        if (wall < prev_wall)
          complain(at + ".wall_seconds",
                   "timestamps must be monotone non-decreasing (" +
                       json_number(wall) + " after " + json_number(prev_wall) +
                       ")");
        prev_wall = wall;
      }
      check_schedulers(pt, at);
    }
  }

  void check_schedulers(const JsonValue& pt, const std::string& at) {
    const JsonValue* rows = pt.find("schedulers");
    if (!rows || !rows->is_array() || rows->array.empty()) {
      complain(at + ".schedulers", "missing, not an array, or empty");
      return;
    }
    static const char* kNumericKeys[] = {
        "makespan_minutes",        "transfers_per_site",
        "total_file_transfers",    "total_gigabytes",
        "waiting_hours_per_site",  "transfer_hours_per_site",
        "replicas_started",
    };
    for (std::size_t i = 0; i < rows->array.size(); ++i) {
      const std::string rat = at + ".schedulers[" + std::to_string(i) + "]";
      const JsonValue& row = rows->array[i];
      if (!row.is_object()) {
        complain(rat, "not an object");
        continue;
      }
      const JsonValue* name = row.find("name");
      if (!name || !name->is_string() || name->string.empty())
        complain(rat + ".name", "missing, not a string, or empty");
      require_number("runs", row, 1, rat);
      for (const char* key : kNumericKeys) require_number(key, row, 0.0, rat);
      check_dedup(row, rat);
      check_tenants(row, rat);
    }
  }

  // Schema-v2 block-store dedup fields (optional; emitted together, and
  // a v1 row carrying them is a violation).
  void check_dedup(const JsonValue& row, const std::string& rat) {
    const JsonValue* saved = row.find("total_gigabytes_saved");
    const JsonValue* ratio = row.find("dedup_ratio");
    if (!saved && !ratio) return;
    if (version_ < 2) {
      complain(rat, "dedup fields require schema_version >= 2");
      return;
    }
    require_number("total_gigabytes_saved", row, 0.0, rat);
    require_number("dedup_ratio", row, 1.0, rat);
  }

  // Schema-v2 per-tenant sections (optional; a v1 row carrying them is
  // a violation — the writer that emits them stamps version 2).
  void check_tenants(const JsonValue& row, const std::string& rat) {
    const JsonValue* tenants = row.find("tenants");
    const JsonValue* jain = row.find("jain_fairness");
    if (!tenants && !jain) return;
    if (version_ < 2) {
      complain(rat, "per-tenant sections require schema_version >= 2");
      return;
    }
    if (!jain || !jain->is_number() || jain->number < 0 ||
        jain->number > 1 + 1e-9)
      complain(rat + ".jain_fairness",
               "missing, not a number, or outside [0, 1]");
    if (!tenants || !tenants->is_array() || tenants->array.empty()) {
      complain(rat + ".tenants", "missing, not an array, or empty");
      return;
    }
    static const char* kTenantNumericKeys[] = {
        "tasks",          "completed",      "first_arrival_s",
        "makespan_s",     "sojourn_mean_s", "sojourn_p50_s",
        "sojourn_p95_s",  "sojourn_p99_s",
    };
    for (std::size_t i = 0; i < tenants->array.size(); ++i) {
      const std::string tat = rat + ".tenants[" + std::to_string(i) + "]";
      const JsonValue& t = tenants->array[i];
      if (!t.is_object()) {
        complain(tat, "not an object");
        continue;
      }
      const JsonValue* name = t.find("name");
      if (!name || !name->is_string() || name->string.empty())
        complain(tat + ".name", "missing, not a string, or empty");
      require_number("weight", t, 1, tat);
      for (const char* key : kTenantNumericKeys)
        require_number(key, t, 0.0, tat);
      // -1 is the "never assigned" sentinel.
      require_number("time_to_first_task_s", t, -1.0, tat);
    }
  }

  void check_phases() {
    const JsonValue* phases = doc_.find("phases");
    if (!phases) return;  // optional
    if (!phases->is_array()) {
      complain("phases", "not an array");
      return;
    }
    for (std::size_t i = 0; i < phases->array.size(); ++i) {
      const std::string at = "phases[" + std::to_string(i) + "]";
      const JsonValue& ph = phases->array[i];
      if (!ph.is_object()) {
        complain(at, "not an object");
        continue;
      }
      const JsonValue* name = ph.find("phase");
      if (!name || !name->is_string())
        complain(at + ".phase", "missing or not a string");
      require_number("calls", ph, 1, at);
      require_number("wall_ms", ph, 0.0, at);
    }
  }

  const JsonValue& doc_;
  std::string label_;
  std::vector<std::string> errors_;
  int version_ = kReportSchemaVersion;
};

}  // namespace

std::vector<std::string> validate_report(const JsonValue& doc,
                                         const std::string& label) {
  return Validator(doc, label).run();
}

std::vector<std::string> validate_report_file(const std::string& path) {
  try {
    return validate_report(parse_json_file(path), path);
  } catch (const std::exception& e) {
    return {path + ": " + e.what()};
  }
}

}  // namespace wcs::obs
