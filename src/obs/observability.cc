#include "obs/observability.h"

#include <cstdlib>

namespace wcs::obs {

Options Options::all() {
  Options o;
  o.metrics = o.profile = o.trace = true;
  return o;
}

Options Options::from_env() {
  Options o;
  // detlint: nondet-source -- WCS_OBS run-config gate, read once at startup; instrumentation is read-only
  if (const char* env = std::getenv("WCS_OBS"); env && *env && *env != '0')
    o.metrics = o.profile = true;
  // detlint: nondet-source -- WCS_TRACE run-config gate, read once at startup; tracing is read-only
  if (const char* env = std::getenv("WCS_TRACE"); env && *env && *env != '0')
    o.trace = true;
  return o;
}

Observability::Observability(const Options& options) : options_(options) {
  if (!options_.trace_path.empty()) options_.trace = true;
  if (options_.metrics) metrics_ = std::make_unique<MetricsRegistry>();
  if (options_.profile) profiler_ = std::make_unique<PhaseProfiler>();
  if (options_.trace)
    tracer_ = std::make_unique<EventTracer>(options_.trace_capacity);
}

void Observability::finish() {
  if (tracer_ && !options_.trace_path.empty())
    tracer_->write_chrome_trace(options_.trace_path);
}

}  // namespace wcs::obs
