// Phase profiler: where does a run spend its host (wall-clock) time?
//
// Components bracket their hot sections with ScopedPhase; the profiler
// accumulates call counts and wall nanoseconds per phase so a run report
// can attribute host time to scheduler decisions vs flow reallocation vs
// cache eviction vs everything else the event loop dispatches
// (DESIGN.md § Observability). ScopedPhase on a null profiler costs one
// branch and never reads the clock, so profiling off is effectively free.
//
// Wall time is host-machine measurement and therefore NOT deterministic;
// it feeds run reports and never any simulation decision, keeping
// instrumented results byte-identical to uninstrumented ones.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace wcs::obs {

class JsonWriter;

enum class Phase : std::uint8_t {
  kEventDispatch,      // event-kernel callback execution (everything)
  kSchedulerDecision,  // scheduler hooks: choose/assign/replicate
  kFlowDirtySet,       // affected-component discovery on flow churn
  kFlowRebalance,      // max-min progressive filling + rescheduling
  kCacheEviction,      // victim selection + eviction bookkeeping
  kReporting,          // metrics/trace/report emission
};
inline constexpr std::size_t kNumPhases = 6;

[[nodiscard]] const char* to_string(Phase phase);

class PhaseProfiler {
 public:
  struct Slot {
    std::uint64_t calls = 0;
    std::uint64_t wall_ns = 0;
  };

  void record(Phase phase, std::uint64_t wall_ns) {
    Slot& s = slots_[static_cast<std::size_t>(phase)];
    ++s.calls;
    s.wall_ns += wall_ns;
  }

  [[nodiscard]] const Slot& slot(Phase phase) const {
    return slots_[static_cast<std::size_t>(phase)];
  }

  [[nodiscard]] std::uint64_t total_wall_ns() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.wall_ns;
    return total;
  }

  // [{"phase": ..., "calls": ..., "wall_ms": ...}, ...] for every phase
  // with at least one call.
  void write_json(JsonWriter& w) const;

 private:
  std::array<Slot, kNumPhases> slots_{};
};

// RAII phase scope. Null-safe: with a null profiler the constructor and
// destructor are a single branch each.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase)
      : profiler_(profiler), phase_(phase) {
    // detlint: nondet-source -- wall-clock phase profiling; measurements never feed back into simulation state
    if (profiler_) start_ = std::chrono::steady_clock::now();
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (!profiler_) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() -  // detlint: nondet-source -- wall-clock phase profiling; never feeds back into simulation state
                  start_)
                  .count();
    profiler_->record(phase_, static_cast<std::uint64_t>(ns));
  }

 private:
  PhaseProfiler* profiler_ = nullptr;
  Phase phase_ = Phase::kEventDispatch;
  // detlint: nondet-source -- wall-clock profiling state, not simulation state
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace wcs::obs
