#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace wcs::obs {

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0) {
  WCS_CHECK_MSG(hi > lo, "histogram range [" << lo << ", " << hi
                                             << ") is empty");
  WCS_CHECK(buckets > 0);
}

void FixedHistogram::add(double x) {
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    ++buckets_[std::min(idx, buckets_.size() - 1)];
  }
}

double FixedHistogram::bucket_lower(std::size_t i) const {
  WCS_CHECK(i < buckets_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double FixedHistogram::bucket_upper(std::size_t i) const {
  WCS_CHECK(i < buckets_.size());
  return i + 1 == buckets_.size() ? hi_
                                  : lo_ + width_ * static_cast<double>(i + 1);
}

void FixedHistogram::merge(const FixedHistogram& other) {
  WCS_CHECK_MSG(same_layout(other),
                "merging histograms with different layouts");
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double FixedHistogram::quantile(double q) const {
  WCS_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return lo_;
  // Smallest edge whose cumulative count reaches the target rank. Rank 0
  // (q == 0) is served by the first non-empty region.
  const double target = q * static_cast<double>(count_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += static_cast<double>(buckets_[i]);
    if (cumulative >= target) return bucket_upper(i);
  }
  return hi_;  // the target rank falls in the overflow bucket
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(name, FixedHistogram(lo, hi, buckets)).first;
  WCS_CHECK_MSG(it->second.same_layout(FixedHistogram(lo, hi, buckets)),
                "histogram " << name << " re-registered with a new layout");
  return it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const FixedHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.member(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.member(name, g.value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.member("lo", h.lo());
    w.member("hi", h.hi());
    w.member("count", h.count());
    w.member("sum", h.sum());
    w.member("underflow", h.underflow());
    w.member("overflow", h.overflow());
    w.key("buckets");
    w.begin_array();
    for (std::size_t i = 0; i < h.num_buckets(); ++i) w.value(h.bucket(i));
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace wcs::obs
