// Observability bundle: one per simulation, owning the metrics registry,
// the event tracer, and the phase profiler (each individually optional).
//
// Instrumentation contract (mirrors src/audit): every instrument is
// READ-ONLY over simulation state and never feeds a simulation decision,
// so an instrumented run is byte-identical to an uninstrumented one; with
// everything disabled the hooks reduce to null-pointer branches
// (overhead budget: < 2% on bench_micro, see DESIGN.md § Observability).
//
// Environment gates (read by Options::from_env(), the GridConfig
// default):
//   WCS_OBS=1    enable the metrics registry + phase profiler
//   WCS_TRACE=1  additionally enable the in-memory event tracer
// Traces are only written to disk when a trace_path is set explicitly
// (benches: --trace-out; the env never sets a path, so parallel runs
// sharing a config cannot clobber one file).
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace wcs::obs {

struct Options {
  bool metrics = false;  // counters / gauges / histograms
  bool profile = false;  // wall-clock phase profiler
  bool trace = false;    // ring-buffer event tracer
  std::size_t trace_capacity = 1 << 16;
  // Dump the Chrome trace here at end of run; empty = keep in memory.
  // Implies trace when non-empty.
  std::string trace_path;

  [[nodiscard]] bool any() const {
    return metrics || profile || trace || !trace_path.empty();
  }

  // All three instruments on (reports want everything).
  [[nodiscard]] static Options all();
  // WCS_OBS / WCS_TRACE, see the header comment.
  [[nodiscard]] static Options from_env();
};

class Observability {
 public:
  explicit Observability(const Options& options);

  // Null when the corresponding instrument is disabled — components hold
  // these pointers and branch on them (their only disabled-mode cost).
  [[nodiscard]] MetricsRegistry* metrics() { return metrics_.get(); }
  [[nodiscard]] const MetricsRegistry* metrics() const {
    return metrics_.get();
  }
  [[nodiscard]] PhaseProfiler* profiler() { return profiler_.get(); }
  [[nodiscard]] const PhaseProfiler* profiler() const {
    return profiler_.get();
  }
  [[nodiscard]] EventTracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const EventTracer* tracer() const { return tracer_.get(); }

  [[nodiscard]] const Options& options() const { return options_; }

  // End-of-run hook: writes the Chrome trace if a path was configured.
  void finish();

 private:
  Options options_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<PhaseProfiler> profiler_;
  std::unique_ptr<EventTracer> tracer_;
};

}  // namespace wcs::obs
