// Structured event tracer: a fixed-capacity ring buffer of simulation
// spans, dumpable as Chrome trace_event JSON (chrome://tracing,
// https://ui.perfetto.dev).
//
// The engine records the task lifecycle (assign -> fetch -> compute ->
// complete), the flow layer records transfers, and the storage layer
// records evictions. Each record is a POD appended in O(1); when the ring
// is full the oldest spans are overwritten and counted as dropped, so a
// 6,000-task run can trace its tail without unbounded memory.
//
// Timestamps are SIMULATED time (exported as microseconds, the
// trace_event unit), so traces are deterministic and diffable across
// hosts. Tracks ("tid") are worker ids for lifecycle spans, node ids for
// transfers, and site ids for evictions.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/ids.h"
#include "common/units.h"

namespace wcs::obs {

enum class SpanKind : std::uint8_t {
  kAssign,     // instant: task handed to a worker's queue
  kFetch,      // span: batch request at the data server until all resident
  kCompute,    // span: task execution on the worker
  kComplete,   // instant: task finished (winning instance)
  kCancelled,  // instant: instance cancelled (lost race or crash)
  kTransfer,   // span: one network flow, latency phase included
  kEviction,   // instant: a file evicted from a site cache
  kWorkerFailed,
  kWorkerRecovered,
};

[[nodiscard]] const char* to_string(SpanKind kind);
// Instants render as trace_event phase "i", spans as complete events "X".
[[nodiscard]] bool is_instant(SpanKind kind);

struct TraceSpan {
  SimTime start = 0;      // simulated seconds
  double duration_s = 0;  // 0 for instants
  SpanKind kind{};
  std::uint32_t track = 0;  // worker / node / site id (trace "tid")
  TaskId task;              // invalid when not task-scoped
  double bytes = 0;         // payload, transfers only
};

class EventTracer {
 public:
  explicit EventTracer(std::size_t capacity);

  void record(const TraceSpan& span) {
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
    } else {
      ring_[next_] = span;
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
    }
    ++recorded_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  // Spans ever recorded / overwritten by ring wrap-around.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  // i-th retained span in record order (0 = oldest retained).
  [[nodiscard]] const TraceSpan& span(std::size_t i) const;

  // Chrome trace_event JSON object: {"traceEvents": [...], ...}. ts/dur
  // are simulated microseconds; pid 0 names the simulation process.
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace(const std::string& path) const;

 private:
  std::size_t capacity_ = 0;
  std::size_t next_ = 0;  // overwrite cursor once full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceSpan> ring_;
};

}  // namespace wcs::obs
