// Machine-readable run reports (results/bench_<name>.json).
//
// Every bench emits one JSON report per invocation alongside its
// human-readable table and CSV: the bench configuration, one row per
// (sweep point, scheduler) with the paper's headline metrics, a wall-time
// stamp per point (monotone non-decreasing — points complete in order),
// and an optional host-time phase breakdown. This is the schema the
// perf-trajectory tooling consumes, so it is versioned and validated
// (validate_report / tools/report_lint, tested by test_report_schema).
//
// Schema v1 (all units spelled out in key names):
//   schema_version        int, == 1
//   bench                 string, non-empty ("bench_fig5_transfers")
//   title / x_axis / metric  strings
//   config {tasks, seeds, jobs: int >= 1; fast, audit, trace: bool}
//   total_wall_seconds    number >= 0
//   points [ >= 1
//     { x: number, x_label: string non-empty,
//       wall_seconds: number >= 0, non-decreasing across points,
//       schedulers [ >= 1
//         { name: string non-empty, runs: int >= 1,
//           makespan_minutes, transfers_per_site, total_file_transfers,
//           total_gigabytes, waiting_hours_per_site,
//           transfer_hours_per_site, replicas_started: number >= 0 } ] } ]
//   phases                optional array (obs::PhaseProfiler::write_json)
//
// Schema v2 == v1 plus optional per-tenant sections on a scheduler row
// (open-system benches; closed-batch reports emit exactly the v1 row
// shape under schema_version 2):
//   schedulers[i].jain_fairness   number in [0, 1]   (with tenants)
//   schedulers[i].tenants [ >= 1
//     { name: string non-empty, weight: int >= 1, tasks, completed,
//       first_arrival_s, makespan_s, sojourn_mean_s, sojourn_p50_s,
//       sojourn_p95_s, sojourn_p99_s: number >= 0,
//       time_to_first_task_s: number >= -1 (-1 = never assigned) } ]
// and optional block-store dedup fields on a scheduler row (emitted
// together, only when the run actually deduplicated bytes; whole-file
// rows keep the exact v1 shape):
//   schedulers[i].total_gigabytes_saved   number >= 0
//   schedulers[i].dedup_ratio             number >= 1
// The validator accepts both versions; tenant sections or dedup fields
// under v1 are a violation (they imply v2).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "metrics/results.h"
#include "obs/json.h"
#include "obs/profiler.h"

namespace wcs::obs {

inline constexpr int kReportSchemaVersion = 2;
// Oldest schema validate_report still accepts.
inline constexpr int kMinReportSchemaVersion = 1;

// One scheduler's averaged metrics at one sweep point.
struct ReportRow {
  std::string scheduler;
  std::size_t runs = 0;
  double makespan_minutes = 0;
  double transfers_per_site = 0;
  double total_file_transfers = 0;
  double total_gigabytes = 0;
  double waiting_hours_per_site = 0;
  double transfer_hours_per_site = 0;
  double replicas_started = 0;
  // Schema v2: block-store dedup series, written only when
  // total_gigabytes_saved > 0 (whole-file runs keep the v1 row shape).
  double total_gigabytes_saved = 0;
  double dedup_ratio = 1.0;
  // Schema v2: per-tenant sections (empty for closed-batch benches).
  double jain_fairness = 1.0;
  std::vector<metrics::TenantResult> tenants;

  [[nodiscard]] static ReportRow from(const metrics::AveragedResult& r);
};

struct ReportPoint {
  double x = 0;
  std::string x_label;
  // Elapsed host seconds since the bench started, sampled when this
  // point finished — monotone across points by construction.
  double wall_seconds = 0;
  std::vector<ReportRow> rows;
};

struct RunReport {
  std::string bench;   // binary name, e.g. "bench_fig5_transfers"
  std::string title;   // human title ("Figure 5: ...")
  std::string x_axis;  // sweep variable name
  std::string metric;  // headline metric name

  struct Config {
    std::size_t tasks = 0;
    std::size_t seeds = 0;
    std::size_t jobs = 0;
    bool fast = false;
    bool audit = false;
    bool trace = false;
  } config;

  std::vector<ReportPoint> points;
  double total_wall_seconds = 0;
  const PhaseProfiler* phases = nullptr;  // optional breakdown

  void write(std::ostream& out) const;
  // Creates parent directories as needed.
  void write(const std::string& path) const;
};

// Returns every schema violation found (empty = valid). Accepts schema
// v1 and v2 run reports; `label` prefixes each message (typically the
// path).
[[nodiscard]] std::vector<std::string> validate_report(
    const JsonValue& doc, const std::string& label = "report");

// Parse + validate one file; I/O and parse errors come back as a single
// violation instead of an exception so lint tools can keep going.
[[nodiscard]] std::vector<std::string> validate_report_file(
    const std::string& path);

}  // namespace wcs::obs
