// Minimal JSON toolkit: a streaming writer and a small recursive-descent
// parser. No external dependencies — the observability layer emits run
// reports and Chrome traces with the writer, and the schema validator
// (obs/run_report.h, tools/report_lint) reads them back with the parser.
//
// The writer produces deterministic output: keys are emitted in the
// order given, doubles with round-trip precision (%.17g shortened), and
// non-finite doubles as null (JSON has no inf/nan).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace wcs::obs {

// `s` with JSON escapes applied (quotes, backslash, control chars).
[[nodiscard]] std::string json_escape(std::string_view s);

// Shortest decimal string that round-trips `v` through a double.
// Non-finite values render as "null".
[[nodiscard]] std::string json_number(double v);

// Streaming writer with pretty-printing. Usage:
//
//   JsonWriter w(out);
//   w.begin_object();
//   w.key("answer"); w.value(42.0);
//   w.key("tags"); w.begin_array(); w.value("a"); w.end_array();
//   w.end_object();
//
// Structural misuse (value without a key inside an object, unbalanced
// end_*) trips a WCS_CHECK.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(out), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() { open('{', '}', /*is_object=*/true); }
  void end_object() { close('}', /*is_object=*/true); }
  void begin_array() { open('[', ']', /*is_object=*/false); }
  void end_array() { close(']', /*is_object=*/false); }

  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);
  void null();

  // Convenience: key + scalar value in one call.
  template <typename T>
  void member(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  struct Frame {
    bool is_object = false;
    bool has_key = false;   // a key was written, value pending
    std::size_t count = 0;  // members/elements emitted so far
  };

  void open(char c, char closer, bool is_object);
  void close(char c, bool is_object);
  void before_value();
  void newline_indent();

  std::ostream& out_;
  int indent_ = 2;
  std::vector<Frame> stack_;
  std::size_t values_at_root_ = 0;
};

// Parsed JSON document node. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  // First member with key `k`, or nullptr. Objects only.
  [[nodiscard]] const JsonValue* find(std::string_view k) const;
  [[nodiscard]] bool has(std::string_view k) const {
    return find(k) != nullptr;
  }
};

// Parses a complete JSON document; throws std::runtime_error with a
// position-annotated message on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

// Reads and parses a whole file; throws on I/O or parse errors.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

}  // namespace wcs::obs
