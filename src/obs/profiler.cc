#include "obs/profiler.h"

#include "obs/json.h"

namespace wcs::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kEventDispatch: return "event-dispatch";
    case Phase::kSchedulerDecision: return "scheduler-decision";
    case Phase::kFlowDirtySet: return "flow-dirty-set";
    case Phase::kFlowRebalance: return "flow-rebalance";
    case Phase::kCacheEviction: return "cache-eviction";
    case Phase::kReporting: return "reporting";
  }
  return "?";
}

void PhaseProfiler::write_json(JsonWriter& w) const {
  w.begin_array();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Slot& s = slots_[i];
    if (s.calls == 0) continue;
    w.begin_object();
    w.member("phase", to_string(static_cast<Phase>(i)));
    w.member("calls", s.calls);
    w.member("wall_ms", static_cast<double>(s.wall_ns) / 1e6);
    w.end_object();
  }
  w.end_array();
}

}  // namespace wcs::obs
