#include "grid/data_plane.h"

namespace wcs::grid {

DataPlane::DataPlane(const GridConfig& config, const workload::Job& job,
                     const net::GridTopology& topo, sim::Simulator& sim,
                     std::vector<double> bandwidth_estimate_error)
    : topo_(topo),
      bandwidth_estimate_error_(std::move(bandwidth_estimate_error)) {
  flows_ = std::make_unique<net::FlowManager>(sim, topo_.topology, config.flow);

  if (config.block_store)
    block_map_ =
        std::make_unique<storage::BlockMap>(job.catalog, *config.block_store);

  const auto num_sites = static_cast<std::size_t>(config.tiers.num_sites);
  servers_.reserve(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    servers_.push_back(std::make_unique<storage::DataServer>(
        SiteId(static_cast<SiteId::underlying_type>(s)), sim, *flows_,
        topo_.data_server_nodes[s], topo_.file_server_node, job.catalog,
        config.capacity_files, config.eviction));
    if (block_map_) servers_.back()->cache().attach_block_store(block_map_.get());
  }

  if (config.replication) {
    std::vector<storage::DataServer*> servers;
    servers.reserve(servers_.size());
    for (const auto& ds : servers_) servers.push_back(ds.get());
    // Network facts for the hierarchy-aware placements, in site order.
    std::vector<replication::SiteNetInfo> site_info;
    site_info.reserve(num_sites);
    const auto sites_per_man =
        static_cast<std::size_t>(config.tiers.sites_per_man);
    for (std::size_t s = 0; s < num_sites; ++s) {
      const net::Link& up = topo_.topology.link(topo_.site_uplinks[s]);
      replication::SiteNetInfo info;
      info.man_group = static_cast<std::uint32_t>(s / sites_per_man);
      info.uplink_bandwidth_bps = up.bandwidth_bps;
      info.uplink_latency_s = up.latency_s;
      site_info.push_back(info);
    }
    replicator_ = std::make_unique<replication::DataReplicator>(
        *config.replication, sim, *flows_, topo_.file_server_node,
        job.catalog, std::move(servers), std::move(site_info));
    for (std::size_t s = 0; s < num_sites; ++s)
      servers_[s]->set_transfer_listener([this, s](FileId f) {
        replicator_->on_file_fetched(
            f, SiteId(static_cast<SiteId::underlying_type>(s)));
      });
  }
}

void DataPlane::request_batch(SiteId site, TaskId task, WorkerId worker,
                              std::span<const FileId> files,
                              storage::BatchCallback ready) {
  servers_[site.value()]->request_batch(task, worker, files,
                                        std::move(ready));
}

bool DataPlane::cancel_batch(SiteId site, TaskId task, WorkerId worker) {
  return servers_[site.value()]->cancel_batch(task, worker);
}

void DataPlane::release(SiteId site, TaskId task, WorkerId worker) {
  servers_[site.value()]->release(task, worker);
}

const storage::FileCache& DataPlane::site_cache(SiteId site) const {
  return servers_.at(site.value())->cache();
}

void DataPlane::set_cache_listener(SiteId site,
                                   storage::CacheListener listener) {
  servers_.at(site.value())->cache().set_listener(std::move(listener));
}

double DataPlane::estimated_uplink_bandwidth(SiteId site) const {
  double exact =
      topo_.topology.link(topo_.site_uplinks[site.value()]).bandwidth_bps;
  if (bandwidth_estimate_error_.empty()) return exact;
  return exact * bandwidth_estimate_error_[site.value()];
}

std::size_t DataPlane::backlog(SiteId site) const {
  const storage::DataServer& ds = *servers_[site.value()];
  return ds.queue_length() + (ds.busy() ? 1 : 0);
}

const storage::DataServer& DataPlane::server(SiteId site) const {
  return *servers_.at(site.value());
}

void DataPlane::start_replication() {
  if (replicator_) replicator_->start();
}

void DataPlane::stop_replication() {
  if (replicator_) replicator_->stop();
}

void DataPlane::set_observability(obs::Observability* obs,
                                  sim::Simulator& sim) {
  flows_->set_observability(obs);
  if (obs == nullptr) return;
  for (const auto& ds : servers_)
    ds->cache().set_obs(obs->profiler(), obs->tracer(),
                        [&sim] { return sim.now(); }, ds->site().value());
}

std::vector<metrics::SiteResult> DataPlane::site_results() const {
  std::vector<metrics::SiteResult> out;
  out.reserve(servers_.size());
  for (const auto& ds : servers_) {
    const storage::DataServer::Stats& s = ds->stats();
    metrics::SiteResult site;
    site.batches_served = s.batches_served;
    site.batches_cancelled = s.batches_cancelled;
    site.waiting_s = s.waiting_s;
    site.transfer_s = s.transfer_s;
    site.file_transfers = s.file_transfers;
    site.bytes_transferred = s.bytes_transferred;
    site.bytes_saved = s.bytes_saved;
    site.cache_hits = s.cache_hits;
    site.evictions = ds->cache().evictions();
    out.push_back(site);
  }
  return out;
}

}  // namespace wcs::grid
