// Experiment runner: the paper's measurement protocol.
//
// Every data point in Sec. 5 is one (platform config, workload,
// algorithm) triple executed on 5 independently generated topologies and
// averaged. run_averaged() reproduces that; run_matrix() sweeps a list of
// scheduler specs and prints/collects one row per algorithm, which is the
// format of every figure in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "grid/config.h"
#include "grid/grid_simulation.h"
#include "metrics/results.h"
#include "sched/factory.h"
#include "workload/arrivals.h"
#include "workload/job.h"

namespace wcs::grid {

// The paper runs each experiment on 5 topologies (Sec. 5.2).
[[nodiscard]] std::vector<std::uint64_t> default_topology_seeds();

// One run on one topology seed.
[[nodiscard]] metrics::RunResult run_once(const GridConfig& config,
                                          const workload::Job& job,
                                          const sched::SchedulerSpec& spec,
                                          std::uint64_t topology_seed);

// All per-seed runs of one spec, in seed order — the raw rows behind
// run_averaged(), for callers that need RunResult fields the averaged
// record drops. `jobs` as in run_averaged().
[[nodiscard]] std::vector<metrics::RunResult> run_seeds(
    const GridConfig& config, const workload::Job& job,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs = 1);

// Mean over the given topology seeds (workload held fixed, as in the
// paper: the Coadd trace does not change between repetitions).
//
// `jobs` is the number of pool threads the independent run_once() calls
// fan out over; 0 or 1 means serial in the caller's thread. Every
// (spec, seed) run is an isolated simulation and results are collected
// in (spec, seed) submission order, so the output is identical at any
// `jobs` level.
[[nodiscard]] metrics::AveragedResult run_averaged(
    const GridConfig& config, const workload::Job& job,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs = 1);

// Runs every spec and returns one averaged row per algorithm, in order.
// `progress` (optional) is invoked with a human-readable note as each
// algorithm finishes — benches use it to stream status (always from the
// caller's thread, in spec order). `jobs` as in run_averaged().
[[nodiscard]] std::vector<metrics::AveragedResult> run_matrix(
    const GridConfig& config, const workload::Job& job,
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress = {},
    std::size_t jobs = 1);

// --- Open-system (Workload) forms ---------------------------------------
// Same protocol over a workload::Workload (job + arrival schedule). The
// scheduler is built workload-aware (sched::make_scheduler(spec,
// arrivals)): multi-tenant schedules get the WRR tenant layer, closed
// workloads take exactly the Job paths above — byte-identical results.

[[nodiscard]] metrics::RunResult run_once(const GridConfig& config,
                                          const workload::Workload& workload,
                                          const sched::SchedulerSpec& spec,
                                          std::uint64_t topology_seed);

[[nodiscard]] std::vector<metrics::RunResult> run_seeds(
    const GridConfig& config, const workload::Workload& workload,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs = 1);

[[nodiscard]] metrics::AveragedResult run_averaged(
    const GridConfig& config, const workload::Workload& workload,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs = 1);

[[nodiscard]] std::vector<metrics::AveragedResult> run_matrix(
    const GridConfig& config, const workload::Workload& workload,
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress = {},
    std::size_t jobs = 1);

// Pretty-prints rows as an aligned table (one column set used by all
// benches: makespan, transfers/site, totals, waits).
void print_table(std::ostream& out, const std::string& title,
                 std::span<const metrics::AveragedResult> rows);

}  // namespace wcs::grid
