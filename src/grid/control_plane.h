// Control plane: the worker-lifecycle FSM and replica bookkeeping.
//
// Owns the per-worker runtime state and drives each worker through the
// paper's Sec. 2.2/4.1 lifecycle:
//
//        +--------- assign_task (queue) ----------+
//        v                                        |
//   [Idle] --queue empty--> [Requesting] --on_worker_idle--> scheduler
//     |                                                      |
//     +--queue non-empty--> [Fetching] <---- assign ---------+
//                               |  batch request to the site data server
//                               v
//                          [Computing]  mflop / worker MFLOPS
//                               |
//                          finish: release pins, notify scheduler,
//                                  back to Idle
//
// Control messages (task request / assignment) pay the topology's
// worker<->scheduler path latency; they carry no payload worth modeling
// as flows (DESIGN.md §5.6). The plane keeps the task-instance ledger
// (which worker holds which replica) and the assignment/completion
// counters; storage work is delegated to the DataPlane, failures are
// injected by the FaultPlane through withdraw_worker()/revive_worker().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "audit/checkers.h"
#include "common/ids.h"
#include "common/inline_vec.h"
#include "common/units.h"
#include "compute/capacity.h"
#include "grid/config.h"
#include "grid/data_plane.h"
#include "metrics/results.h"
#include "metrics/timeline.h"
#include "net/tiers.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/arrivals.h"
#include "workload/job.h"

namespace wcs::grid {

class ControlPlane {
 public:
  // Lifecycle phase of one worker; kOffline is entered/left only through
  // the fault plane.
  enum class WorkerPhase : std::uint8_t {
    kIdle,        // nothing queued, request not (yet) sent
    kRequesting,  // pull request in flight / waiting for an assignment
    kFetching,    // batch request at the site data server
    kComputing,   // executing the task
    kOffline,     // crashed; recovers after the churn downtime
  };

  // Callbacks into the composition root. `trace` fans lifecycle events
  // out to the timeline recorder / obs tracer (may be empty);
  // `on_all_tasks_completed` fires once, when the last task finishes
  // (the root uses it to stop churn and drain replication).
  struct Hooks {
    std::function<void(metrics::TimelineEventKind, TaskId, WorkerId)> trace;
    std::function<void()> on_all_tasks_completed;
  };

  // All references must outlive the plane. Worker speeds are sampled
  // here (top500/100, Sec. 5.2) from config.effective_speed_seed();
  // `mflops_estimate_error` is the per-site multiplicative error applied
  // to estimated_site_mflops() (empty = exact). `arrivals` is the
  // open-system schedule, or nullptr for the closed batch — when set,
  // start() turns every positive arrival time into a simulation event
  // delivering that batch to the scheduler, and the plane keeps
  // per-tenant conservation ledgers plus per-task completion times for
  // the tenant metrics.
  ControlPlane(const GridConfig& config, const workload::Job& job,
               const workload::ArrivalSchedule* arrivals,
               const net::GridTopology& topo, sim::Simulator& sim,
               DataPlane& data, sched::Scheduler& scheduler,
               std::vector<double> mflops_estimate_error, Hooks hooks);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // Sends every worker into the pull loop; called once at run start.
  void start();

  // --- Engine surface (delegated from GridSimulation) -------------------
  void assign_task(TaskId task, WorkerId worker);
  bool cancel_task(TaskId task, WorkerId worker);
  [[nodiscard]] bool worker_alive(WorkerId worker) const;
  [[nodiscard]] std::size_t worker_backlog(WorkerId worker) const;
  [[nodiscard]] SiteId site_of(WorkerId worker) const;
  [[nodiscard]] double estimated_site_mflops(SiteId site) const;

  // --- Fault-plane surface ----------------------------------------------
  // Withdraws every task instance `worker` holds (queued, fetching, or
  // computing), cancels its in-flight storage work, and marks it
  // offline. Returns the withdrawn tasks. The worker must be alive.
  std::vector<TaskId> withdraw_worker(WorkerId worker);
  // Recovery happens in two steps so the fault plane can trace the
  // transition and schedule the next failure BEFORE the pull-request
  // event is created (event insertion order is part of the deterministic
  // contract): mark_online() flips Offline -> Idle; resume_worker() then
  // re-enters the pull loop.
  void mark_online(WorkerId worker);
  void resume_worker(WorkerId worker);

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }
  [[nodiscard]] const compute::Worker& worker_info(WorkerId worker) const;
  [[nodiscard]] WorkerPhase worker_phase(WorkerId worker) const;
  [[nodiscard]] std::size_t tasks_completed() const {
    return completed_count_;
  }
  [[nodiscard]] bool task_completed(TaskId task) const {
    return completed_.at(task.value()) != 0;
  }
  [[nodiscard]] SimTime last_completion() const { return last_completion_; }
  [[nodiscard]] std::uint64_t assignments() const { return assignments_; }
  [[nodiscard]] std::uint64_t replicas_started() const {
    return replicas_started_;
  }
  [[nodiscard]] std::uint64_t replicas_cancelled() const {
    return replicas_cancelled_;
  }

  // Per-tenant results for open-system runs (empty for closed runs):
  // completed counts, time-to-first-task, tenant makespan, and sojourn
  // (completion - arrival) percentiles.
  [[nodiscard]] std::vector<metrics::TenantResult> tenant_results() const;

  // --- Invariant auditing -----------------------------------------------
  // Snapshot of the task/placement ledgers for the task-lifecycle
  // checker; `at_drain` asserts the stronger end-of-run laws.
  [[nodiscard]] audit::TaskLifecycleSnapshot lifecycle_snapshot(
      bool at_drain) const;
  // Per-tenant assigned/completed/cancelled/in-flight conservation
  // snapshot for the tenant-accounting checker (open-system runs only).
  [[nodiscard]] audit::TenantAccountingSnapshot tenant_snapshot(
      bool at_drain) const;
  [[nodiscard]] SimTime audit_max_completion() const {
    return audit_max_completion_;
  }

 private:
  struct WorkerRuntime {
    compute::Worker info;
    WorkerPhase state = WorkerPhase::kIdle;
    std::deque<TaskId> queue;
    TaskId current;
    EventId compute_event;
    SimTime control_latency = 0;  // one-way worker <-> scheduler
  };

  void trace(metrics::TimelineEventKind kind, TaskId task, WorkerId worker) {
    if (hooks_.trace) hooks_.trace(kind, task, worker);
  }
  void go_idle(WorkerId worker);
  // Arrival-event body: marks the batch arrived, then hands it to the
  // scheduler (open-system runs only).
  void arrive(const std::vector<TaskId>& batch);
  void start_next(WorkerId worker);
  void files_ready(WorkerId worker, TaskId task);
  void finish_task(WorkerId worker, TaskId task);
  [[nodiscard]] bool has_instance(TaskId task, WorkerId worker) const;

  // Per-tenant conservation ledger (open-system runs; indexed by tenant).
  struct TenantLedger {
    std::uint64_t tasks = 0;
    std::uint64_t arrived = 0;
    std::uint64_t assigned = 0;
    std::uint64_t completions = 0;  // finish events (one per task)
    std::uint64_t cancelled = 0;    // replica cancels + crash withdrawals
    double first_arrival_s = 0;
    double first_assignment_s = -1;  // -1 until the first assignment
    double last_completion_s = 0;
  };

  [[nodiscard]] std::uint32_t tenant_of(TaskId task) const {
    return arrivals_ == nullptr ? 0 : arrivals_->tenant(task);
  }

  // Every instance removal that is not a completion (replica cancel,
  // crash withdrawal) must hit the tenant ledger or the conservation law
  // assigned == completions + cancelled + live breaks.
  void note_instance_dropped(TaskId task) {
    if (arrivals_ != nullptr) ++tenants_[tenant_of(task)].cancelled;
  }

  const GridConfig& config_;
  const workload::Job& job_;
  const workload::ArrivalSchedule* arrivals_ = nullptr;  // closed batch
  sim::Simulator& sim_;
  DataPlane& data_;
  sched::Scheduler& scheduler_;
  Hooks hooks_;

  std::vector<WorkerRuntime> workers_;
  std::vector<char> completed_;  // by task id
  // Active placements by task id. Replication degree is 1–2 in every
  // paper configuration, so the instances table is one flat array of
  // two-slot inline vectors — no per-task heap nodes.
  std::vector<common::InlineVec<WorkerId, 2>> instances_;
  std::size_t completed_count_ = 0;
  SimTime last_completion_ = 0;
  std::uint64_t assignments_ = 0;
  std::uint64_t replicas_started_ = 0;
  std::uint64_t replicas_cancelled_ = 0;
  // Audit-side redundant ledgers, maintained unconditionally (cheap) and
  // cross-checked against the primary counters when auditing is on.
  std::vector<std::uint32_t> completion_counts_;  // by task id
  SimTime audit_max_completion_ = 0;
  std::vector<double> mflops_estimate_error_;  // per site; empty if exact
  // Open-system state (allocated only when arrivals_ != nullptr).
  std::vector<char> arrived_;            // by task id
  std::vector<double> completion_time_;  // by task id; -1 = not completed
  std::vector<TenantLedger> tenants_;
};

}  // namespace wcs::grid
