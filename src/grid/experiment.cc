#include "grid/experiment.h"

#include <future>
#include <iomanip>
#include <sstream>

#include "common/thread_pool.h"

namespace wcs::grid {

namespace {

// Fans run_once() over the (spec, seed) cross product. The result vector
// is laid out spec-major (all seeds of spec 0, then spec 1, ...) and
// filled in submission order from futures, so the caller sees exactly
// the sequence the serial loop would produce regardless of how the pool
// interleaves execution.
// One isolated (spec, topology-seed) simulation; both the Job and the
// Workload entry points funnel into this signature.
using RunOnceFn =
    std::function<metrics::RunResult(const sched::SchedulerSpec&,
                                     std::uint64_t)>;

std::vector<metrics::RunResult> run_all(
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs,
    const RunOnceFn& one) {
  const std::size_t total = specs.size() * topology_seeds.size();
  std::vector<metrics::RunResult> runs;
  runs.reserve(total);

  const std::size_t workers = std::min(std::max<std::size_t>(jobs, 1), total);
  if (workers <= 1) {
    for (const sched::SchedulerSpec& spec : specs)
      for (std::uint64_t seed : topology_seeds)
        runs.push_back(one(spec, seed));
    return runs;
  }

  ThreadPool pool(workers);
  std::vector<std::future<metrics::RunResult>> futures;
  futures.reserve(total);
  for (const sched::SchedulerSpec& spec : specs)
    for (std::uint64_t seed : topology_seeds)
      futures.push_back(
          pool.submit([&one, &spec, seed] { return one(spec, seed); }));
  for (std::future<metrics::RunResult>& f : futures) runs.push_back(f.get());
  return runs;
}

RunOnceFn job_runner(const GridConfig& config, const workload::Job& job) {
  return [&config, &job](const sched::SchedulerSpec& spec,
                         std::uint64_t seed) {
    return run_once(config, job, spec, seed);
  };
}

RunOnceFn workload_runner(const GridConfig& config,
                          const workload::Workload& workload) {
  return [&config, &workload](const sched::SchedulerSpec& spec,
                              std::uint64_t seed) {
    return run_once(config, workload, spec, seed);
  };
}

// Shared run_matrix body over an abstract runner.
std::vector<metrics::AveragedResult> matrix_impl(
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress,
    std::size_t jobs, const RunOnceFn& one) {
  WCS_CHECK(!topology_seeds.empty());
  auto note = [&](const sched::SchedulerSpec& spec,
                  const metrics::AveragedResult& row) {
    if (!progress) return;
    std::ostringstream os;
    os << spec.name() << ": makespan "
       << std::fixed << std::setprecision(0) << row.makespan_minutes
       << " min, " << std::setprecision(1) << row.transfers_per_site
       << " transfers/site";
    progress(os.str());
  };

  std::vector<metrics::AveragedResult> rows;
  rows.reserve(specs.size());
  if (std::max<std::size_t>(jobs, 1) == 1) {
    // Serial path streams progress as each algorithm finishes.
    for (const sched::SchedulerSpec& spec : specs) {
      rows.push_back(metrics::average(
          run_all(std::span(&spec, 1), topology_seeds, 1, one)));
      note(spec, rows.back());
    }
    return rows;
  }

  const std::vector<metrics::RunResult> runs =
      run_all(specs, topology_seeds, jobs, one);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    rows.push_back(metrics::average(
        std::span(runs).subspan(s * topology_seeds.size(),
                                topology_seeds.size())));
    note(specs[s], rows.back());
  }
  return rows;
}

}  // namespace

std::vector<std::uint64_t> default_topology_seeds() {
  return {1, 2, 3, 4, 5};
}

metrics::RunResult run_once(const GridConfig& config,
                            const workload::Job& job,
                            const sched::SchedulerSpec& spec,
                            std::uint64_t topology_seed) {
  GridConfig c = config;
  c.tiers.seed = topology_seed;
  GridSimulation simulation(c, job, sched::make_scheduler(spec));
  return simulation.run();
}

metrics::RunResult run_once(const GridConfig& config,
                            const workload::Workload& workload,
                            const sched::SchedulerSpec& spec,
                            std::uint64_t topology_seed) {
  GridConfig c = config;
  c.tiers.seed = topology_seed;
  const workload::ArrivalSchedule* arrivals =
      workload.open() ? &workload.arrivals : nullptr;
  GridSimulation simulation(c, workload,
                            sched::make_scheduler(spec, arrivals));
  return simulation.run();
}

std::vector<metrics::RunResult> run_seeds(
    const GridConfig& config, const workload::Job& job,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs) {
  WCS_CHECK(!topology_seeds.empty());
  return run_all(std::span(&spec, 1), topology_seeds, jobs,
                 job_runner(config, job));
}

std::vector<metrics::RunResult> run_seeds(
    const GridConfig& config, const workload::Workload& workload,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs) {
  WCS_CHECK(!topology_seeds.empty());
  return run_all(std::span(&spec, 1), topology_seeds, jobs,
                 workload_runner(config, workload));
}

metrics::AveragedResult run_averaged(
    const GridConfig& config, const workload::Job& job,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs) {
  return metrics::average(run_seeds(config, job, spec, topology_seeds, jobs));
}

metrics::AveragedResult run_averaged(
    const GridConfig& config, const workload::Workload& workload,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds, std::size_t jobs) {
  return metrics::average(
      run_seeds(config, workload, spec, topology_seeds, jobs));
}

std::vector<metrics::AveragedResult> run_matrix(
    const GridConfig& config, const workload::Job& job,
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress,
    std::size_t jobs) {
  return matrix_impl(specs, topology_seeds, progress, jobs,
                     job_runner(config, job));
}

std::vector<metrics::AveragedResult> run_matrix(
    const GridConfig& config, const workload::Workload& workload,
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress,
    std::size_t jobs) {
  return matrix_impl(specs, topology_seeds, progress, jobs,
                     workload_runner(config, workload));
}

void print_table(std::ostream& out, const std::string& title,
                 std::span<const metrics::AveragedResult> rows) {
  out << '\n' << title << '\n' << std::string(title.size(), '-') << '\n';
  out << std::left << std::setw(22) << "algorithm" << std::right
      << std::setw(16) << "makespan (min)" << std::setw(18)
      << "transfers/site" << std::setw(16) << "transfers" << std::setw(12)
      << "GB moved" << std::setw(14) << "wait (h/site)" << std::setw(14)
      << "xfer (h/site)" << std::setw(11) << "replicas" << '\n';
  for (const metrics::AveragedResult& r : rows) {
    out << std::left << std::setw(22) << r.scheduler << std::right
        << std::fixed << std::setprecision(0) << std::setw(16)
        << r.makespan_minutes << std::setprecision(1) << std::setw(18)
        << r.transfers_per_site << std::setprecision(0) << std::setw(16)
        << r.total_file_transfers << std::setprecision(1) << std::setw(12)
        << r.total_gigabytes << std::setprecision(2) << std::setw(14)
        << r.waiting_hours_per_site << std::setw(14)
        << r.transfer_hours_per_site << std::setprecision(0) << std::setw(11)
        << r.replicas_started << '\n';
  }
  out.flush();
}

}  // namespace wcs::grid
