#include "grid/experiment.h"

#include <iomanip>
#include <sstream>

namespace wcs::grid {

std::vector<std::uint64_t> default_topology_seeds() {
  return {1, 2, 3, 4, 5};
}

metrics::RunResult run_once(const GridConfig& config,
                            const workload::Job& job,
                            const sched::SchedulerSpec& spec,
                            std::uint64_t topology_seed) {
  GridConfig c = config;
  c.tiers.seed = topology_seed;
  GridSimulation simulation(c, job, sched::make_scheduler(spec));
  return simulation.run();
}

metrics::AveragedResult run_averaged(
    const GridConfig& config, const workload::Job& job,
    const sched::SchedulerSpec& spec,
    std::span<const std::uint64_t> topology_seeds) {
  WCS_CHECK(!topology_seeds.empty());
  std::vector<metrics::RunResult> runs;
  runs.reserve(topology_seeds.size());
  for (std::uint64_t seed : topology_seeds)
    runs.push_back(run_once(config, job, spec, seed));
  return metrics::average(runs);
}

std::vector<metrics::AveragedResult> run_matrix(
    const GridConfig& config, const workload::Job& job,
    std::span<const sched::SchedulerSpec> specs,
    std::span<const std::uint64_t> topology_seeds,
    const std::function<void(const std::string&)>& progress) {
  std::vector<metrics::AveragedResult> rows;
  rows.reserve(specs.size());
  for (const sched::SchedulerSpec& spec : specs) {
    rows.push_back(run_averaged(config, job, spec, topology_seeds));
    if (progress) {
      std::ostringstream os;
      os << spec.name() << ": makespan "
         << std::fixed << std::setprecision(0) << rows.back().makespan_minutes
         << " min, " << std::setprecision(1) << rows.back().transfers_per_site
         << " transfers/site";
      progress(os.str());
    }
  }
  return rows;
}

void print_table(std::ostream& out, const std::string& title,
                 std::span<const metrics::AveragedResult> rows) {
  out << '\n' << title << '\n' << std::string(title.size(), '-') << '\n';
  out << std::left << std::setw(22) << "algorithm" << std::right
      << std::setw(16) << "makespan (min)" << std::setw(18)
      << "transfers/site" << std::setw(16) << "transfers" << std::setw(12)
      << "GB moved" << std::setw(14) << "wait (h/site)" << std::setw(14)
      << "xfer (h/site)" << std::setw(11) << "replicas" << '\n';
  for (const metrics::AveragedResult& r : rows) {
    out << std::left << std::setw(22) << r.scheduler << std::right
        << std::fixed << std::setprecision(0) << std::setw(16)
        << r.makespan_minutes << std::setprecision(1) << std::setw(18)
        << r.transfers_per_site << std::setprecision(0) << std::setw(16)
        << r.total_file_transfers << std::setprecision(1) << std::setw(12)
        << r.total_gigabytes << std::setprecision(2) << std::setw(14)
        << r.waiting_hours_per_site << std::setw(14)
        << r.transfer_hours_per_site << std::setprecision(0) << std::setw(11)
        << r.replicas_started << '\n';
  }
  out.flush();
}

}  // namespace wcs::grid
