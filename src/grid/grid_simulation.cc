#include "grid/grid_simulation.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "common/log.h"

namespace wcs::grid {

GridSimulation::GridSimulation(const GridConfig& config,
                               const workload::Job& job,
                               std::unique_ptr<sched::Scheduler> scheduler)
    : config_(config),
      job_(job),
      scheduler_(std::move(scheduler)),
      grid_topo_(net::build_tiers_topology(config.tiers)) {
  WCS_CHECK(scheduler_ != nullptr);
  validate_config(config_, job_);
  flows_ = std::make_unique<net::FlowManager>(sim_, grid_topo_.topology);

  const auto num_sites = static_cast<std::size_t>(config_.tiers.num_sites);
  data_servers_.reserve(num_sites);
  for (std::size_t s = 0; s < num_sites; ++s) {
    data_servers_.push_back(std::make_unique<storage::DataServer>(
        SiteId(static_cast<SiteId::underlying_type>(s)), sim_, *flows_,
        grid_topo_.data_server_nodes[s], grid_topo_.file_server_node,
        job_.catalog, config_.capacity_files, config_.eviction));
  }

  if (config_.replication) {
    std::vector<storage::DataServer*> servers;
    servers.reserve(data_servers_.size());
    for (const auto& ds : data_servers_) servers.push_back(ds.get());
    replicator_ = std::make_unique<replication::DataReplicator>(
        *config_.replication, sim_, *flows_, grid_topo_.file_server_node,
        job_.catalog, std::move(servers));
    for (const auto& ds : data_servers_)
      ds->set_transfer_listener(
          [this](FileId f) { replicator_->on_file_fetched(f); });
  }

  if (config_.churn) {
    WCS_CHECK_MSG(config_.churn->mean_uptime_s > 0 &&
                      config_.churn->mean_downtime_s > 0,
                  "churn times must be positive");
    churn_rng_ = std::make_unique<Rng>(config_.churn->seed *
                                           0x9e3779b97f4a7c15ULL ^
                                       config_.tiers.seed);
  }

  if (config_.estimate_error > 0) {
    Rng estimate_rng(config_.estimate_seed * 0x9e3779b97f4a7c15ULL ^
                     config_.tiers.seed);
    auto draw = [&] {
      double hi = std::log(1.0 + config_.estimate_error);
      return std::exp(estimate_rng.uniform_real(-hi, hi));
    };
    for (std::size_t s = 0; s < num_sites; ++s) {
      bandwidth_estimate_error_.push_back(draw());
      mflops_estimate_error_.push_back(draw());
    }
  }

  Rng speed_rng(config_.effective_speed_seed());
  const auto per_site =
      static_cast<std::size_t>(config_.tiers.workers_per_site);
  workers_.resize(num_sites * per_site);
  for (std::size_t s = 0; s < num_sites; ++s) {
    for (std::size_t w = 0; w < per_site; ++w) {
      std::size_t idx = s * per_site + w;
      WorkerRuntime& rt = workers_[idx];
      rt.info.id = WorkerId(static_cast<WorkerId::underlying_type>(idx));
      rt.info.site = SiteId(static_cast<SiteId::underlying_type>(s));
      rt.info.node = grid_topo_.worker_nodes[s][w];
      rt.info.mflops = compute::sample_worker_mflops(speed_rng);
      rt.control_latency = grid_topo_.topology.path_latency(
          rt.info.node, grid_topo_.scheduler_node);
    }
  }

  completed_.assign(job_.num_tasks(), 0);
  instances_.assign(job_.num_tasks(), {});
  completion_counts_.assign(job_.num_tasks(), 0);
  if (config_.record_timeline)
    timeline_ = std::make_unique<metrics::TimelineRecorder>();

  if (config_.obs.any()) {
    obs_ = std::make_unique<obs::Observability>(config_.obs);
    tracer_ = obs_->tracer();
    sim_.set_profiler(obs_->profiler());
    flows_->set_observability(obs_.get());
    scheduler_->set_profiler(obs_->profiler());
    for (const auto& ds : data_servers_)
      ds->cache().set_obs(obs_->profiler(), tracer_,
                          [this] { return sim_.now(); },
                          ds->site().value());
  }
}

GridSimulation::~GridSimulation() = default;

SiteId GridSimulation::site_of(WorkerId worker) const {
  return workers_.at(worker.value()).info.site;
}

const storage::FileCache& GridSimulation::site_cache(SiteId site) const {
  return data_servers_.at(site.value())->cache();
}

void GridSimulation::set_cache_listener(SiteId site,
                                        storage::CacheListener listener) {
  data_servers_.at(site.value())->cache().set_listener(std::move(listener));
}

const storage::DataServer& GridSimulation::data_server(SiteId site) const {
  return *data_servers_.at(site.value());
}

const compute::Worker& GridSimulation::worker_info(WorkerId worker) const {
  return workers_.at(worker.value()).info;
}

bool GridSimulation::worker_alive(WorkerId worker) const {
  return workers_.at(worker.value()).state != WorkerState::kOffline;
}

std::size_t GridSimulation::worker_backlog(WorkerId worker) const {
  const WorkerRuntime& rt = workers_.at(worker.value());
  std::size_t backlog = rt.queue.size();
  if (rt.state == WorkerState::kFetching ||
      rt.state == WorkerState::kComputing)
    ++backlog;
  return backlog;
}

double GridSimulation::estimated_uplink_bandwidth(SiteId site) const {
  double exact =
      grid_topo_.topology.link(grid_topo_.site_uplinks[site.value()])
          .bandwidth_bps;
  if (bandwidth_estimate_error_.empty()) return exact;
  return exact * bandwidth_estimate_error_[site.value()];
}

double GridSimulation::estimated_site_mflops(SiteId site) const {
  const auto per_site =
      static_cast<std::size_t>(config_.tiers.workers_per_site);
  double total = 0;
  for (std::size_t w = 0; w < per_site; ++w)
    total += workers_[site.value() * per_site + w].info.mflops;
  double exact = total / static_cast<double>(per_site);
  if (mflops_estimate_error_.empty()) return exact;
  return exact * mflops_estimate_error_[site.value()];
}

std::size_t GridSimulation::data_server_backlog(SiteId site) const {
  const storage::DataServer& ds = *data_servers_[site.value()];
  return ds.queue_length() + (ds.busy() ? 1 : 0);
}

void GridSimulation::schedule_failure(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  SimTime uptime = churn_rng_->exponential(1.0 / config_.churn->mean_uptime_s);
  rt.churn_event =
      sim_.schedule_in(uptime, [this, worker] { fail_worker(worker); });
}

void GridSimulation::fail_worker(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state != WorkerState::kOffline);
  ++failures_;

  // Withdraw every task instance this worker holds.
  std::vector<TaskId> lost;
  if (rt.state == WorkerState::kFetching) {
    bool cancelled =
        data_servers_[rt.info.site.value()]->cancel_batch(rt.current, worker);
    WCS_CHECK(cancelled);
    lost.push_back(rt.current);
  } else if (rt.state == WorkerState::kComputing) {
    WCS_CHECK(sim_.cancel(rt.compute_event));
    rt.compute_event = EventId::invalid();
    data_servers_[rt.info.site.value()]->release(rt.current, worker);
    lost.push_back(rt.current);
  }
  for (TaskId t : rt.queue) lost.push_back(t);
  rt.queue.clear();
  rt.current = TaskId::invalid();
  for (TaskId t : lost) {
    auto& inst = instances_[t.value()];
    inst.erase(std::remove(inst.begin(), inst.end(), worker), inst.end());
    trace(metrics::TimelineEventKind::kCancelled, t, worker);
  }
  instances_lost_ += lost.size();
  rt.state = WorkerState::kOffline;
  trace(metrics::TimelineEventKind::kWorkerFailed, TaskId::invalid(), worker);

  SimTime downtime =
      churn_rng_->exponential(1.0 / config_.churn->mean_downtime_s);
  rt.churn_event =
      sim_.schedule_in(downtime, [this, worker] { recover_worker(worker); });

  scheduler_->on_worker_failed(worker, lost);
}

void GridSimulation::recover_worker(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerState::kOffline);
  ++recoveries_;
  rt.state = WorkerState::kIdle;
  trace(metrics::TimelineEventKind::kWorkerRecovered, TaskId::invalid(),
        worker);
  schedule_failure(worker);
  go_idle(worker);
}

void GridSimulation::stop_churn() {
  for (WorkerRuntime& rt : workers_) {
    if (rt.churn_event.valid()) {
      sim_.cancel(rt.churn_event);
      rt.churn_event = EventId::invalid();
    }
  }
}

bool GridSimulation::has_instance(TaskId task, WorkerId worker) const {
  const auto& v = instances_.at(task.value());
  return std::find(v.begin(), v.end(), worker) != v.end();
}

void GridSimulation::assign_task(TaskId task, WorkerId worker) {
  WCS_CHECK(task.valid() && task.value() < job_.num_tasks());
  WCS_CHECK(worker.valid() && worker.value() < workers_.size());
  WCS_CHECK_MSG(!completed_[task.value()],
                "assignment of completed task " << task);
  WCS_CHECK_MSG(worker_alive(worker),
                "assignment to offline worker " << worker);
  WCS_CHECK_MSG(!has_instance(task, worker),
                "task " << task << " already placed on worker " << worker);

  if (!instances_[task.value()].empty()) ++replicas_started_;
  instances_[task.value()].push_back(worker);
  ++assignments_;
  trace(metrics::TimelineEventKind::kAssigned, task, worker);

  WorkerRuntime& rt = workers_[worker.value()];
  rt.queue.push_back(task);
  // The assignment message travels scheduler -> worker; when it lands, an
  // idle (or still-requesting) worker starts its queue head.
  sim_.schedule_in(rt.control_latency, [this, worker] {
    WorkerRuntime& w = workers_[worker.value()];
    if (w.state == WorkerState::kIdle || w.state == WorkerState::kRequesting)
      start_next(worker);
  });
}

void GridSimulation::start_next(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerState::kIdle ||
            rt.state == WorkerState::kRequesting);
  if (rt.queue.empty()) return;
  TaskId task = rt.queue.front();
  rt.queue.pop_front();
  rt.current = task;
  rt.state = WorkerState::kFetching;
  trace(metrics::TimelineEventKind::kFetchStart, task, worker);
  const workload::Task& t = job_.task(task);
  data_servers_[rt.info.site.value()]->request_batch(
      task, worker, t.files, [this, worker, task] {
        files_ready(worker, task);
      });
}

void GridSimulation::files_ready(WorkerId worker, TaskId task) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerState::kFetching);
  WCS_CHECK_EQ(rt.current, task);
  rt.state = WorkerState::kComputing;
  trace(metrics::TimelineEventKind::kExecStart, task, worker);
  SimTime compute = rt.info.compute_time_s(job_.task(task).mflop);
  rt.compute_event = sim_.schedule_in(
      compute, [this, worker, task] { finish_task(worker, task); });
}

void GridSimulation::finish_task(WorkerId worker, TaskId task) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerState::kComputing);
  WCS_CHECK_EQ(rt.current, task);
  WCS_CHECK_MSG(!completed_[task.value()],
                "task " << task << " completed twice");
  rt.compute_event = EventId::invalid();
  data_servers_[rt.info.site.value()]->release(task, worker);

  completed_[task.value()] = 1;
  ++completed_count_;
  last_completion_ = sim_.now();
  ++completion_counts_[task.value()];
  audit_max_completion_ = std::max(audit_max_completion_, sim_.now());
  trace(metrics::TimelineEventKind::kCompleted, task, worker);
  if (completed_count_ == job_.num_tasks()) {
    if (replicator_) replicator_->stop();  // no more scans; drain cleanly
    stop_churn();
  }
  auto& inst = instances_[task.value()];
  inst.erase(std::remove(inst.begin(), inst.end(), worker), inst.end());

  WCS_TRACE("task " << task << " done on worker " << worker << " at "
                    << sim_.now() << "s (" << completed_count_ << "/"
                    << job_.num_tasks() << ")");
  // The scheduler may cancel sibling replicas here (storage affinity).
  scheduler_->on_task_completed(task, worker);
  go_idle(worker);
}

bool GridSimulation::cancel_task(TaskId task, WorkerId worker) {
  if (!has_instance(task, worker)) return false;
  WorkerRuntime& rt = workers_[worker.value()];
  auto& inst = instances_[task.value()];

  if (rt.current == task && rt.state == WorkerState::kFetching) {
    bool cancelled =
        data_servers_[rt.info.site.value()]->cancel_batch(task, worker);
    WCS_CHECK_MSG(cancelled, "fetching task had no batch at the data server");
    inst.erase(std::remove(inst.begin(), inst.end(), worker), inst.end());
    ++replicas_cancelled_;
    trace(metrics::TimelineEventKind::kCancelled, task, worker);
    go_idle(worker);
    return true;
  }
  if (rt.current == task && rt.state == WorkerState::kComputing) {
    WCS_CHECK(sim_.cancel(rt.compute_event));
    rt.compute_event = EventId::invalid();
    data_servers_[rt.info.site.value()]->release(task, worker);
    inst.erase(std::remove(inst.begin(), inst.end(), worker), inst.end());
    ++replicas_cancelled_;
    trace(metrics::TimelineEventKind::kCancelled, task, worker);
    go_idle(worker);
    return true;
  }
  // Still queued at the worker.
  auto qit = std::find(rt.queue.begin(), rt.queue.end(), task);
  if (qit == rt.queue.end()) return false;
  rt.queue.erase(qit);
  inst.erase(std::remove(inst.begin(), inst.end(), worker), inst.end());
  ++replicas_cancelled_;
  trace(metrics::TimelineEventKind::kCancelled, task, worker);
  return true;
}

void GridSimulation::go_idle(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  rt.current = TaskId::invalid();
  rt.state = WorkerState::kIdle;
  if (!rt.queue.empty()) {
    start_next(worker);
    return;
  }
  // Pull path: ask the scheduler for work after the request latency.
  rt.state = WorkerState::kRequesting;
  sim_.schedule_in(rt.control_latency, [this, worker] {
    WorkerRuntime& w = workers_[worker.value()];
    // A queued assignment may have raced ahead of the request.
    if (w.state != WorkerState::kRequesting) return;
    scheduler_->on_worker_idle(worker);
  });
}

void GridSimulation::obs_trace(metrics::TimelineEventKind kind, TaskId task,
                               WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  obs::TraceSpan span;
  span.start = sim_.now();
  span.track = worker.value();
  span.task = task;
  switch (kind) {
    case metrics::TimelineEventKind::kAssigned:
      span.kind = obs::SpanKind::kAssign;
      break;
    case metrics::TimelineEventKind::kFetchStart:
      // Opens the fetch span; closed (and recorded) at exec-start.
      rt.fetch_started = sim_.now();
      return;
    case metrics::TimelineEventKind::kExecStart:
      span.kind = obs::SpanKind::kFetch;
      span.start = rt.fetch_started;
      span.duration_s = sim_.now() - rt.fetch_started;
      rt.exec_started = sim_.now();
      break;
    case metrics::TimelineEventKind::kCompleted: {
      obs::TraceSpan compute;
      compute.start = rt.exec_started;
      compute.duration_s = sim_.now() - rt.exec_started;
      compute.kind = obs::SpanKind::kCompute;
      compute.track = worker.value();
      compute.task = task;
      tracer_->record(compute);
      span.kind = obs::SpanKind::kComplete;
      break;
    }
    case metrics::TimelineEventKind::kCancelled:
      span.kind = obs::SpanKind::kCancelled;
      break;
    case metrics::TimelineEventKind::kWorkerFailed:
      span.kind = obs::SpanKind::kWorkerFailed;
      break;
    case metrics::TimelineEventKind::kWorkerRecovered:
      span.kind = obs::SpanKind::kWorkerRecovered;
      break;
  }
  tracer_->record(span);
}

void GridSimulation::populate_registry(const metrics::RunResult& result) {
  obs::MetricsRegistry& reg = *obs_->metrics();
  reg.counter("engine.assignments").add(assignments_);
  reg.counter("engine.replicas_started").add(replicas_started_);
  reg.counter("engine.replicas_cancelled").add(replicas_cancelled_);
  reg.counter("engine.tasks_completed").add(completed_count_);
  reg.counter("engine.worker_failures").add(failures_);
  reg.counter("engine.worker_recoveries").add(recoveries_);
  reg.counter("engine.instances_lost").add(instances_lost_);
  reg.gauge("engine.makespan_s").set(result.makespan_s);
  reg.counter("sim.events_executed").add(sim_.executed_events());
  reg.gauge("sim.peak_live_events")
      .set(static_cast<double>(sim_.peak_live_events()));
  reg.counter("net.flows_completed").add(flows_->completed_flows());
  reg.counter("net.flows_cancelled").add(flows_->cancelled_flows());
  reg.gauge("net.bytes_delivered").set(flows_->bytes_delivered());
  reg.counter("storage.file_transfers").add(result.total_file_transfers());
  reg.counter("storage.cache_hits").add(result.total_cache_hits());
  reg.counter("storage.evictions").add(result.total_evictions());
  reg.gauge("storage.bytes_transferred")
      .set(result.total_bytes_transferred());
}

void GridSimulation::register_audit_checkers() {
  auditor_->add_checker("flow-conservation", [this](auto& out) {
    audit::check_flow_conservation(flows_->audit_snapshot(), out);
  });
  auditor_->add_checker("cache-coherence", [this](auto& out) {
    for (const auto& ds : data_servers_)
      audit::check_cache_coherence(
          ds->cache().audit_snapshot("site " +
                                     std::to_string(ds->site().value()) +
                                     " data server"),
          out);
  });
  auditor_->add_checker("index-coherence", [this](auto& out) {
    scheduler_->audit_collect(out);
  });
  auditor_->add_checker("task-lifecycle", [this](auto& out) {
    audit::check_task_lifecycle(lifecycle_snapshot(), out);
  });
  auditor_->add_checker("event-kernel", [this](auto& out) {
    audit::EventKernelSnapshot snap;
    snap.now = sim_.now();
    snap.previous_now = audit_prev_now_;
    snap.live_count = sim_.live_events();
    const sim::Simulator::EventCounts counts = sim_.recount_events();
    snap.recount_live = counts.live;
    snap.recount_cancelled = counts.cancelled;
    snap.recount_fired = counts.fired;
    snap.scheduled_total = counts.scheduled;
    audit::check_event_kernel(snap, out);
    audit_prev_now_ = sim_.now();  // audit-only bookkeeping
  });
}

audit::TaskLifecycleSnapshot GridSimulation::lifecycle_snapshot() const {
  audit::TaskLifecycleSnapshot snap;
  snap.num_tasks = job_.num_tasks();
  snap.completed_count = completed_count_;
  snap.completions = completion_counts_;
  snap.at_drain = drained_;

  // Placement coherence: instances_ and the workers' queues must describe
  // the same set of (task, worker) holdings.
  auto defect = [&snap](const std::ostringstream& os) {
    constexpr std::size_t kMaxDefects = 8;
    if (snap.placement_defects.size() < kMaxDefects)
      snap.placement_defects.push_back(os.str());
  };
  auto holds = [this](const WorkerRuntime& rt, TaskId t) {
    if (rt.current == t && (rt.state == WorkerState::kFetching ||
                            rt.state == WorkerState::kComputing))
      return true;
    return std::find(rt.queue.begin(), rt.queue.end(), t) != rt.queue.end();
  };

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const TaskId t(static_cast<TaskId::underlying_type>(i));
    for (WorkerId w : instances_[i]) {
      const WorkerRuntime& rt = workers_[w.value()];
      if (!holds(rt, t)) {
        std::ostringstream os;
        os << "task " << t << " is placed on worker " << w
           << " but the worker does not hold it (state "
           << static_cast<int>(rt.state) << ")";
        defect(os);
      }
      if (snap.at_drain) {
        std::ostringstream os;
        os << "task " << t << " still placed on worker " << w << " at drain";
        defect(os);
      }
    }
  }
  for (const WorkerRuntime& rt : workers_) {
    const bool running = rt.state == WorkerState::kFetching ||
                         rt.state == WorkerState::kComputing;
    if (running && !rt.current.valid()) {
      std::ostringstream os;
      os << "worker " << rt.info.id << " is fetching/computing no task";
      defect(os);
    }
    if (running && !has_instance(rt.current, rt.info.id)) {
      std::ostringstream os;
      os << "worker " << rt.info.id << " runs task " << rt.current
         << " without a recorded placement";
      defect(os);
    }
    for (TaskId t : rt.queue) {
      if (!has_instance(t, rt.info.id)) {
        std::ostringstream os;
        os << "worker " << rt.info.id << " queues task " << t
           << " without a recorded placement";
        defect(os);
      }
    }
    if (rt.state == WorkerState::kOffline &&
        (!rt.queue.empty() || rt.current.valid())) {
      std::ostringstream os;
      os << "offline worker " << rt.info.id << " still holds work";
      defect(os);
    }
  }
  return snap;
}

void GridSimulation::audit_results_ledger(
    const metrics::RunResult& result) const {
  audit::ResultsLedgerSnapshot ledger;
  ledger.makespan_s = result.makespan_s;
  ledger.max_completion_s = audit_max_completion_;
  ledger.tasks_completed = result.tasks_completed;
  ledger.num_tasks = job_.num_tasks();
  ledger.reported_bytes =
      result.total_bytes_transferred() + result.bytes_replicated;
  ledger.delivered_bytes = flows_->bytes_delivered();
  std::vector<audit::Violation> violations;
  audit::check_results_ledger(ledger, violations);
  audit::throw_if_violations("results ledger at end of run",
                             std::move(violations));
}

metrics::RunResult GridSimulation::run() {
  WCS_CHECK_MSG(!ran_, "GridSimulation::run() is single-shot");
  ran_ = true;

  scheduler_->attach(*this);
  scheduler_->on_job_submitted();
  if (replicator_) replicator_->start();
  for (WorkerRuntime& rt : workers_) go_idle(rt.info.id);
  if (config_.churn)
    for (WorkerRuntime& rt : workers_) schedule_failure(rt.info.id);

  if (config_.audit) {
    auditor_ = std::make_unique<audit::InvariantAuditor>();
    register_audit_checkers();
    // Step manually so the checkers sweep the live simulation every
    // audit_interval_events executed events. The checkers are read-only:
    // results are byte-identical to the sim_.run() path below.
    const std::size_t interval =
        std::max<std::size_t>(1, config_.audit_interval_events);
    std::size_t next_sweep = sim_.executed_events() + interval;
    while (sim_.step()) {
      if (sim_.executed_events() >= next_sweep) {
        auditor_->check("periodic sweep at t=" + std::to_string(sim_.now()) +
                        "s");
        next_sweep = sim_.executed_events() + interval;
      }
    }
  } else {
    sim_.run();
  }

  WCS_CHECK_MSG(completed_count_ == job_.num_tasks(),
                "simulation drained with " << completed_count_ << "/"
                                           << job_.num_tasks()
                                           << " tasks complete — scheduler "
                                           << scheduler_->name()
                                           << " lost tasks");

  metrics::RunResult result;
  result.scheduler = scheduler_->name();
  result.makespan_s = last_completion_;
  result.tasks_completed = completed_count_;
  result.assignments = assignments_;
  result.replicas_started = replicas_started_;
  result.replicas_cancelled = replicas_cancelled_;
  result.events_executed = sim_.executed_events();
  if (replicator_) {
    result.files_replicated = replicator_->stats().files_replicated;
    result.bytes_replicated = replicator_->stats().bytes_replicated;
  }
  result.worker_failures = failures_;
  result.worker_recoveries = recoveries_;
  result.instances_lost = instances_lost_;
  result.sites.reserve(data_servers_.size());
  for (const auto& ds : data_servers_) {
    const storage::DataServer::Stats& s = ds->stats();
    metrics::SiteResult site;
    site.batches_served = s.batches_served;
    site.batches_cancelled = s.batches_cancelled;
    site.waiting_s = s.waiting_s;
    site.transfer_s = s.transfer_s;
    site.file_transfers = s.file_transfers;
    site.bytes_transferred = s.bytes_transferred;
    site.cache_hits = s.cache_hits;
    site.evictions = ds->cache().evictions();
    result.sites.push_back(site);
  }
  if (auditor_) {
    drained_ = true;
    auditor_->check("end of run");
    audit_results_ledger(result);
  }
  if (obs_) {
    obs::ScopedPhase phase(obs_->profiler(), obs::Phase::kReporting);
    if (obs_->metrics()) populate_registry(result);
    obs_->finish();
  }
  return result;
}

}  // namespace wcs::grid
