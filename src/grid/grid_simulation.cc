#include "grid/grid_simulation.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/interner.h"
#include "common/rng.h"

namespace wcs::grid {

GridSimulation::GridSimulation(const GridConfig& config,
                               const workload::Job& job,
                               std::unique_ptr<sched::Scheduler> scheduler)
    : GridSimulation(config, job, nullptr, std::move(scheduler)) {}

GridSimulation::GridSimulation(const GridConfig& config,
                               const workload::Workload& workload,
                               std::unique_ptr<sched::Scheduler> scheduler)
    : GridSimulation(config, workload.job,
                     workload.open() ? &workload.arrivals : nullptr,
                     std::move(scheduler)) {}

GridSimulation::GridSimulation(const GridConfig& config,
                               const workload::Job& job,
                               const workload::ArrivalSchedule* arrivals,
                               std::unique_ptr<sched::Scheduler> scheduler)
    : config_(config),
      job_(job),
      arrivals_(arrivals),
      scheduler_(std::move(scheduler)),
      grid_topo_(net::build_tiers_topology(config.tiers)) {
  WCS_CHECK(scheduler_ != nullptr);
  validate_config(config_, job_);

  // Dynamic-estimate error factors for the XSufferage/MCT baselines
  // (GridConfig::estimate_error; empty = exact). Bandwidth and CPU draws
  // interleave per site from one RNG stream — the draw order is part of
  // the deterministic contract, so the vectors are produced here and
  // handed to the planes that serve them.
  std::vector<double> bandwidth_error;
  std::vector<double> mflops_error;
  const auto num_sites = static_cast<std::size_t>(config_.tiers.num_sites);
  if (config_.estimate_error > 0) {
    Rng estimate_rng(config_.estimate_seed * 0x9e3779b97f4a7c15ULL ^
                     config_.tiers.seed);
    auto draw = [&] {
      double hi = std::log(1.0 + config_.estimate_error);
      return std::exp(estimate_rng.uniform_real(-hi, hi));
    };
    for (std::size_t s = 0; s < num_sites; ++s) {
      bandwidth_error.push_back(draw());
      mflops_error.push_back(draw());
    }
  }

  data_ = std::make_unique<DataPlane>(config_, job_, grid_topo_, sim_,
                                      std::move(bandwidth_error));

  const std::size_t num_workers =
      num_sites * static_cast<std::size_t>(config_.tiers.workers_per_site);
  telemetry_ = std::make_unique<EngineTelemetry>(config_, num_workers);
  ControlPlane::Hooks hooks;
  if (telemetry_->recording()) {
    hooks.trace = [this](metrics::TimelineEventKind kind, TaskId task,
                         WorkerId worker) {
      telemetry_->record(sim_.now(), kind, task, worker);
    };
  }
  hooks.on_all_tasks_completed = [this] {
    data_->stop_replication();  // no more scans; drain cleanly
    if (fault_) fault_->stop();
  };
  const FaultPlane::TraceFn fault_trace = hooks.trace;
  control_ = std::make_unique<ControlPlane>(config_, job_, arrivals_,
                                            grid_topo_, sim_, *data_,
                                            *scheduler_,
                                            std::move(mflops_error),
                                            std::move(hooks));
  if (config_.churn)
    fault_ = std::make_unique<FaultPlane>(config_, sim_, *control_,
                                          *scheduler_, fault_trace);

  if (obs::Observability* o = telemetry_->observability()) {
    sim_.set_profiler(o->profiler());
    scheduler_->set_profiler(o->profiler());
    data_->set_observability(o, sim_);
  }
}

GridSimulation::~GridSimulation() = default;

void GridSimulation::register_audit_checkers() {
  auditor_->add_checker("flow-conservation", [this](auto& out) {
    audit::check_flow_conservation(data_->flows().audit_snapshot(), out);
  });
  auditor_->add_checker("flow-rates", [this](auto& out) {
    audit::check_flow_rates(data_->flows().audit_rates_snapshot(), out);
  });
  auditor_->add_checker("cache-coherence", [this](auto& out) {
    for (std::size_t s = 0; s < data_->num_sites(); ++s) {
      const storage::DataServer& ds =
          data_->server(SiteId(static_cast<SiteId::underlying_type>(s)));
      audit::check_cache_coherence(
          ds.cache().audit_snapshot(
              "site " + std::to_string(ds.site().value()) + " data server"),
          out);
    }
  });
  if (config_.block_store) {
    auditor_->add_checker("block-store", [this](auto& out) {
      for (std::size_t s = 0; s < data_->num_sites(); ++s) {
        const storage::DataServer& ds =
            data_->server(SiteId(static_cast<SiteId::underlying_type>(s)));
        audit::check_block_store(
            ds.cache().block_audit_snapshot(
                "site " + std::to_string(ds.site().value()) +
                " block store"),
            out);
      }
    });
  }
  auditor_->add_checker("index-coherence", [this](auto& out) {
    scheduler_->audit_collect(out);
  });
  auditor_->add_checker("task-lifecycle", [this](auto& out) {
    audit::check_task_lifecycle(control_->lifecycle_snapshot(drained_), out);
  });
  if (arrivals_ != nullptr) {
    auditor_->add_checker("tenant-accounting", [this](auto& out) {
      audit::check_tenant_accounting(control_->tenant_snapshot(drained_),
                                     out);
    });
  }
  auditor_->add_checker("event-kernel", [this](auto& out) {
    audit::EventKernelSnapshot snap;
    snap.now = sim_.now();
    snap.previous_now = audit_prev_now_;
    snap.live_count = sim_.live_events();
    const sim::Simulator::EventCounts counts = sim_.recount_events();
    snap.recount_live = counts.live;
    snap.recount_cancelled = counts.cancelled;
    snap.recount_fired = counts.fired;
    snap.scheduled_total = counts.scheduled;
    audit::check_event_kernel(snap, out);
    audit_prev_now_ = sim_.now();  // audit-only bookkeeping
  });
  auditor_->add_checker("memory-layout", [this](auto& out) {
    audit::MemoryLayoutSnapshot snap;
    snap.label = "run";
    snap.interner_symbols = common::global_interner().size();
    snap.interner_defects = common::global_interner().self_check();
    for (std::size_t s = 0; s < data_->num_sites(); ++s) {
      const storage::DataServer& ds =
          data_->server(SiteId(static_cast<SiteId::underlying_type>(s)));
      for (std::string& d : ds.memory_defects())
        snap.table_defects.push_back("site " + std::to_string(s) +
                                     " data server: " + d);
    }
    const common::NodeArena& arena = data_->flows().arena();
    audit::ArenaAccounting acc;
    acc.label = "flow-table arena";
    const common::NodeArena::Stats& st = arena.stats();
    acc.total_allocations = st.total_allocations;
    acc.live_allocations = st.live_allocations;
    acc.freelist_hits = st.freelist_hits;
    acc.large_allocations = st.large_allocations;
    acc.large_live = st.large_live;
    acc.pages = st.pages;
    acc.page_bytes = st.page_bytes;
    acc.defects = arena.structural_defects();
    snap.arenas.push_back(std::move(acc));
    audit::check_memory_layout(snap, out);
  });
}

void GridSimulation::audit_results_ledger(
    const metrics::RunResult& result) const {
  audit::ResultsLedgerSnapshot ledger;
  ledger.makespan_s = result.makespan_s;
  ledger.max_completion_s = control_->audit_max_completion();
  ledger.tasks_completed = result.tasks_completed;
  ledger.num_tasks = job_.num_tasks();
  ledger.reported_bytes =
      result.total_bytes_transferred() + result.bytes_replicated;
  ledger.delivered_bytes = data_->flows().bytes_delivered();
  std::vector<audit::Violation> violations;
  audit::check_results_ledger(ledger, violations);
  audit::throw_if_violations("results ledger at end of run",
                             std::move(violations));
}

metrics::RunResult GridSimulation::assemble_result() const {
  metrics::RunResult result;
  result.scheduler = scheduler_->name();
  result.makespan_s = control_->last_completion();
  result.tasks_completed = control_->tasks_completed();
  result.assignments = control_->assignments();
  result.replicas_started = control_->replicas_started();
  result.replicas_cancelled = control_->replicas_cancelled();
  result.events_executed = sim_.executed_events();
  if (const replication::DataReplicator* r = data_->replicator()) {
    result.files_replicated = r->stats().files_replicated;
    result.bytes_replicated = r->stats().bytes_replicated;
  }
  if (fault_) {
    result.worker_failures = fault_->failures();
    result.worker_recoveries = fault_->recoveries();
    result.instances_lost = fault_->instances_lost();
  }
  result.sites = data_->site_results();
  result.tenants = control_->tenant_results();
  return result;
}

metrics::RunResult GridSimulation::run() {
  WCS_CHECK_MSG(!ran_, "GridSimulation::run() is single-shot");
  ran_ = true;
  if (arrivals_ != nullptr)
    WCS_CHECK_MSG(scheduler_->supports_arrivals(),
                  "scheduler " << scheduler_->name()
                               << " cannot run an open-system workload "
                                  "(no on_tasks_arrived support)");

  scheduler_->attach(*this);
  scheduler_->on_job_submitted();
  data_->start_replication();
  control_->start();
  if (fault_) fault_->start();

  if (config_.audit) {
    auditor_ = std::make_unique<audit::InvariantAuditor>();
    register_audit_checkers();
    // Step manually so the checkers sweep the live simulation every
    // audit_interval_events executed events. The checkers are read-only:
    // results are byte-identical to the sim_.run() path below.
    const std::size_t interval =
        std::max<std::size_t>(1, config_.audit_interval_events);
    std::size_t next_sweep = sim_.executed_events() + interval;
    while (sim_.step()) {
      if (sim_.executed_events() >= next_sweep) {
        auditor_->check("periodic sweep at t=" + std::to_string(sim_.now()) +
                        "s");
        next_sweep = sim_.executed_events() + interval;
      }
    }
  } else {
    sim_.run();
  }

  WCS_CHECK_MSG(control_->tasks_completed() == job_.num_tasks(),
                "simulation drained with "
                    << control_->tasks_completed() << "/" << job_.num_tasks()
                    << " tasks complete — scheduler " << scheduler_->name()
                    << " lost tasks");

  metrics::RunResult result = assemble_result();
  if (auditor_) {
    drained_ = true;
    auditor_->check("end of run");
    audit_results_ledger(result);
  }
  telemetry_->finish_run(result, sim_, data_->flows());
  return result;
}

}  // namespace wcs::grid
