// Data plane: everything a site's storage stack does for the engine.
//
// Owns the flow-level network, the per-site serial data servers, and the
// optional proactive replicator; serves batch file requests, manages
// cache pin/release, and answers the storage-side GridEngine queries
// (backlogs, cache views, uplink-bandwidth estimates). It knows nothing
// about workers, the scheduler, or churn — the control plane calls in
// with (site, task, worker) triples and a completion callback.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.h"
#include "grid/config.h"
#include "metrics/results.h"
#include "net/flow_manager.h"
#include "net/tiers.h"
#include "obs/observability.h"
#include "replication/data_replicator.h"
#include "sim/simulator.h"
#include "storage/block_store.h"
#include "storage/data_server.h"

namespace wcs::grid {

class DataPlane {
 public:
  // `topo`, `job`, and `sim` must outlive the plane.
  // `bandwidth_estimate_error` is the per-site multiplicative error of
  // the uplink-bandwidth estimates served to dynamic-information
  // baselines; empty means exact (see GridConfig::estimate_error).
  DataPlane(const GridConfig& config, const workload::Job& job,
            const net::GridTopology& topo, sim::Simulator& sim,
            std::vector<double> bandwidth_estimate_error);

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  // --- Batch service (control plane -> site data server) ---------------
  void request_batch(SiteId site, TaskId task, WorkerId worker,
                     std::span<const FileId> files,
                     storage::BatchCallback ready);
  [[nodiscard]] bool cancel_batch(SiteId site, TaskId task, WorkerId worker);
  void release(SiteId site, TaskId task, WorkerId worker);

  // --- Engine queries ---------------------------------------------------
  [[nodiscard]] std::size_t num_sites() const { return servers_.size(); }
  [[nodiscard]] const storage::FileCache& site_cache(SiteId site) const;
  void set_cache_listener(SiteId site, storage::CacheListener listener);
  [[nodiscard]] double estimated_uplink_bandwidth(SiteId site) const;
  [[nodiscard]] std::size_t backlog(SiteId site) const;

  // --- Introspection / composition-root wiring --------------------------
  [[nodiscard]] const storage::DataServer& server(SiteId site) const;
  [[nodiscard]] net::FlowManager& flows() { return *flows_; }
  [[nodiscard]] const net::FlowManager& flows() const { return *flows_; }
  [[nodiscard]] replication::DataReplicator* replicator() {
    return replicator_.get();
  }
  [[nodiscard]] const replication::DataReplicator* replicator() const {
    return replicator_.get();
  }
  // Shared block layout of the catalog; nullptr in whole-file mode.
  [[nodiscard]] const storage::BlockMap* block_map() const {
    return block_map_.get();
  }

  // Start/stop the optional proactive replicator (no-ops when disabled).
  void start_replication();
  void stop_replication();

  // Attach observability to the flow manager and every site cache
  // (nullptr detaches the flow side).
  void set_observability(obs::Observability* obs, sim::Simulator& sim);

  // Per-site end-of-run accounting, in site order.
  [[nodiscard]] std::vector<metrics::SiteResult> site_results() const;

 private:
  const net::GridTopology& topo_;
  std::unique_ptr<net::FlowManager> flows_;
  // One immutable block layout, shared read-only by every site cache.
  std::unique_ptr<storage::BlockMap> block_map_;
  std::vector<std::unique_ptr<storage::DataServer>> servers_;
  std::unique_ptr<replication::DataReplicator> replicator_;
  std::vector<double> bandwidth_estimate_error_;  // per site; empty if exact
};

}  // namespace wcs::grid
