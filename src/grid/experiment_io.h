// Mapping between ConfigFile text descriptions and experiment structs —
// platforms, workloads, schedulers — so whole experiments can be driven
// from .ini files (see examples/ini_experiment.cpp).
//
// Recognized keys (all optional; defaults = paper Table 1):
//
//   [platform]  num_sites, workers_per_site, capacity_files, eviction
//               (lru|fifo|minref), uplink_mbps, wan_mbps, man_mbps,
//               jitter, sites_per_man
//   [workload]  num_tasks, file_size_mb, num_rows, num_passes, seed,
//               mflop_per_file
//   [scheduler] algorithm (workqueue|storage-affinity|overlap|rest|
//               combined), choose_n, task_replication, max_replicas,
//               seed
//   [replication] enabled, popularity_threshold, placement
//               (random|least-loaded), check_interval_s
//   [churn]     enabled, mean_uptime_h, mean_downtime_h, seed
#pragma once

#include <string>

#include "common/config_file.h"
#include "common/units.h"
#include "grid/config.h"
#include "sched/factory.h"
#include "workload/coadd.h"

namespace wcs::grid {

inline GridConfig grid_config_from(const ConfigFile& cfg) {
  GridConfig c;
  c.tiers.num_sites =
      static_cast<int>(cfg.get_int_or("platform.num_sites", 10));
  c.tiers.workers_per_site =
      static_cast<int>(cfg.get_int_or("platform.workers_per_site", 1));
  c.capacity_files = static_cast<std::size_t>(
      cfg.get_int_or("platform.capacity_files", 6000));
  c.tiers.sites_per_man =
      static_cast<int>(cfg.get_int_or("platform.sites_per_man", 4));
  c.tiers.uplink_bandwidth_bps =
      mbps(cfg.get_double_or("platform.uplink_mbps", 2.0));
  c.tiers.wan_bandwidth_bps =
      mbps(cfg.get_double_or("platform.wan_mbps", 155.0));
  c.tiers.man_bandwidth_bps =
      mbps(cfg.get_double_or("platform.man_mbps", 45.0));
  c.tiers.jitter = cfg.get_double_or("platform.jitter", 0.25);

  std::string eviction = cfg.get_string_or("platform.eviction", "lru");
  if (eviction == "lru") {
    c.eviction = storage::EvictionPolicy::kLru;
  } else if (eviction == "fifo") {
    c.eviction = storage::EvictionPolicy::kFifo;
  } else if (eviction == "minref") {
    c.eviction = storage::EvictionPolicy::kMinRef;
  } else {
    WCS_CHECK_MSG(false, "unknown eviction policy: " << eviction);
  }

  if (cfg.get_bool_or("replication.enabled", false)) {
    replication::DataReplicatorParams rp;
    rp.popularity_threshold = static_cast<std::size_t>(
        cfg.get_int_or("replication.popularity_threshold", 8));
    rp.check_interval_s =
        cfg.get_double_or("replication.check_interval_s", 3600.0);
    std::string placement =
        cfg.get_string_or("replication.placement", "least-loaded");
    if (placement == "random") {
      rp.placement = replication::Placement::kRandom;
    } else if (placement == "least-loaded") {
      rp.placement = replication::Placement::kLeastLoaded;
    } else {
      WCS_CHECK_MSG(false, "unknown replication placement: " << placement);
    }
    c.replication = rp;
  }

  if (cfg.get_bool_or("churn.enabled", false)) {
    GridConfig::ChurnParams churn;
    churn.mean_uptime_s = hours(cfg.get_double_or("churn.mean_uptime_h", 24));
    churn.mean_downtime_s =
        hours(cfg.get_double_or("churn.mean_downtime_h", 4));
    churn.seed = static_cast<std::uint64_t>(cfg.get_int_or("churn.seed", 17));
    c.churn = churn;
  }
  return c;
}

inline workload::CoaddParams coadd_params_from(const ConfigFile& cfg) {
  workload::CoaddParams p;
  p.num_tasks =
      static_cast<std::size_t>(cfg.get_int_or("workload.num_tasks", 6000));
  p.file_size = megabytes(cfg.get_double_or("workload.file_size_mb", 25.0));
  p.num_rows =
      static_cast<std::size_t>(cfg.get_int_or("workload.num_rows", 12));
  p.num_passes =
      static_cast<std::size_t>(cfg.get_int_or("workload.num_passes", 2));
  p.mflop_per_file = cfg.get_double_or("workload.mflop_per_file", 2.0e5);
  p.seed = static_cast<std::uint64_t>(cfg.get_int_or("workload.seed", 42));
  return p;
}

inline sched::SchedulerSpec scheduler_spec_from(const ConfigFile& cfg) {
  sched::SchedulerSpec s;
  std::string algorithm = cfg.get_string_or("scheduler.algorithm", "rest");
  if (algorithm == "workqueue") {
    s.algorithm = sched::Algorithm::kWorkqueue;
  } else if (algorithm == "storage-affinity") {
    s.algorithm = sched::Algorithm::kStorageAffinity;
  } else if (algorithm == "overlap") {
    s.algorithm = sched::Algorithm::kOverlap;
  } else if (algorithm == "rest") {
    s.algorithm = sched::Algorithm::kRest;
  } else if (algorithm == "combined") {
    s.algorithm = sched::Algorithm::kCombined;
  } else {
    WCS_CHECK_MSG(false, "unknown scheduler algorithm: " << algorithm);
  }
  s.choose_n = static_cast<int>(cfg.get_int_or("scheduler.choose_n", 1));
  s.task_replication = cfg.get_bool_or("scheduler.task_replication", false);
  s.max_replicas =
      static_cast<int>(cfg.get_int_or("scheduler.max_replicas", 2));
  s.seed = static_cast<std::uint64_t>(cfg.get_int_or("scheduler.seed", 7));
  return s;
}

}  // namespace wcs::grid
