#include "grid/telemetry.h"

namespace wcs::grid {

EngineTelemetry::EngineTelemetry(const GridConfig& config,
                                 std::size_t num_workers) {
  if (config.record_timeline)
    timeline_ = std::make_unique<metrics::TimelineRecorder>();
  if (config.obs.any()) {
    obs_ = std::make_unique<obs::Observability>(config.obs);
    tracer_ = obs_->tracer();
  }
  if (tracer_ != nullptr) spans_.resize(num_workers);
}

void EngineTelemetry::record(SimTime now, metrics::TimelineEventKind kind,
                             TaskId task, WorkerId worker) {
  if (timeline_) timeline_->record(now, kind, task, worker);
  if (tracer_) record_span(now, kind, task, worker);
}

void EngineTelemetry::record_span(SimTime now,
                                  metrics::TimelineEventKind kind,
                                  TaskId task, WorkerId worker) {
  WorkerSpans& ws = spans_[worker.value()];
  obs::TraceSpan span;
  span.start = now;
  span.track = worker.value();
  span.task = task;
  switch (kind) {
    case metrics::TimelineEventKind::kAssigned:
      span.kind = obs::SpanKind::kAssign;
      break;
    case metrics::TimelineEventKind::kFetchStart:
      // Opens the fetch span; closed (and recorded) at exec-start.
      ws.fetch_started = now;
      return;
    case metrics::TimelineEventKind::kExecStart:
      span.kind = obs::SpanKind::kFetch;
      span.start = ws.fetch_started;
      span.duration_s = now - ws.fetch_started;
      ws.exec_started = now;
      break;
    case metrics::TimelineEventKind::kCompleted: {
      obs::TraceSpan compute;
      compute.start = ws.exec_started;
      compute.duration_s = now - ws.exec_started;
      compute.kind = obs::SpanKind::kCompute;
      compute.track = worker.value();
      compute.task = task;
      tracer_->record(compute);
      span.kind = obs::SpanKind::kComplete;
      break;
    }
    case metrics::TimelineEventKind::kCancelled:
      span.kind = obs::SpanKind::kCancelled;
      break;
    case metrics::TimelineEventKind::kWorkerFailed:
      span.kind = obs::SpanKind::kWorkerFailed;
      break;
    case metrics::TimelineEventKind::kWorkerRecovered:
      span.kind = obs::SpanKind::kWorkerRecovered;
      break;
  }
  tracer_->record(span);
}

void EngineTelemetry::populate_registry(const metrics::RunResult& result,
                                        const sim::Simulator& sim,
                                        const net::FlowManager& flows) {
  obs::MetricsRegistry& reg = *obs_->metrics();
  reg.counter("engine.assignments").add(result.assignments);
  reg.counter("engine.replicas_started").add(result.replicas_started);
  reg.counter("engine.replicas_cancelled").add(result.replicas_cancelled);
  reg.counter("engine.tasks_completed").add(result.tasks_completed);
  reg.counter("engine.worker_failures").add(result.worker_failures);
  reg.counter("engine.worker_recoveries").add(result.worker_recoveries);
  reg.counter("engine.instances_lost").add(result.instances_lost);
  reg.gauge("engine.makespan_s").set(result.makespan_s);
  reg.counter("sim.events_executed").add(sim.executed_events());
  reg.gauge("sim.peak_live_events")
      .set(static_cast<double>(sim.peak_live_events()));
  reg.counter("net.flows_completed").add(flows.completed_flows());
  reg.counter("net.flows_cancelled").add(flows.cancelled_flows());
  reg.gauge("net.bytes_delivered").set(flows.bytes_delivered());
  reg.counter("storage.file_transfers").add(result.total_file_transfers());
  reg.counter("storage.cache_hits").add(result.total_cache_hits());
  reg.counter("storage.evictions").add(result.total_evictions());
  reg.gauge("storage.bytes_transferred")
      .set(result.total_bytes_transferred());
}

void EngineTelemetry::finish_run(const metrics::RunResult& result,
                                 const sim::Simulator& sim,
                                 const net::FlowManager& flows) {
  if (!obs_) return;
  obs::ScopedPhase phase(obs_->profiler(), obs::Phase::kReporting);
  if (obs_->metrics()) populate_registry(result, sim, flows);
  obs_->finish();
}

}  // namespace wcs::grid
