// Engine telemetry: the read-only recording side of a run.
//
// Owns the optional per-task lifecycle timeline (metrics::TimelineRecorder)
// and the optional observability stack (obs::Observability: metrics
// registry, phase profiler, event tracer), and maps worker-lifecycle
// transitions onto trace spans (fetch and compute become [start, now]
// spans; the rest are instants). Everything here observes and never
// steers: a run with telemetry attached is byte-identical to one
// without (pinned by test_golden_run).
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "grid/config.h"
#include "metrics/results.h"
#include "metrics/timeline.h"
#include "net/flow_manager.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace wcs::grid {

class EngineTelemetry {
 public:
  // Instantiates the recorder/observability objects GridConfig asks for
  // (either may be absent); `num_workers` sizes the span-tracking state.
  EngineTelemetry(const GridConfig& config, std::size_t num_workers);

  EngineTelemetry(const EngineTelemetry&) = delete;
  EngineTelemetry& operator=(const EngineTelemetry&) = delete;

  // True if record() has anywhere to write — lets the engine skip the
  // callback entirely on uninstrumented runs.
  [[nodiscard]] bool recording() const {
    return timeline_ != nullptr || tracer_ != nullptr;
  }

  // One worker-lifecycle transition at simulated time `now`.
  void record(SimTime now, metrics::TimelineEventKind kind, TaskId task,
              WorkerId worker);

  // End-of-run: fill the metrics registry with engine/sim/net/storage
  // totals and flush trace/report sinks. No-op without observability.
  void finish_run(const metrics::RunResult& result, const sim::Simulator& sim,
                  const net::FlowManager& flows);

  [[nodiscard]] const metrics::TimelineRecorder* timeline() const {
    return timeline_.get();
  }
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }
  [[nodiscard]] const obs::Observability* observability() const {
    return obs_.get();
  }

 private:
  void record_span(SimTime now, metrics::TimelineEventKind kind, TaskId task,
                   WorkerId worker);
  void populate_registry(const metrics::RunResult& result,
                         const sim::Simulator& sim,
                         const net::FlowManager& flows);

  struct WorkerSpans {
    SimTime fetch_started = 0;  // current fetch span start
    SimTime exec_started = 0;   // current compute span start
  };

  std::unique_ptr<metrics::TimelineRecorder> timeline_;
  std::unique_ptr<obs::Observability> obs_;
  obs::EventTracer* tracer_ = nullptr;  // cached obs_->tracer()
  std::vector<WorkerSpans> spans_;
};

}  // namespace wcs::grid
