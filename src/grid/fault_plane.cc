#include "grid/fault_plane.h"

namespace wcs::grid {

FaultPlane::FaultPlane(const GridConfig& config, sim::Simulator& sim,
                       ControlPlane& control, sched::Scheduler& scheduler,
                       TraceFn trace)
    : churn_(*config.churn),
      sim_(sim),
      control_(control),
      scheduler_(scheduler),
      trace_(std::move(trace)),
      rng_(config.churn->seed * 0x9e3779b97f4a7c15ULL ^ config.tiers.seed),
      churn_events_(control.num_workers()) {
  WCS_CHECK_MSG(churn_.mean_uptime_s > 0 && churn_.mean_downtime_s > 0,
                "churn times must be positive");
}

void FaultPlane::start() {
  for (std::size_t w = 0; w < churn_events_.size(); ++w)
    schedule_failure(WorkerId(static_cast<WorkerId::underlying_type>(w)));
}

void FaultPlane::stop() {
  for (EventId& ev : churn_events_) {
    if (ev.valid()) {
      sim_.cancel(ev);
      ev = EventId::invalid();
    }
  }
}

void FaultPlane::schedule_failure(WorkerId worker) {
  SimTime uptime = rng_.exponential(1.0 / churn_.mean_uptime_s);
  churn_events_[worker.value()] =
      sim_.schedule_in(uptime, [this, worker] { fail_worker(worker); });
}

void FaultPlane::schedule_recovery(WorkerId worker) {
  SimTime downtime = rng_.exponential(1.0 / churn_.mean_downtime_s);
  churn_events_[worker.value()] =
      sim_.schedule_in(downtime, [this, worker] { recover_worker(worker); });
}

void FaultPlane::fail_worker(WorkerId worker) {
  std::vector<TaskId> lost = control_.withdraw_worker(worker);
  ++failures_;
  instances_lost_ += lost.size();
  if (trace_)
    trace_(metrics::TimelineEventKind::kWorkerFailed, TaskId::invalid(),
           worker);
  schedule_recovery(worker);
  scheduler_.on_worker_failed(worker, lost);
}

void FaultPlane::recover_worker(WorkerId worker) {
  ++recoveries_;
  control_.mark_online(worker);
  if (trace_)
    trace_(metrics::TimelineEventKind::kWorkerRecovered, TaskId::invalid(),
           worker);
  schedule_failure(worker);
  control_.resume_worker(worker);
}

void FaultPlane::fail_now(WorkerId worker) {
  EventId& pending = churn_events_[worker.value()];
  if (pending.valid()) {
    sim_.cancel(pending);
    pending = EventId::invalid();
  }
  std::vector<TaskId> lost = control_.withdraw_worker(worker);
  ++failures_;
  instances_lost_ += lost.size();
  if (trace_)
    trace_(metrics::TimelineEventKind::kWorkerFailed, TaskId::invalid(),
           worker);
  scheduler_.on_worker_failed(worker, lost);
}

void FaultPlane::recover_now(WorkerId worker) {
  ++recoveries_;
  control_.mark_online(worker);
  if (trace_)
    trace_(metrics::TimelineEventKind::kWorkerRecovered, TaskId::invalid(),
           worker);
  control_.resume_worker(worker);
}

}  // namespace wcs::grid
