// Fault plane: worker churn injection and crash/recover bookkeeping.
//
// Draws exponential uptime/downtime per worker (GridConfig::ChurnParams),
// fails and recovers workers, and accounts for the task instances each
// crash withdraws. The actual withdrawal — cancelling in-flight storage
// work and erasing placements — is delegated to the control plane, which
// owns the worker FSM; the fault plane only decides WHEN a worker
// crosses the Offline boundary and tells the scheduler afterwards
// (Scheduler::on_worker_failed must re-home lost tasks or the run cannot
// drain).
//
// fail_now()/recover_now() expose the same transitions without the
// random schedule, for tests and fault-injection experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "grid/config.h"
#include "grid/control_plane.h"
#include "metrics/timeline.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace wcs::grid {

class FaultPlane {
 public:
  // Fans worker-failure/recovery events out to the timeline/obs tracer
  // (may be empty).
  using TraceFn =
      std::function<void(metrics::TimelineEventKind, TaskId, WorkerId)>;

  // `config.churn` must be set; all references must outlive the plane.
  FaultPlane(const GridConfig& config, sim::Simulator& sim,
             ControlPlane& control, sched::Scheduler& scheduler,
             TraceFn trace);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // Schedules the first failure of every worker; called once at run
  // start, after the control plane entered the pull loop.
  void start();

  // Cancels every pending churn event (fired when the last task
  // completes, so the event queue can drain).
  void stop();

  // Deterministic fault injection, bypassing the exponential schedule:
  // fail_now() crashes an alive worker immediately (its queued, fetching,
  // or computing instances are withdrawn and reported to the scheduler;
  // no automatic recovery is scheduled), recover_now() brings a failed
  // worker back. Simulation-time callers only.
  void fail_now(WorkerId worker);
  void recover_now(WorkerId worker);

  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }
  [[nodiscard]] std::uint64_t instances_lost() const {
    return instances_lost_;
  }

 private:
  void schedule_failure(WorkerId worker);
  void schedule_recovery(WorkerId worker);
  void fail_worker(WorkerId worker);
  void recover_worker(WorkerId worker);

  const GridConfig::ChurnParams churn_;
  sim::Simulator& sim_;
  ControlPlane& control_;
  sched::Scheduler& scheduler_;
  TraceFn trace_;
  Rng rng_;
  std::vector<EventId> churn_events_;  // per worker: next failure/recovery
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t instances_lost_ = 0;
};

}  // namespace wcs::grid
