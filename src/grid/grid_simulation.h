// GridSimulation: the composition root of one experiment run.
//
// Wires the event kernel, a Tiers topology, and one scheduler to the
// three engine planes plus telemetry, and implements sched::GridEngine
// purely by delegation:
//
//   ControlPlane (grid/control_plane.h)  worker FSM, assign/cancel,
//                                        replica ledger, RPC latency
//   DataPlane    (grid/data_plane.h)     data servers, flow allocation,
//                                        cache pin/release, replication
//   FaultPlane   (grid/fault_plane.h)    churn schedule, fail/recover,
//                                        lost-instance withdrawal
//   EngineTelemetry (grid/telemetry.h)   timeline + obs trace/metrics
//
// All policy lives in the planes; this class only constructs them in
// the deterministic order the golden-run suite pins, runs the kernel to
// drain (optionally under the invariant auditor), and assembles the
// metrics::RunResult.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "audit/invariant_auditor.h"
#include "common/ids.h"
#include "common/units.h"
#include "compute/capacity.h"
#include "grid/config.h"
#include "grid/control_plane.h"
#include "grid/data_plane.h"
#include "grid/fault_plane.h"
#include "grid/telemetry.h"
#include "metrics/results.h"
#include "metrics/timeline.h"
#include "net/tiers.h"
#include "obs/observability.h"
#include "replication/data_replicator.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "storage/data_server.h"
#include "workload/arrivals.h"
#include "workload/job.h"

namespace wcs::grid {

class GridSimulation final : public sched::GridEngine {
 public:
  // `job` must outlive the simulation. The scheduler is owned.
  GridSimulation(const GridConfig& config, const workload::Job& job,
                 std::unique_ptr<sched::Scheduler> scheduler);
  // Open-system form: `workload` (job + arrival schedule) must outlive
  // the simulation. A closed workload (!workload.open()) runs the exact
  // closed-batch code path — the control plane and schedulers see a null
  // schedule, so results are byte-identical to the Job constructor.
  GridSimulation(const GridConfig& config,
                 const workload::Workload& workload,
                 std::unique_ptr<sched::Scheduler> scheduler);
  ~GridSimulation() override;

  // Runs the job to completion and returns the collected metrics.
  // Callable once.
  metrics::RunResult run();

  // --- sched::GridEngine (delegation only) ------------------------------
  [[nodiscard]] const workload::Job& job() const override { return job_; }
  [[nodiscard]] const workload::ArrivalSchedule* arrivals() const override {
    return arrivals_;
  }
  [[nodiscard]] std::size_t num_sites() const override {
    return data_->num_sites();
  }
  [[nodiscard]] std::size_t num_workers() const override {
    return control_->num_workers();
  }
  [[nodiscard]] SiteId site_of(WorkerId worker) const override {
    return control_->site_of(worker);
  }
  [[nodiscard]] const storage::FileCache& site_cache(
      SiteId site) const override {
    return data_->site_cache(site);
  }
  void set_cache_listener(SiteId site,
                          storage::CacheListener listener) override {
    data_->set_cache_listener(site, std::move(listener));
  }
  void assign_task(TaskId task, WorkerId worker) override {
    control_->assign_task(task, worker);
  }
  bool cancel_task(TaskId task, WorkerId worker) override {
    return control_->cancel_task(task, worker);
  }
  [[nodiscard]] bool worker_alive(WorkerId worker) const override {
    return control_->worker_alive(worker);
  }
  [[nodiscard]] std::size_t worker_backlog(WorkerId worker) const override {
    return control_->worker_backlog(worker);
  }
  [[nodiscard]] double estimated_uplink_bandwidth(
      SiteId site) const override {
    return data_->estimated_uplink_bandwidth(site);
  }
  [[nodiscard]] double estimated_site_mflops(SiteId site) const override {
    return control_->estimated_site_mflops(site);
  }
  [[nodiscard]] std::size_t data_server_backlog(SiteId site) const override {
    return data_->backlog(site);
  }

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const storage::DataServer& data_server(SiteId site) const {
    return data_->server(site);
  }
  [[nodiscard]] const compute::Worker& worker_info(WorkerId worker) const {
    return control_->worker_info(worker);
  }
  [[nodiscard]] std::size_t tasks_completed() const {
    return control_->tasks_completed();
  }
  [[nodiscard]] bool task_completed(TaskId task) const {
    return control_->task_completed(task);
  }
  [[nodiscard]] const sched::Scheduler& scheduler() const {
    return *scheduler_;
  }
  // The engine planes, for tests and fault-injection experiments.
  // fault_plane() is null unless GridConfig::churn was set.
  [[nodiscard]] const ControlPlane& control_plane() const {
    return *control_;
  }
  [[nodiscard]] const DataPlane& data_plane() const { return *data_; }
  [[nodiscard]] FaultPlane* fault_plane() { return fault_.get(); }
  // Null unless GridConfig::replication was set.
  [[nodiscard]] const replication::DataReplicator* replicator() const {
    return data_->replicator();
  }
  // Null unless GridConfig::record_timeline was set.
  [[nodiscard]] const metrics::TimelineRecorder* timeline() const {
    return telemetry_->timeline();
  }
  // Null unless GridConfig::audit was set; populated during run().
  [[nodiscard]] const audit::InvariantAuditor* auditor() const {
    return auditor_.get();
  }
  // Null unless GridConfig::obs enables an instrument. The registry is
  // populated with end-of-run totals by run(); the tracer fills as the
  // simulation progresses.
  [[nodiscard]] const obs::Observability* observability() const {
    return telemetry_->observability();
  }

 private:
  GridSimulation(const GridConfig& config, const workload::Job& job,
                 const workload::ArrivalSchedule* arrivals,
                 std::unique_ptr<sched::Scheduler> scheduler);

  void register_audit_checkers();
  void audit_results_ledger(const metrics::RunResult& result) const;
  [[nodiscard]] metrics::RunResult assemble_result() const;

  GridConfig config_;
  const workload::Job& job_;
  // Open-system arrival schedule; nullptr for closed-batch runs (both
  // the Job constructor and a non-open Workload).
  const workload::ArrivalSchedule* arrivals_ = nullptr;
  std::unique_ptr<sched::Scheduler> scheduler_;

  sim::Simulator sim_;
  net::GridTopology grid_topo_;
  std::unique_ptr<DataPlane> data_;
  std::unique_ptr<EngineTelemetry> telemetry_;
  std::unique_ptr<ControlPlane> control_;
  std::unique_ptr<FaultPlane> fault_;  // null without churn

  std::unique_ptr<audit::InvariantAuditor> auditor_;
  SimTime audit_prev_now_ = 0;
  bool drained_ = false;
  bool ran_ = false;
};

}  // namespace wcs::grid
