// GridSimulation: the experiment substrate.
//
// Wires together the event kernel, a Tiers topology, the flow-level
// network, per-site data servers, top500-sampled workers, and one
// scheduler; runs a Bag-of-Tasks job to completion and reports a
// metrics::RunResult.
//
// Worker lifecycle (paper Sec. 2.2/4.1):
//
//        +--------- assign_task (queue) ----------+
//        v                                        |
//   [Idle] --queue empty--> [Requesting] --on_worker_idle--> scheduler
//     |                                                      |
//     +--queue non-empty--> [Fetching] <---- assign ---------+
//                               |  batch request to the site data server;
//                               |  serial service + uplink flows
//                               v
//                          [Computing]  mflop / worker MFLOPS
//                               |
//                          finish: release pins, notify scheduler,
//                                  back to Idle
//
// Control messages (task request / assignment) pay the topology's
// worker<->scheduler path latency; they carry no payload worth modeling
// as flows (DESIGN.md §5.6).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "audit/checkers.h"
#include "audit/invariant_auditor.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "compute/capacity.h"
#include "grid/config.h"
#include "metrics/results.h"
#include "metrics/timeline.h"
#include "net/flow_manager.h"
#include "net/tiers.h"
#include "obs/observability.h"
#include "replication/data_replicator.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "storage/data_server.h"
#include "workload/job.h"

namespace wcs::grid {

class GridSimulation final : public sched::GridEngine {
 public:
  // `job` must outlive the simulation. The scheduler is owned.
  GridSimulation(const GridConfig& config, const workload::Job& job,
                 std::unique_ptr<sched::Scheduler> scheduler);
  ~GridSimulation() override;

  // Runs the job to completion and returns the collected metrics.
  // Callable once.
  metrics::RunResult run();

  // --- sched::GridEngine ------------------------------------------------
  [[nodiscard]] const workload::Job& job() const override { return job_; }
  [[nodiscard]] std::size_t num_sites() const override {
    return data_servers_.size();
  }
  [[nodiscard]] std::size_t num_workers() const override {
    return workers_.size();
  }
  [[nodiscard]] SiteId site_of(WorkerId worker) const override;
  [[nodiscard]] const storage::FileCache& site_cache(
      SiteId site) const override;
  void set_cache_listener(SiteId site,
                          storage::CacheListener listener) override;
  void assign_task(TaskId task, WorkerId worker) override;
  bool cancel_task(TaskId task, WorkerId worker) override;
  [[nodiscard]] bool worker_alive(WorkerId worker) const override;
  [[nodiscard]] std::size_t worker_backlog(WorkerId worker) const override;
  [[nodiscard]] double estimated_uplink_bandwidth(SiteId site) const override;
  [[nodiscard]] double estimated_site_mflops(SiteId site) const override;
  [[nodiscard]] std::size_t data_server_backlog(SiteId site) const override;

  // --- Introspection ----------------------------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const storage::DataServer& data_server(SiteId site) const;
  [[nodiscard]] const compute::Worker& worker_info(WorkerId worker) const;
  [[nodiscard]] std::size_t tasks_completed() const { return completed_count_; }
  [[nodiscard]] bool task_completed(TaskId task) const {
    return completed_.at(task.value()) != 0;
  }
  [[nodiscard]] const sched::Scheduler& scheduler() const {
    return *scheduler_;
  }
  // Null unless GridConfig::replication was set.
  [[nodiscard]] const replication::DataReplicator* replicator() const {
    return replicator_.get();
  }
  // Null unless GridConfig::record_timeline was set.
  [[nodiscard]] const metrics::TimelineRecorder* timeline() const {
    return timeline_.get();
  }
  // Null unless GridConfig::audit was set; populated during run().
  [[nodiscard]] const audit::InvariantAuditor* auditor() const {
    return auditor_.get();
  }
  // Null unless GridConfig::obs enables an instrument. The registry is
  // populated with end-of-run totals by run(); the tracer fills as the
  // simulation progresses.
  [[nodiscard]] const obs::Observability* observability() const {
    return obs_.get();
  }

 private:
  enum class WorkerState : std::uint8_t {
    kIdle,        // nothing queued, request not (yet) sent
    kRequesting,  // pull request in flight / waiting for an assignment
    kFetching,    // batch request at the data server
    kComputing,   // executing the task
    kOffline,     // crashed; recovers after the churn downtime
  };

  struct WorkerRuntime {
    compute::Worker info;
    WorkerState state = WorkerState::kIdle;
    std::deque<TaskId> queue;
    TaskId current;
    EventId compute_event;
    EventId churn_event;          // next failure or recovery
    SimTime control_latency = 0;  // one-way worker <-> scheduler
    SimTime fetch_started = 0;    // obs only: current fetch span start
    SimTime exec_started = 0;     // obs only: current compute span start
  };

  void go_idle(WorkerId worker);
  void trace(metrics::TimelineEventKind kind, TaskId task, WorkerId worker) {
    if (timeline_) timeline_->record(sim_.now(), kind, task, worker);
    if (tracer_) obs_trace(kind, task, worker);
  }
  // Map a lifecycle transition onto obs trace spans (assign/complete/...
  // instants; fetch and compute become [start, now] spans closed here).
  void obs_trace(metrics::TimelineEventKind kind, TaskId task,
                 WorkerId worker);
  // End-of-run counter/gauge totals for the metrics registry.
  void populate_registry(const metrics::RunResult& result);
  void fail_worker(WorkerId worker);
  void recover_worker(WorkerId worker);
  void schedule_failure(WorkerId worker);
  void stop_churn();
  void start_next(WorkerId worker);
  void files_ready(WorkerId worker, TaskId task);
  void finish_task(WorkerId worker, TaskId task);
  [[nodiscard]] bool has_instance(TaskId task, WorkerId worker) const;

  // --- Invariant auditing (GridConfig::audit) ---------------------------
  void register_audit_checkers();
  [[nodiscard]] audit::TaskLifecycleSnapshot lifecycle_snapshot() const;
  void audit_results_ledger(const metrics::RunResult& result) const;

  GridConfig config_;
  const workload::Job& job_;
  std::unique_ptr<sched::Scheduler> scheduler_;

  sim::Simulator sim_;
  net::GridTopology grid_topo_;
  std::unique_ptr<net::FlowManager> flows_;
  std::vector<std::unique_ptr<storage::DataServer>> data_servers_;
  std::unique_ptr<replication::DataReplicator> replicator_;
  std::unique_ptr<metrics::TimelineRecorder> timeline_;
  std::unique_ptr<obs::Observability> obs_;
  obs::EventTracer* tracer_ = nullptr;  // cached obs_->tracer()
  std::vector<WorkerRuntime> workers_;

  std::vector<char> completed_;  // by task id
  std::vector<std::vector<WorkerId>> instances_;  // active placements
  std::size_t completed_count_ = 0;
  SimTime last_completion_ = 0;
  // Audit-side redundant ledgers, maintained unconditionally (cheap) and
  // cross-checked against the primary counters when auditing is on.
  std::vector<std::uint32_t> completion_counts_;  // by task id
  SimTime audit_max_completion_ = 0;
  std::unique_ptr<audit::InvariantAuditor> auditor_;
  SimTime audit_prev_now_ = 0;
  bool drained_ = false;
  std::uint64_t assignments_ = 0;
  std::uint64_t replicas_started_ = 0;
  std::uint64_t replicas_cancelled_ = 0;
  std::unique_ptr<Rng> churn_rng_;
  std::vector<double> bandwidth_estimate_error_;  // per site; empty if exact
  std::vector<double> mflops_estimate_error_;
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t instances_lost_ = 0;
  bool ran_ = false;
};

}  // namespace wcs::grid
