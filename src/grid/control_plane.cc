#include "grid/control_plane.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"

namespace wcs::grid {

ControlPlane::ControlPlane(const GridConfig& config, const workload::Job& job,
                           const workload::ArrivalSchedule* arrivals,
                           const net::GridTopology& topo, sim::Simulator& sim,
                           DataPlane& data, sched::Scheduler& scheduler,
                           std::vector<double> mflops_estimate_error,
                           Hooks hooks)
    : config_(config),
      job_(job),
      arrivals_(arrivals),
      sim_(sim),
      data_(data),
      scheduler_(scheduler),
      hooks_(std::move(hooks)),
      mflops_estimate_error_(std::move(mflops_estimate_error)) {
  Rng speed_rng(config_.effective_speed_seed());
  const auto num_sites = static_cast<std::size_t>(config_.tiers.num_sites);
  const auto per_site =
      static_cast<std::size_t>(config_.tiers.workers_per_site);
  workers_.resize(num_sites * per_site);
  for (std::size_t s = 0; s < num_sites; ++s) {
    for (std::size_t w = 0; w < per_site; ++w) {
      std::size_t idx = s * per_site + w;
      WorkerRuntime& rt = workers_[idx];
      rt.info.id = WorkerId(static_cast<WorkerId::underlying_type>(idx));
      rt.info.site = SiteId(static_cast<SiteId::underlying_type>(s));
      rt.info.node = topo.worker_nodes[s][w];
      rt.info.mflops = compute::sample_worker_mflops(speed_rng);
      rt.control_latency =
          topo.topology.path_latency(rt.info.node, topo.scheduler_node);
    }
  }

  completed_.assign(job_.num_tasks(), 0);
  instances_.assign(job_.num_tasks(), {});
  completion_counts_.assign(job_.num_tasks(), 0);

  if (arrivals_ != nullptr) {
    arrived_.assign(job_.num_tasks(), 0);
    completion_time_.assign(job_.num_tasks(), -1.0);
    tenants_.assign(arrivals_->num_tenants(), TenantLedger{});
    for (std::size_t t = 0; t < tenants_.size(); ++t)
      tenants_[t].first_arrival_s = workload::kNeverArrives;
    for (std::size_t i = 0; i < job_.num_tasks(); ++i) {
      const TaskId id(static_cast<TaskId::underlying_type>(i));
      TenantLedger& ledger = tenants_[tenant_of(id)];
      ++ledger.tasks;
      const double at = arrivals_->arrival(id);
      ledger.first_arrival_s = std::min(ledger.first_arrival_s, at);
      if (at <= 0) {
        arrived_[i] = 1;
        ++ledger.arrived;
      }
    }
  }
}

void ControlPlane::start() {
  // Open-system arrivals: one event per distinct positive arrival time,
  // delivering that time's batch (ascending task ids) to the scheduler.
  // Scheduled before the worker pull loop so same-timestamp ties resolve
  // arrival-first, deterministically.
  if (arrivals_ != nullptr) {
    std::vector<std::pair<double, TaskId>> timed;
    for (std::size_t i = 0; i < job_.num_tasks(); ++i) {
      const TaskId id(static_cast<TaskId::underlying_type>(i));
      const double at = arrivals_->arrival(id);
      if (at > 0) timed.emplace_back(at, id);
    }
    // Stable: ids stay ascending within one arrival instant.
    std::stable_sort(timed.begin(), timed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (std::size_t lo = 0; lo < timed.size();) {
      std::size_t hi = lo;
      while (hi < timed.size() && timed[hi].first == timed[lo].first) ++hi;
      std::vector<TaskId> batch;
      batch.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) batch.push_back(timed[i].second);
      sim_.schedule_at(timed[lo].first,
                       [this, batch = std::move(batch)] { arrive(batch); });
      lo = hi;
    }
  }
  for (WorkerRuntime& rt : workers_) go_idle(rt.info.id);
}

void ControlPlane::arrive(const std::vector<TaskId>& batch) {
  for (TaskId t : batch) {
    WCS_CHECK_MSG(!arrived_[t.value()], "task " << t << " arrived twice");
    arrived_[t.value()] = 1;
    ++tenants_[tenant_of(t)].arrived;
  }
  scheduler_.on_tasks_arrived(batch);
}

SiteId ControlPlane::site_of(WorkerId worker) const {
  return workers_.at(worker.value()).info.site;
}

const compute::Worker& ControlPlane::worker_info(WorkerId worker) const {
  return workers_.at(worker.value()).info;
}

ControlPlane::WorkerPhase ControlPlane::worker_phase(WorkerId worker) const {
  return workers_.at(worker.value()).state;
}

bool ControlPlane::worker_alive(WorkerId worker) const {
  return workers_.at(worker.value()).state != WorkerPhase::kOffline;
}

std::size_t ControlPlane::worker_backlog(WorkerId worker) const {
  const WorkerRuntime& rt = workers_.at(worker.value());
  std::size_t backlog = rt.queue.size();
  if (rt.state == WorkerPhase::kFetching ||
      rt.state == WorkerPhase::kComputing)
    ++backlog;
  return backlog;
}

double ControlPlane::estimated_site_mflops(SiteId site) const {
  const auto per_site =
      static_cast<std::size_t>(config_.tiers.workers_per_site);
  double total = 0;
  for (std::size_t w = 0; w < per_site; ++w)
    total += workers_[site.value() * per_site + w].info.mflops;
  double exact = total / static_cast<double>(per_site);
  if (mflops_estimate_error_.empty()) return exact;
  return exact * mflops_estimate_error_[site.value()];
}

bool ControlPlane::has_instance(TaskId task, WorkerId worker) const {
  const auto& v = instances_.at(task.value());
  return std::find(v.begin(), v.end(), worker) != v.end();
}

void ControlPlane::assign_task(TaskId task, WorkerId worker) {
  WCS_CHECK(task.valid() && task.value() < job_.num_tasks());
  WCS_CHECK(worker.valid() && worker.value() < workers_.size());
  WCS_CHECK_MSG(!completed_[task.value()],
                "assignment of completed task " << task);
  WCS_CHECK_MSG(worker_alive(worker),
                "assignment to offline worker " << worker);
  WCS_CHECK_MSG(!has_instance(task, worker),
                "task " << task << " already placed on worker " << worker);
  if (arrivals_ != nullptr) {
    WCS_CHECK_MSG(arrived_[task.value()],
                  "task " << task << " assigned before its arrival");
    TenantLedger& ledger = tenants_[tenant_of(task)];
    ++ledger.assigned;
    if (ledger.first_assignment_s < 0) ledger.first_assignment_s = sim_.now();
  }

  if (!instances_[task.value()].empty()) ++replicas_started_;
  instances_[task.value()].push_back(worker);
  ++assignments_;
  trace(metrics::TimelineEventKind::kAssigned, task, worker);

  WorkerRuntime& rt = workers_[worker.value()];
  rt.queue.push_back(task);
  // The assignment message travels scheduler -> worker; when it lands, an
  // idle (or still-requesting) worker starts its queue head.
  sim_.schedule_in(rt.control_latency, [this, worker] {
    WorkerRuntime& w = workers_[worker.value()];
    if (w.state == WorkerPhase::kIdle || w.state == WorkerPhase::kRequesting)
      start_next(worker);
  });
}

// Cache-change notification ordering (the contract the schedulers'
// incremental indexes — overlap/ref-sum counters, cached-byte counters,
// and the sharded pending-task index — are built on): request_batch is
// the only path that mutates a site cache, and every resulting
// CacheEvent (kAdded on insert, kEvicted on a capacity eviction,
// kAccessed on the reference-count bump) fires SYNCHRONOUSLY inside the
// data-plane mutation, within this same simulation event. A scheduler
// decision only ever runs from a LATER event (on_worker_idle after the
// request latency, on_task_completed after the compute timer), so by the
// time ChooseTask walks its index every prior cache mutation has already
// been folded in. The --audit sweeps re-verify that coherence against a
// brute-force rescan between events.
void ControlPlane::start_next(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerPhase::kIdle ||
            rt.state == WorkerPhase::kRequesting);
  if (rt.queue.empty()) return;
  TaskId task = rt.queue.front();
  rt.queue.pop_front();
  rt.current = task;
  rt.state = WorkerPhase::kFetching;
  trace(metrics::TimelineEventKind::kFetchStart, task, worker);
  const workload::Task& t = job_.task(task);
  data_.request_batch(rt.info.site, task, worker, t.files,
                      [this, worker, task] { files_ready(worker, task); });
}

void ControlPlane::files_ready(WorkerId worker, TaskId task) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerPhase::kFetching);
  WCS_CHECK_EQ(rt.current, task);
  rt.state = WorkerPhase::kComputing;
  trace(metrics::TimelineEventKind::kExecStart, task, worker);
  SimTime compute = rt.info.compute_time_s(job_.task(task).mflop);
  rt.compute_event = sim_.schedule_in(
      compute, [this, worker, task] { finish_task(worker, task); });
}

void ControlPlane::finish_task(WorkerId worker, TaskId task) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerPhase::kComputing);
  WCS_CHECK_EQ(rt.current, task);
  WCS_CHECK_MSG(!completed_[task.value()],
                "task " << task << " completed twice");
  rt.compute_event = EventId::invalid();
  data_.release(rt.info.site, task, worker);

  completed_[task.value()] = 1;
  ++completed_count_;
  last_completion_ = sim_.now();
  ++completion_counts_[task.value()];
  if (arrivals_ != nullptr) {
    completion_time_[task.value()] = sim_.now();
    TenantLedger& ledger = tenants_[tenant_of(task)];
    ++ledger.completions;
    ledger.last_completion_s = sim_.now();
  }
  audit_max_completion_ = std::max(audit_max_completion_, sim_.now());
  trace(metrics::TimelineEventKind::kCompleted, task, worker);
  if (completed_count_ == job_.num_tasks() && hooks_.on_all_tasks_completed)
    hooks_.on_all_tasks_completed();
  instances_[task.value()].erase_value(worker);

  WCS_TRACE("task " << task << " done on worker " << worker << " at "
                    << sim_.now() << "s (" << completed_count_ << "/"
                    << job_.num_tasks() << ")");
  // The scheduler may cancel sibling replicas here (storage affinity).
  scheduler_.on_task_completed(task, worker);
  go_idle(worker);
}

bool ControlPlane::cancel_task(TaskId task, WorkerId worker) {
  if (!has_instance(task, worker)) return false;
  WorkerRuntime& rt = workers_[worker.value()];
  auto& inst = instances_[task.value()];

  if (rt.current == task && rt.state == WorkerPhase::kFetching) {
    bool cancelled = data_.cancel_batch(rt.info.site, task, worker);
    WCS_CHECK_MSG(cancelled, "fetching task had no batch at the data server");
    inst.erase_value(worker);
    ++replicas_cancelled_;
    note_instance_dropped(task);
    trace(metrics::TimelineEventKind::kCancelled, task, worker);
    go_idle(worker);
    return true;
  }
  if (rt.current == task && rt.state == WorkerPhase::kComputing) {
    WCS_CHECK(sim_.cancel(rt.compute_event));
    rt.compute_event = EventId::invalid();
    data_.release(rt.info.site, task, worker);
    inst.erase_value(worker);
    ++replicas_cancelled_;
    note_instance_dropped(task);
    trace(metrics::TimelineEventKind::kCancelled, task, worker);
    go_idle(worker);
    return true;
  }
  // Still queued at the worker.
  auto qit = std::find(rt.queue.begin(), rt.queue.end(), task);
  if (qit == rt.queue.end()) return false;
  rt.queue.erase(qit);
  inst.erase_value(worker);
  ++replicas_cancelled_;
    note_instance_dropped(task);
  trace(metrics::TimelineEventKind::kCancelled, task, worker);
  return true;
}

void ControlPlane::go_idle(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  rt.current = TaskId::invalid();
  rt.state = WorkerPhase::kIdle;
  if (!rt.queue.empty()) {
    start_next(worker);
    return;
  }
  // Pull path: ask the scheduler for work after the request latency.
  rt.state = WorkerPhase::kRequesting;
  sim_.schedule_in(rt.control_latency, [this, worker] {
    WorkerRuntime& w = workers_[worker.value()];
    // A queued assignment may have raced ahead of the request.
    if (w.state != WorkerPhase::kRequesting) return;
    scheduler_.on_worker_idle(worker);
  });
}

std::vector<TaskId> ControlPlane::withdraw_worker(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state != WorkerPhase::kOffline);

  // Withdraw every task instance this worker holds.
  std::vector<TaskId> lost;
  if (rt.state == WorkerPhase::kFetching) {
    bool cancelled = data_.cancel_batch(rt.info.site, rt.current, worker);
    WCS_CHECK(cancelled);
    lost.push_back(rt.current);
  } else if (rt.state == WorkerPhase::kComputing) {
    WCS_CHECK(sim_.cancel(rt.compute_event));
    rt.compute_event = EventId::invalid();
    data_.release(rt.info.site, rt.current, worker);
    lost.push_back(rt.current);
  }
  for (TaskId t : rt.queue) lost.push_back(t);
  rt.queue.clear();
  rt.current = TaskId::invalid();
  for (TaskId t : lost) {
    instances_[t.value()].erase_value(worker);
    note_instance_dropped(t);
    trace(metrics::TimelineEventKind::kCancelled, t, worker);
  }
  rt.state = WorkerPhase::kOffline;
  return lost;
}

void ControlPlane::mark_online(WorkerId worker) {
  WorkerRuntime& rt = workers_[worker.value()];
  WCS_CHECK(rt.state == WorkerPhase::kOffline);
  rt.state = WorkerPhase::kIdle;
}

void ControlPlane::resume_worker(WorkerId worker) { go_idle(worker); }

std::vector<metrics::TenantResult> ControlPlane::tenant_results() const {
  std::vector<metrics::TenantResult> out;
  if (arrivals_ == nullptr) return out;

  GroupedSamples sojourns(tenants_.size());
  for (std::size_t i = 0; i < job_.num_tasks(); ++i) {
    if (completion_time_[i] < 0) continue;
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    sojourns.add(tenant_of(id), completion_time_[i] - arrivals_->arrival(id));
  }

  out.reserve(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantLedger& ledger = tenants_[t];
    metrics::TenantResult r;
    if (t < arrivals_->tenants.size()) {
      r.name = arrivals_->tenants[t].name;
      r.weight = arrivals_->tenants[t].weight;
    } else {
      r.name = "tenant" + std::to_string(t);
    }
    r.tasks = ledger.tasks;
    r.completed = ledger.completions;
    r.first_arrival_s = ledger.tasks == 0 ? 0.0 : ledger.first_arrival_s;
    if (ledger.first_assignment_s >= 0)
      r.time_to_first_task_s =
          ledger.first_assignment_s - r.first_arrival_s;
    if (ledger.completions > 0)
      r.makespan_s = ledger.last_completion_s - r.first_arrival_s;
    r.sojourn_mean_s = sojourns.mean_of(t);
    r.sojourn_p50_s = sojourns.percentile_of(t, 50);
    r.sojourn_p95_s = sojourns.percentile_of(t, 95);
    r.sojourn_p99_s = sojourns.percentile_of(t, 99);
    out.push_back(std::move(r));
  }
  return out;
}

audit::TenantAccountingSnapshot ControlPlane::tenant_snapshot(
    bool at_drain) const {
  WCS_CHECK(arrivals_ != nullptr);
  audit::TenantAccountingSnapshot snap;
  snap.total_tasks = job_.num_tasks();
  snap.total_assignments = assignments_;
  snap.total_completions = completed_count_;
  snap.at_drain = at_drain;

  // Live placements recounted from the instances table, independently of
  // the ledgers the checker validates.
  std::vector<std::uint64_t> live(tenants_.size(), 0);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    live[tenant_of(id)] += instances_[i].size();
  }

  snap.tenants.reserve(tenants_.size());
  for (std::size_t t = 0; t < tenants_.size(); ++t) {
    const TenantLedger& ledger = tenants_[t];
    audit::TenantAccounting acc;
    acc.name = t < arrivals_->tenants.size() ? arrivals_->tenants[t].name
                                             : "tenant" + std::to_string(t);
    acc.tasks = ledger.tasks;
    acc.arrived = ledger.arrived;
    acc.assigned = ledger.assigned;
    acc.completions = ledger.completions;
    acc.cancelled = ledger.cancelled;
    acc.live = live[t];
    snap.tenants.push_back(std::move(acc));
  }
  return snap;
}

audit::TaskLifecycleSnapshot ControlPlane::lifecycle_snapshot(
    bool at_drain) const {
  audit::TaskLifecycleSnapshot snap;
  snap.num_tasks = job_.num_tasks();
  snap.completed_count = completed_count_;
  snap.completions = completion_counts_;
  snap.at_drain = at_drain;

  // Placement coherence: instances_ and the workers' queues must describe
  // the same set of (task, worker) holdings.
  auto defect = [&snap](const std::ostringstream& os) {
    constexpr std::size_t kMaxDefects = 8;
    if (snap.placement_defects.size() < kMaxDefects)
      snap.placement_defects.push_back(os.str());
  };
  auto holds = [this](const WorkerRuntime& rt, TaskId t) {
    if (rt.current == t && (rt.state == WorkerPhase::kFetching ||
                            rt.state == WorkerPhase::kComputing))
      return true;
    return std::find(rt.queue.begin(), rt.queue.end(), t) != rt.queue.end();
  };

  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const TaskId t(static_cast<TaskId::underlying_type>(i));
    for (WorkerId w : instances_[i]) {
      const WorkerRuntime& rt = workers_[w.value()];
      if (!holds(rt, t)) {
        std::ostringstream os;
        os << "task " << t << " is placed on worker " << w
           << " but the worker does not hold it (state "
           << static_cast<int>(rt.state) << ")";
        defect(os);
      }
      if (snap.at_drain) {
        std::ostringstream os;
        os << "task " << t << " still placed on worker " << w << " at drain";
        defect(os);
      }
    }
  }
  for (const WorkerRuntime& rt : workers_) {
    const bool running = rt.state == WorkerPhase::kFetching ||
                         rt.state == WorkerPhase::kComputing;
    if (running && !rt.current.valid()) {
      std::ostringstream os;
      os << "worker " << rt.info.id << " is fetching/computing no task";
      defect(os);
    }
    if (running && !has_instance(rt.current, rt.info.id)) {
      std::ostringstream os;
      os << "worker " << rt.info.id << " runs task " << rt.current
         << " without a recorded placement";
      defect(os);
    }
    for (TaskId t : rt.queue) {
      if (!has_instance(t, rt.info.id)) {
        std::ostringstream os;
        os << "worker " << rt.info.id << " queues task " << t
           << " without a recorded placement";
        defect(os);
      }
    }
    if (rt.state == WorkerPhase::kOffline &&
        (!rt.queue.empty() || rt.current.valid())) {
      std::ostringstream os;
      os << "offline worker " << rt.info.id << " still holds work";
      defect(os);
    }
  }
  return snap;
}

}  // namespace wcs::grid
