// Per-simulation page arena for node-sized allocations.
//
// NodeArena owns a pool of fixed-size pages and hands out 16-byte-
// aligned blocks from size-class freelists with a monotonic bump path:
// an allocation first tries the freelist of its size class, then bumps
// the current page, then (page exhausted) advances to the next pooled
// page or maps a fresh one. Blocks larger than the small-object ceiling
// fall through to operator new and are tracked separately.
//
// reset() requires every allocation to have been returned and then
// rewinds the bump pointer over the SAME pages, so a simulation that is
// re-run (e.g. run_seeds) reuses its pages instead of going back to the
// system allocator — the arena-reuse property test asserts the replayed
// run is byte-identical.
//
// ArenaAlloc<T> adapts the arena to the STL allocator protocol so
// node-based containers (std::map / std::set / std::unordered_map) can
// place their nodes in the arena. All propagate_on_* traits are false
// and allocators compare equal only when they share an arena, which is
// the safe configuration for containers that outlive swaps/moves across
// arenas (we never do that; see ShardedTaskIndex's copy/move members).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace wcs::common {

class NodeArena {
 public:
  struct Stats {
    std::size_t pages = 0;              // pages ever mapped (pooled)
    std::size_t page_bytes = 0;         // size of one page
    std::uint64_t total_allocations = 0;
    std::uint64_t live_allocations = 0;
    std::uint64_t freelist_hits = 0;
    std::uint64_t large_allocations = 0;  // > kMaxSmall, via operator new
    std::uint64_t large_live = 0;
    std::uint64_t resets = 0;
    [[nodiscard]] std::size_t bytes_reserved() const {
      return pages * page_bytes;
    }
  };

  explicit NodeArena(std::size_t page_bytes = 64 * 1024)
      : page_bytes_(page_bytes) {
    WCS_CHECK(page_bytes_ >= kMaxSmall);
    stats_.page_bytes = page_bytes_;
  }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  ~NodeArena() {
    for (std::byte* page : pages_) ::operator delete(page);
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    WCS_DCHECK(align <= kAlign);
    (void)align;
    if (bytes > kMaxSmall) return allocate_large(bytes);
    const std::size_t cls = size_class(bytes);
    ++stats_.total_allocations;
    ++stats_.live_allocations;
    if (FreeBlock* head = freelists_[cls]) {
      freelists_[cls] = head->next;
      ++stats_.freelist_hits;
      return head;
    }
    const std::size_t want = (cls + 1) * kAlign;
    if (bump_ + want > bump_end_) next_page();
    std::byte* p = bump_;
    bump_ += want;
    return p;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t /*align*/) {
    if (p == nullptr) return;
    if (bytes > kMaxSmall) {
      ::operator delete(p);
      --stats_.large_live;
      --stats_.live_allocations;
      return;
    }
    const std::size_t cls = size_class(bytes);
    auto* block = static_cast<FreeBlock*>(p);
    block->next = freelists_[cls];
    freelists_[cls] = block;
    --stats_.live_allocations;
  }

  // Rewind the bump path over the pooled pages. Every allocation must
  // already have been returned; pages are NOT released to the system.
  void reset() {
    WCS_CHECK_MSG(stats_.live_allocations == 0,
                  "arena reset with " << stats_.live_allocations
                                      << " live allocations");
    for (FreeBlock*& head : freelists_) head = nullptr;
    cursor_ = 0;
    if (pages_.empty()) {
      bump_ = bump_end_ = nullptr;
    } else {
      bump_ = pages_[0];
      bump_end_ = bump_ + page_bytes_;
      cursor_ = 1;
    }
    ++stats_.resets;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Accounting invariants, for the memory-layout audit checker.
  [[nodiscard]] std::vector<std::string> structural_defects() const {
    std::vector<std::string> defects;
    if (stats_.pages != pages_.size()) {
      std::ostringstream os;
      os << "arena reports " << stats_.pages << " pages but pool holds "
         << pages_.size();
      defects.push_back(os.str());
    }
    if (stats_.live_allocations > stats_.total_allocations) {
      std::ostringstream os;
      os << "arena live count " << stats_.live_allocations
         << " exceeds total " << stats_.total_allocations;
      defects.push_back(os.str());
    }
    if (stats_.large_live > stats_.large_allocations) {
      std::ostringstream os;
      os << "arena large-live count " << stats_.large_live
         << " exceeds large total " << stats_.large_allocations;
      defects.push_back(os.str());
    }
    // Freelist blocks must lie inside pooled pages; walk each list (a
    // cycle or stray pointer would loop forever, so bound the walk by
    // the number of blocks a page pool could ever have produced).
    const std::uint64_t max_blocks =
        pages_.empty() ? 0
                       : pages_.size() * (page_bytes_ / kAlign) + 1;
    for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
      std::uint64_t walked = 0;
      for (FreeBlock* b = freelists_[cls]; b != nullptr; b = b->next) {
        if (++walked > max_blocks) {
          std::ostringstream os;
          os << "arena freelist for class " << cls
             << " is longer than the page pool could produce (cycle?)";
          defects.push_back(os.str());
          break;
        }
        if (!owns(b)) {
          std::ostringstream os;
          os << "arena freelist for class " << cls
             << " holds a block outside the page pool";
          defects.push_back(os.str());
          break;
        }
      }
    }
    return defects;
  }

  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kMaxSmall = 512;

 private:
  static constexpr std::size_t kNumClasses = kMaxSmall / kAlign;

  struct FreeBlock {
    FreeBlock* next = nullptr;
  };

  static std::size_t size_class(std::size_t bytes) {
    // bytes in (0, kMaxSmall] -> class index; class c serves
    // (c+1)*kAlign bytes. A zero-byte request shares class 0.
    return bytes == 0 ? 0 : (bytes - 1) / kAlign;
  }

  void next_page() {
    if (cursor_ < pages_.size()) {
      bump_ = pages_[cursor_++];
    } else {
      auto* page = static_cast<std::byte*>(::operator new(page_bytes_));
      pages_.push_back(page);
      ++stats_.pages;
      cursor_ = pages_.size();
      bump_ = page;
    }
    bump_end_ = bump_ + page_bytes_;
  }

  void* allocate_large(std::size_t bytes) {
    ++stats_.total_allocations;
    ++stats_.live_allocations;
    ++stats_.large_allocations;
    ++stats_.large_live;
    return ::operator new(bytes);
  }

  [[nodiscard]] bool owns(const void* p) const {
    for (const std::byte* page : pages_) {
      if (p >= page && p < page + page_bytes_) return true;
    }
    return false;
  }

  std::size_t page_bytes_ = 0;
  std::vector<std::byte*> pages_;
  std::size_t cursor_ = 0;  // next pooled page the bump path will use
  std::byte* bump_ = nullptr;
  std::byte* bump_end_ = nullptr;
  FreeBlock* freelists_[kNumClasses] = {};
  Stats stats_;
};

// STL allocator over a NodeArena. The arena must outlive every
// container (and every node) bound to it.
template <typename T>
class ArenaAlloc {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  explicit ArenaAlloc(NodeArena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAlloc(const ArenaAlloc<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] NodeArena* arena() const { return arena_; }

  friend bool operator==(const ArenaAlloc& a, const ArenaAlloc& b) {
    return a.arena_ == b.arena_;
  }

 private:
  NodeArena* arena_ = nullptr;
};

}  // namespace wcs::common
