// Memory-layout selector for the hot data plane.
//
// kFlat (default) is the dense, allocation-free layout introduced in
// PR 6: slotted vectors instead of per-node hash maps in FileCache,
// recycled batch objects in DataServer, CSR inverted file indexes and
// inline-vector placement tables in the schedulers, and arena-backed
// index nodes. kLegacy is the pre-PR-6 pointer-heavy reference layout,
// kept behind --legacy-layout for exactly one PR so the golden-run
// suite can prove the two produce byte-identical results.
#pragma once

#include <string_view>

namespace wcs::common {

enum class MemoryLayout {
  kFlat,    // dense slotted/SoA structures (default)
  kLegacy,  // node-based reference layout (one-PR deprecation window)
};

inline const char* to_string(MemoryLayout layout) {
  switch (layout) {
    case MemoryLayout::kFlat: return "flat";
    case MemoryLayout::kLegacy: return "legacy";
  }
  return "?";
}

inline bool parse_memory_layout(std::string_view text, MemoryLayout* out) {
  if (text == "flat") {
    *out = MemoryLayout::kFlat;
    return true;
  }
  if (text == "legacy") {
    *out = MemoryLayout::kLegacy;
    return true;
  }
  return false;
}

}  // namespace wcs::common
