// Unit helpers. The simulation kernel works in SI base units (seconds,
// bytes, bytes/second, floating-point operations); these helpers keep
// literal conversions readable and in one place.
#pragma once

#include <cstdint>

namespace wcs {

// Simulated time, in seconds.
using SimTime = double;

using Bytes = std::uint64_t;

constexpr double kSecondsPerMinute = 60.0;
constexpr double kSecondsPerHour = 3600.0;

[[nodiscard]] constexpr Bytes megabytes(double mb) {
  return static_cast<Bytes>(mb * 1e6);
}

[[nodiscard]] constexpr double to_megabytes(Bytes b) {
  return static_cast<double>(b) / 1e6;
}

// Bandwidths are expressed in bytes/second internally.
[[nodiscard]] constexpr double mbps(double megabits_per_second) {
  return megabits_per_second * 1e6 / 8.0;
}

[[nodiscard]] constexpr double minutes(double m) { return m * kSecondsPerMinute; }
[[nodiscard]] constexpr double hours(double h) { return h * kSecondsPerHour; }

[[nodiscard]] constexpr double to_minutes(SimTime seconds) {
  return seconds / kSecondsPerMinute;
}
[[nodiscard]] constexpr double to_hours(SimTime seconds) {
  return seconds / kSecondsPerHour;
}

// Compute capacities follow the paper's convention: each worker has a
// speed in MFLOPS and each task a cost in MFLOP, so
// compute_time = mflop / mflops.
[[nodiscard]] constexpr double gigaflops_to_mflops(double gf) { return gf * 1e3; }

}  // namespace wcs
