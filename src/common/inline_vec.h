// Small inline vector for trivially copyable elements.
//
// Replacement for the hot vector<vector<Id>> tables (task placements,
// per-task running instances) whose inner vectors hold 0–2 elements in
// every paper configuration: the first N elements live inside the
// object, so the common case does no heap allocation at all, and a
// vector<InlineVec> is one contiguous block. Growth past N spills to
// the heap transparently (rare: only ablations with replication > N).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "common/check.h"

namespace wcs::common {

template <typename T, unsigned N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "InlineVec is for trivially copyable element types");
  static_assert(N >= 1);

 public:
  InlineVec() = default;

  InlineVec(const InlineVec& other) { assign_from(other); }
  InlineVec& operator=(const InlineVec& other) {
    if (this != &other) {
      release();
      assign_from(other);
    }
    return *this;
  }

  InlineVec(InlineVec&& other) noexcept { steal_from(other); }
  InlineVec& operator=(InlineVec&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~InlineVec() { release(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T* data() { return heap_ ? heap_ : inline_; }
  [[nodiscard]] const T* data() const { return heap_ ? heap_ : inline_; }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

  T& operator[](std::size_t i) {
    WCS_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    WCS_DCHECK(i < size_);
    return data()[i];
  }

  [[nodiscard]] T& front() { return (*this)[0]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }
  [[nodiscard]] T& back() { return (*this)[size_ - 1]; }
  [[nodiscard]] const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T v) {
    if (size_ == capacity()) grow();
    data()[size_++] = v;
  }

  void pop_back() {
    WCS_DCHECK(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  // Remove the first occurrence of `v`, preserving order (matches the
  // erase(remove(...)) idiom the legacy vectors used). Returns whether
  // anything was removed.
  bool erase_value(const T& v) {
    T* d = data();
    T* it = std::find(d, d + size_, v);
    if (it == d + size_) return false;
    std::copy(it + 1, d + size_, it);
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(const T& v) const {
    const T* d = data();
    return std::find(d, d + size_, v) != d + size_;
  }

 private:
  [[nodiscard]] std::uint32_t capacity() const {
    return heap_ ? heap_cap_ : N;
  }

  void grow() {
    const std::uint32_t new_cap = capacity() * 2;
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    std::memcpy(fresh, data(), size_ * sizeof(T));
    release();
    heap_ = fresh;
    heap_cap_ = new_cap;
  }

  void release() {
    if (heap_ != nullptr) {
      ::operator delete(heap_);
      heap_ = nullptr;
      heap_cap_ = 0;
    }
  }

  void assign_from(const InlineVec& other) {
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      heap_cap_ = other.heap_cap_;
      heap_ = static_cast<T*>(::operator new(heap_cap_ * sizeof(T)));
      std::memcpy(heap_, other.heap_, size_ * sizeof(T));
    } else {
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
  }

  void steal_from(InlineVec& other) {
    size_ = other.size_;
    heap_ = other.heap_;
    heap_cap_ = other.heap_cap_;
    if (heap_ == nullptr) std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    other.heap_ = nullptr;
    other.heap_cap_ = 0;
    other.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::uint32_t heap_cap_ = 0;
  std::uint32_t size_ = 0;
};

}  // namespace wcs::common
