// Leveled logging. Off (WARN) by default so simulations stay quiet; benches
// and examples raise the level via Logger::set_level or the WCS_LOG_LEVEL
// environment variable (error|warn|info|debug|trace).
#pragma once

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace wcs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level <= level_; }

  void write(LogLevel level, std::string_view msg) {
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << "[" << name(level) << "] " << msg << '\n';
  }

 private:
  Logger() {
    // detlint: nondet-source -- log-level gate, read once; logging is diagnostic output, never simulation state
    if (const char* env = std::getenv("WCS_LOG_LEVEL")) {
      std::string v(env);
      if (v == "error") level_ = LogLevel::kError;
      else if (v == "warn") level_ = LogLevel::kWarn;
      else if (v == "info") level_ = LogLevel::kInfo;
      else if (v == "debug") level_ = LogLevel::kDebug;
      else if (v == "trace") level_ = LogLevel::kTrace;
    }
  }

  static const char* name(LogLevel level) {
    switch (level) {
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
      case LogLevel::kTrace: return "trace";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

}  // namespace wcs

#define WCS_LOG(level, expr)                                        \
  do {                                                              \
    if (::wcs::Logger::instance().enabled(level)) {                 \
      std::ostringstream wcs_log_os;                                \
      wcs_log_os << expr;                                           \
      ::wcs::Logger::instance().write(level, wcs_log_os.str());     \
    }                                                               \
  } while (0)

#define WCS_ERROR(expr) WCS_LOG(::wcs::LogLevel::kError, expr)
#define WCS_WARN(expr) WCS_LOG(::wcs::LogLevel::kWarn, expr)
#define WCS_INFO(expr) WCS_LOG(::wcs::LogLevel::kInfo, expr)
#define WCS_DEBUG(expr) WCS_LOG(::wcs::LogLevel::kDebug, expr)
#define WCS_TRACE(expr) WCS_LOG(::wcs::LogLevel::kTrace, expr)
