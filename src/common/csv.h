// Minimal CSV writer used by benches and the experiment runner to emit
// machine-readable result tables next to the human-readable ones.
#pragma once

#include <fstream>
#include <initializer_list>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace wcs {

class CsvWriter {
 public:
  // Writes to an owned file.
  explicit CsvWriter(const std::string& path)
      : file_(std::make_unique<std::ofstream>(path)), out_(file_.get()) {
    WCS_CHECK_MSG(file_->good(), "cannot open " << path);
  }

  // Writes to a caller-owned stream (e.g. std::cout); the stream must
  // outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void header(std::initializer_list<std::string> cols) {
    WCS_CHECK_MSG(!header_written_, "header already written");
    write_row(std::vector<std::string>(cols));
    header_written_ = true;
    num_cols_ = cols.size();
  }

  template <typename... Ts>
  void row(const Ts&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(to_cell(fields)), ...);
    if (num_cols_ != 0) {
      WCS_CHECK_MSG(cells.size() == num_cols_,
                    "row has " << cells.size() << " cells, header has "
                               << num_cols_);
    }
    write_row(cells);
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    std::ostringstream os;
    os << v;
    return escape(os.str());
  }

  static std::string escape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  }

  void write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) *out_ << ',';
      *out_ << cells[i];
    }
    *out_ << '\n';
  }

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_ = nullptr;
  bool header_written_ = false;
  std::size_t num_cols_ = 0;
};

}  // namespace wcs
