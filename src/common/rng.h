// Deterministic random number generation.
//
// All stochastic components of the library take an explicit seed or an
// Rng&; there is no ambient entropy anywhere, so a whole experiment is
// reproducible from the seeds recorded in its config.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/check.h"

namespace wcs {

// SplitMix64 finalizer: the standard strong 64-bit mixing function.
// Used by substream_seed() below; also a decent standalone hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4a94d7ee9e8d1ULL;
  return x ^ (x >> 31);
}

// Derive the seed of substream `stream` from a root seed.
//
// This is the stream-hygiene primitive for multi-tenant workloads:
// each tenant k seeds its own Rng from substream_seed(root, k), so the
// draw sequence of tenant k depends only on (root, k) — adding tenant
// N+1, or drawing more from one tenant's stream, never perturbs
// tenants 1..N. Contrast with Rng::fork(), where each fork consumes a
// draw from the parent and therefore shifts every later fork.
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t root,
                                                     std::uint64_t stream) {
  // Two mixing rounds keep root/stream from cancelling via the xor.
  return splitmix64(splitmix64(root) ^ splitmix64(~stream));
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derive an independent child generator; used to give each subsystem its
  // own stream so adding draws in one place does not perturb another.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    WCS_CHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    WCS_CHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Index into a non-empty container, uniformly.
  [[nodiscard]] std::size_t index(std::size_t size) {
    WCS_CHECK(size > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  // Sample an index with probability proportional to weights[i].
  // All weights must be >= 0. If they sum to zero, samples uniformly —
  // this is exactly the ChooseTask(n) degenerate case where every
  // candidate task has weight zero (e.g. cold caches under the overlap
  // metric).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) {
    WCS_CHECK(!weights.empty());
    double total = 0;
    for (double w : weights) {
      WCS_CHECK_MSG(w >= 0, "negative weight " << w);
      total += w;
    }
    if (total <= 0) return index(weights.size());
    double r = uniform_real(0, total);
    double acc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;  // guard against FP rounding
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Zipf-distributed rank in [1, n] with exponent s. Convenience wrapper
  // that rebuilds the CDF table on every call — loops drawing many ranks
  // from one pool must hoist a ZipfCdf instead (the per-call table build
  // is O(n), which made workload generation quadratic in task count).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Precomputed Zipf CDF over ranks [1, n] with exponent s. The prefix
// sums accumulate in the same order as the naive linear-scan sampler
// this replaces, and each sample consumes exactly one uniform draw, so
// the rank sequence is bit-identical to it — only the per-draw cost
// changes, O(n) -> O(log n).
class ZipfCdf {
 public:
  ZipfCdf(std::size_t n, double s) {
    WCS_CHECK(n > 0);
    cdf_.reserve(n);
    double acc = 0;
    for (std::size_t k = 1; k <= n; ++k) {
      acc += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_.push_back(acc);
    }
  }

  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const double r = rng.uniform_real(0, cdf_.back());
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
    if (it == cdf_.end()) return cdf_.size();  // guard against FP rounding
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

inline std::size_t Rng::zipf(std::size_t n, double s) {
  return ZipfCdf(n, s).sample(*this);
}

}  // namespace wcs
