// Global string interner.
//
// Names that used to travel as std::string per object (job names,
// scenario labels) collapse to a 4-byte Symbol: an index into one
// process-wide table. Interning the same text twice returns the same
// Symbol, so equality is an integer compare and the bytes are stored
// once.
//
// The table is guarded by a mutex because run_matrix interns from the
// thread pool. Views stay valid forever: the backing strings live in a
// deque, whose elements never move.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace wcs::common {

struct SymbolTag {};
using Symbol = StrongId<SymbolTag>;

class StringInterner {
 public:
  StringInterner() = default;
  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;

  Symbol intern(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(text);
    if (it != index_.end()) return Symbol(it->second);
    const auto id = static_cast<std::uint32_t>(strings_.size());
    const std::string& stored = strings_.emplace_back(text);
    index_.emplace(std::string_view(stored), id);
    return Symbol(id);
  }

  // The interned bytes. Valid for the interner's lifetime.
  [[nodiscard]] std::string_view view(Symbol sym) const {
    std::lock_guard<std::mutex> lock(mu_);
    WCS_CHECK_MSG(sym.valid() && sym.value() < strings_.size(),
                  "view of unknown symbol " << sym);
    return strings_[sym.value()];
  }

  [[nodiscard]] bool known(Symbol sym) const {
    std::lock_guard<std::mutex> lock(mu_);
    return sym.valid() && sym.value() < strings_.size();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return strings_.size();
  }

  // Table invariants for the memory-layout audit checker: the lookup
  // index and the storage must describe the same bijection.
  [[nodiscard]] std::vector<std::string> self_check() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> defects;
    if (index_.size() != strings_.size())
      defects.push_back("interner index and storage disagree on size");
    // Walk the ordered storage side rather than the hash index so the
    // defect list comes out in a deterministic order. With the size
    // check above, "every stored string maps back to its own id" is
    // equivalent to the full bijection.
    for (std::size_t id = 0; id < strings_.size(); ++id) {
      const auto it = index_.find(strings_[id]);
      if (it == index_.end()) {
        defects.push_back("interned string missing from index");
        continue;
      }
      if (it->second != id)
        defects.push_back("interner index entry does not round-trip");
    }
    return defects;
  }

 private:
  mutable std::mutex mu_;
  // Deque: element addresses are stable, so index_ keys (views into the
  // stored strings) and caller-held views never dangle.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

// The process-wide interner used for job and scenario names.
inline StringInterner& global_interner() {
  static StringInterner interner;
  return interner;
}

}  // namespace wcs::common
