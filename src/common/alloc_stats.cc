#include "common/alloc_stats.h"

#include <cstddef>
#include <cstdlib>
#include <new>

namespace wcs::common {
namespace {
AllocCounters g_counters;
}  // namespace

AllocCounters& alloc_counters() { return g_counters; }

bool alloc_counting_enabled() {
#if defined(WCS_NO_ALLOC_COUNTING)
  return false;
#else
  return true;
#endif
}

AllocSnapshot alloc_snapshot() {
  AllocSnapshot snap;
  snap.allocations = g_counters.allocations.load(std::memory_order_relaxed);
  snap.frees = g_counters.frees.load(std::memory_order_relaxed);
  snap.bytes = g_counters.bytes.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace wcs::common

#if !defined(WCS_NO_ALLOC_COUNTING)

namespace {

inline void* counted_alloc(std::size_t size, std::size_t align) {
  auto& c = wcs::common::alloc_counters();
  c.allocations.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(size, std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc requires size to be a multiple of the alignment.
    std::size_t padded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, padded);
  }
  return std::malloc(size);
}

inline void counted_free(void* p) {
  if (p == nullptr) return;
  wcs::common::alloc_counters().frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

inline void* counted_alloc_or_throw(std::size_t size, std::size_t align) {
  void* p = counted_alloc(size, align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc_or_throw(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc_or_throw(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_or_throw(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

#endif  // !WCS_NO_ALLOC_COUNTING
