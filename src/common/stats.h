// Small statistics toolkit: running summaries, percentiles, histograms and
// empirical CDFs. Used by the metrics recorder and by the workload
// characterization benches (Table 2 / Figure 3 of the paper).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <span>
#include <vector>

#include "common/check.h"

namespace wcs {

// Streaming summary (Welford) — O(1) memory, numerically stable.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    double total = static_cast<double>(n_ + other.n_);
    double delta = other.mean_ - mean_;
    double new_mean = mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ = m2_ + other.m2_ +
          delta * delta * static_cast<double>(n_) *
              static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Percentile with linear interpolation; p in [0, 100]. Sorts a copy.
[[nodiscard]] inline double percentile(std::vector<double> values, double p) {
  WCS_CHECK(!values.empty());
  WCS_CHECK(p >= 0 && p <= 100);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  auto hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1 - frac) + values[hi] * frac;
}

// Jain's fairness index over per-party allocations:
//   J(x) = (sum x_i)^2 / (n * sum x_i^2),  J in [1/n, 1].
// J == 1 iff every party received the same allocation; J -> 1/n as one
// party monopolizes. Degenerate inputs (empty, single party, all-zero)
// are perfectly fair by convention and return 1.0, so a closed
// single-tenant run always reports J == 1.
[[nodiscard]] inline double jain_fairness_index(std::span<const double> xs) {
  if (xs.size() <= 1) return 1.0;
  double sum = 0;
  double sum_sq = 0;
  for (double x : xs) {
    WCS_CHECK_MSG(x >= 0, "negative allocation " << x);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0) return 1.0;  // all-zero: nobody is ahead of anybody
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

// Per-group sample sets with exact percentiles and an associative merge.
// This is the per-tenant accumulator behind the schema-v2 report
// sections: group = tenant index, samples = per-task sojourn times.
// merge() concatenates sample sets; because percentile() sorts, every
// merge order yields identical quantiles (the property test for this
// lives in tests/test_stats.cc).
class GroupedSamples {
 public:
  explicit GroupedSamples(std::size_t groups = 0) : groups_(groups) {}

  void add(std::size_t group, double value) {
    WCS_CHECK(group < groups_.size());
    groups_[group].push_back(value);
  }

  void merge(const GroupedSamples& other) {
    if (groups_.size() < other.groups_.size())
      groups_.resize(other.groups_.size());
    for (std::size_t g = 0; g < other.groups_.size(); ++g)
      groups_[g].insert(groups_[g].end(), other.groups_[g].begin(),
                        other.groups_[g].end());
  }

  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }
  [[nodiscard]] std::size_t count(std::size_t g) const {
    return groups_.at(g).size();
  }
  [[nodiscard]] double mean_of(std::size_t g) const {
    const std::vector<double>& v = groups_.at(g);
    if (v.empty()) return 0.0;
    double sum = 0;
    for (double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  }
  // Percentile of group g's samples (empty group -> 0, so reports stay
  // finite for tenants that completed nothing).
  [[nodiscard]] double percentile_of(std::size_t g, double p) const {
    const std::vector<double>& v = groups_.at(g);
    return v.empty() ? 0.0 : percentile(v, p);
  }
  [[nodiscard]] const std::vector<double>& samples(std::size_t g) const {
    return groups_.at(g);
  }

 private:
  std::vector<std::vector<double>> groups_;
};

// Empirical survival curve over integer counts: fraction of observations
// whose value is >= k, for each distinct k. This is exactly the
// presentation of the paper's Figure 1/3 ("% of files accessed by >= x
// tasks", cumulative with the x-axis in decreasing order).
class ReverseCdf {
 public:
  void add(std::size_t value) { ++counts_[value]; ++n_; }

  // Fraction of observations with value >= k, in [0, 1].
  [[nodiscard]] double fraction_at_least(std::size_t k) const {
    if (n_ == 0) return 0.0;
    std::size_t c = 0;
    for (const auto& [v, cnt] : counts_)
      if (v >= k) c += cnt;
    return static_cast<double>(c) / static_cast<double>(n_);
  }

  // (value, fraction >= value) pairs in increasing value order.
  [[nodiscard]] std::vector<std::pair<std::size_t, double>> points() const {
    std::vector<std::pair<std::size_t, double>> out;
    std::size_t tail = n_;
    out.reserve(counts_.size());
    for (const auto& [v, cnt] : counts_) {
      out.emplace_back(v, n_ ? static_cast<double>(tail) /
                                   static_cast<double>(n_)
                             : 0.0);
      tail -= cnt;
    }
    return out;
  }

  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  std::map<std::size_t, std::size_t> counts_;
  std::size_t n_ = 0;
};

// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets, 0) {
    WCS_CHECK(hi > lo);
    WCS_CHECK(buckets > 0);
  }

  void add(double x) {
    ++n_;
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(buckets_.size()));
      ++buckets_[std::min(idx, buckets_.size() - 1)];
    }
  }

  [[nodiscard]] std::size_t bucket(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t count() const { return n_; }

 private:
  double lo_ = 0;
  double hi_ = 0;
  std::vector<std::size_t> buckets_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t n_ = 0;
};

}  // namespace wcs
