// Fixed-size worker thread pool.
//
// The experiment runner fans independent run_once() simulations out over
// this pool (grid::run_matrix / run_averaged); nothing inside a single
// simulation is threaded. submit() hands back a std::future so callers
// drain results in whatever order keeps their output deterministic, and
// exceptions thrown by a task surface at future::get().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace wcs {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    WCS_CHECK_MSG(num_threads >= 1, "ThreadPool needs >= 1 thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Non-copyable, non-movable: workers capture `this`.
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue `fn` and return a future for its result. A task that throws
  // stores the exception in the future; the pool itself keeps running.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      WCS_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
      queue_.emplace([task = std::move(task)] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // The pool size to use when the caller does not specify one:
  // hardware_concurrency, with a floor of 1 (the standard allows 0 when
  // the core count is unknowable).
  [[nodiscard]] static std::size_t default_concurrency() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, and nothing left to drain
        job = std::move(queue_.front());
        queue_.pop();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace wcs
