// Process-wide heap-allocation counters.
//
// alloc_stats.cc replaces the global operator new/delete family with
// thin counting wrappers around malloc/free. The counters are the
// measurement backbone for the memory-lean acceptance criteria: the
// end-to-end benchmark gates on allocations-per-event, and tests
// assert that disabled observability paths are allocation-free.
//
// Counting uses relaxed atomics (a handful of cycles per allocation)
// and is compiled out under sanitizers (WCS_NO_ALLOC_COUNTING), where
// replacing operator new would fight the interceptors. Call
// alloc_counting_enabled() before asserting on deltas.
#pragma once

#include <atomic>
#include <cstdint>

namespace wcs::common {

struct AllocCounters {
  std::atomic<std::uint64_t> allocations{0};  // operator new calls
  std::atomic<std::uint64_t> frees{0};        // operator delete calls
  std::atomic<std::uint64_t> bytes{0};        // cumulative bytes requested
};

// Plain (non-atomic) copy of the counters at one instant.
struct AllocSnapshot {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

// The live counters. Referencing this function is also what pulls the
// counting operator new/delete definitions out of the static archive,
// so any binary that reads the counters is guaranteed to be counting.
AllocCounters& alloc_counters();

// False when counting is compiled out (sanitizer builds).
bool alloc_counting_enabled();

AllocSnapshot alloc_snapshot();

// Convenience: allocations performed between two snapshots.
inline std::uint64_t allocations_between(const AllocSnapshot& before,
                                         const AllocSnapshot& after) {
  return after.allocations - before.allocations;
}

}  // namespace wcs::common
