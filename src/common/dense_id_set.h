// Bitmap set over a dense id universe.
//
// Replaces std::set<TaskId> where the ids are dense 0-based indexes and
// the required operations are insert / erase / contains / lowest-member
// (the orphan pool in storage-affinity picks the lowest task id first).
// One bit per id, no per-element nodes.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace wcs::common {

class DenseIdSet {
 public:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  void reset(std::size_t universe) {
    words_.assign((universe + 63) / 64, 0);
    universe_ = universe;
    size_ = 0;
  }

  bool insert(std::uint32_t id) {
    WCS_DCHECK(id < universe_);
    std::uint64_t& w = words_[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if (w & bit) return false;
    w |= bit;
    ++size_;
    return true;
  }

  bool erase(std::uint32_t id) {
    WCS_DCHECK(id < universe_);
    std::uint64_t& w = words_[id >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (id & 63);
    if (!(w & bit)) return false;
    w &= ~bit;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    if (id >= universe_) return false;
    return (words_[id >> 6] >> (id & 63)) & 1;
  }

  // Lowest member, or kNpos when empty.
  [[nodiscard]] std::uint32_t first() const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return static_cast<std::uint32_t>(
            i * 64 + static_cast<std::uint32_t>(std::countr_zero(words_[i])));
      }
    }
    return kNpos;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    for (std::uint64_t& w : words_) w = 0;
    size_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t universe_ = 0;
  std::size_t size_ = 0;
};

}  // namespace wcs::common
