// Minimal INI-style configuration reader.
//
// Lets examples and downstream users describe platforms/experiments in a
// text file instead of code:
//
//   # experiment.ini
//   [platform]
//   num_sites = 10
//   workers_per_site = 1
//   capacity_files = 6000
//   uplink_mbps = 2.0
//
//   [workload]
//   num_tasks = 6000
//   file_size_mb = 25
//
// Syntax: `[section]` headers, `key = value` pairs, `#`/`;` comments,
// blank lines ignored. Keys are looked up as "section.key". Values are
// parsed on demand (string / int / double / bool); missing keys either
// throw (get_*) or fall back (get_*_or).
#pragma once

#include <cctype>
#include <cstdint>
#include <istream>
#include <map>
#include <sstream>
#include <string>

#include "common/check.h"

namespace wcs {

class ConfigFile {
 public:
  ConfigFile() = default;

  static ConfigFile parse(std::istream& in) {
    ConfigFile cfg;
    std::string line;
    std::string section;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      std::string trimmed = trim(strip_comment(line));
      if (trimmed.empty()) continue;
      if (trimmed.front() == '[') {
        WCS_CHECK_MSG(trimmed.back() == ']',
                      "line " << line_no << ": unterminated section header");
        section = trim(trimmed.substr(1, trimmed.size() - 2));
        WCS_CHECK_MSG(!section.empty(),
                      "line " << line_no << ": empty section name");
        continue;
      }
      auto eq = trimmed.find('=');
      WCS_CHECK_MSG(eq != std::string::npos,
                    "line " << line_no << ": expected key = value");
      std::string key = trim(trimmed.substr(0, eq));
      std::string value = trim(trimmed.substr(eq + 1));
      WCS_CHECK_MSG(!key.empty(), "line " << line_no << ": empty key");
      std::string full = section.empty() ? key : section + "." + key;
      WCS_CHECK_MSG(!cfg.values_.count(full),
                    "line " << line_no << ": duplicate key " << full);
      cfg.values_[full] = value;
    }
    return cfg;
  }

  static ConfigFile parse_string(const std::string& text) {
    std::istringstream in(text);
    return parse(in);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  [[nodiscard]] std::string get_string(const std::string& key) const {
    auto it = values_.find(key);
    WCS_CHECK_MSG(it != values_.end(), "missing config key " << key);
    return it->second;
  }
  [[nodiscard]] std::string get_string_or(const std::string& key,
                                          const std::string& fallback) const {
    return has(key) ? get_string(key) : fallback;
  }

  [[nodiscard]] std::int64_t get_int(const std::string& key) const {
    const std::string v = get_string(key);
    std::size_t pos = 0;
    std::int64_t out = 0;
    try {
      out = std::stoll(v, &pos);
    } catch (const std::exception&) {
      WCS_CHECK_MSG(false, "config key " << key << ": not an integer: " << v);
    }
    WCS_CHECK_MSG(pos == v.size(),
                  "config key " << key << ": trailing junk in " << v);
    return out;
  }
  [[nodiscard]] std::int64_t get_int_or(const std::string& key,
                                        std::int64_t fallback) const {
    return has(key) ? get_int(key) : fallback;
  }

  [[nodiscard]] double get_double(const std::string& key) const {
    const std::string v = get_string(key);
    std::size_t pos = 0;
    double out = 0;
    try {
      out = std::stod(v, &pos);
    } catch (const std::exception&) {
      WCS_CHECK_MSG(false, "config key " << key << ": not a number: " << v);
    }
    WCS_CHECK_MSG(pos == v.size(),
                  "config key " << key << ": trailing junk in " << v);
    return out;
  }
  [[nodiscard]] double get_double_or(const std::string& key,
                                     double fallback) const {
    return has(key) ? get_double(key) : fallback;
  }

  [[nodiscard]] bool get_bool(const std::string& key) const {
    std::string v = get_string(key);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    WCS_CHECK_MSG(false, "config key " << key << ": not a boolean: " << v);
    return false;
  }
  [[nodiscard]] bool get_bool_or(const std::string& key, bool fallback) const {
    return has(key) ? get_bool(key) : fallback;
  }

  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  static std::string strip_comment(const std::string& s) {
    auto pos = s.find_first_of("#;");
    return pos == std::string::npos ? s : s.substr(0, pos);
  }
  static std::string trim(const std::string& s) {
    auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) return {};
    auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
  }

  std::map<std::string, std::string> values_;
};

}  // namespace wcs
