// Strongly-typed identifiers used across the library.
//
// Every entity in the simulation (files, tasks, workers, sites, network
// nodes, links, flows) gets its own id type so that mixing them up is a
// compile-time error instead of a silent bug.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace wcs {

// A transparent integer wrapper parameterized by a tag type.
//
// Default-constructed ids are invalid; valid ids are produced explicitly
// from an underlying integer (typically a dense 0-based index, so ids can
// index into vectors directly via `value()`).
template <typename Tag, typename T = std::uint32_t>
class StrongId {
 public:
  using underlying_type = T;

  constexpr StrongId() = default;
  constexpr explicit StrongId(T value) : value_(value) {}

  // The raw integer. Only meaningful when valid().
  [[nodiscard]] constexpr T value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != kInvalidValue;
  }

  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  static constexpr T kInvalidValue = static_cast<T>(-1);
  T value_ = kInvalidValue;
};

struct FileTag {};
struct TaskTag {};
struct WorkerTag {};
struct SiteTag {};
struct NodeTag {};
struct LinkTag {};
struct FlowTag {};
struct EventTag {};

using FileId = StrongId<FileTag>;
using TaskId = StrongId<TaskTag>;
using WorkerId = StrongId<WorkerTag>;
using SiteId = StrongId<SiteTag>;
using NodeId = StrongId<NodeTag>;
using LinkId = StrongId<LinkTag>;
using FlowId = StrongId<FlowTag, std::uint64_t>;
using EventId = StrongId<EventTag, std::uint64_t>;

}  // namespace wcs

namespace std {
template <typename Tag, typename T>
struct hash<wcs::StrongId<Tag, T>> {
  size_t operator()(wcs::StrongId<Tag, T> id) const noexcept {
    return std::hash<T>{}(id.value());
  }
};
}  // namespace std
