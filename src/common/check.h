// Invariant checking macros.
//
// WCS_CHECK is always on (it guards simulation invariants whose violation
// would silently corrupt results); WCS_DCHECK compiles out in release
// builds and is used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wcs::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "WCS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace wcs::detail

#define WCS_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::wcs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define WCS_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream wcs_check_os;                                   \
      wcs_check_os << msg;                                               \
      ::wcs::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                  wcs_check_os.str());                   \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define WCS_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define WCS_DCHECK(expr) WCS_CHECK(expr)
#endif
