// Invariant checking macros.
//
// WCS_CHECK is always on (it guards simulation invariants whose violation
// would silently corrupt results); WCS_DCHECK compiles out in release
// builds and is used on hot paths.
//
// The comparison forms (WCS_CHECK_EQ/NE/LT/LE/GT/GE and their DCHECK
// twins) print both operand values on failure — prefer them over
// WCS_CHECK(a == b), whose message shows only the expression text.
//
// WCS_DCHECK* evaluate their operands zero times in NDEBUG builds:
// expressions with side effects must be hoisted into a named local (see
// the DCHECK side-effect audit note in DESIGN.md § Invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace wcs::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "WCS_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

template <typename A, typename B>
[[noreturn]] inline void check_op_failed(const char* expr, const A& a,
                                         const B& b, const char* file,
                                         int line) {
  std::ostringstream os;
  os << "operands: " << a << " vs " << b;
  check_failed(expr, file, line, os.str());
}

}  // namespace wcs::detail

#define WCS_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::wcs::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define WCS_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream wcs_check_os;                                   \
      wcs_check_os << msg;                                               \
      ::wcs::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                  wcs_check_os.str());                   \
    }                                                                    \
  } while (0)

// Comparison checks that report both operand values. Operands are
// evaluated exactly once; their types only need operator<< and the
// compared operator.
#define WCS_CHECK_OP_(op, a, b)                                          \
  do {                                                                   \
    const auto& wcs_check_a_ = (a);                                      \
    const auto& wcs_check_b_ = (b);                                      \
    if (!(wcs_check_a_ op wcs_check_b_))                                 \
      ::wcs::detail::check_op_failed(#a " " #op " " #b, wcs_check_a_,    \
                                     wcs_check_b_, __FILE__, __LINE__);  \
  } while (0)

#define WCS_CHECK_EQ(a, b) WCS_CHECK_OP_(==, a, b)
#define WCS_CHECK_NE(a, b) WCS_CHECK_OP_(!=, a, b)
#define WCS_CHECK_LT(a, b) WCS_CHECK_OP_(<, a, b)
#define WCS_CHECK_LE(a, b) WCS_CHECK_OP_(<=, a, b)
#define WCS_CHECK_GT(a, b) WCS_CHECK_OP_(>, a, b)
#define WCS_CHECK_GE(a, b) WCS_CHECK_OP_(>=, a, b)

#ifdef NDEBUG
#define WCS_DCHECK(expr) \
  do {                   \
  } while (0)
#define WCS_DCHECK_EQ(a, b) WCS_DCHECK(0)
#define WCS_DCHECK_NE(a, b) WCS_DCHECK(0)
#define WCS_DCHECK_LT(a, b) WCS_DCHECK(0)
#define WCS_DCHECK_LE(a, b) WCS_DCHECK(0)
#define WCS_DCHECK_GT(a, b) WCS_DCHECK(0)
#define WCS_DCHECK_GE(a, b) WCS_DCHECK(0)
#else
#define WCS_DCHECK(expr) WCS_CHECK(expr)
#define WCS_DCHECK_EQ(a, b) WCS_CHECK_EQ(a, b)
#define WCS_DCHECK_NE(a, b) WCS_CHECK_NE(a, b)
#define WCS_DCHECK_LT(a, b) WCS_CHECK_LT(a, b)
#define WCS_DCHECK_LE(a, b) WCS_CHECK_LE(a, b)
#define WCS_DCHECK_GT(a, b) WCS_CHECK_GT(a, b)
#define WCS_DCHECK_GE(a, b) WCS_CHECK_GE(a, b)
#endif
