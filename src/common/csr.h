// Compressed-sparse-row table with mutable row ends.
//
// Replaces vector<vector<V>> inverted indexes (tasks-of-file tables)
// with three flat arrays: row offsets, row cursors, and one element
// pool. Rows are sized in a counting pass, then filled; afterwards each
// row supports O(1) swap-erase and bounded push_back (re-adding after a
// worker failure), which is exactly the mutation set the schedulers
// perform. A row can never grow past the capacity it was counted with —
// the schedulers re-add only elements they previously removed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace wcs::common {

template <typename V>
class Csr {
 public:
  // Start a counting pass for `rows` empty rows.
  void reset(std::size_t rows) {
    begin_.assign(rows + 1, 0);
    end_.assign(rows, 0);
    pool_.clear();
  }

  // Counting pass: declare one future element in `row`.
  void count(std::size_t row) { ++begin_[row + 1]; }

  // Turn the counts into offsets and allocate the pool. All rows start
  // empty; fill with push().
  void finalize() {
    for (std::size_t r = 1; r < begin_.size(); ++r) begin_[r] += begin_[r - 1];
    pool_.resize(begin_.back());
    for (std::size_t r = 0; r + 1 < begin_.size(); ++r) end_[r] = begin_[r];
  }

  void push(std::size_t row, V v) {
    WCS_DCHECK(end_[row] < begin_[row + 1]);
    pool_[end_[row]++] = v;
  }

  [[nodiscard]] std::span<const V> row(std::size_t r) const {
    return {pool_.data() + begin_[r], end_[r] - begin_[r]};
  }
  [[nodiscard]] std::span<V> row(std::size_t r) {
    return {pool_.data() + begin_[r], end_[r] - begin_[r]};
  }

  // Swap-remove the first occurrence of `v` in row `r` (same element
  // motion as `*it = vec.back(); vec.pop_back();` on a vector). Returns
  // whether anything was removed.
  bool erase_swap(std::size_t r, const V& v) {
    V* first = pool_.data() + begin_[r];
    V* last = pool_.data() + end_[r];
    for (V* it = first; it != last; ++it) {
      if (*it == v) {
        *it = *(last - 1);
        --end_[r];
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t rows() const {
    return begin_.empty() ? 0 : begin_.size() - 1;
  }
  [[nodiscard]] std::size_t row_size(std::size_t r) const {
    return end_[r] - begin_[r];
  }
  [[nodiscard]] std::size_t row_capacity(std::size_t r) const {
    return begin_[r + 1] - begin_[r];
  }

  // Slot-aliasing invariant for the audit checker: every row cursor
  // must sit inside its row's [begin, begin_next] window.
  [[nodiscard]] bool row_bounds_sound() const {
    for (std::size_t r = 0; r + 1 < begin_.size(); ++r) {
      if (end_[r] < begin_[r] || end_[r] > begin_[r + 1]) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> begin_;  // rows + 1 offsets into pool_
  std::vector<std::uint64_t> end_;    // per-row fill cursor
  std::vector<V> pool_;
};

}  // namespace wcs::common
