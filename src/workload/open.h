// Open-system arrival processes and the multi-tenant bag-stream
// generator.
//
// Tenants submit bags of tasks over simulated time (ROADMAP: "heavy
// traffic from millions of users"; PAPERS.md "Dynamic task scheduling in
// computing cluster environments" grounds the dynamic-arrival side, the
// CMS multi-user workflow study the tenant-mix side). Each tenant's
// arrival stream is drawn from its own RNG substream derived with
// substream_seed(seed, tenant) — adding tenant N+1, or drawing more for
// one tenant, never perturbs tenants 1..N (the stream-hygiene property
// tested in tests/test_workload_open.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/arrivals.h"
#include "workload/coadd.h"

namespace wcs::workload {

enum class ArrivalProcess {
  kAtT0,     // everything pending at t=0 (the closed-batch degenerate)
  kPoisson,  // exponential inter-arrival gaps
  kDiurnal,  // sinusoidally rate-modulated Poisson (day/night load)
  kBursty,   // heavy-tailed (bounded-Pareto) gaps between task bursts
};

[[nodiscard]] const char* to_string(ArrivalProcess process);
[[nodiscard]] ArrivalProcess parse_arrival_process(const std::string& name);

struct OpenParams {
  // Tenant roster. Empty = one anonymous weight-1 tenant.
  std::vector<TenantInfo> tenants;

  ArrivalProcess process = ArrivalProcess::kAtT0;

  // Mean inter-arrival gap per tenant, simulated seconds. All processes
  // are calibrated to this long-run mean so they are comparable at equal
  // offered load (the burst-vs-steady scenario's whole point).
  double mean_interarrival_s = 600.0;

  // kDiurnal: rate(t) = base * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_period_s = 86400.0;
  double diurnal_amplitude = 0.8;  // in [0, 1)

  // kBursty: bursts of ~mean_burst_size tasks in quick succession
  // (gaps mean_interarrival_s / 20), separated by bounded-Pareto gaps
  // with tail exponent burst_alpha in (1, 2].
  double burst_alpha = 1.5;
  double mean_burst_size = 8.0;

  // Tasks per tenant bag. 0 = split the base CoaddParams::num_tasks
  // evenly (remainder to the earliest tenants). Set explicitly when the
  // tenant-N+1 non-perturbation property matters: an even split of a
  // fixed total shifts counts when the roster grows.
  std::size_t tasks_per_tenant = 0;

  // Root seed for all per-tenant substreams (arrival draws AND per-
  // tenant bag synthesis).
  std::uint64_t seed = 101;
};

// One tenant's arrival sequence: `count` nondecreasing times, first
// arrival one gap after t=0. Deterministic in (params, tenant) only.
[[nodiscard]] std::vector<double> draw_arrivals(std::size_t count,
                                                const OpenParams& params,
                                                std::uint32_t tenant);

// Multi-tenant workload: per-tenant Coadd bags (each synthesized from
// its own substream, files in per-tenant id ranges appended in tenant
// order) with per-tenant arrival streams. Tenants 1..N are byte-stable
// under roster growth when tasks_per_tenant is explicit.
[[nodiscard]] Workload generate_multi_tenant(const CoaddParams& bag,
                                             const OpenParams& open);

// Stamp a single-tenant arrival stream over an existing closed job's
// tasks in id order (open-system runs of any base generator).
void stamp_arrivals(Workload& workload, const OpenParams& open);

}  // namespace wcs::workload
