#include "workload/open.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace wcs::workload {

const char* to_string(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kAtT0:
      return "t0";
    case ArrivalProcess::kPoisson:
      return "poisson";
    case ArrivalProcess::kDiurnal:
      return "diurnal";
    case ArrivalProcess::kBursty:
      return "bursty";
  }
  return "unknown";
}

ArrivalProcess parse_arrival_process(const std::string& name) {
  if (name == "t0") return ArrivalProcess::kAtT0;
  if (name == "poisson") return ArrivalProcess::kPoisson;
  if (name == "diurnal") return ArrivalProcess::kDiurnal;
  if (name == "bursty") return ArrivalProcess::kBursty;
  WCS_CHECK_MSG(false, "unknown arrival process '"
                           << name << "' (want t0|poisson|diurnal|bursty)");
  return ArrivalProcess::kAtT0;
}

namespace {

// Bounded draw from a Pareto tail with exponent alpha, scaled so the
// mean lands on `mean`: x = xm / U^(1/alpha), E[x] = alpha*xm/(alpha-1).
double pareto_gap(Rng& rng, double mean, double alpha) {
  const double xm = mean * (alpha - 1.0) / alpha;
  const double u = 1.0 - rng.uniform_real(0, 1);  // (0, 1]
  // Cap at 1000x the mean: the un-capped tail is so heavy that a single
  // draw can dwarf the whole experiment horizon.
  return std::min(xm / std::pow(u, 1.0 / alpha), 1000.0 * mean);
}

void append_poisson(std::vector<double>& out, std::size_t count, Rng& rng,
                    double mean_gap) {
  double t = 0;
  for (std::size_t i = 0; i < count; ++i) {
    t += rng.exponential(1.0 / mean_gap);
    out.push_back(t);
  }
}

void append_diurnal(std::vector<double>& out, std::size_t count, Rng& rng,
                    const OpenParams& p) {
  // Inhomogeneous Poisson by thinning against the peak rate.
  const double base_rate = 1.0 / p.mean_interarrival_s;
  const double peak_rate = base_rate * (1.0 + p.diurnal_amplitude);
  double t = 0;
  while (out.size() < count) {
    t += rng.exponential(peak_rate);
    const double rate =
        base_rate *
        (1.0 + p.diurnal_amplitude * std::sin(2.0 * std::acos(-1.0) * t /
                                              p.diurnal_period_s));
    if (rng.uniform_real(0, peak_rate) < rate) out.push_back(t);
  }
}

void append_bursty(std::vector<double>& out, std::size_t count, Rng& rng,
                   const OpenParams& p) {
  // Geometric burst sizes around mean_burst_size; gaps between bursts
  // are heavy-tailed and sized so the long-run mean gap per task stays
  // mean_interarrival_s.
  const double intra_gap = p.mean_interarrival_s / 20.0;
  const double inter_gap_mean =
      std::max(p.mean_interarrival_s,
               p.mean_burst_size * (p.mean_interarrival_s - intra_gap));
  const double continue_p = 1.0 - 1.0 / std::max(1.0, p.mean_burst_size);
  double t = 0;
  while (out.size() < count) {
    t += pareto_gap(rng, inter_gap_mean, p.burst_alpha);
    out.push_back(t);
    std::size_t burst = 1;
    while (out.size() < count && burst < 1000 && rng.bernoulli(continue_p)) {
      t += rng.exponential(1.0 / intra_gap);
      out.push_back(t);
      ++burst;
    }
  }
}

}  // namespace

std::vector<double> draw_arrivals(std::size_t count, const OpenParams& params,
                                  std::uint32_t tenant) {
  std::vector<double> out;
  out.reserve(count);
  if (params.process == ArrivalProcess::kAtT0) {
    out.assign(count, 0.0);
    return out;
  }
  WCS_CHECK_MSG(params.mean_interarrival_s > 0,
                "mean_interarrival_s must be positive");
  Rng rng(substream_seed(params.seed, tenant));
  switch (params.process) {
    case ArrivalProcess::kAtT0:
      break;  // handled above
    case ArrivalProcess::kPoisson:
      append_poisson(out, count, rng, params.mean_interarrival_s);
      break;
    case ArrivalProcess::kDiurnal:
      WCS_CHECK(params.diurnal_amplitude >= 0 && params.diurnal_amplitude < 1);
      append_diurnal(out, count, rng, params);
      break;
    case ArrivalProcess::kBursty:
      WCS_CHECK(params.burst_alpha > 1);
      append_bursty(out, count, rng, params);
      break;
  }
  out.resize(count);
  return out;
}

Workload generate_multi_tenant(const CoaddParams& bag,
                               const OpenParams& open) {
  std::vector<TenantInfo> tenants = open.tenants;
  if (tenants.empty()) tenants.push_back({"tenant0", 1});
  const std::size_t k = tenants.size();
  for (std::size_t i = 0; i < k; ++i)
    if (tenants[i].name.empty())
      tenants[i].name = "tenant" + std::to_string(i);

  Workload wl;
  wl.job.set_name("multi-tenant");
  wl.arrivals.tenants = tenants;
  for (std::size_t t = 0; t < k; ++t) {
    // Per-tenant bag from its own substream; explicit tasks_per_tenant
    // keeps tenant t's bag independent of the roster size.
    std::size_t n = open.tasks_per_tenant;
    if (n == 0) n = bag.num_tasks / k + (t < bag.num_tasks % k ? 1 : 0);
    WCS_CHECK_MSG(n > 0, "tenant " << tenants[t].name << " has no tasks");
    CoaddParams p = bag;
    p.num_tasks = n;
    p.seed = substream_seed(open.seed, 0x10000u + t);
    const Job tenant_bag = generate_coadd(p);

    const std::vector<double> times =
        draw_arrivals(tenant_bag.num_tasks(), open, static_cast<std::uint32_t>(t));

    // Append the bag: files keep per-tenant id ranges in tenant order,
    // task ids stay per-tenant contiguous blocks. Both are what makes
    // tenants 1..N byte-stable when tenant N+1 joins.
    const FileId::underlying_type file_offset =
        static_cast<FileId::underlying_type>(wl.job.catalog.num_files());
    for (std::size_t f = 0; f < tenant_bag.catalog.num_files(); ++f)
      wl.job.catalog.add_file(tenant_bag.catalog.size(
          FileId(static_cast<FileId::underlying_type>(f))));
    std::vector<FileId> shifted;
    for (const Task& task : tenant_bag.tasks()) {
      shifted.clear();
      shifted.reserve(task.files.size());
      for (FileId f : task.files)
        shifted.push_back(FileId(f.value() + file_offset));
      wl.job.add_task(shifted, task.mflop);
      wl.arrivals.arrival_s.push_back(times[task.id.value()]);
      wl.arrivals.tenant_of.push_back(static_cast<std::uint32_t>(t));
    }
  }
  validate_job(wl.job);
  validate_arrivals(wl.arrivals, wl.job);
  return wl;
}

void stamp_arrivals(Workload& workload, const OpenParams& open) {
  WCS_CHECK_MSG(open.tenants.size() <= 1,
                "stamp_arrivals is single-tenant; use the multi-tenant "
                "generator for tenant rosters");
  if (open.process == ArrivalProcess::kAtT0) return;  // stays closed
  workload.arrivals.arrival_s =
      draw_arrivals(workload.job.num_tasks(), open, /*tenant=*/0);
  workload.arrivals.tenants = open.tenants;
  validate_arrivals(workload.arrivals, workload.job);
}

}  // namespace wcs::workload
