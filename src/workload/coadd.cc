#include "workload/coadd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"

namespace wcs::workload {

namespace {

std::size_t clamped_normal(Rng& rng, double mean, double stddev,
                           std::size_t lo, std::size_t hi) {
  double v = rng.normal(mean, stddev);
  v = std::clamp(v, static_cast<double>(lo), static_cast<double>(hi));
  return static_cast<std::size_t>(std::llround(v));
}

}  // namespace

Job generate_coadd(const CoaddParams& p) {
  WCS_CHECK(p.num_tasks > 0);
  WCS_CHECK(p.num_rows > 0);
  WCS_CHECK(p.window_min > 0 && p.window_min <= p.window_max);
  WCS_CHECK(p.file_size > 0);
  WCS_CHECK(p.mflop_per_file > 0);

  Rng rng(p.seed);
  Job job;
  job.set_name("coadd-" + std::to_string(p.num_tasks));

  const std::size_t num_rows = std::min(p.num_rows, p.num_tasks);
  const std::size_t pool_size = std::max<std::size_t>(
      p.popular_picks_per_task == 0 ? 0 : 4,
      static_cast<std::size_t>(p.popular_pool_fraction *
                               static_cast<double>(p.num_tasks)));
  const std::size_t target_distinct =
      p.target_distinct_files != 0
          ? p.target_distinct_files
          : static_cast<std::size_t>(
                std::llround(8.9 * static_cast<double>(p.num_tasks)));

  // Calibrate the per-pass stride mean so the expected strip span hits
  // the distinct-file target: each of the num_passes sweeps covers the
  // whole strip, so
  //   rows * ((windows_per_pass - 1) * stride + window_mean) + pool
  //     = target.
  const std::size_t tasks_per_row =
      (p.num_tasks + num_rows - 1) / num_rows;
  const std::size_t num_passes = std::max<std::size_t>(1, p.num_passes);
  const std::size_t windows_per_pass =
      std::max<std::size_t>(1, (tasks_per_row + num_passes - 1) / num_passes);
  double stride_mean = 1.0;
  if (windows_per_pass > 1) {
    double windows = static_cast<double>(target_distinct) -
                     static_cast<double>(pool_size);
    stride_mean = (windows / static_cast<double>(num_rows) - p.window_mean) /
                  static_cast<double>(windows_per_pass - 1);
    stride_mean = std::max(stride_mean, 0.1);
  }
  // Strides larger than the smallest window would leave unreferenced
  // gap files; cap well below window_min.
  const std::size_t stride_cap = p.window_min - 2;

  // Split the stride mean between the Poisson base and the jump mixture
  // component so the blended mean stays on target.
  WCS_CHECK(p.jump_probability >= 0 && p.jump_probability < 1);
  WCS_CHECK(p.jump_min <= p.jump_max && p.jump_max <= stride_cap);
  const double jump_mean =
      (static_cast<double>(p.jump_min) + static_cast<double>(p.jump_max)) / 2.0;
  double base_mean =
      (stride_mean - p.jump_probability * jump_mean) /
      (1.0 - p.jump_probability);
  base_mean = std::max(base_mean, 0.1);
  std::poisson_distribution<std::size_t> base_stride(base_mean);
  auto draw_stride = [&](Rng& r) {
    std::size_t s = r.bernoulli(p.jump_probability)
                        ? static_cast<std::size_t>(r.uniform_int(
                              static_cast<std::int64_t>(p.jump_min),
                              static_cast<std::int64_t>(p.jump_max)))
                        : base_stride(r.engine());
    return std::min(s, stride_cap);
  };

  // Pass 1: lay out the windows row by row (rows own disjoint file
  // ranges).
  std::size_t next_file = 0;  // global file index cursor
  std::vector<std::vector<std::vector<FileId>>> row_tasks(num_rows);
  std::size_t emitted = 0;
  for (std::size_t row = 0; row < num_rows && emitted < p.num_tasks; ++row) {
    // Row lengths under round-robin emission (pass 2): row r receives
    // task indices r, r+num_rows, ... so earlier rows get the remainder.
    std::size_t row_len = p.num_tasks / num_rows +
                          (row < p.num_tasks % num_rows ? 1 : 0);
    std::size_t row_base = next_file;
    std::size_t row_extent = 0;  // highest file index used + 1
    auto& tasks = row_tasks[row];
    tasks.reserve(row_len);
    // Each pass sweeps the strip from (near) the start; a small random
    // offset per pass keeps the passes from being bit-identical.
    std::size_t cursor = 0;
    std::size_t in_pass = 0;
    for (std::size_t k = 0; k < row_len; ++k) {
      if (in_pass == windows_per_pass) {
        in_pass = 0;
        cursor = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(stride_cap) / 2));
      }
      std::size_t span = clamped_normal(rng, p.window_mean, p.window_stddev,
                                        p.window_min, p.window_max);
      // Exactly round(inclusion * span) files, sampled uniformly from the
      // span (sequential reservoir walk: O(span), deterministic count).
      auto need = static_cast<std::size_t>(
          std::llround(p.inclusion * static_cast<double>(span)));
      need = std::clamp<std::size_t>(need, 1, span);
      std::vector<FileId> files;
      files.reserve(need + p.popular_picks_per_task);
      std::size_t remaining = span;
      for (std::size_t i = 0; i < span && need > 0; ++i, --remaining) {
        if (rng.uniform_real(0.0, 1.0) <
            static_cast<double>(need) / static_cast<double>(remaining)) {
          files.push_back(FileId(
              static_cast<FileId::underlying_type>(row_base + cursor + i)));
          --need;
        }
      }
      row_extent = std::max(row_extent, cursor + span);
      cursor += draw_stride(rng);
      ++in_pass;
      tasks.push_back(std::move(files));
      ++emitted;
    }
    next_file = row_base + row_extent;
  }

  // Pass 2: emit tasks round-robin across rows — like the real survey
  // trace, consecutive task ids are NOT spatial neighbours; neighbours in
  // a stripe are num_rows ids apart. The per-task file sets stay in
  // intermediate vectors until the popular picks land, then the whole
  // bag is CSR-packed into the job in one sweep.
  std::vector<std::vector<FileId>> task_files;
  task_files.reserve(p.num_tasks);
  for (std::size_t k = 0; task_files.size() < p.num_tasks; ++k) {
    for (std::size_t row = 0;
         row < num_rows && task_files.size() < p.num_tasks; ++row) {
      if (k >= row_tasks[row].size()) continue;
      task_files.push_back(std::move(row_tasks[row][k]));
    }
  }

  // Popular calibration files live after all row files.
  const std::size_t pool_base = next_file;
  if (p.popular_picks_per_task > 0 && pool_size > 0) {
    const ZipfCdf pool_zipf(pool_size, p.popular_zipf_exponent);
    for (std::vector<FileId>& files : task_files) {
      std::unordered_set<std::size_t> picked;
      while (picked.size() < std::min(p.popular_picks_per_task, pool_size)) {
        std::size_t rank = pool_zipf.sample(rng);
        if (picked.insert(rank - 1).second)
          files.push_back(FileId(
              static_cast<FileId::underlying_type>(pool_base + rank - 1)));
      }
    }
    next_file = pool_base + pool_size;
  }

  job.catalog = FileCatalog(next_file, p.file_size);
  std::size_t total_refs = 0;
  for (const auto& files : task_files) total_refs += files.size();
  job.reserve_tasks(task_files.size(), total_refs);
  for (const std::vector<FileId>& files : task_files)
    job.add_task(files,
                 p.mflop_per_file * static_cast<double>(files.size()));

  validate_job(job);
  return job;
}

}  // namespace wcs::workload
