#include "workload/job.h"

#include <algorithm>
#include <vector>

namespace wcs::workload {

JobStats compute_stats(const Job& job) {
  JobStats stats;
  stats.num_tasks = job.num_tasks();
  // Dense per-file reference counts (file ids are catalog indexes).
  std::vector<std::size_t> refs(job.catalog.num_files(), 0);
  std::size_t total_files = 0;
  stats.min_files_per_task = stats.num_tasks == 0 ? 0 : SIZE_MAX;
  for (const Task& t : job.tasks()) {
    stats.max_files_per_task =
        std::max(stats.max_files_per_task, t.files.size());
    stats.min_files_per_task =
        std::min(stats.min_files_per_task, t.files.size());
    total_files += t.files.size();
    for (FileId f : t.files) ++refs[f.value()];
  }
  stats.avg_files_per_task =
      stats.num_tasks ? static_cast<double>(total_files) /
                            static_cast<double>(stats.num_tasks)
                      : 0.0;
  for (std::size_t count : refs) {
    if (count == 0) continue;
    ++stats.distinct_files;
    stats.refs_cdf.add(count);
  }
  return stats;
}

void validate_job(const Job& job) {
  // Scratch reused across tasks: duplicate detection by sorting a copy
  // of the (small) file set instead of a per-task hash set.
  std::vector<FileId> sorted;
  for (const Task& t : job.tasks()) {
    WCS_CHECK_MSG(!t.files.empty(), "task " << t.id << " has no input files");
    WCS_CHECK_MSG(t.mflop > 0, "task " << t.id << " has no compute cost");
    sorted.assign(t.files.begin(), t.files.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      FileId f = sorted[i];
      WCS_CHECK_MSG(f.valid() && f.value() < job.catalog.num_files(),
                    "task " << t.id << " references unknown file " << f);
      WCS_CHECK_MSG(i == 0 || sorted[i - 1] != f,
                    "task " << t.id << " references file " << f << " twice");
    }
  }
}

}  // namespace wcs::workload
