#include "workload/job.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace wcs::workload {

JobStats compute_stats(const Job& job) {
  JobStats stats;
  stats.num_tasks = job.tasks.size();
  std::unordered_map<FileId, std::size_t> refs;
  std::size_t total_files = 0;
  stats.min_files_per_task = job.tasks.empty() ? 0 : SIZE_MAX;
  for (const Task& t : job.tasks) {
    stats.max_files_per_task = std::max(stats.max_files_per_task, t.files.size());
    stats.min_files_per_task = std::min(stats.min_files_per_task, t.files.size());
    total_files += t.files.size();
    for (FileId f : t.files) ++refs[f];
  }
  stats.distinct_files = refs.size();
  stats.avg_files_per_task =
      stats.num_tasks ? static_cast<double>(total_files) /
                            static_cast<double>(stats.num_tasks)
                      : 0.0;
  for (const auto& [f, count] : refs) stats.refs_cdf.add(count);
  return stats;
}

void validate_job(const Job& job) {
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    const Task& t = job.tasks[i];
    WCS_CHECK_MSG(t.id.valid() && t.id.value() == i,
                  "task ids must be dense 0-based indices");
    WCS_CHECK_MSG(!t.files.empty(), "task " << t.id << " has no input files");
    WCS_CHECK_MSG(t.mflop > 0, "task " << t.id << " has no compute cost");
    std::unordered_set<FileId> seen;
    for (FileId f : t.files) {
      WCS_CHECK_MSG(f.valid() && f.value() < job.catalog.num_files(),
                    "task " << t.id << " references unknown file " << f);
      WCS_CHECK_MSG(seen.insert(f).second,
                    "task " << t.id << " references file " << f << " twice");
    }
  }
}

}  // namespace wcs::workload
