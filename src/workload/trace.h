// Plain-text job trace serialization.
//
// Format (line-oriented, '#' comments allowed):
//   job <name>
//   files <count>
//   filesize <file-index> <bytes>        (one per file, dense order)
//   task <id> <mflop> <file> <file> ...  (one per task)
//
// Open-system workloads append two optional directives:
//   tenant <index> <weight> <name>       (one per tenant, dense order)
//   arrival <task-id> <tenant> <time-s>  (one per task with metadata)
//
// Round-trips exactly; used to snapshot generated workloads so an
// experiment can be re-run byte-identically without re-generating. A
// closed Workload serializes to exactly the legacy job-only format, so
// old traces load unchanged and closed saves stay byte-compatible.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/arrivals.h"
#include "workload/job.h"

namespace wcs::workload {

void save_job(const Job& job, std::ostream& out);
void save_job(const Job& job, const std::string& path);

[[nodiscard]] Job load_job(std::istream& in);
[[nodiscard]] Job load_job(const std::string& path);

// Job plus arrival metadata (tenant/arrival directives, omitted when
// the workload is closed).
void save_workload(const Workload& workload, std::ostream& out);
void save_workload(const Workload& workload, const std::string& path);

[[nodiscard]] Workload load_workload(std::istream& in);
[[nodiscard]] Workload load_workload(const std::string& path);

}  // namespace wcs::workload
