// Plain-text job trace serialization.
//
// Format (line-oriented, '#' comments allowed):
//   job <name>
//   files <count>
//   filesize <file-index> <bytes>        (one per file, dense order)
//   task <id> <mflop> <file> <file> ...  (one per task)
//
// Round-trips exactly; used to snapshot generated workloads so an
// experiment can be re-run byte-identically without re-generating.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/job.h"

namespace wcs::workload {

void save_job(const Job& job, std::ostream& out);
void save_job(const Job& job, const std::string& path);

[[nodiscard]] Job load_job(std::istream& in);
[[nodiscard]] Job load_job(const std::string& path);

}  // namespace wcs::workload
