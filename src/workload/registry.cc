#include "workload/registry.h"

#include <utility>

#include "common/check.h"
#include "workload/trace.h"

namespace wcs::workload {

namespace {

struct Entry {
  std::string name;
  std::string summary;
  GeneratorBuilder build;
};

std::vector<Entry>& entries() {
  static std::vector<Entry> registry;
  return registry;
}

const Entry* find_entry(const std::string& name) {
  for (const Entry& e : entries())
    if (e.name == name) return &e;
  return nullptr;
}

// Closed builtins share one wrapper: build the bag, then stamp
// single-tenant arrivals if the spec asks for an open run.
Workload closed_bag(Job job, const GeneratorSpec& spec) {
  Workload wl;
  wl.job = std::move(job);
  stamp_arrivals(wl, spec.open);
  return wl;
}

}  // namespace

void register_generator(const std::string& name, const std::string& summary,
                        GeneratorBuilder builder) {
  WCS_CHECK_MSG(!name.empty(), "generator name must be non-empty");
  WCS_CHECK_MSG(builder != nullptr, "generator " << name << " has no builder");
  WCS_CHECK_MSG(find_entry(name) == nullptr,
                "generator " << name << " registered twice");
  entries().push_back({name, summary, std::move(builder)});
}

bool has_generator(const std::string& name) {
  return find_entry(name) != nullptr;
}

std::vector<std::string> generator_names() {
  std::vector<std::string> names;
  names.reserve(entries().size());
  for (const Entry& e : entries()) names.push_back(e.name);
  return names;
}

const std::string& generator_summary(const std::string& name) {
  const Entry* e = find_entry(name);
  WCS_CHECK_MSG(e != nullptr, "unknown generator " << name);
  return e->summary;
}

Workload build_workload(const GeneratorSpec& spec) {
  const Entry* e = find_entry(spec.generator);
  WCS_CHECK_MSG(e != nullptr, "unknown workload generator '"
                                  << spec.generator
                                  << "' (see generator_names())");
  Workload wl = e->build(spec);
  validate_job(wl.job);
  validate_arrivals(wl.arrivals, wl.job);
  return wl;
}

void register_builtin_generators() {
  if (has_generator("coadd")) return;  // idempotent
  register_generator(
      "coadd", "synthetic Coadd, the paper's Table 2 / Figure 3 workload",
      [](const GeneratorSpec& spec) {
        return closed_bag(generate_coadd(spec.coadd), spec);
      });
  register_generator(
      "uniform", "unstructured sharing: uniform draws from one catalog",
      [](const GeneratorSpec& spec) {
        return closed_bag(generate_uniform(spec.synthetic), spec);
      });
  register_generator(
      "zipf", "skewed popularity: Zipf-ranked file draws",
      [](const GeneratorSpec& spec) {
        return closed_bag(generate_zipf(spec.synthetic, spec.zipf_exponent),
                          spec);
      });
  register_generator(
      "partitioned", "zero sharing: disjoint per-task input sets",
      [](const GeneratorSpec& spec) {
        return closed_bag(generate_partitioned(spec.synthetic), spec);
      });
  register_generator(
      "trace", "replay a saved workload trace file (trace_path)",
      [](const GeneratorSpec& spec) {
        WCS_CHECK_MSG(!spec.trace_path.empty(),
                      "trace generator needs trace_path");
        return load_workload(spec.trace_path);
      });
  register_generator(
      "multi-tenant",
      "per-tenant Coadd bag streams with Poisson/diurnal/bursty arrivals",
      [](const GeneratorSpec& spec) {
        return generate_multi_tenant(spec.coadd, spec.open);
      });
}

}  // namespace wcs::workload
