#include "workload/generators.h"

#include <numeric>
#include <unordered_set>

#include "common/rng.h"

namespace wcs::workload {

namespace {

Job make_job(std::string_view name, const GeneratorParams& p,
             std::vector<std::vector<FileId>> file_sets,
             std::size_t catalog_size) {
  Job job;
  job.set_name(name);
  job.catalog = FileCatalog(catalog_size, p.file_size);
  std::size_t total_refs = 0;
  for (const auto& files : file_sets) total_refs += files.size();
  job.reserve_tasks(file_sets.size(), total_refs);
  for (const std::vector<FileId>& files : file_sets)
    job.add_task(files,
                 p.mflop_per_file * static_cast<double>(files.size()));
  validate_job(job);
  return job;
}

}  // namespace

Job generate_uniform(const GeneratorParams& p) {
  WCS_CHECK(p.files_per_task <= p.num_files);
  Rng rng(p.seed);
  std::vector<std::vector<FileId>> sets(p.num_tasks);
  for (auto& set : sets) {
    set.reserve(p.files_per_task);
    std::unordered_set<std::size_t> picked;
    while (picked.size() < p.files_per_task) {
      std::size_t f = rng.index(p.num_files);
      if (picked.insert(f).second)
        set.push_back(FileId(static_cast<FileId::underlying_type>(f)));
    }
  }
  return make_job("uniform", p, std::move(sets), p.num_files);
}

Job generate_zipf(const GeneratorParams& p, double exponent) {
  WCS_CHECK(p.files_per_task <= p.num_files);
  Rng rng(p.seed);
  const ZipfCdf file_zipf(p.num_files, exponent);
  std::vector<std::vector<FileId>> sets(p.num_tasks);
  for (auto& set : sets) {
    set.reserve(p.files_per_task);
    std::unordered_set<std::size_t> picked;
    while (picked.size() < p.files_per_task) {
      std::size_t f = file_zipf.sample(rng) - 1;
      if (picked.insert(f).second)
        set.push_back(FileId(static_cast<FileId::underlying_type>(f)));
    }
  }
  return make_job("zipf", p, std::move(sets), p.num_files);
}

Job generate_partitioned(const GeneratorParams& p) {
  std::vector<std::vector<FileId>> sets(p.num_tasks);
  std::size_t next = 0;
  for (auto& set : sets) {
    set.reserve(p.files_per_task);
    for (std::size_t i = 0; i < p.files_per_task; ++i)
      set.push_back(FileId(static_cast<FileId::underlying_type>(next++)));
  }
  return make_job("partitioned", p, std::move(sets), next);
}

Job generate_sliding_window(std::size_t num_tasks, std::size_t width,
                            std::size_t stride, Bytes file_size,
                            double mflop_per_file) {
  WCS_CHECK(width > 0);
  GeneratorParams p;
  p.num_tasks = num_tasks;
  p.file_size = file_size;
  p.mflop_per_file = mflop_per_file;
  std::vector<std::vector<FileId>> sets(num_tasks);
  std::size_t catalog = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    sets[t].reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      std::size_t f = t * stride + i;
      catalog = std::max(catalog, f + 1);
      sets[t].push_back(FileId(static_cast<FileId::underlying_type>(f)));
    }
  }
  return make_job("sliding-window", p, std::move(sets), catalog);
}

}  // namespace wcs::workload
