// Generic Bag-of-Tasks workload generators.
//
// These complement the Coadd generator: they let tests and ablation
// benches explore sharing regimes the paper's workload does not cover
// (no sharing at all, uniform sharing, heavily skewed popularity — the
// geometric popularity of Ranganathan & Foster is approximated by the
// Zipf generator).
#pragma once

#include <cstdint>

#include "workload/job.h"

namespace wcs::workload {

struct GeneratorParams {
  std::size_t num_tasks = 100;
  std::size_t num_files = 1000;       // catalog size
  std::size_t files_per_task = 20;
  Bytes file_size = megabytes(25);
  double mflop_per_file = 2.0e5;
  std::uint64_t seed = 1;
};

// Each task draws its input set uniformly without replacement from the
// catalog: moderate, unstructured sharing.
[[nodiscard]] Job generate_uniform(const GeneratorParams& params);

// Skewed popularity: file ranks drawn from a Zipf distribution, so a few
// hot files are in almost every task. Stress-case for the
// unbalanced-assignment problem of task-centric scheduling.
[[nodiscard]] Job generate_zipf(const GeneratorParams& params,
                                double exponent = 1.0);

// Disjoint input sets: zero sharing between tasks. Data reuse is
// impossible, so all locality-aware metrics degenerate; lower-bound
// baseline for reuse benefits. Requires
// num_tasks * files_per_task <= num_files is NOT required — the catalog
// is grown to fit.
[[nodiscard]] Job generate_partitioned(const GeneratorParams& params);

// Sliding-window job over one strip (the Coadd building block exposed
// directly): task t reads files [t*stride, t*stride + width).
[[nodiscard]] Job generate_sliding_window(std::size_t num_tasks,
                                          std::size_t width,
                                          std::size_t stride,
                                          Bytes file_size = megabytes(25),
                                          double mflop_per_file = 2.0e5);

}  // namespace wcs::workload
