#include "workload/trace.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace wcs::workload {

void save_job(const Job& job, std::ostream& out) {
  // mflop must survive a save/load round trip exactly (the trace-replay
  // test re-runs the parsed job and expects identical results), so print
  // doubles at full round-trip precision, not the stream default of 6.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "job " << (job.name().empty() ? "unnamed" : job.name()) << '\n';
  out << "files " << job.catalog.num_files() << '\n';
  for (std::size_t i = 0; i < job.catalog.num_files(); ++i)
    out << "filesize " << i << ' '
        << job.catalog.size(FileId(static_cast<FileId::underlying_type>(i)))
        << '\n';
  for (const Task& t : job.tasks()) {
    out << "task " << t.id.value() << ' ' << t.mflop;
    for (FileId f : t.files) out << ' ' << f.value();
    out << '\n';
  }
}

void save_job(const Job& job, const std::string& path) {
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot open " << path);
  save_job(job, out);
}

Job load_job(std::istream& in) {
  Job job;
  std::size_t declared_files = 0;
  std::vector<Bytes> sizes;
  // Task lines parse into per-id staging slots (the trace may list
  // tasks in any order); the job is CSR-packed in id order afterwards.
  struct ParsedTask {
    bool seen = false;
    double mflop = 0;
    std::vector<FileId> files;
  };
  std::vector<ParsedTask> parsed;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "job") {
      std::string name;
      ls >> name;
      job.set_name(name);
    } else if (kind == "files") {
      ls >> declared_files;
      sizes.assign(declared_files, 0);
    } else if (kind == "filesize") {
      std::size_t idx = 0;
      Bytes size = 0;
      ls >> idx >> size;
      WCS_CHECK_MSG(idx < sizes.size(), "filesize index out of range");
      sizes[idx] = size;
    } else if (kind == "task") {
      TaskId::underlying_type id = 0;
      double mflop = 0;
      ls >> id >> mflop;
      if (id >= parsed.size()) parsed.resize(id + 1);
      ParsedTask& t = parsed[id];
      WCS_CHECK_MSG(!t.seen, "task " << id << " declared twice");
      t.seen = true;
      t.mflop = mflop;
      FileId::underlying_type f = 0;
      while (ls >> f) t.files.push_back(FileId(f));
      WCS_CHECK_MSG(!ls.bad(), "malformed task line");
    } else {
      WCS_CHECK_MSG(false, "unknown trace directive: " << kind);
    }
  }
  for (Bytes b : sizes) {
    WCS_CHECK_MSG(b > 0, "file with no declared size");
    job.catalog.add_file(b);
  }
  std::size_t total_refs = 0;
  for (const ParsedTask& t : parsed) total_refs += t.files.size();
  job.reserve_tasks(parsed.size(), total_refs);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    WCS_CHECK_MSG(parsed[i].seen, "task ids must be dense 0-based (missing "
                                      << i << ")");
    job.add_task(parsed[i].files, parsed[i].mflop);
  }
  validate_job(job);
  return job;
}

Job load_job(const std::string& path) {
  std::ifstream in(path);
  WCS_CHECK_MSG(in.good(), "cannot open " << path);
  return load_job(in);
}

}  // namespace wcs::workload
