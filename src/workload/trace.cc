#include "workload/trace.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace wcs::workload {

void save_job(const Job& job, std::ostream& out) {
  // mflop must survive a save/load round trip exactly (the trace-replay
  // test re-runs the parsed job and expects identical results), so print
  // doubles at full round-trip precision, not the stream default of 6.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "job " << (job.name().empty() ? "unnamed" : job.name()) << '\n';
  out << "files " << job.catalog.num_files() << '\n';
  for (std::size_t i = 0; i < job.catalog.num_files(); ++i)
    out << "filesize " << i << ' '
        << job.catalog.size(FileId(static_cast<FileId::underlying_type>(i)))
        << '\n';
  for (const Task& t : job.tasks()) {
    out << "task " << t.id.value() << ' ' << t.mflop;
    for (FileId f : t.files) out << ' ' << f.value();
    out << '\n';
  }
}

void save_job(const Job& job, const std::string& path) {
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot open " << path);
  save_job(job, out);
}

void save_workload(const Workload& workload, std::ostream& out) {
  save_job(workload.job, out);
  // A closed workload serializes as a plain job: byte-identical to the
  // legacy format, loadable by old readers.
  if (!workload.open()) return;
  const ArrivalSchedule& s = workload.arrivals;
  for (std::size_t t = 0; t < s.tenants.size(); ++t)
    out << "tenant " << t << ' ' << s.tenants[t].weight << ' '
        << (s.tenants[t].name.empty() ? "unnamed" : s.tenants[t].name)
        << '\n';
  for (const Task& task : workload.job.tasks())
    out << "arrival " << task.id.value() << ' ' << s.tenant(task.id) << ' '
        << s.arrival(task.id) << '\n';
}

void save_workload(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot open " << path);
  save_workload(workload, out);
}

Workload load_workload(std::istream& in) {
  Workload wl;
  std::size_t declared_files = 0;
  std::vector<Bytes> sizes;
  // Task lines parse into per-id staging slots (the trace may list
  // tasks in any order); the job is CSR-packed in id order afterwards.
  struct ParsedTask {
    bool seen = false;
    double mflop = 0;
    std::vector<FileId> files;
  };
  struct ParsedArrival {
    bool seen = false;
    std::uint32_t tenant = 0;
    double time_s = 0;
  };
  std::vector<ParsedTask> parsed;
  std::vector<ParsedArrival> arrivals;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "job") {
      std::string name;
      ls >> name;
      wl.job.set_name(name);
    } else if (kind == "files") {
      ls >> declared_files;
      sizes.assign(declared_files, 0);
    } else if (kind == "filesize") {
      std::size_t idx = 0;
      Bytes size = 0;
      ls >> idx >> size;
      WCS_CHECK_MSG(idx < sizes.size(), "filesize index out of range");
      sizes[idx] = size;
    } else if (kind == "task") {
      TaskId::underlying_type id = 0;
      double mflop = 0;
      ls >> id >> mflop;
      if (id >= parsed.size()) parsed.resize(id + 1);
      ParsedTask& t = parsed[id];
      WCS_CHECK_MSG(!t.seen, "task " << id << " declared twice");
      t.seen = true;
      t.mflop = mflop;
      FileId::underlying_type f = 0;
      while (ls >> f) t.files.push_back(FileId(f));
      WCS_CHECK_MSG(!ls.bad(), "malformed task line");
    } else if (kind == "tenant") {
      std::size_t idx = 0;
      std::uint32_t weight = 0;
      std::string name;
      ls >> idx >> weight >> name;
      WCS_CHECK_MSG(idx == wl.arrivals.tenants.size(),
                    "tenant ids must be dense 0-based (got " << idx << ")");
      wl.arrivals.tenants.push_back({name, weight});
    } else if (kind == "arrival") {
      TaskId::underlying_type id = 0;
      ParsedArrival a;
      ls >> id >> a.tenant >> a.time_s;
      a.seen = true;
      if (id >= arrivals.size()) arrivals.resize(id + 1);
      WCS_CHECK_MSG(!arrivals[id].seen, "arrival " << id << " declared twice");
      arrivals[id] = a;
    } else {
      WCS_CHECK_MSG(false, "unknown trace directive: " << kind);
    }
  }
  for (Bytes b : sizes) {
    WCS_CHECK_MSG(b > 0, "file with no declared size");
    wl.job.catalog.add_file(b);
  }
  std::size_t total_refs = 0;
  for (const ParsedTask& t : parsed) total_refs += t.files.size();
  wl.job.reserve_tasks(parsed.size(), total_refs);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    WCS_CHECK_MSG(parsed[i].seen, "task ids must be dense 0-based (missing "
                                      << i << ")");
    wl.job.add_task(parsed[i].files, parsed[i].mflop);
  }
  validate_job(wl.job);
  if (!arrivals.empty()) {
    WCS_CHECK_MSG(arrivals.size() == parsed.size(),
                  "arrival directives must cover every task");
    wl.arrivals.arrival_s.reserve(arrivals.size());
    wl.arrivals.tenant_of.reserve(arrivals.size());
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      WCS_CHECK_MSG(arrivals[i].seen, "missing arrival for task " << i);
      wl.arrivals.arrival_s.push_back(arrivals[i].time_s);
      wl.arrivals.tenant_of.push_back(arrivals[i].tenant);
    }
  }
  validate_arrivals(wl.arrivals, wl.job);
  return wl;
}

Workload load_workload(const std::string& path) {
  std::ifstream in(path);
  WCS_CHECK_MSG(in.good(), "cannot open " << path);
  return load_workload(in);
}

Job load_job(std::istream& in) {
  Workload wl = load_workload(in);
  WCS_CHECK_MSG(!wl.open(),
                "trace carries open-system metadata; use load_workload");
  return std::move(wl.job);
}

Job load_job(const std::string& path) {
  std::ifstream in(path);
  WCS_CHECK_MSG(in.good(), "cannot open " << path);
  return load_job(in);
}

}  // namespace wcs::workload
