// Synthetic Coadd workload generator.
//
// The paper evaluates on the first 6,000 tasks of Coadd (SDSS
// southern-hemisphere coaddition), a spatial-processing application whose
// tasks process overlapping sky regions. We do not have the SDSS trace, so
// this generator synthesizes a job with the same scheduling-relevant
// marginals (paper Table 2 + Figure 3):
//
//   - 6,000 tasks over ~53,390 distinct files,
//   - files per task in [36, 101], mean ~78.4,
//   - ~85 % of files referenced by >= 6 tasks,
//   - spatial structure: consecutive tasks share sliding-window
//     overlapping file ranges; a small pool of popular "calibration"
//     files is referenced across the whole job (the high-reference tail
//     of Figure 3, and the trigger for the unbalanced-assignment problem
//     of task-centric scheduling described in Sec. 3.1).
//
// Layout: tasks are split into rows (independent sky stripes). Within a
// row, successive tasks read sliding windows of files; the window start
// advances by a mixture stride (small Poisson steps with occasional
// jumps), so stripe-neighbours overlap heavily. Tasks are EMITTED
// round-robin across rows — like a real survey trace, consecutive task
// ids are not spatial neighbours (stripe-neighbours sit num_rows ids
// apart). The stride mean is auto-calibrated from the distinct-file
// target.
#pragma once

#include <cstdint>

#include "workload/job.h"

namespace wcs::workload {

struct CoaddParams {
  std::size_t num_tasks = 6000;

  // 0 = auto: round(8.9 files per task), which reproduces Table 2's
  // 53,390 distinct files at 6,000 tasks.
  std::size_t target_distinct_files = 0;

  // Independent sky stripes; consecutive tasks within a stripe overlap.
  std::size_t num_rows = 12;

  // Imaging passes per stripe: coaddition stacks several sweeps of the
  // same strip, so each stripe is traversed num_passes times and files
  // are re-referenced at long task distances (~ strip length). This is
  // what makes task-centric queues capacity-sensitive (the paper's
  // "premature scheduling decisions", Sec. 3.1/5.4) while pull
  // schedulers, which re-order against the live cache, stay flat.
  std::size_t num_passes = 2;

  // Per-task window SPAN ~ clamped normal(mu, sigma). A task does not use
  // every frame in its span: each file in the span is included with
  // probability `inclusion`, mirroring per-position image-quality cuts in
  // the survey. The sampling disperses per-file reference counts (the
  // sub-6-reference head of Figure 3) without hurting neighbour overlap.
  // Calibrated so files-per-task (inclusion*span + popular picks) matches
  // Table 2: 0.88 * 87.2 + 2 ~ 78.7.
  double window_mean = 87.2;
  double window_stddev = 13.0;
  std::size_t window_min = 41;
  std::size_t window_max = 112;
  double inclusion = 0.88;

  // Stride mixture: mostly small Poisson strides (heavy neighbour
  // overlap), with occasional larger jumps. The jumps create sky regions
  // covered by few windows — the low-reference head of Figure 3 (~15 % of
  // files with < 6 references). The base Poisson mean is auto-calibrated
  // so the overall stride mean still hits the distinct-file target.
  double jump_probability = 0.25;
  std::size_t jump_min = 28;
  std::size_t jump_max = 38;

  // Popular calibration-file pool shared across rows.
  std::size_t popular_picks_per_task = 2;  // added to every task
  double popular_pool_fraction = 0.065;    // pool size = fraction*num_tasks
  double popular_zipf_exponent = 0.8;

  Bytes file_size = megabytes(25);  // paper Table 1 default
  double mflop_per_file = 2.0e5;    // task cost = mflop_per_file * |files|

  std::uint64_t seed = 42;

  // The configuration behind the paper's Table 2 / Figure 3.
  [[nodiscard]] static CoaddParams paper_6000() { return CoaddParams{}; }
};

[[nodiscard]] Job generate_coadd(const CoaddParams& params);

}  // namespace wcs::workload
