// Named workload-generator registry, mirroring the scenario registry
// (src/scenario): generators are pure functions from a plain-data
// GeneratorSpec to a Workload, registered under stable names so the
// scenario layer and the CLI (--workload NAME) can select them.
//
// Builtins (register_builtin_generators):
//   coadd        synthetic Coadd (the paper's workload; the default)
//   uniform      unstructured sharing (GeneratorParams)
//   zipf         skewed popularity (GeneratorParams + zipf_exponent)
//   partitioned  zero sharing (GeneratorParams)
//   trace        replay a saved trace file (trace_path)
//   multi-tenant per-tenant Coadd bag streams with arrival processes
//
// Like the scenario registry, registration is an explicit call, not a
// static initializer — static registrars get dropped when linking
// static libraries.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workload/arrivals.h"
#include "workload/coadd.h"
#include "workload/generators.h"
#include "workload/open.h"

namespace wcs::workload {

// Plain data selecting and parameterizing a generator. Carries the
// parameter blocks for every builtin; each generator reads only its
// own. `open` applies to any closed builtin too: a non-t0 process
// stamps single-tenant arrivals over the generated bag.
struct GeneratorSpec {
  std::string generator = "coadd";

  CoaddParams coadd;          // coadd, and the per-tenant bag template
  GeneratorParams synthetic;  // uniform / zipf / partitioned
  double zipf_exponent = 1.0;
  std::string trace_path;  // trace

  OpenParams open;  // tenants + arrival process (multi-tenant, stamping)
};

using GeneratorBuilder = std::function<Workload(const GeneratorSpec&)>;

void register_generator(const std::string& name, const std::string& summary,
                        GeneratorBuilder builder);
[[nodiscard]] bool has_generator(const std::string& name);
[[nodiscard]] std::vector<std::string> generator_names();
[[nodiscard]] const std::string& generator_summary(const std::string& name);

// Build the named generator's workload; checks the result is sound.
[[nodiscard]] Workload build_workload(const GeneratorSpec& spec);

// Idempotent registration of the builtin generators listed above.
void register_builtin_generators();

}  // namespace wcs::workload
