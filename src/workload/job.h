// Core workload data model: files, tasks, jobs.
//
// A job is a Bag-of-Tasks (paper Sec. 2.2, assumption 1): independent
// tasks, each needing a set of input files. The file catalog records the
// size of every file; schedulers and the storage layer only ever see
// (task -> file set) plus sizes, which is exactly the information the
// paper's schedulers use.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/stats.h"
#include "common/units.h"

namespace wcs::workload {

class FileCatalog {
 public:
  FileCatalog() = default;

  // All files the same size (paper Sec. 2.2, assumption 8).
  FileCatalog(std::size_t num_files, Bytes uniform_size)
      : sizes_(num_files, uniform_size) {}

  FileId add_file(Bytes size) {
    FileId id(static_cast<FileId::underlying_type>(sizes_.size()));
    sizes_.push_back(size);
    return id;
  }

  [[nodiscard]] Bytes size(FileId id) const {
    WCS_CHECK(id.valid() && id.value() < sizes_.size());
    return sizes_[id.value()];
  }

  [[nodiscard]] std::size_t num_files() const { return sizes_.size(); }

  [[nodiscard]] Bytes total_bytes() const {
    Bytes total = 0;
    for (Bytes b : sizes_) total += b;
    return total;
  }

 private:
  std::vector<Bytes> sizes_;
};

struct Task {
  TaskId id;
  std::vector<FileId> files;  // input set; no duplicates
  double mflop = 0;           // compute cost in MFLOP

  [[nodiscard]] std::size_t num_files() const { return files.size(); }
};

struct Job {
  std::string name;
  std::vector<Task> tasks;
  FileCatalog catalog;

  [[nodiscard]] std::size_t num_tasks() const { return tasks.size(); }

  [[nodiscard]] const Task& task(TaskId id) const {
    WCS_CHECK(id.valid() && id.value() < tasks.size());
    return tasks[id.value()];
  }

  // Total bytes a task needs when nothing is cached.
  [[nodiscard]] Bytes task_bytes(TaskId id) const {
    Bytes total = 0;
    for (FileId f : task(id).files) total += catalog.size(f);
    return total;
  }
};

// The paper's Table 2 characteristics, plus the data behind Figures 1/3.
struct JobStats {
  std::size_t num_tasks = 0;
  std::size_t distinct_files = 0;  // files referenced by at least one task
  std::size_t max_files_per_task = 0;
  std::size_t min_files_per_task = 0;
  double avg_files_per_task = 0;
  // refs_cdf.fraction_at_least(k): fraction of referenced files that are
  // accessed by >= k tasks (the y-axis of Figure 1/3 at x = k).
  ReverseCdf refs_cdf;
};

[[nodiscard]] JobStats compute_stats(const Job& job);

// Sanity checks every generator's output must pass: valid ids, no
// duplicate files within a task, nonempty tasks, positive compute cost.
void validate_job(const Job& job);

}  // namespace wcs::workload
