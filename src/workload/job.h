// Core workload data model: files, tasks, jobs.
//
// A job is a Bag-of-Tasks (paper Sec. 2.2, assumption 1): independent
// tasks, each needing a set of input files. The file catalog records the
// size of every file; schedulers and the storage layer only ever see
// (task -> file set) plus sizes, which is exactly the information the
// paper's schedulers use.
//
// Storage is SoA/CSR: all file references live in one flat pool with a
// per-task offset table, and per-task compute costs are a parallel flat
// array. `Task` is therefore a 24-byte VIEW (id + span + mflop), not an
// owning record — at 1M tasks the whole job is three contiguous arrays
// instead of a million little vectors. Task ids are dense 0-based
// indexes assigned by add_task; the job name is interned (one Symbol,
// not a heap string per job copy).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/interner.h"
#include "common/stats.h"
#include "common/units.h"

namespace wcs::workload {

class FileCatalog {
 public:
  FileCatalog() = default;

  // All files the same size (paper Sec. 2.2, assumption 8). The common
  // case by far — it is stored as (count, size), two words total, and
  // only materializes a per-file array if a heterogeneous size shows up
  // (the file-size ablation).
  FileCatalog(std::size_t num_files, Bytes uniform_size)
      : uniform_count_(num_files), uniform_size_(uniform_size) {}

  FileId add_file(Bytes size) {
    if (sizes_.empty()) {
      if (uniform_count_ == 0) uniform_size_ = size;
      if (size == uniform_size_) {
        return FileId(static_cast<FileId::underlying_type>(uniform_count_++));
      }
      materialize();
    }
    FileId id(static_cast<FileId::underlying_type>(sizes_.size()));
    sizes_.push_back(size);
    return id;
  }

  [[nodiscard]] Bytes size(FileId id) const {
    WCS_CHECK(id.valid() && id.value() < num_files());
    return sizes_.empty() ? uniform_size_ : sizes_[id.value()];
  }

  [[nodiscard]] std::size_t num_files() const {
    return sizes_.empty() ? uniform_count_ : sizes_.size();
  }

  [[nodiscard]] Bytes total_bytes() const {
    if (sizes_.empty()) {
      return static_cast<Bytes>(uniform_count_) * uniform_size_;
    }
    Bytes total = 0;
    for (Bytes b : sizes_) total += b;
    return total;
  }

  // True while sizes are stored compressed as (count, uniform size).
  [[nodiscard]] bool uniform() const { return sizes_.empty(); }

 private:
  void materialize() {
    sizes_.assign(uniform_count_, uniform_size_);
    uniform_count_ = 0;
  }

  std::size_t uniform_count_ = 0;
  Bytes uniform_size_ = 0;
  std::vector<Bytes> sizes_;  // empty == uniform mode
};

// A read-only view of one task's record inside a Job. Cheap to copy;
// the span points into the job's file pool and stays valid as long as
// the job is alive and no tasks are added.
struct Task {
  TaskId id;
  std::span<const FileId> files;  // input set; no duplicates
  double mflop = 0;               // compute cost in MFLOP

  [[nodiscard]] std::size_t num_files() const { return files.size(); }
};

struct Job;

// Iterable view over a job's tasks, yielding Task views by value:
// `for (const workload::Task& t : job.tasks())`.
class TaskRange {
 public:
  explicit TaskRange(const Job* job) : job_(job) {}

  class iterator {
   public:
    iterator(const Job* job, std::uint32_t i) : job_(job), i_(i) {}
    Task operator*() const;
    iterator& operator++() {
      ++i_;
      return *this;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.i_ == b.i_;
    }

   private:
    const Job* job_ = nullptr;
    std::uint32_t i_ = 0;
  };

  [[nodiscard]] iterator begin() const { return {job_, 0}; }
  [[nodiscard]] iterator end() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] Task operator[](std::size_t i) const;

 private:
  const Job* job_ = nullptr;
};

struct Job {
  FileCatalog catalog;

  // --- name (interned) --------------------------------------------------
  void set_name(std::string_view name) {
    name_ = common::global_interner().intern(name);
  }
  [[nodiscard]] std::string_view name() const {
    return name_.valid() ? common::global_interner().view(name_)
                         : std::string_view{};
  }
  [[nodiscard]] common::Symbol name_symbol() const { return name_; }

  // --- task construction ------------------------------------------------
  // Pre-size the SoA arrays (generators know both counts up front).
  void reserve_tasks(std::size_t tasks, std::size_t total_file_refs) {
    file_begin_.reserve(tasks + 1);
    mflop_.reserve(tasks);
    file_pool_.reserve(total_file_refs);
  }

  // Append a task; ids are dense 0-based in insertion order.
  TaskId add_task(std::span<const FileId> files, double mflop) {
    file_pool_.insert(file_pool_.end(), files.begin(), files.end());
    file_begin_.push_back(file_pool_.size());
    mflop_.push_back(mflop);
    return TaskId(static_cast<TaskId::underlying_type>(mflop_.size() - 1));
  }
  TaskId add_task(std::initializer_list<FileId> files, double mflop) {
    return add_task(std::span<const FileId>(files.begin(), files.size()),
                    mflop);
  }

  // --- accessors ---------------------------------------------------------
  [[nodiscard]] std::size_t num_tasks() const { return mflop_.size(); }

  [[nodiscard]] Task task(TaskId id) const {
    WCS_CHECK(id.valid() && id.value() < mflop_.size());
    const std::size_t i = id.value();
    return Task{id,
                std::span<const FileId>(file_pool_.data() + file_begin_[i],
                                        file_begin_[i + 1] - file_begin_[i]),
                mflop_[i]};
  }

  [[nodiscard]] TaskRange tasks() const { return TaskRange(this); }

  // Total bytes a task needs when nothing is cached.
  [[nodiscard]] Bytes task_bytes(TaskId id) const {
    Bytes total = 0;
    for (FileId f : task(id).files) total += catalog.size(f);
    return total;
  }

  // Total file references across all tasks (the CSR pool length).
  [[nodiscard]] std::size_t total_file_refs() const {
    return file_pool_.size();
  }

 private:
  common::Symbol name_;
  // CSR over file references: task i's files are
  // file_pool_[file_begin_[i] .. file_begin_[i+1]).
  std::vector<std::uint64_t> file_begin_ = {0};
  std::vector<FileId> file_pool_;
  std::vector<double> mflop_;  // parallel to tasks
};

inline Task TaskRange::iterator::operator*() const {
  return job_->task(TaskId(i_));
}
inline TaskRange::iterator TaskRange::end() const {
  return {job_, static_cast<std::uint32_t>(job_->num_tasks())};
}
inline std::size_t TaskRange::size() const { return job_->num_tasks(); }
inline Task TaskRange::operator[](std::size_t i) const {
  return job_->task(TaskId(static_cast<TaskId::underlying_type>(i)));
}

// The paper's Table 2 characteristics, plus the data behind Figures 1/3.
struct JobStats {
  std::size_t num_tasks = 0;
  std::size_t distinct_files = 0;  // files referenced by at least one task
  std::size_t max_files_per_task = 0;
  std::size_t min_files_per_task = 0;
  double avg_files_per_task = 0;
  // refs_cdf.fraction_at_least(k): fraction of referenced files that are
  // accessed by >= k tasks (the y-axis of Figure 1/3 at x = k).
  ReverseCdf refs_cdf;
};

[[nodiscard]] JobStats compute_stats(const Job& job);

// Sanity checks every generator's output must pass: valid ids, no
// duplicate files within a task, nonempty tasks, positive compute cost.
void validate_job(const Job& job);

}  // namespace wcs::workload
