// Open-system workload model: tenants and simulated-time arrivals.
//
// A closed batch (the paper's setting) is a Job whose tasks are all
// pending at t=0. The open-system extension attaches an ArrivalSchedule
// to the Job: per-task arrival times on the simulated clock and a
// per-task owning tenant. A schedule with no positive arrival time and
// at most one tenant is CLOSED and must take exactly the legacy code
// paths — byte-identity with the existing goldens is the acceptance
// gate for this whole layer (tests/test_golden_run.cc).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "workload/job.h"

namespace wcs::workload {

struct TenantInfo {
  std::string name;
  std::uint32_t weight = 1;  // WRR share; must be >= 1
};

// Arrival sentinel used by per-tenant filtered views (sched/tenant_wrr):
// a task that belongs to another tenant "never arrives" for this view.
// Real run schedules must be finite (validate_arrivals rejects this).
inline constexpr double kNeverArrives = std::numeric_limits<double>::infinity();

// Per-task arrival metadata, parallel to the Job's task ids. Empty
// vectors are the compact encoding of the closed defaults (all tasks at
// t=0, one anonymous tenant) so a closed Workload costs nothing.
struct ArrivalSchedule {
  std::vector<double> arrival_s;         // per task; empty = all 0
  std::vector<std::uint32_t> tenant_of;  // per task; empty = all tenant 0
  std::vector<TenantInfo> tenants;       // empty = one anonymous tenant

  [[nodiscard]] std::size_t num_tenants() const {
    return tenants.empty() ? 1 : tenants.size();
  }
  [[nodiscard]] std::uint32_t tenant(TaskId t) const {
    return tenant_of.empty() ? 0 : tenant_of[t.value()];
  }
  [[nodiscard]] double arrival(TaskId t) const {
    return arrival_s.empty() ? 0.0 : arrival_s[t.value()];
  }
  // Any task arriving after t=0?
  [[nodiscard]] bool timed() const {
    for (double a : arrival_s)
      if (a > 0) return true;
    return false;
  }
  // Open-system semantics needed: timed arrivals or multiple tenants.
  // !open() is the contract for "takes the legacy closed-batch path".
  [[nodiscard]] bool open() const { return timed() || num_tenants() > 1; }
};

// A job plus when its tasks enter the system. The unit the generator
// registry produces and the experiment layer runs.
struct Workload {
  Job job;
  ArrivalSchedule arrivals;

  [[nodiscard]] bool open() const { return arrivals.open(); }
};

// Structural soundness of a run schedule: metadata parallel to the job,
// tenant ids in range, weights positive, arrival times finite and
// non-negative. (Per-tenant WRR views relax finiteness via
// kNeverArrives and are never validated as run schedules.)
inline void validate_arrivals(const ArrivalSchedule& s, const Job& job) {
  WCS_CHECK_MSG(s.arrival_s.empty() || s.arrival_s.size() == job.num_tasks(),
                "arrival_s size " << s.arrival_s.size() << " != "
                                  << job.num_tasks() << " tasks");
  WCS_CHECK_MSG(s.tenant_of.empty() || s.tenant_of.size() == job.num_tasks(),
                "tenant_of size " << s.tenant_of.size() << " != "
                                  << job.num_tasks() << " tasks");
  for (double a : s.arrival_s)
    WCS_CHECK_MSG(a >= 0 && a < kNeverArrives, "bad arrival time " << a);
  for (std::uint32_t t : s.tenant_of)
    WCS_CHECK_MSG(t < s.num_tenants(), "tenant id " << t << " out of range");
  for (const TenantInfo& t : s.tenants)
    WCS_CHECK_MSG(t.weight >= 1,
                  "tenant " << t.name << " has zero weight (WRR would starve "
                               "it; drop the tenant instead)");
}

}  // namespace wcs::workload
