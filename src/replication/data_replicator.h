// Proactive data replication (the paper's Sec. 3.1/6 companion
// mechanism, after Ranganathan & Foster, "Decoupling Computation and Data
// Scheduling in Distributed Data-Intensive Applications", HPDC'02).
//
// The replicator watches global file popularity (every fetch from the
// external file server counts) and periodically pushes files whose
// popularity crossed a threshold to an additional site, chosen at random
// or least-loaded. Replication traffic flows over the same links as
// demand fetches, so the bandwidth cost is modeled, not assumed away.
//
// The paper argues replication is NECESSARY for task-centric scheduling
// (to dissolve hot spots) but merely ORTHOGONAL for worker-centric
// scheduling; bench_ext_replication quantifies both claims. The
// data_replication_policy scenario (R3) ablates the placement policies
// against each other across topologies.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/flow_manager.h"
#include "sim/simulator.h"
#include "storage/data_server.h"
#include "workload/job.h"

namespace wcs::replication {

enum class Placement {
  kRandom,       // Ranganathan's DataRandom
  kLeastLoaded,  // Ranganathan's DataLeastLoaded (shortest batch queue)
  // Place inside the MAN group whose sites generated the most demand for
  // the file ("The Impact of Data Replication on Job Scheduling
  // Performance in Hierarchical Data Grid": replicate down the tier the
  // requests came from). Ties: lowest group id; within the group, least
  // loaded then lowest site id.
  kHierarchicalParent,
  // DIANA-style network-cost-weighted source selection turned into
  // placement: minimize (missing bytes / uplink bandwidth + uplink
  // latency) * (1 + backlog) over candidate sites, so a replica lands
  // where it is cheapest to deliver AND cheapest to serve from.
  kNetworkCost,
};

[[nodiscard]] const char* to_string(Placement placement);

// Parses a CLI/scenario policy name ("random", "least-loaded",
// "hierarchical", "network-cost"). Returns false on unknown names.
[[nodiscard]] bool parse_placement(std::string_view name, Placement* out);

// Per-site network facts for the placement policies that price the grid
// hierarchy (one entry per site, site order).
struct SiteNetInfo {
  std::uint32_t man_group = 0;       // site's MAN router index
  double uplink_bandwidth_bps = 1;   // the site's shared uplink
  SimTime uplink_latency_s = 0;
};

struct DataReplicatorParams {
  // A file becomes replication-eligible once this many demand fetches
  // have been observed for it across all sites.
  std::size_t popularity_threshold = 8;
  Placement placement = Placement::kLeastLoaded;
  SimTime check_interval_s = 3600;       // popularity scan period
  std::size_t max_replicas_per_round = 25;  // throttle per scan
  std::uint64_t seed = 13;
};

class DataReplicator {
 public:
  struct Stats {
    std::uint64_t files_replicated = 0;
    double bytes_replicated = 0;
    std::uint64_t rounds = 0;
  };

  // `site_info` (site order) feeds the hierarchy-aware placements; when
  // empty, every site is priced identically in one group (the
  // random/least-loaded policies never read it).
  DataReplicator(const DataReplicatorParams& params, sim::Simulator& sim,
                 net::FlowManager& flows, NodeId file_server_node,
                 const workload::FileCatalog& catalog,
                 std::vector<storage::DataServer*> data_servers,
                 std::vector<SiteNetInfo> site_info = {});

  DataReplicator(const DataReplicator&) = delete;
  DataReplicator& operator=(const DataReplicator&) = delete;

  // Begin periodic scans (first scan after one interval).
  void start();

  // Cancel the periodic scan and all in-flight replication transfers.
  // Called by the engine once the job completes.
  void stop();

  // Demand-fetch observation hook; the engine wires every data server's
  // transfer listener here. `origin` is the fetching site — the
  // hierarchical placement aggregates demand per MAN group from it.
  void on_file_fetched(FileId file, SiteId origin = SiteId(0));

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t popularity(FileId file) const {
    auto it = popularity_.find(file);
    return it == popularity_.end() ? 0 : it->second;
  }

 private:
  void scan();
  // Site to receive a replica of `file`; invalid id if none is suitable
  // (every site already holds it).
  [[nodiscard]] SiteId pick_target(FileId file);

  // Bytes a replica of `file` at `target` would actually move (block
  // mode prices only the blocks the target does not already cover).
  [[nodiscard]] Bytes replica_bytes(FileId file, std::size_t target) const;

  DataReplicatorParams params_;
  sim::Simulator& sim_;
  net::FlowManager& flows_;
  NodeId file_server_node_;
  const workload::FileCatalog& catalog_;
  std::vector<storage::DataServer*> data_servers_;
  std::vector<SiteNetInfo> site_info_;  // site order; same size as servers
  std::uint32_t num_groups_ = 1;
  Rng rng_;

  std::unordered_map<FileId, std::size_t> popularity_;
  // Per-MAN-group demand counts, tracked only for the hierarchical
  // placement (indexed file -> group -> fetches).
  std::unordered_map<FileId, std::vector<std::uint32_t>> group_demand_;
  // Files already pushed (or being pushed) this job; one proactive
  // replica per file keeps the mechanism bounded, as in the original
  // scheme's per-popularity-event replication.
  std::unordered_set<FileId> replicated_;
  std::unordered_set<FlowId> in_flight_;
  EventId next_scan_;
  bool stopped_ = false;
  Stats stats_;
};

}  // namespace wcs::replication
