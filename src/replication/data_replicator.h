// Proactive data replication (the paper's Sec. 3.1/6 companion
// mechanism, after Ranganathan & Foster, "Decoupling Computation and Data
// Scheduling in Distributed Data-Intensive Applications", HPDC'02).
//
// The replicator watches global file popularity (every fetch from the
// external file server counts) and periodically pushes files whose
// popularity crossed a threshold to an additional site, chosen at random
// or least-loaded. Replication traffic flows over the same links as
// demand fetches, so the bandwidth cost is modeled, not assumed away.
//
// The paper argues replication is NECESSARY for task-centric scheduling
// (to dissolve hot spots) but merely ORTHOGONAL for worker-centric
// scheduling; bench_ext_replication quantifies both claims.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/flow_manager.h"
#include "sim/simulator.h"
#include "storage/data_server.h"
#include "workload/job.h"

namespace wcs::replication {

enum class Placement {
  kRandom,      // Ranganathan's DataRandom
  kLeastLoaded  // Ranganathan's DataLeastLoaded (shortest batch queue)
};

[[nodiscard]] const char* to_string(Placement placement);

struct DataReplicatorParams {
  // A file becomes replication-eligible once this many demand fetches
  // have been observed for it across all sites.
  std::size_t popularity_threshold = 8;
  Placement placement = Placement::kLeastLoaded;
  SimTime check_interval_s = 3600;       // popularity scan period
  std::size_t max_replicas_per_round = 25;  // throttle per scan
  std::uint64_t seed = 13;
};

class DataReplicator {
 public:
  struct Stats {
    std::uint64_t files_replicated = 0;
    double bytes_replicated = 0;
    std::uint64_t rounds = 0;
  };

  DataReplicator(const DataReplicatorParams& params, sim::Simulator& sim,
                 net::FlowManager& flows, NodeId file_server_node,
                 const workload::FileCatalog& catalog,
                 std::vector<storage::DataServer*> data_servers);

  DataReplicator(const DataReplicator&) = delete;
  DataReplicator& operator=(const DataReplicator&) = delete;

  // Begin periodic scans (first scan after one interval).
  void start();

  // Cancel the periodic scan and all in-flight replication transfers.
  // Called by the engine once the job completes.
  void stop();

  // Demand-fetch observation hook; the engine wires every data server's
  // transfer listener here.
  void on_file_fetched(FileId file);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t popularity(FileId file) const {
    auto it = popularity_.find(file);
    return it == popularity_.end() ? 0 : it->second;
  }

 private:
  void scan();
  // Site to receive a replica of `file`; invalid id if none is suitable
  // (every site already holds it).
  [[nodiscard]] SiteId pick_target(FileId file);

  DataReplicatorParams params_;
  sim::Simulator& sim_;
  net::FlowManager& flows_;
  NodeId file_server_node_;
  const workload::FileCatalog& catalog_;
  std::vector<storage::DataServer*> data_servers_;
  Rng rng_;

  std::unordered_map<FileId, std::size_t> popularity_;
  // Files already pushed (or being pushed) this job; one proactive
  // replica per file keeps the mechanism bounded, as in the original
  // scheme's per-popularity-event replication.
  std::unordered_set<FileId> replicated_;
  std::unordered_set<FlowId> in_flight_;
  EventId next_scan_;
  bool stopped_ = false;
  Stats stats_;
};

}  // namespace wcs::replication
