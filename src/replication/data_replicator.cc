#include "replication/data_replicator.h"

#include <algorithm>

namespace wcs::replication {

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::kRandom: return "random";
    case Placement::kLeastLoaded: return "least-loaded";
    case Placement::kHierarchicalParent: return "hierarchical";
    case Placement::kNetworkCost: return "network-cost";
  }
  return "?";
}

bool parse_placement(std::string_view name, Placement* out) {
  if (name == "random") *out = Placement::kRandom;
  else if (name == "least-loaded") *out = Placement::kLeastLoaded;
  else if (name == "hierarchical") *out = Placement::kHierarchicalParent;
  else if (name == "network-cost") *out = Placement::kNetworkCost;
  else return false;
  return true;
}

DataReplicator::DataReplicator(const DataReplicatorParams& params,
                               sim::Simulator& sim, net::FlowManager& flows,
                               NodeId file_server_node,
                               const workload::FileCatalog& catalog,
                               std::vector<storage::DataServer*> data_servers,
                               std::vector<SiteNetInfo> site_info)
    : params_(params),
      sim_(sim),
      flows_(flows),
      file_server_node_(file_server_node),
      catalog_(catalog),
      data_servers_(std::move(data_servers)),
      site_info_(std::move(site_info)),
      rng_(params.seed) {
  WCS_CHECK(params_.popularity_threshold > 0);
  WCS_CHECK(params_.check_interval_s > 0);
  WCS_CHECK(!data_servers_.empty());
  // No topology facts: one flat group, unit bandwidth — the hierarchical
  // and network-cost placements degrade to deterministic tie-breaks.
  if (site_info_.empty()) site_info_.resize(data_servers_.size());
  WCS_CHECK(site_info_.size() == data_servers_.size());
  for (const SiteNetInfo& s : site_info_)
    num_groups_ = std::max(num_groups_, s.man_group + 1);
}

void DataReplicator::start() {
  WCS_CHECK(!stopped_);
  next_scan_ = sim_.schedule_in(params_.check_interval_s, [this] { scan(); });
}

void DataReplicator::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (next_scan_.valid()) sim_.cancel(next_scan_);
  // Cancel in sorted id order: FlowManager::cancel reallocates the
  // remaining flows, so the cancellation sequence is observable.
  std::vector<FlowId> pending(in_flight_.begin(), in_flight_.end());
  std::sort(pending.begin(), pending.end());
  for (FlowId f : pending) flows_.cancel(f);
  in_flight_.clear();
}

void DataReplicator::on_file_fetched(FileId file, SiteId origin) {
  if (stopped_) return;
  ++popularity_[file];
  if (params_.placement == Placement::kHierarchicalParent &&
      origin.value() < site_info_.size()) {
    std::vector<std::uint32_t>& demand = group_demand_[file];
    if (demand.empty()) demand.resize(num_groups_, 0);
    ++demand[site_info_[origin.value()].man_group];
  }
}

Bytes DataReplicator::replica_bytes(FileId file, std::size_t target) const {
  const storage::FileCache& cache = data_servers_[target]->cache();
  return cache.block_mode() ? cache.missing_bytes(file)
                            : catalog_.size(file);
}

SiteId DataReplicator::pick_target(FileId file) {
  std::vector<std::size_t> candidates;
  for (std::size_t s = 0; s < data_servers_.size(); ++s)
    if (!data_servers_[s]->cache().contains(file)) candidates.push_back(s);
  if (candidates.empty()) return SiteId::invalid();

  auto least_loaded = [&](const std::vector<std::size_t>& pool) {
    std::size_t best = pool.front();
    for (std::size_t s : pool)
      if (data_servers_[s]->queue_length() <
          data_servers_[best]->queue_length())
        best = s;
    return best;
  };

  std::size_t chosen;
  switch (params_.placement) {
    case Placement::kRandom:
      chosen = candidates[rng_.index(candidates.size())];
      break;
    case Placement::kLeastLoaded:
      chosen = least_loaded(candidates);
      break;
    case Placement::kHierarchicalParent: {
      // Group with the most recorded demand wins; ties break toward the
      // lowest group id. A file that crossed the popularity threshold
      // without per-group records (listener not wired) lands in group 0.
      std::uint32_t best_group = 0;
      auto it = group_demand_.find(file);
      if (it != group_demand_.end()) {
        const std::vector<std::uint32_t>& demand = it->second;
        for (std::uint32_t g = 1; g < demand.size(); ++g)
          if (demand[g] > demand[best_group]) best_group = g;
      }
      std::vector<std::size_t> in_group;
      for (std::size_t s : candidates)
        if (site_info_[s].man_group == best_group) in_group.push_back(s);
      // Every site of the hottest group already holds the file: fall back
      // to the full candidate set rather than skipping the round.
      chosen = least_loaded(in_group.empty() ? candidates : in_group);
      break;
    }
    case Placement::kNetworkCost: {
      // DIANA cost: delivery time over the site's uplink, inflated by the
      // backlog the new replica would queue behind. Strict < keeps the
      // lowest site id on ties.
      chosen = candidates.front();
      double best_cost = 0;
      bool first = true;
      for (std::size_t s : candidates) {
        const SiteNetInfo& net = site_info_[s];
        const double transfer =
            static_cast<double>(replica_bytes(file, s)) /
                std::max(net.uplink_bandwidth_bps, 1.0) +
            net.uplink_latency_s;
        const double cost =
            transfer *
            (1.0 + static_cast<double>(data_servers_[s]->queue_length()));
        if (first || cost < best_cost) {
          first = false;
          best_cost = cost;
          chosen = s;
        }
      }
      break;
    }
  }
  return SiteId(static_cast<SiteId::underlying_type>(chosen));
}

void DataReplicator::scan() {
  if (stopped_) return;
  ++stats_.rounds;

  // Hot files first, deterministically.
  std::vector<std::pair<std::size_t, FileId>> hot;
  // detlint: unordered-loop -- collect-then-sort: 'hot' is canonically sorted by (count, id) before any use
  for (const auto& [file, count] : popularity_) {
    if (count < params_.popularity_threshold) continue;
    if (replicated_.count(file)) continue;
    hot.emplace_back(count, file);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (hot.size() > params_.max_replicas_per_round)
    hot.resize(params_.max_replicas_per_round);

  for (const auto& [count, file] : hot) {
    SiteId target = pick_target(file);
    if (!target.valid()) {
      replicated_.insert(file);  // everywhere already; never revisit
      continue;
    }
    replicated_.insert(file);
    storage::DataServer* ds = data_servers_[target.value()];
    FileId f = file;
    // Priced at flow start (block mode ships only uncovered blocks), and
    // the completion callback books that same amount so the results
    // ledger matches the flow manager byte for byte.
    const double moved =
        static_cast<double>(replica_bytes(file, target.value()));
    FlowId flow = flows_.start_flow(
        file_server_node_, ds->node(), replica_bytes(file, target.value()),
        [this, ds, f, moved](FlowId id) {
          in_flight_.erase(id);
          // The demand path may have fetched it meanwhile; and a cache
          // momentarily full of pinned files just drops the replica.
          if (!ds->cache().contains(f)) (void)ds->cache().try_insert(f);
          ++stats_.files_replicated;
          stats_.bytes_replicated += moved;
        });
    in_flight_.insert(flow);
  }

  next_scan_ = sim_.schedule_in(params_.check_interval_s, [this] { scan(); });
}

}  // namespace wcs::replication
