#include "replication/data_replicator.h"

#include <algorithm>

namespace wcs::replication {

const char* to_string(Placement placement) {
  switch (placement) {
    case Placement::kRandom: return "random";
    case Placement::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

DataReplicator::DataReplicator(const DataReplicatorParams& params,
                               sim::Simulator& sim, net::FlowManager& flows,
                               NodeId file_server_node,
                               const workload::FileCatalog& catalog,
                               std::vector<storage::DataServer*> data_servers)
    : params_(params),
      sim_(sim),
      flows_(flows),
      file_server_node_(file_server_node),
      catalog_(catalog),
      data_servers_(std::move(data_servers)),
      rng_(params.seed) {
  WCS_CHECK(params_.popularity_threshold > 0);
  WCS_CHECK(params_.check_interval_s > 0);
  WCS_CHECK(!data_servers_.empty());
}

void DataReplicator::start() {
  WCS_CHECK(!stopped_);
  next_scan_ = sim_.schedule_in(params_.check_interval_s, [this] { scan(); });
}

void DataReplicator::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (next_scan_.valid()) sim_.cancel(next_scan_);
  // Cancel in sorted id order: FlowManager::cancel reallocates the
  // remaining flows, so the cancellation sequence is observable.
  std::vector<FlowId> pending(in_flight_.begin(), in_flight_.end());
  std::sort(pending.begin(), pending.end());
  for (FlowId f : pending) flows_.cancel(f);
  in_flight_.clear();
}

void DataReplicator::on_file_fetched(FileId file) {
  if (stopped_) return;
  ++popularity_[file];
}

SiteId DataReplicator::pick_target(FileId file) {
  std::vector<std::size_t> candidates;
  for (std::size_t s = 0; s < data_servers_.size(); ++s)
    if (!data_servers_[s]->cache().contains(file)) candidates.push_back(s);
  if (candidates.empty()) return SiteId::invalid();

  std::size_t chosen;
  if (params_.placement == Placement::kRandom) {
    chosen = candidates[rng_.index(candidates.size())];
  } else {
    chosen = candidates.front();
    for (std::size_t s : candidates)
      if (data_servers_[s]->queue_length() <
          data_servers_[chosen]->queue_length())
        chosen = s;
  }
  return SiteId(static_cast<SiteId::underlying_type>(chosen));
}

void DataReplicator::scan() {
  if (stopped_) return;
  ++stats_.rounds;

  // Hot files first, deterministically.
  std::vector<std::pair<std::size_t, FileId>> hot;
  // detlint: unordered-loop -- collect-then-sort: 'hot' is canonically sorted by (count, id) before any use
  for (const auto& [file, count] : popularity_) {
    if (count < params_.popularity_threshold) continue;
    if (replicated_.count(file)) continue;
    hot.emplace_back(count, file);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (hot.size() > params_.max_replicas_per_round)
    hot.resize(params_.max_replicas_per_round);

  for (const auto& [count, file] : hot) {
    SiteId target = pick_target(file);
    if (!target.valid()) {
      replicated_.insert(file);  // everywhere already; never revisit
      continue;
    }
    replicated_.insert(file);
    storage::DataServer* ds = data_servers_[target.value()];
    FileId f = file;
    FlowId flow = flows_.start_flow(
        file_server_node_, ds->node(), catalog_.size(file),
        [this, ds, f](FlowId id) {
          in_flight_.erase(id);
          // The demand path may have fetched it meanwhile; and a cache
          // momentarily full of pinned files just drops the replica.
          if (!ds->cache().contains(f)) (void)ds->cache().try_insert(f);
          ++stats_.files_replicated;
          stats_.bytes_replicated += static_cast<double>(catalog_.size(f));
        });
    in_flight_.insert(flow);
  }

  next_scan_ = sim_.schedule_in(params_.check_interval_s, [this] { scan(); });
}

}  // namespace wcs::replication
