#include "metrics/results.h"

#include <algorithm>

namespace wcs::metrics {

AveragedResult average(std::span<const RunResult> runs) {
  WCS_CHECK(!runs.empty());
  AveragedResult avg;
  avg.scheduler = runs.front().scheduler;
  avg.runs = runs.size();
  avg.makespan_minutes_min = runs.front().makespan_minutes();
  avg.makespan_minutes_max = runs.front().makespan_minutes();
  const double n = static_cast<double>(runs.size());
  for (const RunResult& r : runs) {
    WCS_CHECK_MSG(r.scheduler == avg.scheduler,
                  "averaging across schedulers: " << r.scheduler << " vs "
                                                  << avg.scheduler);
    avg.makespan_minutes += r.makespan_minutes() / n;
    avg.transfers_per_site += r.transfers_per_site() / n;
    avg.total_file_transfers +=
        static_cast<double>(r.total_file_transfers()) / n;
    avg.total_gigabytes += r.total_bytes_transferred() / 1e9 / n;
    avg.waiting_hours_per_site += r.waiting_hours_per_site() / n;
    avg.transfer_hours_per_site += r.transfer_hours_per_site() / n;
    avg.replicas_started += static_cast<double>(r.replicas_started) / n;
    avg.replicas_cancelled += static_cast<double>(r.replicas_cancelled) / n;
    avg.makespan_minutes_min =
        std::min(avg.makespan_minutes_min, r.makespan_minutes());
    avg.makespan_minutes_max =
        std::max(avg.makespan_minutes_max, r.makespan_minutes());
  }
  return avg;
}

}  // namespace wcs::metrics
