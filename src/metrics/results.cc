#include "metrics/results.h"

#include <algorithm>

namespace wcs::metrics {

AveragedResult average(std::span<const RunResult> runs) {
  WCS_CHECK(!runs.empty());
  AveragedResult avg;
  avg.scheduler = runs.front().scheduler;
  avg.runs = runs.size();
  avg.makespan_minutes_min = runs.front().makespan_minutes();
  avg.makespan_minutes_max = runs.front().makespan_minutes();
  const double n = static_cast<double>(runs.size());
  for (const RunResult& r : runs) {
    WCS_CHECK_MSG(r.scheduler == avg.scheduler,
                  "averaging across schedulers: " << r.scheduler << " vs "
                                                  << avg.scheduler);
    avg.makespan_minutes += r.makespan_minutes() / n;
    avg.transfers_per_site += r.transfers_per_site() / n;
    avg.total_file_transfers +=
        static_cast<double>(r.total_file_transfers()) / n;
    avg.total_gigabytes += r.total_bytes_transferred() / 1e9 / n;
    avg.total_gigabytes_saved += r.total_bytes_saved() / 1e9 / n;
    avg.waiting_hours_per_site += r.waiting_hours_per_site() / n;
    avg.transfer_hours_per_site += r.transfer_hours_per_site() / n;
    avg.replicas_started += static_cast<double>(r.replicas_started) / n;
    avg.replicas_cancelled += static_cast<double>(r.replicas_cancelled) / n;
    avg.makespan_minutes_min =
        std::min(avg.makespan_minutes_min, r.makespan_minutes());
    avg.makespan_minutes_max =
        std::max(avg.makespan_minutes_max, r.makespan_minutes());
  }
  // Ratio of the averaged byte totals, not the average of ratios: one run
  // with tiny traffic cannot skew the series.
  avg.dedup_ratio =
      avg.total_gigabytes > 0
          ? (avg.total_gigabytes + avg.total_gigabytes_saved) /
                avg.total_gigabytes
          : 1.0;

  // Per-tenant sections: positional mean over the repetitions. All runs
  // of one experiment share a workload, hence a tenant roster.
  const std::size_t num_tenants = runs.front().tenants.size();
  avg.tenants.resize(num_tenants);
  for (TenantResult& t : avg.tenants) t.time_to_first_task_s = 0;
  avg.jain_fairness = 0;
  for (const RunResult& r : runs) {
    WCS_CHECK_MSG(r.tenants.size() == num_tenants,
                  "averaging across different tenant rosters");
    avg.jain_fairness += r.jain_fairness() / n;
    for (std::size_t t = 0; t < num_tenants; ++t) {
      const TenantResult& in = r.tenants[t];
      TenantResult& out = avg.tenants[t];
      out.name = in.name;
      out.weight = in.weight;
      out.tasks = in.tasks;
      out.first_arrival_s = in.first_arrival_s;
      out.completed += in.completed;  // divided by runs below
      out.time_to_first_task_s += in.time_to_first_task_s / n;
      out.makespan_s += in.makespan_s / n;
      out.sojourn_mean_s += in.sojourn_mean_s / n;
      out.sojourn_p50_s += in.sojourn_p50_s / n;
      out.sojourn_p95_s += in.sojourn_p95_s / n;
      out.sojourn_p99_s += in.sojourn_p99_s / n;
    }
  }
  for (TenantResult& t : avg.tenants) t.completed /= runs.size();
  return avg;
}

}  // namespace wcs::metrics
