// Per-task lifecycle timeline.
//
// When enabled (GridConfig::record_timeline) the engine records every
// task-instance transition with its simulated timestamp:
//
//   assigned -> fetch-start -> exec-start -> completed
//                          \-> cancelled (losing replicas, crashes)
//
// plus worker failures/recoveries. The recorder derives per-task span
// breakdowns (queue wait, data wait, execution) — the per-task view of
// the same quantities Table 3 aggregates per data server — and dumps raw
// CSV for external analysis.
#pragma once

#include <algorithm>
#include <map>
#include <ostream>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/stats.h"
#include "common/units.h"

namespace wcs::metrics {

enum class TimelineEventKind {
  kAssigned,    // placed on a worker's queue
  kFetchStart,  // batch request handed to the data server
  kExecStart,   // all files resident; compute begins
  kCompleted,   // task finished (winning instance)
  kCancelled,   // instance cancelled (replica lost the race, or crash)
  kWorkerFailed,
  kWorkerRecovered,
};

[[nodiscard]] inline const char* to_string(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::kAssigned: return "assigned";
    case TimelineEventKind::kFetchStart: return "fetch-start";
    case TimelineEventKind::kExecStart: return "exec-start";
    case TimelineEventKind::kCompleted: return "completed";
    case TimelineEventKind::kCancelled: return "cancelled";
    case TimelineEventKind::kWorkerFailed: return "worker-failed";
    case TimelineEventKind::kWorkerRecovered: return "worker-recovered";
  }
  return "?";
}

struct TimelineEvent {
  SimTime time = 0;
  TimelineEventKind kind{};
  TaskId task;      // invalid for worker-level events
  WorkerId worker;
};

// One completed task instance's phases.
struct TaskSpan {
  TaskId task;
  WorkerId worker;
  SimTime assigned = 0;
  SimTime fetch_start = 0;  // == exec-ready wait start
  SimTime exec_start = 0;
  SimTime completed = 0;

  [[nodiscard]] double queue_wait_s() const { return fetch_start - assigned; }
  [[nodiscard]] double data_wait_s() const { return exec_start - fetch_start; }
  [[nodiscard]] double exec_s() const { return completed - exec_start; }
  [[nodiscard]] double total_s() const { return completed - assigned; }
};

class TimelineRecorder {
 public:
  void record(SimTime time, TimelineEventKind kind, TaskId task,
              WorkerId worker) {
    if (!events_.empty()) WCS_DCHECK_LE(events_.back().time, time);
    events_.push_back(TimelineEvent{time, kind, task, worker});
  }

  [[nodiscard]] const std::vector<TimelineEvent>& events() const {
    return events_;
  }

  // Phase breakdown of every COMPLETED instance, in completion order.
  [[nodiscard]] std::vector<TaskSpan> completed_spans() const {
    // Latest open (assigned/fetch/exec) times per live instance.
    std::map<std::pair<TaskId, WorkerId>, TaskSpan> open;
    std::vector<TaskSpan> done;
    for (const TimelineEvent& e : events_) {
      std::pair<TaskId, WorkerId> key{e.task, e.worker};
      switch (e.kind) {
        case TimelineEventKind::kAssigned: {
          TaskSpan span;
          span.task = e.task;
          span.worker = e.worker;
          span.assigned = e.time;
          open[key] = span;
          break;
        }
        case TimelineEventKind::kFetchStart:
          if (auto it = open.find(key); it != open.end())
            it->second.fetch_start = e.time;
          break;
        case TimelineEventKind::kExecStart:
          if (auto it = open.find(key); it != open.end())
            it->second.exec_start = e.time;
          break;
        case TimelineEventKind::kCompleted:
          if (auto it = open.find(key); it != open.end()) {
            it->second.completed = e.time;
            done.push_back(it->second);
            open.erase(it);
          }
          break;
        case TimelineEventKind::kCancelled:
          open.erase(key);
          break;
        case TimelineEventKind::kWorkerFailed:
        case TimelineEventKind::kWorkerRecovered:
          break;
      }
    }
    return done;
  }

  // Aggregate phase statistics over completed instances.
  struct PhaseStats {
    RunningStats queue_wait;
    RunningStats data_wait;
    RunningStats exec;
  };
  [[nodiscard]] PhaseStats phase_stats() const {
    PhaseStats stats;
    for (const TaskSpan& s : completed_spans()) {
      stats.queue_wait.add(s.queue_wait_s());
      stats.data_wait.add(s.data_wait_s());
      stats.exec.add(s.exec_s());
    }
    return stats;
  }

  void dump_csv(std::ostream& out) const {
    out << "time_s,event,task,worker\n";
    for (const TimelineEvent& e : events_) {
      out << e.time << ',' << to_string(e.kind) << ',';
      if (e.task.valid()) out << e.task.value();
      out << ',';
      if (e.worker.valid()) out << e.worker.value();
      out << '\n';
    }
  }

 private:
  std::vector<TimelineEvent> events_;
};

}  // namespace wcs::metrics
