// Result records produced by a simulation run and their aggregation
// across repetitions (the paper averages every experiment over 5
// topologies, Sec. 5.2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stats.h"
#include "common/units.h"

namespace wcs::metrics {

// Per-tenant section of an open-system run (RunResult::tenants; empty on
// closed-batch runs). Times are simulation seconds. Sojourn = completion
// time - arrival time, per completed task. time_to_first_task_s is -1
// when the tenant never had a task assigned.
struct TenantResult {
  std::string name;
  std::uint32_t weight = 1;
  std::size_t tasks = 0;
  std::size_t completed = 0;
  double first_arrival_s = 0;
  double time_to_first_task_s = -1;  // first assignment - first arrival
  double makespan_s = 0;             // last completion - first arrival
  double sojourn_mean_s = 0;
  double sojourn_p50_s = 0;
  double sojourn_p95_s = 0;
  double sojourn_p99_s = 0;
};

// Per-site data-server accounting; mirrors storage::DataServer::Stats
// plus cache counters. waiting_s / transfer_s are the two columns of the
// paper's Table 3.
struct SiteResult {
  std::uint64_t batches_served = 0;
  std::uint64_t batches_cancelled = 0;
  double waiting_s = 0;
  double transfer_s = 0;
  std::uint64_t file_transfers = 0;
  double bytes_transferred = 0;
  // Block-mode dedup: bytes demand fetches did NOT move because shared
  // blocks were already resident (0 in whole-file mode / overlap 0).
  double bytes_saved = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t evictions = 0;
};

struct RunResult {
  std::string scheduler;
  double makespan_s = 0;
  std::size_t tasks_completed = 0;
  std::uint64_t assignments = 0;        // task instances handed to workers
  std::uint64_t replicas_started = 0;   // assignments beyond the first
  std::uint64_t replicas_cancelled = 0;
  std::size_t events_executed = 0;
  // Proactive data replication (0 when the subsystem is disabled).
  std::uint64_t files_replicated = 0;
  double bytes_replicated = 0;
  // Worker churn (0 when churn is disabled).
  std::uint64_t worker_failures = 0;
  std::uint64_t worker_recoveries = 0;
  std::uint64_t instances_lost = 0;
  std::vector<SiteResult> sites;
  // Per-tenant sections; empty for closed-batch runs.
  std::vector<TenantResult> tenants;

  [[nodiscard]] double makespan_minutes() const {
    return to_minutes(makespan_s);
  }

  // Jain's fairness index over the tenants' weight-normalized service
  // (completed / weight). 1.0 for closed-batch and single-tenant runs.
  [[nodiscard]] double jain_fairness() const {
    std::vector<double> shares;
    shares.reserve(tenants.size());
    for (const TenantResult& t : tenants)
      shares.push_back(static_cast<double>(t.completed) /
                       static_cast<double>(t.weight));
    return jain_fairness_index(shares);
  }

  [[nodiscard]] std::uint64_t total_file_transfers() const {
    std::uint64_t total = 0;
    for (const SiteResult& s : sites) total += s.file_transfers;
    return total;
  }

  [[nodiscard]] double total_bytes_transferred() const {
    double total = 0;
    for (const SiteResult& s : sites) total += s.bytes_transferred;
    return total;
  }

  [[nodiscard]] double total_bytes_saved() const {
    double total = 0;
    for (const SiteResult& s : sites) total += s.bytes_saved;
    return total;
  }

  // Logical demand bytes / wire bytes. 1.0 when nothing was deduplicated
  // (whole-file mode, overlap 0) and by convention when no demand bytes
  // moved at all.
  [[nodiscard]] double dedup_ratio() const {
    const double moved = total_bytes_transferred();
    const double saved = total_bytes_saved();
    if (moved <= 0) return 1.0;
    return (moved + saved) / moved;
  }

  // The paper's Figure 5 series: file transfers averaged per data server.
  [[nodiscard]] double transfers_per_site() const {
    WCS_CHECK(!sites.empty());
    return static_cast<double>(total_file_transfers()) /
           static_cast<double>(sites.size());
  }

  [[nodiscard]] double total_waiting_s() const {
    double total = 0;
    for (const SiteResult& s : sites) total += s.waiting_s;
    return total;
  }

  [[nodiscard]] double total_transfer_s() const {
    double total = 0;
    for (const SiteResult& s : sites) total += s.transfer_s;
    return total;
  }

  // Table 3 presentation: per-site averages, in hours.
  [[nodiscard]] double waiting_hours_per_site() const {
    WCS_CHECK(!sites.empty());
    return to_hours(total_waiting_s()) / static_cast<double>(sites.size());
  }
  [[nodiscard]] double transfer_hours_per_site() const {
    WCS_CHECK(!sites.empty());
    return to_hours(total_transfer_s()) / static_cast<double>(sites.size());
  }

  [[nodiscard]] std::uint64_t total_cache_hits() const {
    std::uint64_t total = 0;
    for (const SiteResult& s : sites) total += s.cache_hits;
    return total;
  }

  [[nodiscard]] std::uint64_t total_evictions() const {
    std::uint64_t total = 0;
    for (const SiteResult& s : sites) total += s.evictions;
    return total;
  }
};

// Mean of the headline series over repeated runs (different topology
// seeds, same workload).
struct AveragedResult {
  std::string scheduler;
  std::size_t runs = 0;
  double makespan_minutes = 0;
  double transfers_per_site = 0;
  double total_file_transfers = 0;
  double total_gigabytes = 0;
  // Block-mode dedup series (0 GB / ratio 1.0 in whole-file mode).
  double total_gigabytes_saved = 0;
  double dedup_ratio = 1.0;
  double waiting_hours_per_site = 0;
  double transfer_hours_per_site = 0;
  double replicas_started = 0;
  double replicas_cancelled = 0;
  double makespan_minutes_min = 0;
  double makespan_minutes_max = 0;
  // Open-system runs: mean Jain's index over the repetitions and the
  // positionally averaged per-tenant sections (names/weights from the
  // first run; every run must carry the same tenant roster).
  double jain_fairness = 1.0;
  std::vector<TenantResult> tenants;
};

[[nodiscard]] AveragedResult average(std::span<const RunResult> runs);

}  // namespace wcs::metrics
