#include "audit/invariant_auditor.h"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace wcs::audit {

namespace {

std::string format_report(const std::string& when,
                          const std::vector<Violation>& violations) {
  std::ostringstream os;
  os << "invariant audit failed (" << when << "): " << violations.size()
     << " violation" << (violations.size() == 1 ? "" : "s");
  for (const Violation& v : violations)
    os << "\n  [" << v.checker << "] " << v.message;
  return os.str();
}

}  // namespace

AuditError::AuditError(const std::string& when,
                       std::vector<Violation> violations)
    : std::runtime_error(format_report(when, violations)),
      violations_(std::move(violations)) {}

void throw_if_violations(const std::string& when,
                         std::vector<Violation> violations) {
  if (!violations.empty()) throw AuditError(when, std::move(violations));
}

void InvariantAuditor::add_checker(std::string name, Checker fn) {
  WCS_CHECK_MSG(fn != nullptr, "null checker " << name);
  checkers_.push_back(Entry{std::move(name), std::move(fn)});
}

std::vector<Violation> InvariantAuditor::run_checks() {
  ++sweeps_;
  std::vector<Violation> violations;
  for (const Entry& e : checkers_) e.fn(violations);
  return violations;
}

void InvariantAuditor::check(const std::string& when) {
  throw_if_violations(when, run_checks());
}

std::vector<std::string> InvariantAuditor::checker_names() const {
  std::vector<std::string> names;
  names.reserve(checkers_.size());
  for (const Entry& e : checkers_) names.push_back(e.name);
  return names;
}

bool default_enabled() {
  // detlint: nondet-source -- WCS_AUDIT on/off gate, read once at startup; the auditor is read-only and results are byte-identical either way
  if (const char* env = std::getenv("WCS_AUDIT"); env && *env != '\0')
    return *env == '1';
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

}  // namespace wcs::audit
