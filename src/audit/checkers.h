// The shipped invariant checkers.
//
// Each checker is a pure function over a snapshot struct: the component
// that owns the state produces the snapshot (FlowManager::audit_snapshot,
// FileCache::audit_snapshot, ...), and the checker validates its
// conservation laws. Keeping checkers pure makes violations injectable in
// unit tests without corrupting a live component.
//
// Shipped laws (DESIGN.md § Invariants & static analysis):
//   flow-conservation   per-link allocation <= capacity; per-flow byte
//                       accounting; started = delivered + in-flight +
//                       cancelled remainder
//   cache-coherence     occupancy <= capacity; pinned <= occupancy;
//                       LRU/FIFO/MinRef order<->entry structure sound
//   block-store         physical/pinned block counters == extent-union
//                       recounts; pinned <= physical <= capacity; union
//                       <= per-file block-ref sum
//   index-coherence     scheduler's incremental totals == full recompute
//   task-lifecycle      pending -> assigned -> running -> completed
//                       exactly once; placements match worker queues
//   event-kernel        fire-time monotonicity; live/tombstone counts
//   results-ledger      makespan == max completion; reported bytes ==
//                       flow-ledger bytes
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"

namespace wcs::audit {

// --- (a) flow conservation ----------------------------------------------

struct LinkUsage {
  std::string name;          // for the report
  double capacity_bps = 0;
  double allocated_bps = 0;  // sum of active-flow rates crossing the link
  std::size_t flows = 0;     // active flows crossing the link
};

struct FlowProgress {
  std::uint64_t id = 0;
  double total_bytes = 0;
  double remaining_bytes = 0;
  double rate_bps = 0;
  bool active = false;  // false while still in the latency phase
};

struct FlowAuditSnapshot {
  std::vector<LinkUsage> links;
  std::vector<FlowProgress> flows;  // in-progress flows
  double bytes_started = 0;         // sum of sizes of every flow started
  double bytes_delivered = 0;       // sum of sizes of completed flows
  std::uint64_t flows_completed = 0;
  std::uint64_t flows_cancelled = 0;
};

void check_flow_conservation(const FlowAuditSnapshot& snap,
                             std::vector<Violation>& out);

// Incremental max-min reallocation vs a from-scratch recompute. The
// FlowManager produces the snapshot (audit_rates_snapshot): for every
// bandwidth-sharing flow, the live stored rate next to the rate a full
// progressive-filling pass over the same pool computes. The dirty-
// component reallocation contract is exact — stored rates must match the
// recompute bitwise, so the checker tolerates no drift at all.
struct FlowRateEntry {
  std::uint64_t id = 0;
  double stored_bps = 0;      // the live incremental allocation
  double recomputed_bps = 0;  // from-scratch progressive filling
};

struct FlowRatesSnapshot {
  std::string label;  // e.g. "flow manager"
  std::vector<FlowRateEntry> flows;
};

void check_flow_rates(const FlowRatesSnapshot& snap,
                      std::vector<Violation>& out);

// --- (b) cache / index coherence ----------------------------------------

struct CacheAuditSnapshot {
  std::string label;  // e.g. "site 3 data server"
  std::size_t occupancy = 0;
  std::size_t capacity = 0;
  std::size_t pinned = 0;                // resident files with pin_count > 0
  std::vector<std::string> structural;   // defects found by the cache itself
};

void check_cache_coherence(const CacheAuditSnapshot& snap,
                           std::vector<Violation>& out);

// Block-store page accounting (block-mode caches only). The FileCache
// produces the snapshot (block_audit_snapshot): the incrementally
// maintained physical/pinned block counters next to a from-scratch
// recount over the resident files' extents (page books vs cache books),
// plus the block-ref conservation pair — the union of resident extents
// can never exceed the per-file block sum, and the gap between them is
// exactly the deduplicated (shared) block count.
struct BlockStoreAuditSnapshot {
  std::string label;  // e.g. "site 3 block store"
  std::uint64_t capacity_blocks = 0;
  std::uint64_t physical_blocks = 0;   // incremental counter
  std::uint64_t recount_physical = 0;  // union of resident extents
  std::uint64_t pinned_blocks = 0;     // incremental counter
  std::uint64_t recount_pinned = 0;    // union of pinned extents
  std::uint64_t file_block_refs = 0;   // sum of extent sizes, resident files
  std::vector<std::string> structural;  // defects found by the cache itself
};

void check_block_store(const BlockStoreAuditSnapshot& snap,
                       std::vector<Violation>& out);

struct IndexTotalsSnapshot {
  std::string label;  // e.g. "site 3"
  double incremental_ref = 0;   // the O(1) maintained aggregates
  double incremental_rest = 0;
  double scanned_ref = 0;       // the full O(|pending|) recompute
  double scanned_rest = 0;
};

void check_index_coherence(const IndexTotalsSnapshot& snap,
                           std::vector<Violation>& out);

// Sharded pending-task index (sched/sharded_index.h) vs a brute-force
// rescan. The owning scheduler produces the snapshot: `indexed`/`expected`
// are the entry count and the schedulable-set size it recomputed, and
// `defects` are per-entry mismatches (missing task, wrong key/rank,
// structural damage) it found while comparing bucket state against the
// live cache. The checker turns each into a violation.
struct ShardedIndexSnapshot {
  std::string label;  // e.g. "site 3 shard"
  std::size_t indexed = 0;   // entries across every bucket
  std::size_t expected = 0;  // brute-force schedulable-set size
  std::vector<std::string> defects;
};

void check_sharded_index(const ShardedIndexSnapshot& snap,
                         std::vector<Violation>& out);

// --- (c) task lifecycle -------------------------------------------------

struct TaskLifecycleSnapshot {
  std::size_t num_tasks = 0;
  std::size_t completed_count = 0;        // engine's incremental counter
  std::vector<std::uint32_t> completions; // observed completions per task
  std::vector<std::string> placement_defects;  // instance<->holder mismatches
  bool at_drain = false;  // end-of-run: every task must be completed
};

void check_task_lifecycle(const TaskLifecycleSnapshot& snap,
                          std::vector<Violation>& out);

// Per-tenant conservation over the open-system arrival/assignment
// ledgers (control plane, open runs only). Laws:
//   arrived <= tasks; completions <= arrived; assignment needs arrival;
//   assigned == completions + cancelled + live (instances still placed);
//   per-tenant sums == the engine-wide counters;
//   at drain: arrived == tasks, completions == tasks, live == 0.
struct TenantAccounting {
  std::string name;
  std::uint64_t tasks = 0;
  std::uint64_t arrived = 0;
  std::uint64_t assigned = 0;
  std::uint64_t completions = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t live = 0;  // instances currently placed, recounted
};

struct TenantAccountingSnapshot {
  std::vector<TenantAccounting> tenants;
  std::uint64_t total_tasks = 0;        // job size
  std::uint64_t total_assignments = 0;  // engine-wide assignment counter
  std::uint64_t total_completions = 0;  // engine-wide completion counter
  bool at_drain = false;
};

void check_tenant_accounting(const TenantAccountingSnapshot& snap,
                             std::vector<Violation>& out);

// --- (d) event-kernel sanity --------------------------------------------

struct EventKernelSnapshot {
  double now = 0;
  double previous_now = 0;       // clock at the previous sweep
  std::size_t live_count = 0;    // kernel's incremental live counter
  std::size_t recount_live = 0;  // recounted from the per-event states
  std::size_t recount_cancelled = 0;
  std::size_t recount_fired = 0;
  std::uint64_t scheduled_total = 0;  // events ever scheduled
};

void check_event_kernel(const EventKernelSnapshot& snap,
                        std::vector<Violation>& out);

// --- (e) results ledger -------------------------------------------------

struct ResultsLedgerSnapshot {
  double makespan_s = 0;        // as reported in metrics::RunResult
  double max_completion_s = 0;  // independently recorded completion maximum
  std::size_t tasks_completed = 0;
  std::size_t num_tasks = 0;
  double reported_bytes = 0;   // site transfer stats + replication bytes
  double delivered_bytes = 0;  // the flow manager's delivery ledger
};

void check_results_ledger(const ResultsLedgerSnapshot& snap,
                          std::vector<Violation>& out);

// --- (f) memory layout --------------------------------------------------

// Soundness of the flat hot structures (common/arena.h, common/interner.h,
// the slotted caches and CSR tables). Owners contribute their own
// findings — NodeArena::structural_defects(), StringInterner::self_check(),
// slot-aliasing scans of the flat tables — and the checker validates the
// arena accounting laws on top.
struct ArenaAccounting {
  std::string label;  // e.g. "flow-table arena"
  std::uint64_t total_allocations = 0;
  std::uint64_t live_allocations = 0;
  std::uint64_t freelist_hits = 0;
  std::uint64_t large_allocations = 0;
  std::uint64_t large_live = 0;
  std::size_t pages = 0;
  std::size_t page_bytes = 0;
  std::vector<std::string> defects;  // NodeArena::structural_defects()
};

struct MemoryLayoutSnapshot {
  std::string label;  // e.g. "run"
  std::size_t interner_symbols = 0;
  std::vector<std::string> interner_defects;  // StringInterner::self_check()
  std::vector<std::string> table_defects;     // SoA slot-aliasing findings
  std::vector<ArenaAccounting> arenas;
};

void check_memory_layout(const MemoryLayoutSnapshot& snap,
                         std::vector<Violation>& out);

}  // namespace wcs::audit
