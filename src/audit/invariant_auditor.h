// Runtime invariant auditor.
//
// The simulator keeps several pieces of redundant state for speed
// (incremental scheduler totals, a lazy-deletion event kernel, per-link
// byte counters); each is a conservation law that can silently drift
// under refactoring. The InvariantAuditor holds a registry of pluggable
// checkers that sweep the LIVE simulation — every N executed events and
// once at end-of-run — and abort with a full violation report the moment
// any law breaks (DESIGN.md § Invariants & static analysis).
//
// Enabling: GridConfig::audit defaults to default_enabled() — WCS_AUDIT=1
// or =0 in the environment wins, otherwise auditing is always on in Debug
// builds and off in Release. Benches expose it as --audit.
//
// Checkers are read-only over simulation state, so an audited run
// produces byte-identical results to an unaudited one.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace wcs::audit {

// One broken invariant, as reported by a checker. `checker` is the
// checker's slug (e.g. "flow-conservation"); `message` names the law,
// the observed values, and where they were observed.
struct Violation {
  std::string checker;
  std::string message;
};

// Thrown when a sweep finds violations; what() lists every one.
class AuditError final : public std::runtime_error {
 public:
  AuditError(const std::string& when, std::vector<Violation> violations);

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

 private:
  std::vector<Violation> violations_;
};

// Throws AuditError if `violations` is non-empty; no-op otherwise.
void throw_if_violations(const std::string& when,
                         std::vector<Violation> violations);

class InvariantAuditor {
 public:
  // A checker appends any violations it finds; it must not mutate the
  // simulation it inspects.
  using Checker = std::function<void(std::vector<Violation>&)>;

  void add_checker(std::string name, Checker fn);

  // Run every registered checker once and collect their reports.
  [[nodiscard]] std::vector<Violation> run_checks();

  // Run every checker and throw AuditError on any violation. `when`
  // labels the sweep in the report (e.g. "periodic sweep at t=3127s").
  void check(const std::string& when);

  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
  [[nodiscard]] std::size_t num_checkers() const { return checkers_.size(); }
  [[nodiscard]] std::vector<std::string> checker_names() const;

 private:
  struct Entry {
    std::string name;
    Checker fn;
  };

  std::vector<Entry> checkers_;
  std::uint64_t sweeps_ = 0;
};

// WCS_AUDIT=1/0 in the environment wins; otherwise on iff NDEBUG is not
// defined (Debug test runs audit by default).
[[nodiscard]] bool default_enabled();

}  // namespace wcs::audit
