#include "audit/checkers.h"

#include <cmath>
#include <sstream>

namespace wcs::audit {

namespace {

// Max-min rates are computed in doubles; allow relative dust on the
// capacity comparison but nothing that could hide a real oversubscription.
constexpr double kRateSlack = 1e-6;
// File sizes are integral byte counts summed in doubles (exact below
// 2^53), but flow remainders are fluid; allow sub-byte dust.
constexpr double kByteSlack = 0.5;

void report(std::vector<Violation>& out, const char* checker,
            const std::ostringstream& os) {
  out.push_back(Violation{checker, os.str()});
}

}  // namespace

void check_flow_conservation(const FlowAuditSnapshot& snap,
                             std::vector<Violation>& out) {
  for (const LinkUsage& l : snap.links) {
    const double slack = kRateSlack * std::max(1.0, l.capacity_bps);
    if (l.allocated_bps > l.capacity_bps + slack) {
      std::ostringstream os;
      os << "link " << l.name << " oversubscribed: " << l.flows
         << " flows allocated " << l.allocated_bps << " B/s of "
         << l.capacity_bps << " B/s capacity";
      report(out, "flow-conservation", os);
    }
    if (l.allocated_bps < 0) {
      std::ostringstream os;
      os << "link " << l.name << " has negative allocation "
         << l.allocated_bps << " B/s";
      report(out, "flow-conservation", os);
    }
  }

  double in_flight = 0;
  for (const FlowProgress& f : snap.flows) {
    if (f.remaining_bytes < -kByteSlack ||
        f.remaining_bytes > f.total_bytes + kByteSlack) {
      std::ostringstream os;
      os << "flow " << f.id << " byte accounting broken: remaining "
         << f.remaining_bytes << " outside [0, " << f.total_bytes << "]";
      report(out, "flow-conservation", os);
    }
    if (f.rate_bps < 0 || (!f.active && f.rate_bps != 0)) {
      std::ostringstream os;
      os << "flow " << f.id << " has invalid rate " << f.rate_bps
         << " B/s (active=" << f.active << ")";
      report(out, "flow-conservation", os);
    }
    in_flight += f.total_bytes - std::max(0.0, f.remaining_bytes);
  }

  // Delivered + currently-moving bytes can never exceed what was started
  // (cancelled flows keep their already-moved bytes out of `delivered`).
  if (snap.bytes_delivered + in_flight > snap.bytes_started + kByteSlack) {
    std::ostringstream os;
    os << "flow ledger out of balance: delivered " << snap.bytes_delivered
       << " B + in-flight " << in_flight << " B exceeds started "
       << snap.bytes_started << " B (" << snap.flows_completed
       << " completed, " << snap.flows_cancelled << " cancelled)";
    report(out, "flow-conservation", os);
  }
}

void check_flow_rates(const FlowRatesSnapshot& snap,
                      std::vector<Violation>& out) {
  for (const FlowRateEntry& f : snap.flows) {
    // Bitwise equality, not a tolerance: the incremental reallocation
    // replays the exact FP operation sequence of the full recompute, so
    // any difference at all means the dirty set missed a flow.
    if (f.stored_bps != f.recomputed_bps) {
      std::ostringstream os;
      os.precision(17);
      os << snap.label << " flow " << f.id << " incremental rate "
         << f.stored_bps << " B/s != from-scratch recompute "
         << f.recomputed_bps << " B/s (dirty-component reallocation drifted)";
      report(out, "flow-rates", os);
    }
  }
}

void check_cache_coherence(const CacheAuditSnapshot& snap,
                           std::vector<Violation>& out) {
  if (snap.occupancy > snap.capacity) {
    std::ostringstream os;
    os << snap.label << " over capacity: " << snap.occupancy
       << " resident files > capacity " << snap.capacity;
    report(out, "cache-coherence", os);
  }
  if (snap.pinned > snap.occupancy) {
    std::ostringstream os;
    os << snap.label << " pins " << snap.pinned << " files but only "
       << snap.occupancy << " are resident";
    report(out, "cache-coherence", os);
  }
  for (const std::string& defect : snap.structural) {
    std::ostringstream os;
    os << snap.label << " eviction structure unsound: " << defect;
    report(out, "cache-coherence", os);
  }
}

void check_block_store(const BlockStoreAuditSnapshot& snap,
                       std::vector<Violation>& out) {
  if (snap.physical_blocks != snap.recount_physical) {
    std::ostringstream os;
    os << snap.label << " physical-block counter " << snap.physical_blocks
       << " != extent-union recount " << snap.recount_physical;
    report(out, "block-store", os);
  }
  if (snap.pinned_blocks != snap.recount_pinned) {
    std::ostringstream os;
    os << snap.label << " pinned-block counter " << snap.pinned_blocks
       << " != pinned extent-union recount " << snap.recount_pinned;
    report(out, "block-store", os);
  }
  if (snap.pinned_blocks > snap.physical_blocks) {
    std::ostringstream os;
    os << snap.label << " pins " << snap.pinned_blocks
       << " blocks but only " << snap.physical_blocks << " are physical";
    report(out, "block-store", os);
  }
  if (snap.physical_blocks > snap.capacity_blocks) {
    std::ostringstream os;
    os << snap.label << " over capacity: " << snap.physical_blocks
       << " physical blocks > capacity " << snap.capacity_blocks;
    report(out, "block-store", os);
  }
  // Ref conservation: the deduplicated union can never exceed the
  // per-file sum of extent sizes (shared blocks only shrink it).
  if (snap.recount_physical > snap.file_block_refs) {
    std::ostringstream os;
    os << snap.label << " union of resident extents ("
       << snap.recount_physical << " blocks) exceeds the per-file block "
       << "sum (" << snap.file_block_refs << ") — refcount books broken";
    report(out, "block-store", os);
  }
  for (const std::string& defect : snap.structural) {
    std::ostringstream os;
    os << snap.label << " page books unsound: " << defect;
    report(out, "block-store", os);
  }
}

void check_index_coherence(const IndexTotalsSnapshot& snap,
                           std::vector<Violation>& out) {
  // total_ref is exact integer arithmetic on both sides; total_rest is a
  // sum of 1/m terms whose addition order differs between the histogram
  // and the scan, so it gets a relative tolerance.
  if (snap.incremental_ref != snap.scanned_ref) {
    std::ostringstream os;
    os << snap.label << " incremental totalRef " << snap.incremental_ref
       << " != full recompute " << snap.scanned_ref
       << " (SiteIndex drifted from the cache)";
    report(out, "index-coherence", os);
  }
  const double tol =
      1e-9 * std::max(1.0, std::abs(snap.scanned_rest));
  if (std::abs(snap.incremental_rest - snap.scanned_rest) > tol) {
    std::ostringstream os;
    os << snap.label << " incremental totalRest " << snap.incremental_rest
       << " != full recompute " << snap.scanned_rest
       << " (missing-count histogram drifted)";
    report(out, "index-coherence", os);
  }
}

void check_sharded_index(const ShardedIndexSnapshot& snap,
                         std::vector<Violation>& out) {
  if (snap.indexed != snap.expected) {
    std::ostringstream os;
    os << snap.label << " holds " << snap.indexed
       << " entries but the brute-force rescan finds " << snap.expected
       << " schedulable tasks";
    report(out, "sharded-index", os);
  }
  for (const std::string& defect : snap.defects) {
    std::ostringstream os;
    os << snap.label << ": " << defect;
    report(out, "sharded-index", os);
  }
}

void check_task_lifecycle(const TaskLifecycleSnapshot& snap,
                          std::vector<Violation>& out) {
  if (snap.completions.size() != snap.num_tasks) {
    std::ostringstream os;
    os << "completion ledger covers " << snap.completions.size()
       << " tasks but the job has " << snap.num_tasks;
    report(out, "task-lifecycle", os);
    return;
  }

  std::size_t total = 0;
  for (std::size_t t = 0; t < snap.completions.size(); ++t) {
    const std::uint32_t n = snap.completions[t];
    total += n;
    if (n > 1) {
      std::ostringstream os;
      os << "task " << t << " completed " << n
         << " times (must complete exactly once)";
      report(out, "task-lifecycle", os);
    } else if (snap.at_drain && n == 0) {
      std::ostringstream os;
      os << "task " << t << " never completed — lost at drain";
      report(out, "task-lifecycle", os);
    }
  }
  if (total != snap.completed_count) {
    std::ostringstream os;
    os << "completed-task counter " << snap.completed_count
       << " != observed completions " << total;
    report(out, "task-lifecycle", os);
  }
  for (const std::string& defect : snap.placement_defects)
    out.push_back(Violation{"task-lifecycle", defect});
}

void check_tenant_accounting(const TenantAccountingSnapshot& snap,
                             std::vector<Violation>& out) {
  std::uint64_t sum_tasks = 0;
  std::uint64_t sum_assigned = 0;
  std::uint64_t sum_completions = 0;
  for (const TenantAccounting& t : snap.tenants) {
    sum_tasks += t.tasks;
    sum_assigned += t.assigned;
    sum_completions += t.completions;
    if (t.arrived > t.tasks) {
      std::ostringstream os;
      os << "tenant " << t.name << ": " << t.arrived << " arrivals for "
         << t.tasks << " tasks";
      report(out, "tenant-accounting", os);
    }
    if (t.completions > t.arrived) {
      std::ostringstream os;
      os << "tenant " << t.name << ": " << t.completions
         << " completions but only " << t.arrived << " arrivals";
      report(out, "tenant-accounting", os);
    }
    if (t.assigned != t.completions + t.cancelled + t.live) {
      std::ostringstream os;
      os << "tenant " << t.name << ": assigned " << t.assigned
         << " != completions " << t.completions << " + cancelled "
         << t.cancelled << " + live " << t.live;
      report(out, "tenant-accounting", os);
    }
    if (snap.at_drain) {
      if (t.arrived != t.tasks) {
        std::ostringstream os;
        os << "tenant " << t.name << ": " << t.tasks - t.arrived
           << " tasks never arrived at drain";
        report(out, "tenant-accounting", os);
      }
      if (t.completions != t.tasks) {
        std::ostringstream os;
        os << "tenant " << t.name << ": " << t.completions << " of "
           << t.tasks << " tasks completed at drain";
        report(out, "tenant-accounting", os);
      }
      if (t.live != 0) {
        std::ostringstream os;
        os << "tenant " << t.name << ": " << t.live
           << " instances still placed at drain";
        report(out, "tenant-accounting", os);
      }
    }
  }
  if (sum_tasks != snap.total_tasks) {
    std::ostringstream os;
    os << "tenant task counts sum to " << sum_tasks << " but the job has "
       << snap.total_tasks;
    report(out, "tenant-accounting", os);
  }
  if (sum_assigned != snap.total_assignments) {
    std::ostringstream os;
    os << "tenant assignment ledgers sum to " << sum_assigned
       << " != engine assignment counter " << snap.total_assignments;
    report(out, "tenant-accounting", os);
  }
  if (sum_completions != snap.total_completions) {
    std::ostringstream os;
    os << "tenant completion ledgers sum to " << sum_completions
       << " != engine completion counter " << snap.total_completions;
    report(out, "tenant-accounting", os);
  }
}

void check_event_kernel(const EventKernelSnapshot& snap,
                        std::vector<Violation>& out) {
  if (snap.now < snap.previous_now) {
    std::ostringstream os;
    os << "simulated time ran backwards: now " << snap.now
       << "s < previous sweep " << snap.previous_now << "s";
    report(out, "event-kernel", os);
  }
  if (snap.live_count != snap.recount_live) {
    std::ostringstream os;
    os << "live-event counter " << snap.live_count
       << " != recount of per-event states " << snap.recount_live
       << " (lazy-deletion bookkeeping drifted)";
    report(out, "event-kernel", os);
  }
  const std::uint64_t accounted = snap.recount_live + snap.recount_cancelled +
                                  snap.recount_fired;
  if (accounted != snap.scheduled_total) {
    std::ostringstream os;
    os << "event states unaccounted: live " << snap.recount_live
       << " + cancelled " << snap.recount_cancelled << " + fired "
       << snap.recount_fired << " != " << snap.scheduled_total
       << " events ever scheduled";
    report(out, "event-kernel", os);
  }
}

void check_results_ledger(const ResultsLedgerSnapshot& snap,
                          std::vector<Violation>& out) {
  if (snap.makespan_s != snap.max_completion_s) {
    std::ostringstream os;
    os << "reported makespan " << snap.makespan_s
       << "s != max task completion time " << snap.max_completion_s << "s";
    report(out, "results-ledger", os);
  }
  if (snap.tasks_completed != snap.num_tasks) {
    std::ostringstream os;
    os << "result reports " << snap.tasks_completed << " completed tasks of "
       << snap.num_tasks;
    report(out, "results-ledger", os);
  }
  if (std::abs(snap.reported_bytes - snap.delivered_bytes) > kByteSlack) {
    std::ostringstream os;
    os << "transferred-byte totals diverge: metrics report "
       << snap.reported_bytes << " B but the flow ledger delivered "
       << snap.delivered_bytes << " B";
    report(out, "results-ledger", os);
  }
}

void check_memory_layout(const MemoryLayoutSnapshot& snap,
                         std::vector<Violation>& out) {
  for (const std::string& defect : snap.interner_defects) {
    std::ostringstream os;
    os << snap.label << " interner (" << snap.interner_symbols
       << " symbols): " << defect;
    report(out, "memory-layout", os);
  }
  for (const std::string& defect : snap.table_defects) {
    std::ostringstream os;
    os << snap.label << ": " << defect;
    report(out, "memory-layout", os);
  }
  for (const ArenaAccounting& a : snap.arenas) {
    for (const std::string& defect : a.defects) {
      std::ostringstream os;
      os << snap.label << " " << a.label << ": " << defect;
      report(out, "memory-layout", os);
    }
    if (a.live_allocations > a.total_allocations) {
      std::ostringstream os;
      os << snap.label << " " << a.label << ": " << a.live_allocations
         << " live allocations exceed " << a.total_allocations
         << " ever made";
      report(out, "memory-layout", os);
    }
    if (a.large_live > a.large_allocations) {
      std::ostringstream os;
      os << snap.label << " " << a.label << ": " << a.large_live
         << " live large blocks exceed " << a.large_allocations
         << " ever made";
      report(out, "memory-layout", os);
    }
    if (a.freelist_hits > a.total_allocations) {
      std::ostringstream os;
      os << snap.label << " " << a.label << ": " << a.freelist_hits
         << " freelist hits exceed " << a.total_allocations
         << " allocations (each hit is one allocation)";
      report(out, "memory-layout", os);
    }
    // Small-object storage cannot outgrow the page pool: every live
    // small block occupies at least kAlign bytes of some page.
    const std::uint64_t small_live = a.live_allocations - a.large_live;
    const std::uint64_t reserved =
        static_cast<std::uint64_t>(a.pages) * a.page_bytes;
    if (small_live * 16 > reserved) {
      std::ostringstream os;
      os << snap.label << " " << a.label << ": " << small_live
         << " live small blocks cannot fit the " << reserved
         << " bytes of pooled pages";
      report(out, "memory-layout", os);
    }
  }
}

}  // namespace wcs::audit
