#include "storage/file_cache.h"

#include <limits>
#include <sstream>
#include <utility>

namespace wcs::storage {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kMinRef: return "minref";
  }
  return "?";
}

void FileCache::link_back(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.prev = tail_;
  s.next = kNullSlot;
  if (tail_ != kNullSlot) {
    slots_[tail_].next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
}

void FileCache::unlink(std::uint32_t idx) {
  Slot& s = slots_[idx];
  if (s.prev != kNullSlot) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNullSlot) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  s.prev = s.next = kNullSlot;
}

void FileCache::record_access(FileId f) {
  WCS_CHECK_MSG(contains(f), "access to absent file " << f);
  Slot& s = slots_[f.value()];
  ++s.refs;
  if (policy_ == EvictionPolicy::kLru) {
    unlink(f.value());
    link_back(f.value());
  }
  notify(CacheEvent::kAccessed, f);
}

void FileCache::insert(FileId f) {
  WCS_CHECK_MSG(!contains(f), "file " << f << " already cached");
  Slot& s = slot(f);  // may grow the table; keep the reference local
  while (resident_count_ >= capacity_) evict_one();
  WCS_DCHECK(s.pins == 0);
  s.resident = 1;
  link_back(f.value());
  ++resident_count_;
  notify(CacheEvent::kAdded, f);
}

bool FileCache::has_insert_room() const {
  return resident_count_ < capacity_ ||
         pinned_resident_count_ < resident_count_;
}

bool FileCache::try_insert(FileId f) {
  if (!has_insert_room()) return false;
  insert(f);
  return true;
}

FileId FileCache::pick_victim() const {
  FileId victim = FileId::invalid();
  if (policy_ == EvictionPolicy::kMinRef) {
    // Min (refs, id) over resident unpinned files — a strict total
    // order, so the victim is independent of scan order. O(n); MinRef
    // is an ablation policy, not a hot default.
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
      const Slot& s = slots_[i];
      if (s.pins > 0) continue;
      FileId f(i);
      std::size_t r = s.refs;
      if (r < best || (r == best && (!victim.valid() || f < victim))) {
        best = r;
        victim = f;
      }
    }
  } else {
    for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
      if (slots_[i].pins == 0) {
        victim = FileId(i);
        break;
      }
    }
  }
  return victim;
}

void FileCache::evict_one() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kCacheEviction);
  FileId victim = pick_victim();
  WCS_CHECK_MSG(victim.valid(),
                "cache full of pinned files (capacity " << capacity_
                << ") — capacity must cover the concurrent working set");
  Slot& s = slots_[victim.value()];
  unlink(victim.value());
  s.resident = 0;
  --resident_count_;
  ++evictions_;
  if (tracer_ && now_fn_) {
    obs::TraceSpan span;
    span.start = now_fn_();
    span.kind = obs::SpanKind::kEviction;
    span.track = obs_track_;
    tracer_->record(span);
  }
  notify(CacheEvent::kEvicted, victim);
}

void FileCache::pin(FileId f) {
  WCS_CHECK_MSG(contains(f), "pin of absent file " << f);
  Slot& s = slots_[f.value()];
  if (s.pins++ == 0) ++pinned_resident_count_;
}

void FileCache::unpin(FileId f) {
  WCS_CHECK_MSG(contains(f), "unpin of absent file " << f);
  Slot& s = slots_[f.value()];
  WCS_CHECK_MSG(s.pins > 0, "unpin of unpinned file " << f);
  if (--s.pins == 0) --pinned_resident_count_;
}

bool FileCache::pinned(FileId f) const {
  WCS_CHECK_MSG(contains(f), "pinned() on absent file " << f);
  return slots_[f.value()].pins > 0;
}

audit::CacheAuditSnapshot FileCache::audit_snapshot(std::string label) const {
  audit::CacheAuditSnapshot snap;
  snap.label = std::move(label);
  snap.capacity = capacity_;
  snap.occupancy = resident_count_;
  // Full recount of the slot table against the incremental counters
  // and the intrusive eviction order.
  std::size_t resident = 0;
  std::size_t pinned_files = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.resident) {
      if (s.prev != kNullSlot || s.next != kNullSlot || i == head_) {
        std::ostringstream os;
        os << "file " << i << " is linked into the eviction order but "
           << "not resident";
        snap.structural.push_back(os.str());
      }
      if (s.pins != 0) {
        std::ostringstream os;
        os << "file " << i << " is pinned but not resident";
        snap.structural.push_back(os.str());
      }
      continue;
    }
    ++resident;
    if (s.pins > 0) {
      ++snap.pinned;
      ++pinned_files;
    }
  }
  if (resident != resident_count_) {
    std::ostringstream os;
    os << "slot table holds " << resident << " resident files but the "
       << "cache counts " << resident_count_;
    snap.structural.push_back(os.str());
  }
  if (pinned_files != pinned_resident_count_) {
    std::ostringstream os;
    os << "slot table holds " << pinned_files
       << " pinned files but the cache counts " << pinned_resident_count_;
    snap.structural.push_back(os.str());
  }
  // Walk the eviction order; every resident slot must appear exactly
  // once and the links must round-trip. Bound the walk so a cycle
  // cannot hang the auditor.
  std::size_t walked = 0;
  std::uint32_t prev = kNullSlot;
  for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
    if (++walked > resident_count_) {
      snap.structural.push_back(
          "eviction order is longer than the resident count (cycle?)");
      break;
    }
    if (!slots_[i].resident) {
      std::ostringstream os;
      os << "file " << i << " is in the eviction order but not resident";
      snap.structural.push_back(os.str());
    }
    if (slots_[i].prev != prev) {
      std::ostringstream os;
      os << "file " << i << " order position does not round-trip";
      snap.structural.push_back(os.str());
    }
    prev = i;
  }
  if (walked != resident_count_ && snap.structural.empty()) {
    std::ostringstream os;
    os << "eviction order holds " << walked << " files but "
       << resident_count_ << " are resident";
    snap.structural.push_back(os.str());
  }
  if (tail_ != prev) {
    snap.structural.push_back("eviction order tail does not round-trip");
  }
  return snap;
}

std::vector<FileId> FileCache::contents() const {
  std::vector<FileId> out;
  out.reserve(resident_count_);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].resident)
      out.push_back(FileId(static_cast<FileId::underlying_type>(i)));
  return out;
}

}  // namespace wcs::storage
