#include "storage/file_cache.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

namespace wcs::storage {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kMinRef: return "minref";
  }
  return "?";
}

void FileCache::link_back(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.prev = tail_;
  s.next = kNullSlot;
  if (tail_ != kNullSlot) {
    slots_[tail_].next = idx;
  } else {
    head_ = idx;
  }
  tail_ = idx;
}

void FileCache::unlink(std::uint32_t idx) {
  Slot& s = slots_[idx];
  if (s.prev != kNullSlot) {
    slots_[s.prev].next = s.next;
  } else {
    head_ = s.next;
  }
  if (s.next != kNullSlot) {
    slots_[s.next].prev = s.prev;
  } else {
    tail_ = s.prev;
  }
  s.prev = s.next = kNullSlot;
}

void FileCache::record_access(FileId f) {
  WCS_CHECK_MSG(contains(f), "access to absent file " << f);
  Slot& s = slots_[f.value()];
  ++s.refs;
  if (policy_ == EvictionPolicy::kLru) {
    unlink(f.value());
    link_back(f.value());
  }
  notify(CacheEvent::kAccessed, f);
}

void FileCache::attach_block_store(const BlockMap* map) {
  WCS_CHECK(map != nullptr);
  WCS_CHECK_MSG(resident_count_ == 0,
                "attach_block_store on a non-empty cache");
  blocks_ = map;
  capacity_blocks_ =
      static_cast<std::uint64_t>(capacity_) * map->blocks_per_file_max();
}

std::uint64_t FileCache::covered_blocks(FileId f, bool pinned_only) const {
  const std::uint32_t n = blocks_->blocks(f);
  if (!blocks_->shared()) return 0;  // disjoint extents never overlap
  const std::uint32_t stride = blocks_->stride();
  const std::uint32_t span = blocks_->neighbour_span();
  const std::size_t num_files = blocks_->num_files();
  auto qualifies = [&](std::uint32_t id) {
    if (id >= slots_.size() || !slots_[id].resident) return false;
    return !pinned_only || slots_[id].pins > 0;
  };
  // Nearest qualifying neighbour on each side gives the maximal cover:
  // extents all have length n, so a closer neighbour's extent strictly
  // contains the overlap any farther one contributes.
  std::uint64_t left = 0;   // prefix of f's extent covered from below
  std::uint64_t right = 0;  // suffix covered from above
  for (std::uint32_t j = 1; j <= span; ++j) {
    if (f.value() >= j && qualifies(f.value() - j)) {
      left = n - static_cast<std::uint64_t>(j) * stride;
      break;
    }
  }
  for (std::uint32_t j = 1; j <= span; ++j) {
    if (f.value() + j < num_files && qualifies(f.value() + j)) {
      right = n - static_cast<std::uint64_t>(j) * stride;
      break;
    }
  }
  return std::min<std::uint64_t>(n, left + right);
}

std::uint64_t FileCache::exclusive_blocks(FileId f, bool pinned_only) const {
  return blocks_->blocks(f) - covered_blocks(f, pinned_only);
}

Bytes FileCache::missing_bytes(FileId f) const {
  WCS_CHECK(blocks_ != nullptr);
  if (contains(f)) return 0;
  const std::uint64_t missing = exclusive_blocks(f, /*pinned_only=*/false);
  if (!blocks_->shared()) {
    // Disjoint extents: an absent file misses its whole (exact) size.
    return blocks_->file_bytes(f);
  }
  return missing * blocks_->block_size();
}

Bytes FileCache::file_bytes(FileId f) const {
  WCS_CHECK(blocks_ != nullptr);
  return blocks_->file_bytes(f);
}

void FileCache::insert(FileId f) {
  WCS_CHECK_MSG(!contains(f), "file " << f << " already cached");
  Slot& s = slot(f);  // may grow the table; keep the reference local
  if (blocks_ != nullptr) {
    // Evict until f's uncovered blocks fit. Evicting can uncover blocks
    // f shares with the victim, so the need is re-derived per round; the
    // victim leaves the resident set each time, so the loop is finite.
    std::uint64_t need = exclusive_blocks(f, /*pinned_only=*/false);
    while (physical_blocks_ + need > capacity_blocks_) {
      evict_one();
      need = exclusive_blocks(f, /*pinned_only=*/false);
    }
    physical_blocks_ += need;
  } else {
    while (resident_count_ >= capacity_) evict_one();
  }
  WCS_DCHECK(s.pins == 0);
  s.resident = 1;
  link_back(f.value());
  ++resident_count_;
  notify(CacheEvent::kAdded, f);
}

bool FileCache::has_insert_room(FileId f) const {
  if (blocks_ != nullptr) {
    // Worst case, every unpinned resident is evicted: what remains
    // physical is exactly the union of pinned extents, and the blocks of
    // f still covered are those under a pinned neighbour. insert(f)
    // succeeds iff that end state fits, since its eviction loop stops at
    // or before it.
    return pinned_blocks_ + exclusive_blocks(f, /*pinned_only=*/true) <=
           capacity_blocks_;
  }
  return resident_count_ < capacity_ ||
         pinned_resident_count_ < resident_count_;
}

bool FileCache::try_insert(FileId f) {
  if (!has_insert_room(f)) return false;
  insert(f);
  return true;
}

FileId FileCache::pick_victim() const {
  FileId victim = FileId::invalid();
  if (policy_ == EvictionPolicy::kMinRef) {
    // Min (refs, id) over resident unpinned files — a strict total
    // order, so the victim is independent of scan order. O(n); MinRef
    // is an ablation policy, not a hot default.
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
      const Slot& s = slots_[i];
      if (s.pins > 0) continue;
      FileId f(i);
      std::size_t r = s.refs;
      if (r < best || (r == best && (!victim.valid() || f < victim))) {
        best = r;
        victim = f;
      }
    }
  } else {
    for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
      if (slots_[i].pins == 0) {
        victim = FileId(i);
        break;
      }
    }
  }
  return victim;
}

void FileCache::evict_one() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kCacheEviction);
  FileId victim = pick_victim();
  WCS_CHECK_MSG(victim.valid(),
                "cache full of pinned files (capacity " << capacity_
                << ") — capacity must cover the concurrent working set");
  Slot& s = slots_[victim.value()];
  if (blocks_ != nullptr) {
    // Only the blocks no other resident covers become free (neighbour
    // scan never consults the victim itself, so compute before the
    // residency bit drops).
    physical_blocks_ -= exclusive_blocks(victim, /*pinned_only=*/false);
  }
  unlink(victim.value());
  s.resident = 0;
  --resident_count_;
  ++evictions_;
  if (tracer_ && now_fn_) {
    obs::TraceSpan span;
    span.start = now_fn_();
    span.kind = obs::SpanKind::kEviction;
    span.track = obs_track_;
    tracer_->record(span);
  }
  notify(CacheEvent::kEvicted, victim);
}

void FileCache::pin(FileId f) {
  WCS_CHECK_MSG(contains(f), "pin of absent file " << f);
  Slot& s = slots_[f.value()];
  if (s.pins++ == 0) {
    ++pinned_resident_count_;
    if (blocks_ != nullptr)
      pinned_blocks_ += exclusive_blocks(f, /*pinned_only=*/true);
  }
}

void FileCache::unpin(FileId f) {
  WCS_CHECK_MSG(contains(f), "unpin of absent file " << f);
  Slot& s = slots_[f.value()];
  WCS_CHECK_MSG(s.pins > 0, "unpin of unpinned file " << f);
  if (--s.pins == 0) {
    --pinned_resident_count_;
    if (blocks_ != nullptr)
      pinned_blocks_ -= exclusive_blocks(f, /*pinned_only=*/true);
  }
}

bool FileCache::pinned(FileId f) const {
  WCS_CHECK_MSG(contains(f), "pinned() on absent file " << f);
  return slots_[f.value()].pins > 0;
}

audit::CacheAuditSnapshot FileCache::audit_snapshot(std::string label) const {
  audit::CacheAuditSnapshot snap;
  snap.label = std::move(label);
  snap.capacity = capacity_;
  snap.occupancy = resident_count_;
  // Full recount of the slot table against the incremental counters
  // and the intrusive eviction order.
  std::size_t resident = 0;
  std::size_t pinned_files = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.resident) {
      if (s.prev != kNullSlot || s.next != kNullSlot || i == head_) {
        std::ostringstream os;
        os << "file " << i << " is linked into the eviction order but "
           << "not resident";
        snap.structural.push_back(os.str());
      }
      if (s.pins != 0) {
        std::ostringstream os;
        os << "file " << i << " is pinned but not resident";
        snap.structural.push_back(os.str());
      }
      continue;
    }
    ++resident;
    if (s.pins > 0) {
      ++snap.pinned;
      ++pinned_files;
    }
  }
  if (resident != resident_count_) {
    std::ostringstream os;
    os << "slot table holds " << resident << " resident files but the "
       << "cache counts " << resident_count_;
    snap.structural.push_back(os.str());
  }
  if (pinned_files != pinned_resident_count_) {
    std::ostringstream os;
    os << "slot table holds " << pinned_files
       << " pinned files but the cache counts " << pinned_resident_count_;
    snap.structural.push_back(os.str());
  }
  // Walk the eviction order; every resident slot must appear exactly
  // once and the links must round-trip. Bound the walk so a cycle
  // cannot hang the auditor.
  std::size_t walked = 0;
  std::uint32_t prev = kNullSlot;
  for (std::uint32_t i = head_; i != kNullSlot; i = slots_[i].next) {
    if (++walked > resident_count_) {
      snap.structural.push_back(
          "eviction order is longer than the resident count (cycle?)");
      break;
    }
    if (!slots_[i].resident) {
      std::ostringstream os;
      os << "file " << i << " is in the eviction order but not resident";
      snap.structural.push_back(os.str());
    }
    if (slots_[i].prev != prev) {
      std::ostringstream os;
      os << "file " << i << " order position does not round-trip";
      snap.structural.push_back(os.str());
    }
    prev = i;
  }
  if (walked != resident_count_ && snap.structural.empty()) {
    std::ostringstream os;
    os << "eviction order holds " << walked << " files but "
       << resident_count_ << " are resident";
    snap.structural.push_back(os.str());
  }
  if (tail_ != prev) {
    snap.structural.push_back("eviction order tail does not round-trip");
  }
  return snap;
}

audit::BlockStoreAuditSnapshot FileCache::block_audit_snapshot(
    std::string label) const {
  WCS_CHECK(blocks_ != nullptr);
  audit::BlockStoreAuditSnapshot snap;
  snap.label = std::move(label);
  snap.capacity_blocks = capacity_blocks_;
  snap.physical_blocks = physical_blocks_;
  snap.pinned_blocks = pinned_blocks_;
  // From-scratch recount: resident extents in ascending id order are
  // sorted by first block, so the union is one forward sweep.
  std::uint64_t physical_end = 0;  // exclusive end of the union so far
  std::uint64_t pinned_end = 0;
  bool physical_any = false;
  bool pinned_any = false;
  auto accumulate = [](std::uint64_t& total, std::uint64_t& end, bool& any,
                       const BlockMap::Extent& e) {
    const std::uint64_t begin =
        any ? std::max(e.first, end) : e.first;
    const std::uint64_t stop = e.first + e.count;
    if (stop > begin) total += stop - begin;
    end = any ? std::max(end, stop) : stop;
    any = true;
  };
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.resident) continue;
    const BlockMap::Extent e =
        blocks_->extent(FileId(static_cast<FileId::underlying_type>(i)));
    snap.file_block_refs += e.count;
    accumulate(snap.recount_physical, physical_end, physical_any, e);
    if (s.pins > 0)
      accumulate(snap.recount_pinned, pinned_end, pinned_any, e);
  }
  return snap;
}

std::vector<FileId> FileCache::contents() const {
  std::vector<FileId> out;
  out.reserve(resident_count_);
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].resident)
      out.push_back(FileId(static_cast<FileId::underlying_type>(i)));
  return out;
}

}  // namespace wcs::storage
