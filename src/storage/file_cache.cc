#include "storage/file_cache.h"

#include <limits>
#include <sstream>
#include <utility>

namespace wcs::storage {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kFifo: return "fifo";
    case EvictionPolicy::kMinRef: return "minref";
  }
  return "?";
}

void FileCache::record_access(FileId f) {
  auto it = entries_.find(f);
  WCS_CHECK_MSG(it != entries_.end(), "access to absent file " << f);
  ++ref_counts_[f];
  if (policy_ == EvictionPolicy::kLru)
    order_.splice(order_.end(), order_, it->second.order_it);
  notify(CacheEvent::kAccessed, f);
}

void FileCache::insert(FileId f) {
  WCS_CHECK_MSG(!contains(f), "file " << f << " already cached");
  while (entries_.size() >= capacity_) evict_one();
  Entry e;
  e.order_it = order_.insert(order_.end(), f);
  entries_.emplace(f, e);
  notify(CacheEvent::kAdded, f);
}

bool FileCache::has_insert_room() const {
  if (entries_.size() < capacity_) return true;
  for (const auto& [f, e] : entries_)
    if (e.pin_count == 0) return true;
  return false;
}

bool FileCache::try_insert(FileId f) {
  if (!has_insert_room()) return false;
  insert(f);
  return true;
}

void FileCache::evict_one() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kCacheEviction);
  FileId victim = FileId::invalid();
  if (policy_ == EvictionPolicy::kMinRef) {
    // O(n) scan over resident unpinned files; MinRef is an ablation
    // policy, not a hot default.
    std::size_t best = std::numeric_limits<std::size_t>::max();
    for (const auto& [f, e] : entries_) {
      if (e.pin_count > 0) continue;
      std::size_t r = ref_count(f);
      if (r < best || (r == best && (!victim.valid() || f < victim))) {
        best = r;
        victim = f;
      }
    }
  } else {
    for (FileId f : order_) {
      if (entries_.at(f).pin_count == 0) {
        victim = f;
        break;
      }
    }
  }
  WCS_CHECK_MSG(victim.valid(),
                "cache full of pinned files (capacity " << capacity_
                << ") — capacity must cover the concurrent working set");
  auto it = entries_.find(victim);
  order_.erase(it->second.order_it);
  entries_.erase(it);
  ++evictions_;
  if (tracer_ && now_fn_) {
    obs::TraceSpan span;
    span.start = now_fn_();
    span.kind = obs::SpanKind::kEviction;
    span.track = obs_track_;
    tracer_->record(span);
  }
  notify(CacheEvent::kEvicted, victim);
}

void FileCache::pin(FileId f) {
  auto it = entries_.find(f);
  WCS_CHECK_MSG(it != entries_.end(), "pin of absent file " << f);
  ++it->second.pin_count;
}

void FileCache::unpin(FileId f) {
  auto it = entries_.find(f);
  WCS_CHECK_MSG(it != entries_.end(), "unpin of absent file " << f);
  WCS_CHECK_MSG(it->second.pin_count > 0, "unpin of unpinned file " << f);
  --it->second.pin_count;
}

bool FileCache::pinned(FileId f) const {
  auto it = entries_.find(f);
  WCS_CHECK_MSG(it != entries_.end(), "pinned() on absent file " << f);
  return it->second.pin_count > 0;
}

audit::CacheAuditSnapshot FileCache::audit_snapshot(std::string label) const {
  audit::CacheAuditSnapshot snap;
  snap.label = std::move(label);
  snap.occupancy = entries_.size();
  snap.capacity = capacity_;
  for (const auto& [f, e] : entries_)
    if (e.pin_count > 0) ++snap.pinned;

  // Structural soundness of the eviction order: order_ and entries_ must
  // describe the same resident set, and every entry's stored position
  // must round-trip (all three policies keep order_ populated; MinRef
  // merely ignores it when choosing a victim).
  if (order_.size() != entries_.size()) {
    std::ostringstream os;
    os << "eviction order holds " << order_.size() << " files but "
       << entries_.size() << " are resident";
    snap.structural.push_back(os.str());
  }
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    auto entry = entries_.find(*it);
    if (entry == entries_.end()) {
      std::ostringstream os;
      os << "file " << *it << " is in the eviction order but not resident";
      snap.structural.push_back(os.str());
      continue;
    }
    if (entry->second.order_it != it) {
      std::ostringstream os;
      os << "file " << *it << " order position does not round-trip";
      snap.structural.push_back(os.str());
    }
  }
  return snap;
}

std::vector<FileId> FileCache::contents() const {
  std::vector<FileId> out;
  out.reserve(entries_.size());
  for (const auto& [f, e] : entries_) out.push_back(f);
  return out;
}

}  // namespace wcs::storage
