#include "storage/data_server.h"

#include <algorithm>

namespace wcs::storage {

void DataServer::request_batch(TaskId task, WorkerId worker,
                               std::span<const FileId> files,
                               BatchCallback done) {
  WCS_CHECK_MSG(!files.empty(), "empty batch for task " << task);
  WCS_CHECK_MSG(files.size() <= cache_.capacity(),
                "task " << task << " needs " << files.size()
                        << " files but the data server holds only "
                        << cache_.capacity());
  auto batch = std::make_unique<Batch>();
  batch->task = task;
  batch->worker = worker;
  batch->files.assign(files.begin(), files.end());
  batch->done = std::move(done);
  batch->enqueued = sim_.now();
  queue_.push_back(std::move(batch));
  serve_next();
}

void DataServer::serve_next() {
  if (current_ || queue_.empty()) return;
  current_ = std::move(queue_.front());
  queue_.pop_front();
  current_->service_start = sim_.now();
  stats_.waiting_s += sim_.now() - current_->enqueued;
  continue_batch();
}

void DataServer::continue_batch() {
  Batch& b = *current_;
  while (b.next_index < b.files.size()) {
    FileId f = b.files[b.next_index];
    if (cache_.contains(f)) {
      cache_.record_access(f);
      cache_.pin(f);
      b.pinned.push_back(f);
      ++b.next_index;
      ++stats_.cache_hits;
      continue;
    }
    // Miss: fetch from the external file server; the batch blocks until
    // the file lands (files within a batch are fetched sequentially, as
    // the serial data server implies).
    b.in_flight = flows_.start_flow(
        file_server_node_, node_, catalog_.size(f),
        [this, f](FlowId) { on_file_arrived(f); });
    return;
  }

  // Batch complete: hand pins over to the executing-task ledger and
  // notify the worker.
  stats_.transfer_s += sim_.now() - b.service_start;
  ++stats_.batches_served;
  BatchKey key{b.task, b.worker};
  auto [it, inserted] = executing_pins_.emplace(key, std::move(b.pinned));
  WCS_CHECK_MSG(inserted, "batch for task " << key.first << " on worker "
                                            << key.second
                                            << " completed twice");
  BatchCallback done = std::move(b.done);
  current_.reset();
  if (done) done();
  serve_next();
}

void DataServer::on_file_arrived(FileId file) {
  WCS_CHECK(current_ != nullptr);
  Batch& b = *current_;
  WCS_CHECK_LT(b.next_index, b.files.size());
  WCS_CHECK_EQ(b.files[b.next_index], file);
  b.in_flight = FlowId::invalid();
  ++stats_.file_transfers;
  stats_.bytes_transferred += static_cast<double>(catalog_.size(file));
  // A proactive replica may have landed the same file while our demand
  // fetch was in flight; the bytes still moved, but the insert is moot.
  if (!cache_.contains(file))
    cache_.insert(file);  // may evict unpinned residents
  cache_.record_access(file);
  cache_.pin(file);
  b.pinned.push_back(file);
  ++b.next_index;
  if (transfer_listener_) transfer_listener_(file);
  continue_batch();
}

void DataServer::drop_pins(const std::vector<FileId>& pins) {
  for (FileId f : pins) cache_.unpin(f);
}

bool DataServer::cancel_batch(TaskId task, WorkerId worker) {
  BatchKey key{task, worker};
  if (current_ && current_->task == task && current_->worker == worker) {
    if (current_->in_flight.valid()) flows_.cancel(current_->in_flight);
    drop_pins(current_->pinned);
    stats_.transfer_s += sim_.now() - current_->service_start;
    ++stats_.batches_cancelled;
    current_.reset();
    serve_next();
    return true;
  }
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [&](const std::unique_ptr<Batch>& b) {
                           return b->task == task && b->worker == worker;
                         });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  ++stats_.batches_cancelled;
  return true;
}

void DataServer::release(TaskId task, WorkerId worker) {
  auto it = executing_pins_.find(BatchKey{task, worker});
  WCS_CHECK_MSG(it != executing_pins_.end(),
                "release of unknown batch: task " << task << " worker "
                                                  << worker);
  drop_pins(it->second);
  executing_pins_.erase(it);
}

}  // namespace wcs::storage
