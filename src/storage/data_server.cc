#include "storage/data_server.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace wcs::storage {

DataServer::~DataServer() {
  if (current_ != nullptr) delete current_;
  for (Batch* b : queue_) delete b;
  for (Batch* b : pool_) delete b;
  for (Batch* head : executing_by_worker_) {
    while (head != nullptr) {
      Batch* next = head->next_exec;
      delete head;
      head = next;
    }
  }
}

DataServer::Batch* DataServer::alloc_batch() {
  if (!pool_.empty()) {
    Batch* b = pool_.back();
    pool_.pop_back();
    return b;
  }
  return new Batch();
}

void DataServer::free_batch(Batch* b) {
  // Recycle: clear the payload but keep the vectors' capacity, so the
  // steady-state request/serve/release cycle stops allocating.
  b->files.clear();
  b->pinned.clear();
  b->done = nullptr;
  b->next_index = 0;
  b->in_flight = FlowId::invalid();
  b->in_flight_bytes = 0;
  b->in_flight_saved = 0;
  b->next_exec = nullptr;
  pool_.push_back(b);
}

void DataServer::request_batch(TaskId task, WorkerId worker,
                               std::span<const FileId> files,
                               BatchCallback done) {
  WCS_CHECK_MSG(!files.empty(), "empty batch for task " << task);
  WCS_CHECK_MSG(files.size() <= cache_.capacity(),
                "task " << task << " needs " << files.size()
                        << " files but the data server holds only "
                        << cache_.capacity());
  Batch* batch = alloc_batch();
  batch->task = task;
  batch->worker = worker;
  batch->files.assign(files.begin(), files.end());
  batch->done = std::move(done);
  batch->enqueued = sim_.now();
  batch->service_start = 0;
  queue_.push_back(batch);
  serve_next();
}

void DataServer::serve_next() {
  if (current_ != nullptr || queue_.empty()) return;
  current_ = queue_.front();
  queue_.pop_front();
  current_->service_start = sim_.now();
  stats_.waiting_s += sim_.now() - current_->enqueued;
  continue_batch();
}

void DataServer::continue_batch() {
  Batch& b = *current_;
  while (b.next_index < b.files.size()) {
    FileId f = b.files[b.next_index];
    if (cache_.contains(f)) {
      cache_.record_access(f);
      cache_.pin(f);
      b.pinned.push_back(f);
      ++b.next_index;
      ++stats_.cache_hits;
      continue;
    }
    // Miss: fetch from the external file server; the batch blocks until
    // the file lands (files within a batch are fetched sequentially, as
    // the serial data server implies). In block mode only the blocks no
    // resident file already covers move over the wire — a fully covered
    // extent still flows (zero payload, path latency only) so service
    // order is identical in both modes.
    Bytes want = catalog_.size(f);
    if (cache_.block_mode()) {
      const Bytes missing = cache_.missing_bytes(f);
      b.in_flight_saved =
          static_cast<double>(cache_.file_bytes(f) - missing);
      want = missing;
    } else {
      b.in_flight_saved = 0;
    }
    b.in_flight_bytes = static_cast<double>(want);
    b.in_flight = flows_.start_flow(
        file_server_node_, node_, want,
        [this, f](FlowId) { on_file_arrived(f); });
    return;
  }

  // Batch complete: hand pins over to the executing-task ledger and
  // notify the worker.
  stats_.transfer_s += sim_.now() - b.service_start;
  ++stats_.batches_served;
  Batch* completed = current_;
  current_ = nullptr;
  BatchCallback done = std::move(completed->done);
  // The batch object itself is the ledger entry: it parks (with its
  // pins) in the per-worker chain until release().
  const std::size_t w = completed->worker.value();
  if (w >= executing_by_worker_.size())
    executing_by_worker_.resize(w + 1, nullptr);
  for (Batch* e = executing_by_worker_[w]; e != nullptr; e = e->next_exec)
    WCS_CHECK_MSG(e->task != completed->task,
                  "batch for task " << completed->task << " on worker "
                                    << completed->worker
                                    << " completed twice");
  completed->next_exec = executing_by_worker_[w];
  executing_by_worker_[w] = completed;
  if (done) done();
  serve_next();
}

void DataServer::on_file_arrived(FileId file) {
  WCS_CHECK(current_ != nullptr);
  Batch& b = *current_;
  WCS_CHECK_LT(b.next_index, b.files.size());
  WCS_CHECK_EQ(b.files[b.next_index], file);
  b.in_flight = FlowId::invalid();
  ++stats_.file_transfers;
  // Account what the flow actually carried (computed at fetch start, so
  // the ledger matches the flow manager byte for byte).
  stats_.bytes_transferred += b.in_flight_bytes;
  stats_.bytes_saved += b.in_flight_saved;
  b.in_flight_bytes = 0;
  b.in_flight_saved = 0;
  // A proactive replica may have landed the same file while our demand
  // fetch was in flight; the bytes still moved, but the insert is moot.
  if (!cache_.contains(file))
    cache_.insert(file);  // may evict unpinned residents
  cache_.record_access(file);
  cache_.pin(file);
  b.pinned.push_back(file);
  ++b.next_index;
  if (transfer_listener_) transfer_listener_(file);
  continue_batch();
}

void DataServer::drop_pins(const std::vector<FileId>& pins) {
  for (FileId f : pins) cache_.unpin(f);
}

bool DataServer::cancel_batch(TaskId task, WorkerId worker) {
  if (current_ != nullptr && current_->task == task &&
      current_->worker == worker) {
    if (current_->in_flight.valid()) flows_.cancel(current_->in_flight);
    drop_pins(current_->pinned);
    stats_.transfer_s += sim_.now() - current_->service_start;
    ++stats_.batches_cancelled;
    free_batch(current_);
    current_ = nullptr;
    serve_next();
    return true;
  }
  auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Batch* b) {
    return b->task == task && b->worker == worker;
  });
  if (it == queue_.end()) return false;
  free_batch(*it);
  queue_.erase(it);
  ++stats_.batches_cancelled;
  return true;
}

void DataServer::release(TaskId task, WorkerId worker) {
  const std::size_t w = worker.value();
  Batch** link =
      w < executing_by_worker_.size() ? &executing_by_worker_[w] : nullptr;
  while (link != nullptr && *link != nullptr && (*link)->task != task)
    link = &(*link)->next_exec;
  WCS_CHECK_MSG(link != nullptr && *link != nullptr,
                "release of unknown batch: task " << task << " worker "
                                                  << worker);
  Batch* b = *link;
  *link = b->next_exec;
  drop_pins(b->pinned);
  free_batch(b);
}

std::vector<std::string> DataServer::memory_defects() const {
  std::vector<std::string> defects;
  std::unordered_set<const Batch*> seen;
  auto claim = [&](const Batch* b, const char* where) {
    if (b == nullptr) return;
    if (!seen.insert(b).second) {
      std::ostringstream os;
      os << "batch object aliased into a second ledger (" << where << ")";
      defects.push_back(os.str());
    }
  };
  claim(current_, "current");
  for (const Batch* b : queue_) claim(b, "queue");
  for (const Batch* b : pool_) claim(b, "pool");
  for (std::size_t w = 0; w < executing_by_worker_.size(); ++w) {
    for (const Batch* b = executing_by_worker_[w]; b != nullptr;
         b = b->next_exec) {
      // claim() also breaks the walk on a chain cycle: the second visit
      // of an aliased batch is reported once and we stop.
      if (!seen.insert(b).second) {
        defects.push_back(
            "batch object aliased into a second ledger (executing)");
        break;
      }
      if (b->worker.value() != w) {
        std::ostringstream os;
        os << "executing batch of worker " << b->worker
           << " parked in slot " << w;
        defects.push_back(os.str());
      }
    }
  }
  return defects;
}

}  // namespace wcs::storage
