// Per-site data server.
//
// Implements assumptions 2–5 of the paper's system model (Sec. 2.2):
// one data server per site; it receives batch file requests from the
// site's workers and serves them ONE AT A TIME (serial service "is more
// efficient than simultaneous requests, given the bandwidth limits");
// missing files are fetched sequentially from the external file server
// over the site's shared uplink; a worker may start executing only when
// every file of its task is resident.
//
// The server records, per batch, the queue waiting time and the transfer
// (service) time — the two columns of the paper's Table 3 — plus transfer
// counts and bytes (Figure 5).
//
// Batch objects are recycled through a free pool (their file/pin vectors
// keep their capacity), and the pins of executing tasks stay inside the
// batch object, indexed by worker id in a flat table — the steady-state
// request/serve/release cycle performs no heap allocation.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/flow_manager.h"
#include "sim/simulator.h"
#include "storage/file_cache.h"
#include "workload/job.h"

namespace wcs::storage {

// Fires once every file of the batch is resident and pinned.
using BatchCallback = std::function<void()>;

class DataServer {
 public:
  struct Stats {
    std::uint64_t batches_served = 0;
    std::uint64_t batches_cancelled = 0;
    double waiting_s = 0;    // total time batches spent queued
    double transfer_s = 0;   // total time spent servicing batches
    std::uint64_t file_transfers = 0;  // fetches from the file server
    double bytes_transferred = 0;
    std::uint64_t cache_hits = 0;      // files already resident at service
    // Block mode: bytes a demand fetch did NOT move because blocks shared
    // with resident files were already on site (0 in whole-file mode).
    double bytes_saved = 0;
  };

  DataServer(SiteId site, sim::Simulator& simulator, net::FlowManager& flows,
             NodeId self_node, NodeId file_server_node,
             const workload::FileCatalog& catalog, std::size_t capacity_files,
             EvictionPolicy policy)
      : site_(site),
        sim_(simulator),
        flows_(flows),
        node_(self_node),
        file_server_node_(file_server_node),
        catalog_(catalog),
        cache_(capacity_files, policy) {}

  DataServer(const DataServer&) = delete;
  DataServer& operator=(const DataServer&) = delete;

  ~DataServer();

  // Enqueue a batch request for all of `files` on behalf of (task, worker).
  // `done` fires when every file is resident and pinned for this batch.
  void request_batch(TaskId task, WorkerId worker,
                     std::span<const FileId> files, BatchCallback done);

  // Abort a queued or in-service batch (replica cancellation). Returns
  // false if no such batch is queued or in service (e.g. it already
  // completed — use release() for that). Files already fetched stay
  // cached; pins taken by the batch are dropped.
  bool cancel_batch(TaskId task, WorkerId worker);

  // Unpin the files of a completed batch after its task finished
  // executing.
  void release(TaskId task, WorkerId worker);

  // Observer of demand fetches (fires once per file transferred from the
  // file server, after the file is cached). Used by the proactive
  // replication subsystem to track global popularity.
  using TransferListener = std::function<void(FileId)>;
  void set_transfer_listener(TransferListener listener) {
    transfer_listener_ = std::move(listener);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const FileCache& cache() const { return cache_; }
  [[nodiscard]] FileCache& cache() { return cache_; }
  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return current_ != nullptr; }

  // Batch-pool accounting (audit/bench hook).
  [[nodiscard]] std::size_t pooled_batches() const { return pool_.size(); }

  // Batch-ledger soundness for the memory-layout audit checker: no batch
  // object may sit in two ledgers at once (queue / current / executing /
  // pool), and an executing batch must occupy the slot of its own worker.
  [[nodiscard]] std::vector<std::string> memory_defects() const;

 private:
  struct Batch {
    TaskId task;
    WorkerId worker;
    std::vector<FileId> files;
    BatchCallback done;
    SimTime enqueued = 0;
    SimTime service_start = 0;
    std::size_t next_index = 0;      // next file to ensure resident
    std::vector<FileId> pinned;      // pins taken so far
    FlowId in_flight = FlowId::invalid();
    double in_flight_bytes = 0;      // payload of the in-flight fetch
    double in_flight_saved = 0;      // dedup saving of that fetch
    Batch* next_exec = nullptr;      // executing-ledger chain
  };

  Batch* alloc_batch();
  void free_batch(Batch* b);

  void serve_next();
  void continue_batch();
  void on_file_arrived(FileId file);
  void drop_pins(const std::vector<FileId>& pins);

  SiteId site_;
  sim::Simulator& sim_;
  net::FlowManager& flows_;
  NodeId node_;
  NodeId file_server_node_;
  const workload::FileCatalog& catalog_;
  FileCache cache_;
  std::deque<Batch*> queue_;
  Batch* current_ = nullptr;
  // Completed batches stay alive (holding their pins) in a per-worker
  // table until release(); recycled batches wait in pool_. Each slot
  // chains through Batch::next_exec — a worker normally holds one
  // executing batch, but the API permits several (task, worker) batches
  // at once.
  std::vector<Batch*> executing_by_worker_;  // indexed by WorkerId
  std::vector<Batch*> pool_;
  TransferListener transfer_listener_;
  Stats stats_;
};

}  // namespace wcs::storage
