// Block-level content map for the data plane.
//
// The paper's Coadd workload reads sliding windows over the sky: adjacent
// files cover overlapping sky regions, so the same bytes are cached
// redundantly when files are the caching unit. The block store models
// that content sharing explicitly: every file is split into fixed-size
// blocks drawn from one global block id space, and consecutive files
// share a configurable fraction of their blocks (the paged-KV idea from
// LLM serving, applied to grid file content).
//
// Layout (uniform catalogs — the paper's assumption 8):
//
//   n      = ceil(file_size / block_size)          blocks per file
//   stride = max(1, n - round(content_overlap * n))
//   file f covers the global blocks [f*stride, f*stride + n)
//
// With content_overlap == 0 the stride equals n, extents are disjoint,
// and block accounting is provably byte-identical to whole-file caching
// (the golden-run suite pins this). With overlap > 0, neighbouring files
// share `n - stride` blocks, so a cache that already holds file f only
// needs the non-shared tail of file f+1 — missing_bytes() is what the
// data server actually transfers.
//
// Heterogeneous catalogs (the file-size ablation, unit tests) get
// disjoint per-file extents: content overlap is a property of the
// uniform sliding-window model and does not apply across files of
// different sizes.
//
// Because every extent is one CONTIGUOUS block range of identical length
// (uniform case), per-site residency needs no per-block table at all:
// coverage of a file's extent by other resident files is computable from
// the nearest resident neighbours in O(n/stride), and the physical/
// pinned block counters are maintained incrementally with zero
// allocation (see FileCache).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "workload/job.h"

namespace wcs::storage {

struct BlockStoreParams {
  Bytes block_size = megabytes(1.0);

  // Fraction of a file's blocks shared with each adjacent file id
  // (uniform catalogs only). 0 = disjoint extents, byte-identical to
  // whole-file caching; 0.5 = consecutive files share half their blocks.
  double content_overlap = 0.0;
};

class BlockMap {
 public:
  BlockMap(const workload::FileCatalog& catalog,
           const BlockStoreParams& params);

  // Global block range covered by a file: [first, first + count).
  struct Extent {
    std::uint64_t first = 0;
    std::uint32_t count = 0;
  };
  [[nodiscard]] Extent extent(FileId f) const;

  [[nodiscard]] std::uint32_t blocks(FileId f) const {
    return extent(f).count;
  }

  // Full byte size of a file at block granularity. Equals the catalog
  // size when extents are disjoint; with shared extents every block
  // counts a full block_size (content is rounded up to block
  // granularity so shared blocks have one well-defined size).
  [[nodiscard]] Bytes file_bytes(FileId f) const;

  // Byte contribution of one block of `f` (block_size except possibly
  // the extent's last block in disjoint mode).
  [[nodiscard]] Bytes block_bytes(FileId f, std::uint32_t index) const;

  [[nodiscard]] Bytes block_size() const { return params_.block_size; }
  [[nodiscard]] double content_overlap() const {
    return params_.content_overlap;
  }
  [[nodiscard]] std::size_t num_files() const { return num_files_; }
  [[nodiscard]] std::uint64_t num_blocks() const { return num_blocks_; }

  // True when consecutive uniform files share blocks (stride < n).
  [[nodiscard]] bool shared() const { return uniform_ && stride_ < blocks_; }

  [[nodiscard]] std::uint32_t blocks_per_file_max() const;

  // Uniform sliding-window geometry (meaningful only when shared()).
  [[nodiscard]] std::uint32_t stride() const { return stride_; }

  // Largest id distance between two files whose extents can overlap.
  [[nodiscard]] std::uint32_t neighbour_span() const {
    return shared() ? (blocks_ - 1) / stride_ : 0;
  }

 private:
  BlockStoreParams params_;
  bool uniform_ = true;
  std::size_t num_files_ = 0;
  std::uint64_t num_blocks_ = 0;

  // Uniform mode: every file has `blocks_` blocks, extents advance by
  // `stride_` block ids per file, and the last block of a disjoint
  // extent holds `tail_bytes_`.
  std::uint32_t blocks_ = 0;
  std::uint32_t stride_ = 0;
  Bytes tail_bytes_ = 0;

  // Heterogeneous mode: explicit per-file extents (always disjoint).
  std::vector<std::uint64_t> first_;  // size num_files_ + 1
  std::vector<Bytes> tail_;           // per-file last-block bytes
};

}  // namespace wcs::storage
