// Capacity-bounded file cache of a site's data server.
//
// The paper measures storage capacity in number of (equally-sized) files
// (Table 1), so capacity here is a file count. The cache additionally
// maintains:
//
//   - pinning: files needed by a task that is currently fetching or
//     executing are pinned and never evicted (assumption 5 of the paper's
//     model requires all of a task's files to be present for its whole
//     execution);
//   - persistent reference counts r_i ("the number of past references of
//     the file i at the local storage", Sec. 4.2) — these survive
//     eviction, and feed the `combined` metric;
//   - a change listener so schedulers can maintain incremental
//     per-(site, task) overlap indexes instead of rescanning caches.
//
// Eviction policies: LRU (default), FIFO, and MinRef (evict the file with
// the fewest past references) for the eviction-policy ablation bench.
//
// Storage layout: one 16-byte slot per file id — residency flag, pin
// count, persistent ref count, and intrusive prev/next links forming the
// eviction order. Zero allocations per hit/miss/evict. (The pre-PR-6
// node-based layout lived behind --legacy-layout for one PR as the A/B
// baseline and was removed after the flat goldens soaked.)
//
// Block mode (attach_block_store, docs/data-plane.md): residency and
// eviction order stay file-granular, but capacity is accounted in
// refcounted content BLOCKS, so files whose extents overlap share bytes
// instead of holding them twice. Whole-file accounting is the reference
// mode behind --whole-file-cache; with content_overlap == 0 the two are
// byte-identical (golden-gated).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/checkers.h"
#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "storage/block_store.h"

namespace wcs::storage {

enum class EvictionPolicy { kLru, kFifo, kMinRef };

[[nodiscard]] const char* to_string(EvictionPolicy policy);

enum class CacheEvent {
  kAdded,     // file inserted into the cache
  kEvicted,   // file evicted to make room
  kAccessed,  // reference count incremented (file is present)
};

using CacheListener = std::function<void(CacheEvent, FileId)>;

class FileCache {
 public:
  FileCache(std::size_t capacity_files, EvictionPolicy policy)
      : capacity_(capacity_files), policy_(policy) {
    WCS_CHECK(capacity_files > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const { return resident_count_; }
  [[nodiscard]] EvictionPolicy policy() const { return policy_; }

  [[nodiscard]] bool contains(FileId f) const {
    return f.value() < slots_.size() && slots_[f.value()].resident;
  }

  // Pre-size the slot table for `num_files` distinct file ids (the table
  // also grows on demand).
  void reserve_files(std::size_t num_files) {
    if (num_files > slots_.size()) slots_.resize(num_files);
  }

  // Record a task's use of a present file: bumps r_i, refreshes recency.
  // The file must be present.
  void record_access(FileId f);

  // Insert a missing file, evicting unpinned files as needed. Throws if
  // the cache is full of pinned files (an invalid configuration — see
  // GridConfig validation). The file must not be present.
  void insert(FileId f);

  // Insert if enough unpinned state can be evicted to make room; returns
  // false and leaves the cache untouched otherwise. Used by opportunistic
  // writers (proactive replication) that must not abort the simulation on
  // a transiently full cache.
  bool try_insert(FileId f);

  // True if insert(f) would succeed without throwing. In whole-file mode
  // the answer is file-independent; in block mode it depends on how much
  // of f's extent pinned residents already cover.
  [[nodiscard]] bool has_insert_room(FileId f) const;

  // Pin/unpin; pins nest. The file must be present.
  void pin(FileId f);
  void unpin(FileId f);
  [[nodiscard]] bool pinned(FileId f) const;

  // Past references r_i of a file at this storage; persists across
  // eviction. Zero for files never seen here.
  [[nodiscard]] std::size_t ref_count(FileId f) const {
    return f.value() < slots_.size() ? slots_[f.value()].refs : 0;
  }

  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  // Snapshot of resident file ids (ascending id order).
  [[nodiscard]] std::vector<FileId> contents() const;

  // Read-only state snapshot for the invariant auditor: occupancy vs
  // capacity, pin counts, and structural soundness of the eviction
  // order (links <-> residency round-trip). `label` names this cache in
  // violation reports (audit::check_cache_coherence).
  [[nodiscard]] audit::CacheAuditSnapshot audit_snapshot(
      std::string label) const;

  // --- Block mode --------------------------------------------------------
  // Attach a block map (must outlive the cache; the cache must be empty).
  // Capacity becomes capacity_files * blocks-per-file BLOCKS, allocatable
  // at block granularity: a resident file holds a reference on every
  // block of its extent, blocks shared with other residents are held
  // once, and eviction frees only the blocks no other resident covers.
  // With disjoint extents (content_overlap == 0, uniform catalog) every
  // decision reduces exactly to the whole-file laws — the golden-run
  // suite pins byte-identical totals both ways.
  void attach_block_store(const BlockMap* map);

  [[nodiscard]] bool block_mode() const { return blocks_ != nullptr; }
  [[nodiscard]] const BlockMap* block_map() const { return blocks_; }

  // Bytes a fetch of `f` must actually move: the blocks of f's extent no
  // resident file covers. 0 for resident files. Block mode only.
  [[nodiscard]] Bytes missing_bytes(FileId f) const;

  // Full block-granular size of `f` (>= missing_bytes; the difference is
  // the dedup saving of a fetch issued now). Block mode only.
  [[nodiscard]] Bytes file_bytes(FileId f) const;

  [[nodiscard]] std::uint64_t capacity_blocks() const {
    return capacity_blocks_;
  }
  [[nodiscard]] std::uint64_t physical_blocks() const {
    return physical_blocks_;
  }
  [[nodiscard]] std::uint64_t pinned_blocks() const {
    return pinned_blocks_;
  }

  // Block-store page accounting snapshot for the invariant auditor
  // (audit::check_block_store). Block mode only.
  [[nodiscard]] audit::BlockStoreAuditSnapshot block_audit_snapshot(
      std::string label) const;

  // At most one listener; pass nullptr-like (default constructed) to
  // clear. Fired synchronously on every mutation.
  void set_listener(CacheListener listener) { listener_ = std::move(listener); }

  // Attach observability instruments (the single listener slot belongs to
  // the scheduler's incremental index, so tracing gets its own hook).
  // `now_fn` supplies the simulated clock and is only called on actual
  // evictions; `track` is this cache's site id for the trace timeline.
  // Read-only: never changes victim selection.
  void set_obs(obs::PhaseProfiler* profiler, obs::EventTracer* tracer,
               std::function<SimTime()> now_fn, std::uint32_t track) {
    profiler_ = profiler;
    tracer_ = tracer;
    now_fn_ = std::move(now_fn);
    obs_track_ = track;
  }

 private:
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;

  // One 16-byte record per file id. prev/next thread the resident slots
  // into the eviction order (head = next candidate); refs persists
  // across eviction.
  struct Slot {
    std::uint32_t prev = kNullSlot;
    std::uint32_t next = kNullSlot;
    std::uint32_t refs = 0;
    std::uint16_t pins = 0;
    std::uint8_t resident = 0;
    std::uint8_t unused = 0;
  };
  static_assert(sizeof(Slot) == 16);

  Slot& slot(FileId f) {
    if (f.value() >= slots_.size()) {
      std::size_t grown = slots_.empty() ? 64 : slots_.size() * 2;
      if (grown < f.value() + 1) grown = f.value() + 1;
      slots_.resize(grown);
    }
    return slots_[f.value()];
  }

  void link_back(std::uint32_t idx);
  void unlink(std::uint32_t idx);

  void evict_one();
  [[nodiscard]] FileId pick_victim() const;
  void notify(CacheEvent e, FileId f) {
    if (listener_) listener_(e, f);
  }

  // Blocks of f's extent covered by OTHER files satisfying the predicate
  // (resident, or resident-and-pinned). Because extents are contiguous
  // ranges of one shared length, only the nearest qualifying neighbour on
  // each side matters: O(neighbour_span) with no per-block state.
  [[nodiscard]] std::uint64_t covered_blocks(FileId f,
                                             bool pinned_only) const;
  // Blocks of f's extent NOT covered by any other qualifying file.
  [[nodiscard]] std::uint64_t exclusive_blocks(FileId f,
                                               bool pinned_only) const;

  std::size_t capacity_ = 0;
  EvictionPolicy policy_ = EvictionPolicy::kLru;

  std::vector<Slot> slots_;
  std::uint32_t head_ = kNullSlot;  // next eviction candidate
  std::uint32_t tail_ = kNullSlot;  // most recently inserted/accessed
  std::size_t resident_count_ = 0;
  std::size_t pinned_resident_count_ = 0;  // residents with pins > 0

  // Block mode (null in whole-file mode). physical_/pinned_ count
  // distinct blocks covered by >= 1 resident / pinned-resident file,
  // maintained incrementally on insert/evict/pin/unpin transitions.
  const BlockMap* blocks_ = nullptr;
  std::uint64_t capacity_blocks_ = 0;
  std::uint64_t physical_blocks_ = 0;
  std::uint64_t pinned_blocks_ = 0;

  std::uint64_t evictions_ = 0;
  CacheListener listener_;

  // Observability (null/empty when disabled).
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::EventTracer* tracer_ = nullptr;
  std::function<SimTime()> now_fn_;
  std::uint32_t obs_track_ = 0;
};

}  // namespace wcs::storage
