#include "storage/block_store.h"

#include <algorithm>
#include <cmath>

namespace wcs::storage {

namespace {

// ceil(size / block) for a nonempty file; zero-byte files still occupy
// one (empty) block so every file has a nonempty extent.
std::uint32_t block_count(Bytes size, Bytes block) {
  if (size == 0) return 1;
  return static_cast<std::uint32_t>((size + block - 1) / block);
}

}  // namespace

BlockMap::BlockMap(const workload::FileCatalog& catalog,
                   const BlockStoreParams& params)
    : params_(params), num_files_(catalog.num_files()) {
  WCS_CHECK_MSG(params_.block_size > 0, "block size must be positive");
  WCS_CHECK_MSG(params_.content_overlap >= 0.0 &&
                    params_.content_overlap < 1.0,
                "content overlap must be in [0, 1), got "
                    << params_.content_overlap);
  uniform_ = catalog.uniform();
  if (num_files_ == 0) {
    blocks_ = stride_ = 1;
    return;
  }
  if (uniform_) {
    const Bytes size = catalog.size(FileId(0));
    blocks_ = block_count(size, params_.block_size);
    const auto shared_blocks = static_cast<std::uint32_t>(
        std::llround(params_.content_overlap * blocks_));
    stride_ = blocks_ > shared_blocks ? blocks_ - shared_blocks : 1;
    if (stride_ == 0) stride_ = 1;
    tail_bytes_ = size - static_cast<Bytes>(blocks_ - 1) * params_.block_size;
    num_blocks_ =
        static_cast<std::uint64_t>(num_files_ - 1) * stride_ + blocks_;
    return;
  }
  // Heterogeneous catalog: disjoint extents, one prefix-sum table.
  first_.reserve(num_files_ + 1);
  tail_.reserve(num_files_);
  first_.push_back(0);
  for (std::size_t i = 0; i < num_files_; ++i) {
    const FileId f(static_cast<FileId::underlying_type>(i));
    const Bytes size = catalog.size(f);
    const std::uint32_t n = block_count(size, params_.block_size);
    first_.push_back(first_.back() + n);
    tail_.push_back(size == 0
                        ? 0
                        : size - static_cast<Bytes>(n - 1) *
                                     params_.block_size);
  }
  num_blocks_ = first_.back();
}

BlockMap::Extent BlockMap::extent(FileId f) const {
  WCS_CHECK_MSG(f.valid() && f.value() < num_files_,
                "file " << f << " outside the block map ("
                        << num_files_ << " files)");
  if (uniform_)
    return {static_cast<std::uint64_t>(f.value()) * stride_, blocks_};
  return {first_[f.value()],
          static_cast<std::uint32_t>(first_[f.value() + 1] -
                                     first_[f.value()])};
}

Bytes BlockMap::block_bytes(FileId f, std::uint32_t index) const {
  const Extent e = extent(f);
  WCS_CHECK(index < e.count);
  if (shared()) return params_.block_size;  // content rounded up to blocks
  if (index + 1 < e.count) return params_.block_size;
  return uniform_ ? tail_bytes_ : tail_[f.value()];
}

Bytes BlockMap::file_bytes(FileId f) const {
  const Extent e = extent(f);
  if (shared()) return static_cast<Bytes>(e.count) * params_.block_size;
  const Bytes tail = uniform_ ? tail_bytes_ : tail_[f.value()];
  return static_cast<Bytes>(e.count - 1) * params_.block_size + tail;
}

std::uint32_t BlockMap::blocks_per_file_max() const {
  if (uniform_ || num_files_ == 0) return blocks_;
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < num_files_; ++i)
    best = std::max(best,
                    static_cast<std::uint32_t>(first_[i + 1] - first_[i]));
  return best;
}

}  // namespace wcs::storage
