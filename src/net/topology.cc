#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace wcs::net {

NodeId Topology::add_node(std::string name) {
  NodeId id(static_cast<NodeId::underlying_type>(nodes_.size()));
  nodes_.push_back(Node{id, std::move(name), {}});
  tables_.clear();  // invalidate cached routes
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, double bandwidth_bps,
                          SimTime latency_s, std::string name) {
  WCS_CHECK(a.valid() && a.value() < nodes_.size());
  WCS_CHECK(b.valid() && b.value() < nodes_.size());
  WCS_CHECK_MSG(a != b, "self-loop link");
  WCS_CHECK_MSG(bandwidth_bps > 0, "link bandwidth must be positive");
  WCS_CHECK_MSG(latency_s >= 0, "negative latency");
  LinkId id(static_cast<LinkId::underlying_type>(links_.size()));
  links_.push_back(Link{id, a, b, bandwidth_bps, latency_s, std::move(name)});
  nodes_[a.value()].links.push_back(id);
  nodes_[b.value()].links.push_back(id);
  tables_.clear();
  return id;
}

void Topology::build_table(NodeId src) const {
  RouteTable table;
  const auto n = nodes_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  table.parent_link.assign(n, LinkId::invalid());

  // Dijkstra keyed by (latency, node index) — the node-index tiebreak makes
  // equal-latency route choices deterministic across runs and platforms.
  using QEntry = std::pair<double, NodeId::underlying_type>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;
  dist[src.value()] = 0;
  pq.emplace(0.0, src.value());
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (LinkId lid : nodes_[u].links) {
      const Link& l = links_[lid.value()];
      NodeId v = other_end(l, NodeId(u));
      double nd = d + l.latency_s;
      auto vi = v.value();
      // Strictly-better only. Equal-cost alternatives are resolved by the
      // deterministic visit order (pq keyed by (distance, node index),
      // links iterated in insertion order), so the tree is reproducible;
      // rewriting parents on ties can create cycles with zero-latency
      // links.
      if (nd < dist[vi]) {
        dist[vi] = nd;
        table.parent_link[vi] = lid;
        pq.emplace(nd, vi);
      }
    }
  }
  tables_.emplace(src, std::move(table));
}

const Route& Topology::route(NodeId src, NodeId dst) const {
  WCS_CHECK(src.valid() && src.value() < nodes_.size());
  WCS_CHECK(dst.valid() && dst.value() < nodes_.size());
  auto it = tables_.find(src);
  if (it == tables_.end()) {
    build_table(src);
    it = tables_.find(src);
  }
  RouteTable& table = it->second;
  auto rit = table.routes.find(dst);
  if (rit != table.routes.end()) return rit->second;

  Route r;
  if (src != dst) {
    NodeId cur = dst;
    while (cur != src) {
      LinkId pl = table.parent_link[cur.value()];
      WCS_CHECK_MSG(pl.valid(), "node " << dst << " unreachable from " << src);
      r.push_back(pl);
      cur = other_end(links_[pl.value()], cur);
    }
    std::reverse(r.begin(), r.end());
  }
  auto [ins, ok] = table.routes.emplace(dst, std::move(r));
  WCS_CHECK(ok);
  return ins->second;
}

SimTime Topology::path_latency(NodeId src, NodeId dst) const {
  SimTime total = 0;
  for (LinkId lid : route(src, dst)) total += links_[lid.value()].latency_s;
  return total;
}

double Topology::path_bandwidth(NodeId src, NodeId dst) const {
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId lid : route(src, dst))
    bw = std::min(bw, links_[lid.value()].bandwidth_bps);
  return bw;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> stack{NodeId(0)};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    for (LinkId lid : nodes_[u.value()].links) {
      NodeId v = other_end(links_[lid.value()], u);
      if (!seen[v.value()]) {
        seen[v.value()] = 1;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == nodes_.size();
}

}  // namespace wcs::net
