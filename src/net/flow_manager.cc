#include "net/flow_manager.h"

#include <algorithm>
#include <limits>

namespace wcs::net {

namespace {
// Below this many bytes a flow is considered done; guards against FP dust
// keeping a flow alive forever.
constexpr double kEpsilonBytes = 1e-6;

// Progressive filling (max-min fairness) over `pool`: repeatedly find the
// most constrained link among `links` (smallest per-flow fair share,
// lowest link id among ties — `links` is scanned in ascending id order),
// freeze its flows at that share, and subtract their demand from the
// other links they cross. caps/crossing are dense per-link tables the
// caller seeded for every link in `links`; rates[i] receives pool[i]'s
// share. `unfixed` is caller-provided worklist scratch.
//
// The bottleneck order within one connected component of the flow<->link
// sharing graph is independent of any other component (freezing a flow
// only touches links of its own component), so running this over a
// single component produces bitwise the same shares a full-pool run
// assigns that component's flows. That equivalence is what lets
// FlowManager::reallocate rebalance only the dirty component.
template <typename FlowPtr>
void progressive_fill(const std::vector<FlowPtr>& pool,
                      const std::vector<LinkId>& links,
                      std::vector<double>& caps, std::vector<int>& crossing,
                      std::vector<std::size_t>& unfixed,
                      std::vector<double>& rates) {
  rates.assign(pool.size(), 0);
  unfixed.resize(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) unfixed[i] = i;

  while (!unfixed.empty()) {
    double best_share = std::numeric_limits<double>::infinity();
    LinkId::underlying_type best_link = 0;
    bool found = false;
    for (LinkId lid : links) {
      int n = crossing[lid.value()];
      if (n <= 0) continue;
      double share = caps[lid.value()] / n;
      if (share < best_share) {
        best_share = share;
        best_link = lid.value();
        found = true;
      }
    }
    WCS_CHECK(found);

    // Freeze every unfixed flow crossing the bottleneck at best_share;
    // compact survivors in place (canonical id order is preserved).
    std::size_t kept = 0;
    for (std::size_t idx : unfixed) {
      const auto& route = pool[idx]->route;
      bool hits = std::find_if(route.begin(), route.end(), [&](LinkId l) {
                    return l.value() == best_link;
                  }) != route.end();
      if (!hits) {
        unfixed[kept++] = idx;
        continue;
      }
      rates[idx] = best_share;
      for (LinkId lid : route) {
        caps[lid.value()] -= best_share;
        if (caps[lid.value()] < 0) caps[lid.value()] = 0;
        --crossing[lid.value()];
      }
    }
    unfixed.resize(kept);
  }
}
}  // namespace

void FlowManager::set_observability(obs::Observability* o) {
  tracer_ = o ? o->tracer() : nullptr;
  profiler_ = o ? o->profiler() : nullptr;
  if (o && o->metrics()) {
    realloc_counter_ = &o->metrics()->counter("net.reallocations");
    // Flow wall time in simulated seconds: WAN transfers of multi-GB
    // files land in the minutes-to-hours range.
    flow_seconds_ = &o->metrics()->histogram("net.flow_seconds", 0, 7200, 72);
  } else {
    realloc_counter_ = nullptr;
    flow_seconds_ = nullptr;
  }
}

FlowId FlowManager::start_flow(NodeId src, NodeId dst, Bytes bytes,
                               FlowCallback on_complete) {
  FlowId id(next_flow_++);
  Flow f;
  f.id = id;
  f.route = topo_.route(src, dst);  // copy: route cache may rehash
  f.total = static_cast<double>(bytes);
  f.remaining = f.total;
  bytes_started_ += f.total;
  f.on_complete = std::move(on_complete);
  f.started = sim_.now();
  f.last_update = sim_.now();
  f.dst = dst;
  SimTime latency = topo_.path_latency(src, dst);
  auto [it, ok] = flows_.emplace(id, std::move(f));
  WCS_CHECK(ok);
  it->second.pending_event =
      sim_.schedule_in(latency, [this, id] { activate(id); });
  return id;
}

void FlowManager::activate(FlowId id) {
  auto it = flows_.find(id);
  WCS_CHECK(it != flows_.end());
  Flow& f = it->second;
  f.active = true;
  f.pending_event = EventId::invalid();
  f.last_update = sim_.now();
  if (f.remaining <= kEpsilonBytes || f.route.empty()) {
    // Zero-byte transfer, or an intra-node transfer: instantaneous once
    // latency has been paid.
    complete(id);
    return;
  }
  reallocate(f.route);
}

void FlowManager::complete(FlowId id) {
  auto it = flows_.find(id);
  WCS_CHECK(it != flows_.end());
  Flow& f = it->second;
  // Credit the final stretch since the last settle to the link counters
  // before the flow disappears.
  if (f.active && f.rate > 0) {
    double moved = unsettled_bytes(f, sim_.now());
    for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
  }
  FlowCallback cb = std::move(f.on_complete);
  bytes_delivered_ += f.total;
  const SimTime elapsed = sim_.now() - f.started;
  if (flow_seconds_) flow_seconds_->add(elapsed);
  if (tracer_) {
    obs::TraceSpan span;
    span.start = f.started;
    span.duration_s = elapsed;
    span.kind = obs::SpanKind::kTransfer;
    span.track = f.dst.valid() ? f.dst.value() : 0;
    span.bytes = f.total;
    tracer_->record(span);
  }
  // A draining flow already left the sharing pool when its rate was
  // zeroed; its links were rebalanced then, so its disappearance now
  // cannot change any rate.
  const bool shared = f.active && !f.draining;
  Route released = std::move(f.route);
  flows_.erase(it);
  ++completed_;
  if (shared) {
    reallocate(released);
  }
  if (cb) cb(id);
}

bool FlowManager::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  Flow& f = it->second;
  if (f.pending_event.valid()) sim_.cancel(f.pending_event);
  // Settle the bytes this flow moved so link statistics stay accurate.
  if (f.active && f.rate > 0) {
    double moved = unsettled_bytes(f, sim_.now());
    for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
  }
  const bool shared = f.active && !f.draining;
  Route released = std::move(f.route);
  flows_.erase(it);
  ++cancelled_;
  if (shared) {
    reallocate(released);
  }
  return true;
}

double FlowManager::unsettled_bytes(const Flow& f, SimTime now) const {
  double moved = f.rate * (now - f.last_update);
  return std::min(moved, f.remaining);
}

audit::FlowAuditSnapshot FlowManager::audit_snapshot() const {
  audit::FlowAuditSnapshot snap;
  snap.bytes_started = bytes_started_;
  snap.bytes_delivered = bytes_delivered_;
  snap.flows_completed = completed_;
  snap.flows_cancelled = cancelled_;
  const SimTime now = sim_.now();

  snap.links.reserve(topo_.num_links());
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    const Link& link = topo_.link(LinkId(static_cast<LinkId::underlying_type>(l)));
    audit::LinkUsage usage;
    usage.name = link.name.empty() ? ("link#" + std::to_string(l)) : link.name;
    usage.capacity_bps = link.bandwidth_bps;
    snap.links.push_back(std::move(usage));
  }

  // Canonical order: flows sorted by id. The snapshot is audit-only,
  // but defect messages and per-link FP sums should not depend on a
  // hash table's bucket layout.
  std::vector<const Flow*> ordered;
  ordered.reserve(flows_.size());
  // detlint: unordered-loop -- collect-then-sort: 'ordered' is sorted by flow id below
  for (const auto& [id, f] : flows_) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });

  snap.flows.reserve(flows_.size());
  for (const Flow* fp : ordered) {
    const Flow& f = *fp;
    audit::FlowProgress p;
    p.id = f.id.value();
    p.total_bytes = f.total;
    // Flows settle lazily (only on rate change); project the stored
    // progress forward to now so the ledger laws see the fluid state.
    p.remaining_bytes = f.active && f.rate > 0
                            ? f.remaining - unsettled_bytes(f, now)
                            : f.remaining;
    p.rate_bps = f.active ? f.rate : 0;
    p.active = f.active;
    snap.flows.push_back(p);
    if (!f.active) continue;
    for (LinkId lid : f.route) {
      snap.links[lid.value()].allocated_bps += f.rate;
      ++snap.links[lid.value()].flows;
    }
  }
  return snap;
}

audit::FlowRatesSnapshot FlowManager::audit_rates_snapshot() const {
  audit::FlowRatesSnapshot snap;
  snap.label = "flow manager";

  // Local (non-hoisted) buffers: the audit path must leave the manager
  // untouched so audited runs stay byte-identical.
  std::vector<const Flow*> pool;
  pool.reserve(flows_.size());
  // detlint: unordered-loop -- collect-then-sort: 'pool' is sorted by flow id below
  for (const auto& [id, f] : flows_)
    if (f.active && !f.draining) pool.push_back(&f);
  std::sort(pool.begin(), pool.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });

  std::vector<LinkId> links;
  std::vector<double> caps(topo_.num_links(), 0);
  std::vector<int> crossing(topo_.num_links(), 0);
  for (const Flow* f : pool) {
    for (LinkId lid : f->route) {
      if (crossing[lid.value()] == 0) {
        links.push_back(lid);
        caps[lid.value()] = topo_.link(lid).bandwidth_bps;
      }
      ++crossing[lid.value()];
    }
  }
  std::sort(links.begin(), links.end());

  std::vector<std::size_t> unfixed;
  std::vector<double> rates;
  progressive_fill(pool, links, caps, crossing, unfixed, rates);

  snap.flows.reserve(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    audit::FlowRateEntry e;
    e.id = pool[i]->id.value();
    e.stored_bps = pool[i]->rate;
    e.recomputed_bps = rates[i];
    snap.flows.push_back(e);
  }
  return snap;
}

double FlowManager::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  return it->second.active ? it->second.rate : 0;
}

void FlowManager::collect_pool() {
  realloc_order_.clear();
  // detlint: unordered-loop -- collect-then-sort: 'realloc_order_' is sorted by flow id below
  for (auto& [id, f] : flows_)
    if (f.active && !f.draining) realloc_order_.push_back(&f);
  std::sort(realloc_order_.begin(), realloc_order_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
}

void FlowManager::build_component(const std::vector<LinkId>& seeds) {
  ++epoch_;
  component_.clear();
  fill_links_.clear();
  collect_pool();

  if (!options_.incremental) {
    // Reference mode: the component is the whole pool.
    component_ = realloc_order_;
    for (Flow* f : component_) {
      for (LinkId lid : f->route) {
        if (link_mark_[lid.value()] != epoch_) {
          link_mark_[lid.value()] = epoch_;
          fill_links_.push_back(lid);
        }
      }
    }
    std::sort(fill_links_.begin(), fill_links_.end());
    return;
  }

  for (LinkId lid : seeds) {
    if (link_mark_[lid.value()] != epoch_) {
      link_mark_[lid.value()] = epoch_;
      fill_links_.push_back(lid);
    }
  }

  // Flood the sharing graph: a flow joins the component when any link of
  // its route is dirty, and dirties the rest of its route in turn. The
  // pass repeats until a full sweep adds nothing (bounded by the
  // component's hop diameter). Flow marks reuse the link epoch counter.
  bool grew = true;
  while (grew) {
    grew = false;
    for (Flow* f : realloc_order_) {
      if (f->mark == epoch_) continue;
      bool touches = false;
      for (LinkId lid : f->route) {
        if (link_mark_[lid.value()] == epoch_) {
          touches = true;
          break;
        }
      }
      if (!touches) continue;
      f->mark = epoch_;
      component_.push_back(f);
      grew = true;
      for (LinkId lid : f->route) {
        if (link_mark_[lid.value()] != epoch_) {
          link_mark_[lid.value()] = epoch_;
          fill_links_.push_back(lid);
        }
      }
    }
  }
  // Flows join in flood order (pass by pass); restore the canonical id
  // order the apply step and the full-recompute reference both use.
  std::sort(component_.begin(), component_.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });
  std::sort(fill_links_.begin(), fill_links_.end());
}

void FlowManager::reallocate(const Route& seed_links) {
  if (realloc_counter_) realloc_counter_->add();
  const SimTime now = sim_.now();

  seed_scratch_.assign(seed_links.begin(), seed_links.end());
  // Drain loop: applying new rates can discover flows whose remaining
  // hit zero (simultaneous completions). Those leave the sharing pool
  // immediately, freeing their bandwidth, which seeds another round.
  // Each round retires at least one flow, so the loop terminates.
  while (true) {
    {
      obs::ScopedPhase phase(profiler_, obs::Phase::kFlowDirtySet);
      build_component(seed_scratch_);
    }

    obs::ScopedPhase phase(profiler_, obs::Phase::kFlowRebalance);
    for (LinkId lid : fill_links_) {
      link_cap_[lid.value()] = topo_.link(lid).bandwidth_bps;
      link_crossing_[lid.value()] = 0;
    }
    for (Flow* f : component_)
      for (LinkId lid : f->route) ++link_crossing_[lid.value()];

    progressive_fill(component_, fill_links_, link_cap_, link_crossing_,
                     realloc_unfixed_, component_rates_);

    // Apply in canonical id order. A flow whose share is unchanged keeps
    // its progress, its last_update, and its scheduled completion event
    // — this is the contract that makes incremental and full modes
    // byte-identical: the full recompute produces the same share for
    // every flow outside the affected component, so both modes settle
    // and reschedule the very same flows in the very same order.
    drained_scratch_.clear();
    for (std::size_t i = 0; i < component_.size(); ++i) {
      Flow& f = *component_[i];
      const double new_rate = component_rates_[i];
      if (new_rate == f.rate) continue;
      if (f.rate > 0) {
        double moved = unsettled_bytes(f, now);
        f.remaining -= moved;
        for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
      }
      f.last_update = now;
      f.rate = new_rate;
      if (f.pending_event.valid()) {
        sim_.cancel(f.pending_event);
        f.pending_event = EventId::invalid();
      }
      const FlowId fid = f.id;
      if (f.remaining <= kEpsilonBytes) {
        // Finished within FP dust of this instant: complete now-ish and
        // release the flow's share for the next round.
        f.rate = 0;
        f.draining = true;
        f.pending_event = sim_.schedule_in(0, [this, fid] { complete(fid); });
        drained_scratch_.insert(drained_scratch_.end(), f.route.begin(),
                                f.route.end());
        continue;
      }
      WCS_CHECK_MSG(f.rate > 0, "active flow with zero rate");
      f.pending_event =
          sim_.schedule_in(f.remaining / f.rate, [this, fid] { complete(fid); });
    }

    if (drained_scratch_.empty()) break;
    seed_scratch_.swap(drained_scratch_);
  }
}

}  // namespace wcs::net
