#include "net/flow_manager.h"

#include <algorithm>
#include <limits>

namespace wcs::net {

namespace {
// Below this many bytes a flow is considered done; guards against FP dust
// keeping a flow alive forever.
constexpr double kEpsilonBytes = 1e-6;
}  // namespace

void FlowManager::set_observability(obs::Observability* o) {
  tracer_ = o ? o->tracer() : nullptr;
  profiler_ = o ? o->profiler() : nullptr;
  if (o && o->metrics()) {
    realloc_counter_ = &o->metrics()->counter("net.reallocations");
    // Flow wall time in simulated seconds: WAN transfers of multi-GB
    // files land in the minutes-to-hours range.
    flow_seconds_ = &o->metrics()->histogram("net.flow_seconds", 0, 7200, 72);
  } else {
    realloc_counter_ = nullptr;
    flow_seconds_ = nullptr;
  }
}

FlowId FlowManager::start_flow(NodeId src, NodeId dst, Bytes bytes,
                               FlowCallback on_complete) {
  FlowId id(next_flow_++);
  Flow f;
  f.id = id;
  f.route = topo_.route(src, dst);  // copy: route cache may rehash
  f.total = static_cast<double>(bytes);
  f.remaining = f.total;
  bytes_started_ += f.total;
  f.on_complete = std::move(on_complete);
  f.started = sim_.now();
  f.last_update = sim_.now();
  f.dst = dst;
  SimTime latency = topo_.path_latency(src, dst);
  auto [it, ok] = flows_.emplace(id, std::move(f));
  WCS_CHECK(ok);
  it->second.pending_event =
      sim_.schedule_in(latency, [this, id] { activate(id); });
  return id;
}

void FlowManager::activate(FlowId id) {
  auto it = flows_.find(id);
  WCS_CHECK(it != flows_.end());
  Flow& f = it->second;
  f.active = true;
  f.pending_event = EventId::invalid();
  f.last_update = sim_.now();
  if (f.remaining <= kEpsilonBytes || f.route.empty()) {
    // Zero-byte transfer, or an intra-node transfer: instantaneous once
    // latency has been paid.
    complete(id);
    return;
  }
  reallocate();
}

void FlowManager::complete(FlowId id) {
  auto it = flows_.find(id);
  WCS_CHECK(it != flows_.end());
  Flow& f = it->second;
  // Credit the final stretch since the last settle to the link counters
  // before the flow disappears.
  if (f.active && f.rate > 0) {
    double moved =
        std::min(f.rate * (sim_.now() - f.last_update), f.remaining);
    for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
  }
  FlowCallback cb = std::move(f.on_complete);
  bytes_delivered_ += f.total;
  const SimTime elapsed = sim_.now() - f.started;
  if (flow_seconds_) flow_seconds_->add(elapsed);
  if (tracer_) {
    obs::TraceSpan span;
    span.start = f.started;
    span.duration_s = elapsed;
    span.kind = obs::SpanKind::kTransfer;
    span.track = f.dst.valid() ? f.dst.value() : 0;
    span.bytes = f.total;
    tracer_->record(span);
  }
  flows_.erase(it);
  ++completed_;
  reallocate();
  if (cb) cb(id);
}

bool FlowManager::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  Flow& f = it->second;
  if (f.pending_event.valid()) sim_.cancel(f.pending_event);
  // Settle the bytes this flow moved so link statistics stay accurate.
  if (f.active && f.rate > 0) {
    double moved = f.rate * (sim_.now() - f.last_update);
    for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
  }
  flows_.erase(it);
  ++cancelled_;
  reallocate();
  return true;
}

audit::FlowAuditSnapshot FlowManager::audit_snapshot() const {
  audit::FlowAuditSnapshot snap;
  snap.bytes_started = bytes_started_;
  snap.bytes_delivered = bytes_delivered_;
  snap.flows_completed = completed_;
  snap.flows_cancelled = cancelled_;

  snap.links.reserve(topo_.num_links());
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    const Link& link = topo_.link(LinkId(static_cast<LinkId::underlying_type>(l)));
    audit::LinkUsage usage;
    usage.name = link.name.empty() ? ("link#" + std::to_string(l)) : link.name;
    usage.capacity_bps = link.bandwidth_bps;
    snap.links.push_back(std::move(usage));
  }

  // Canonical order: flows sorted by id. The snapshot is audit-only,
  // but defect messages and per-link FP sums should not depend on a
  // hash table's bucket layout.
  std::vector<const Flow*> ordered;
  ordered.reserve(flows_.size());
  // detlint: unordered-loop -- collect-then-sort: 'ordered' is sorted by flow id below
  for (const auto& [id, f] : flows_) ordered.push_back(&f);
  std::sort(ordered.begin(), ordered.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });

  snap.flows.reserve(flows_.size());
  for (const Flow* fp : ordered) {
    const Flow& f = *fp;
    audit::FlowProgress p;
    p.id = f.id.value();
    p.total_bytes = f.total;
    p.remaining_bytes = f.remaining;
    p.rate_bps = f.active ? f.rate : 0;
    p.active = f.active;
    snap.flows.push_back(p);
    if (!f.active) continue;
    for (LinkId lid : f.route) {
      snap.links[lid.value()].allocated_bps += f.rate;
      ++snap.links[lid.value()].flows;
    }
  }
  return snap;
}

double FlowManager::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0;
  return it->second.active ? it->second.rate : 0;
}

void FlowManager::reallocate() {
  obs::ScopedPhase phase(profiler_, obs::Phase::kFlowReallocation);
  if (realloc_counter_) realloc_counter_->add();
  const SimTime now = sim_.now();

  // Canonical iteration order for the whole pass: active flows sorted
  // by id. Hash-map order happens to be deterministic for a fixed
  // stdlib, but per-link byte settlement (FP sums) and completion-event
  // scheduling (event-id tie-breaks) should not hang on a rehash
  // policy. The scratch vector is hoisted, so the steady state stays
  // allocation-free.
  std::vector<Flow*>& active = realloc_order_;
  active.clear();
  // detlint: unordered-loop -- collect-then-sort: 'active' is sorted by flow id below
  for (auto& [id, f] : flows_)
    if (f.active) active.push_back(&f);
  std::sort(active.begin(), active.end(),
            [](const Flow* a, const Flow* b) { return a->id < b->id; });

  // 1. Settle every active flow's progress at its old rate.
  for (Flow* fp : active) {
    Flow& f = *fp;
    if (f.rate > 0) {
      double moved = f.rate * (now - f.last_update);
      moved = std::min(moved, f.remaining);
      f.remaining -= moved;
      for (LinkId lid : f.route) link_bytes_[lid.value()] += moved;
    }
    f.last_update = now;
    if (f.pending_event.valid()) {
      sim_.cancel(f.pending_event);
      f.pending_event = EventId::invalid();
    }
  }

  // 2. Progressive filling: repeatedly find the most constrained link
  // (smallest per-flow fair share), freeze its flows at that share, and
  // subtract their demand from the other links they cross. The worklist
  // and the per-link capacity/crossing tables are hoisted members
  // (indexed by dense link id), so this loop does not allocate once the
  // scratch has grown to the topology's size.
  std::vector<Flow*>& unfixed = realloc_unfixed_;
  unfixed.assign(active.begin(), active.end());  // already sorted by id

  link_cap_.assign(topo_.num_links(), 0);
  link_crossing_.assign(topo_.num_links(), 0);
  for (Flow* f : unfixed) {
    for (LinkId lid : f->route) {
      link_cap_[lid.value()] = topo_.link(lid).bandwidth_bps;
      ++link_crossing_[lid.value()];
    }
  }

  while (!unfixed.empty()) {
    // Find the bottleneck link: min fair share among links still crossed
    // by unfixed flows. The ascending scan with a strict `<` picks the
    // lowest link id among ties — the same (share, id) order the old
    // map-based scan enforced explicitly.
    double best_share = std::numeric_limits<double>::infinity();
    LinkId::underlying_type best_link = 0;
    bool found = false;
    for (std::size_t lid = 0; lid < link_cap_.size(); ++lid) {
      int n = link_crossing_[lid];
      if (n <= 0) continue;
      double share = link_cap_[lid] / n;
      if (share < best_share) {
        best_share = share;
        best_link = static_cast<LinkId::underlying_type>(lid);
        found = true;
      }
    }
    WCS_CHECK(found);

    // Freeze every unfixed flow crossing the bottleneck at best_share;
    // compact survivors in place (same order the old copy preserved).
    std::size_t kept = 0;
    for (Flow* f : unfixed) {
      bool hits = std::find_if(f->route.begin(), f->route.end(),
                               [&](LinkId l) {
                                 return l.value() == best_link;
                               }) != f->route.end();
      if (!hits) {
        unfixed[kept++] = f;
        continue;
      }
      f->rate = best_share;
      for (LinkId lid : f->route) {
        link_cap_[lid.value()] -= best_share;
        if (link_cap_[lid.value()] < 0) link_cap_[lid.value()] = 0;
        --link_crossing_[lid.value()];
      }
    }
    unfixed.resize(kept);
  }

  // 3. Reschedule completion events at the new rates, in the same
  // canonical order (event ids break timestamp ties).
  for (Flow* fp : active) {
    Flow& f = *fp;
    const FlowId fid = f.id;
    if (f.remaining <= kEpsilonBytes) {
      f.pending_event = sim_.schedule_in(0, [this, fid] { complete(fid); });
      f.rate = 0;
      continue;
    }
    WCS_CHECK_MSG(f.rate > 0, "active flow with zero rate");
    f.pending_event =
        sim_.schedule_in(f.remaining / f.rate, [this, fid] { complete(fid); });
  }
}

}  // namespace wcs::net
