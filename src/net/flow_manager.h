// Flow-level network simulation with max-min fair bandwidth sharing.
//
// This reproduces the essential behaviour of SimGrid's fluid TCP model:
// each active transfer is a flow along a fixed route; whenever the set of
// active flows changes, link bandwidth is re-divided among flows by
// progressive filling (max-min fairness) and each flow's completion event
// is rescheduled for its new rate.
//
// Latency is charged once per flow, up front: a flow spends
// path_latency(src, dst) in a "connecting" phase during which it consumes
// no bandwidth, then joins the bandwidth-sharing pool.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/checkers.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "net/topology.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace wcs::net {

using FlowCallback = std::function<void(FlowId)>;

class FlowManager {
 public:
  FlowManager(sim::Simulator& simulator, const Topology& topology)
      : sim_(simulator), topo_(topology),
        flows_(FlowMapAlloc(&flow_arena_)),
        link_bytes_(topology.num_links(), 0) {}

  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  // Attach instruments (nullptr detaches). Read-only: tracing a transfer
  // or timing a reallocation never changes rates, order, or events.
  void set_observability(obs::Observability* o);

  // Start a transfer of `bytes` from src to dst; `on_complete` fires when
  // the last byte arrives. Zero-byte flows complete after path latency.
  FlowId start_flow(NodeId src, NodeId dst, Bytes bytes,
                    FlowCallback on_complete);

  // Abort an in-progress flow; its callback never fires. Returns false if
  // the flow already completed (or never existed). Bytes already moved
  // stay counted in the link statistics.
  bool cancel(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t completed_flows() const { return completed_; }
  [[nodiscard]] std::uint64_t cancelled_flows() const { return cancelled_; }

  // Delivery ledger: total payload bytes of flows ever started, and of
  // flows that ran to completion (a completed flow delivered its full
  // size by definition). Cancelled flows never enter `bytes_delivered`.
  [[nodiscard]] double bytes_started() const { return bytes_started_; }
  [[nodiscard]] double bytes_delivered() const { return bytes_delivered_; }

  // Read-only state snapshot for the invariant auditor: per-link
  // allocation vs capacity, per-flow byte progress, and the delivery
  // ledger (audit::check_flow_conservation).
  [[nodiscard]] audit::FlowAuditSnapshot audit_snapshot() const;

  // Bytes carried by each link so far (including partial transfers of
  // cancelled flows).
  [[nodiscard]] double link_bytes(LinkId id) const {
    return link_bytes_.at(id.value());
  }

  // Current max-min fair rate of a flow, bytes/second. 0 while the flow is
  // still in its latency phase. Primarily for tests.
  [[nodiscard]] double flow_rate(FlowId id) const;

  // The arena backing the flow table (memory-layout audit / bench hook).
  [[nodiscard]] const common::NodeArena& arena() const { return flow_arena_; }

 private:
  struct Flow {
    FlowId id;
    Route route;             // empty for same-node transfers
    double total = 0;        // payload size at start_flow()
    double remaining = 0;    // bytes left (double: fluid model)
    double rate = 0;         // current allocation, bytes/s
    SimTime started = 0;     // when start_flow() was called
    SimTime last_update = 0; // when `remaining` was last settled
    NodeId dst;              // receiving node (trace track)
    bool active = false;     // false during the latency phase
    EventId pending_event;   // activation or completion event
    FlowCallback on_complete;
  };

  void activate(FlowId id);
  void complete(FlowId id);
  // Settle progress at the current rates, recompute the max-min
  // allocation, and reschedule completion events.
  void reallocate();

  // Flow-table nodes recycle through a per-manager arena: flow start /
  // completion churn is the network side's entire allocation traffic.
  // The bucket array exceeds the small-object ceiling and goes through
  // the arena's (counted) large path. Node placement cannot change
  // unordered_map iteration order — that is fixed by the bucket count
  // and insertion sequence, both allocator-independent.
  using FlowMapAlloc = common::ArenaAlloc<std::pair<const FlowId, Flow>>;
  using FlowMap = std::unordered_map<FlowId, Flow, std::hash<FlowId>,
                                     std::equal_to<FlowId>, FlowMapAlloc>;

  sim::Simulator& sim_;
  const Topology& topo_;
  common::NodeArena flow_arena_;  // declared before flows_ (dtor order)
  FlowMap flows_;
  std::uint64_t next_flow_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  double bytes_started_ = 0;
  double bytes_delivered_ = 0;
  std::vector<double> link_bytes_;

  // reallocate() scratch, hoisted so the progressive-filling loop runs
  // allocation-free: the canonical (id-sorted) active-flow order, the
  // worklist consumed by progressive filling, plus flat per-link
  // capacity/crossing tables indexed by dense link id (the previous
  // implementation built two unordered_maps per reallocation).
  std::vector<Flow*> realloc_order_;
  std::vector<Flow*> realloc_unfixed_;
  std::vector<double> link_cap_;
  std::vector<int> link_crossing_;

  // Observability (all null when disabled).
  obs::EventTracer* tracer_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::Counter* realloc_counter_ = nullptr;
  obs::FixedHistogram* flow_seconds_ = nullptr;
};

}  // namespace wcs::net
