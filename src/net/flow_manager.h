// Flow-level network simulation with max-min fair bandwidth sharing.
//
// This reproduces the essential behaviour of SimGrid's fluid TCP model:
// each active transfer is a flow along a fixed route; whenever the set of
// active flows changes, link bandwidth is re-divided among flows by
// progressive filling (max-min fairness) and each flow's completion event
// is rescheduled for its new rate.
//
// Reallocation is INCREMENTAL by default (FlowManagerOptions::incremental,
// CLI --full-realloc for the reference mode): a flow start/finish seeds a
// dirty set with the links it traverses, the affected connected component
// of the flow<->link sharing graph is flooded out from those seeds, and
// progressive filling runs over that component only. Max-min fair shares
// decompose exactly by connected component, so rates outside the
// component cannot change; inside it they are recomputed bitwise
// identically to a from-scratch recompute (the bottleneck scan visits the
// component's links in ascending id order, the same (share, link-id)
// order the full scan resolves ties by). A flow is settled — progress
// credited, completion event rescheduled — only when its rate actually
// changed, in both modes, so the two modes execute the very same
// settle/schedule operation sequence and stay byte-identical
// (tests/test_flow_incremental.cc is the differential proof harness; the
// `flow-rates` audit checker cross-checks live rates against a
// from-scratch recompute at every audit epoch).
//
// Latency is charged once per flow, up front: a flow spends
// path_latency(src, dst) in a "connecting" phase during which it consumes
// no bandwidth, then joins the bandwidth-sharing pool.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/checkers.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"
#include "net/topology.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace wcs::net {

using FlowCallback = std::function<void(FlowId)>;

struct FlowManagerOptions {
  // Rebalance only the affected connected component on flow churn
  // (default). false = recompute every flow's share from scratch on every
  // change — the reference mode behind the scenario CLI's --full-realloc,
  // byte-identical by contract (mirrors --flat-index from the sharded
  // pending-task index).
  bool incremental = true;
};

class FlowManager {
 public:
  FlowManager(sim::Simulator& simulator, const Topology& topology,
              FlowManagerOptions options = {})
      : sim_(simulator), topo_(topology), options_(options),
        flows_(FlowMapAlloc(&flow_arena_)),
        link_bytes_(topology.num_links(), 0),
        link_cap_(topology.num_links(), 0),
        link_crossing_(topology.num_links(), 0),
        link_mark_(topology.num_links(), 0) {}

  FlowManager(const FlowManager&) = delete;
  FlowManager& operator=(const FlowManager&) = delete;

  // Attach instruments (nullptr detaches). Read-only: tracing a transfer
  // or timing a reallocation never changes rates, order, or events.
  void set_observability(obs::Observability* o);

  // Start a transfer of `bytes` from src to dst; `on_complete` fires when
  // the last byte arrives. Zero-byte flows complete after path latency.
  FlowId start_flow(NodeId src, NodeId dst, Bytes bytes,
                    FlowCallback on_complete);

  // Abort an in-progress flow; its callback never fires. Returns false if
  // the flow already completed (or never existed). Bytes already moved
  // stay counted in the link statistics.
  bool cancel(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t completed_flows() const { return completed_; }
  [[nodiscard]] std::uint64_t cancelled_flows() const { return cancelled_; }

  // Delivery ledger: total payload bytes of flows ever started, and of
  // flows that ran to completion (a completed flow delivered its full
  // size by definition). Cancelled flows never enter `bytes_delivered`.
  [[nodiscard]] double bytes_started() const { return bytes_started_; }
  [[nodiscard]] double bytes_delivered() const { return bytes_delivered_; }

  // Read-only state snapshot for the invariant auditor: per-link
  // allocation vs capacity, per-flow byte progress, and the delivery
  // ledger (audit::check_flow_conservation). Progress is settled
  // on-the-fly to now(): flows are only byte-settled when their rate
  // changes, so the stored `remaining` lags the fluid model between rate
  // changes.
  [[nodiscard]] audit::FlowAuditSnapshot audit_snapshot() const;

  // Stored per-flow rates next to a from-scratch progressive-filling
  // recompute over the same pool (audit::check_flow_rates). The live
  // incremental rates must match the recompute bitwise — this is the
  // invariant the dirty-component reallocation rests on.
  [[nodiscard]] audit::FlowRatesSnapshot audit_rates_snapshot() const;

  // Bytes carried by each link so far (including partial transfers of
  // cancelled flows). Settled at rate changes and flow completion, like
  // `remaining`.
  [[nodiscard]] double link_bytes(LinkId id) const {
    return link_bytes_.at(id.value());
  }

  // Current max-min fair rate of a flow, bytes/second. 0 while the flow is
  // still in its latency phase. Primarily for tests.
  [[nodiscard]] double flow_rate(FlowId id) const;

  // The arena backing the flow table (memory-layout audit / bench hook).
  [[nodiscard]] const common::NodeArena& arena() const { return flow_arena_; }

 private:
  struct Flow {
    FlowId id;
    Route route;             // empty for same-node transfers
    double total = 0;        // payload size at start_flow()
    double remaining = 0;    // bytes left as of last_update (fluid model)
    double rate = 0;         // current allocation, bytes/s
    SimTime started = 0;     // when start_flow() was called
    SimTime last_update = 0; // when `remaining` was last settled
    NodeId dst;              // receiving node (trace track)
    bool active = false;     // false during the latency phase
    bool draining = false;   // remaining hit zero; completion is imminent
                             // and the flow no longer shares bandwidth
    std::uint64_t mark = 0;  // dirty-component epoch stamp (scratch)
    EventId pending_event;   // activation or completion event
    FlowCallback on_complete;
  };

  void activate(FlowId id);
  void complete(FlowId id);

  // Recompute the max-min allocation after the flow set changed.
  // `seed_links` are the links traversed by the added/removed flow; in
  // incremental mode only the connected component reachable from them is
  // rebalanced, in full mode the seeds are ignored and every pool flow
  // is refilled. Either way, a flow is settled and its completion event
  // rescheduled only if its rate changed.
  void reallocate(const Route& seed_links);

  // Gather the active bandwidth-sharing flows (active, not draining)
  // into `realloc_order_`, sorted by flow id — the canonical iteration
  // order for the whole pass.
  void collect_pool();

  // Flood the sharing graph out from `seeds` (or take the whole pool in
  // full mode): fills component_ (id-sorted flows whose rate may change)
  // and fill_links_ (ascending link ids they traverse).
  void build_component(const std::vector<LinkId>& seeds);

  // Progress credited since the flow's last settle at its current rate.
  [[nodiscard]] double unsettled_bytes(const Flow& f, SimTime now) const;

  // Flow-table nodes recycle through a per-manager arena: flow start /
  // completion churn is the network side's entire allocation traffic.
  // The bucket array exceeds the small-object ceiling and goes through
  // the arena's (counted) large path. Node placement cannot change
  // unordered_map iteration order — that is fixed by the bucket count
  // and insertion sequence, both allocator-independent.
  using FlowMapAlloc = common::ArenaAlloc<std::pair<const FlowId, Flow>>;
  using FlowMap = std::unordered_map<FlowId, Flow, std::hash<FlowId>,
                                     std::equal_to<FlowId>, FlowMapAlloc>;

  sim::Simulator& sim_;
  const Topology& topo_;
  FlowManagerOptions options_;
  common::NodeArena flow_arena_;  // declared before flows_ (dtor order)
  FlowMap flows_;
  std::uint64_t next_flow_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t cancelled_ = 0;
  double bytes_started_ = 0;
  double bytes_delivered_ = 0;
  std::vector<double> link_bytes_;

  // reallocate() scratch, hoisted so the steady state runs
  // allocation-free: the canonical (id-sorted) pool, the affected
  // component and its rate vector, the worklist consumed by progressive
  // filling, flat per-link capacity/crossing/epoch tables indexed by
  // dense link id, the ascending candidate-link list the bottleneck scan
  // walks, and the seed buffers the drain loop recycles.
  std::vector<Flow*> realloc_order_;
  std::vector<Flow*> component_;
  std::vector<double> component_rates_;
  std::vector<std::size_t> realloc_unfixed_;
  std::vector<double> link_cap_;
  std::vector<int> link_crossing_;
  std::vector<std::uint64_t> link_mark_;
  std::vector<LinkId> fill_links_;
  std::vector<LinkId> seed_scratch_;
  std::vector<LinkId> drained_scratch_;
  std::uint64_t epoch_ = 0;

  // Observability (all null when disabled).
  obs::EventTracer* tracer_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::Counter* realloc_counter_ = nullptr;
  obs::FixedHistogram* flow_seconds_ = nullptr;
};

}  // namespace wcs::net
