#include "net/tiers.h"

#include <string>

namespace wcs::net {

namespace {

// Jitter a base value by ±rel, multiplicatively.
double jittered(Rng& rng, double base, double rel) {
  return base * rng.uniform_real(1.0 - rel, 1.0 + rel);
}

}  // namespace

GridTopology build_tiers_topology(const TiersParams& p) {
  WCS_CHECK(p.num_sites > 0);
  WCS_CHECK(p.workers_per_site > 0);
  WCS_CHECK(p.sites_per_man > 0);
  WCS_CHECK(p.jitter >= 0 && p.jitter < 1.0);

  Rng rng(p.seed);
  GridTopology out;
  Topology& t = out.topology;

  // --- WAN core ---------------------------------------------------------
  NodeId core = t.add_node("wan-core");
  out.scheduler_node = t.add_node("scheduler");
  out.file_server_node = t.add_node("file-server");
  t.add_link(core, out.scheduler_node, jittered(rng, p.core_bandwidth_bps, p.jitter),
             jittered(rng, p.core_latency_s, p.jitter), "core-scheduler");
  t.add_link(core, out.file_server_node, jittered(rng, p.core_bandwidth_bps, p.jitter),
             jittered(rng, p.core_latency_s, p.jitter), "core-fileserver");

  // --- MAN tier ---------------------------------------------------------
  int num_mans = (p.num_sites + p.sites_per_man - 1) / p.sites_per_man;
  std::vector<NodeId> mans;
  mans.reserve(static_cast<std::size_t>(num_mans));
  for (int m = 0; m < num_mans; ++m) {
    NodeId man = t.add_node("man-" + std::to_string(m));
    t.add_link(core, man, jittered(rng, p.wan_bandwidth_bps, p.jitter),
               jittered(rng, p.wan_latency_s, p.jitter),
               "wan-" + std::to_string(m));
    mans.push_back(man);
  }

  // --- Sites ------------------------------------------------------------
  out.data_server_nodes.reserve(static_cast<std::size_t>(p.num_sites));
  out.worker_nodes.resize(static_cast<std::size_t>(p.num_sites));
  out.site_uplinks.reserve(static_cast<std::size_t>(p.num_sites));
  for (int s = 0; s < p.num_sites; ++s) {
    NodeId man = mans[static_cast<std::size_t>(s / p.sites_per_man)];
    std::string site = "site-" + std::to_string(s);

    NodeId gw = t.add_node(site + "/gateway");
    // MAN segment from the gateway toward the core.
    t.add_link(man, gw, jittered(rng, p.man_bandwidth_bps, p.jitter),
               jittered(rng, p.man_latency_s, p.jitter), site + "/man");
    // The site's shared outgoing link: every host below the switch crosses
    // it to leave the site.
    NodeId sw = t.add_node(site + "/switch");
    LinkId uplink = t.add_link(
        gw, sw, jittered(rng, p.uplink_bandwidth_bps, p.jitter),
        jittered(rng, p.uplink_latency_s, p.jitter), site + "/uplink");
    out.site_uplinks.push_back(uplink);

    NodeId ds = t.add_node(site + "/data-server");
    t.add_link(sw, ds, jittered(rng, p.lan_bandwidth_bps, p.jitter),
               p.lan_latency_s, site + "/lan-ds");
    out.data_server_nodes.push_back(ds);

    auto& workers = out.worker_nodes[static_cast<std::size_t>(s)];
    workers.reserve(static_cast<std::size_t>(p.workers_per_site));
    for (int w = 0; w < p.workers_per_site; ++w) {
      NodeId wn = t.add_node(site + "/worker-" + std::to_string(w));
      t.add_link(sw, wn, jittered(rng, p.lan_bandwidth_bps, p.jitter),
                 p.lan_latency_s, site + "/lan-w" + std::to_string(w));
      workers.push_back(wn);
    }
  }

  WCS_CHECK(t.connected());
  return out;
}

}  // namespace wcs::net
