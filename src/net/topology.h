// Network topology: nodes, duplex links, and latency-shortest-path routing.
//
// The topology is static for the lifetime of a simulation. Routes are
// computed with Dijkstra (edge weight = latency, deterministic
// tie-breaking) and cached per source node.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/units.h"

namespace wcs::net {

struct Link {
  LinkId id;
  NodeId a;
  NodeId b;
  double bandwidth_bps = 0;  // bytes per second
  SimTime latency_s = 0;
  std::string name;
};

struct Node {
  NodeId id;
  std::string name;
  std::vector<LinkId> links;  // incident links
};

// A route is the ordered list of links from src to dst.
using Route = std::vector<LinkId>;

class Topology {
 public:
  NodeId add_node(std::string name);
  LinkId add_link(NodeId a, NodeId b, double bandwidth_bps, SimTime latency_s,
                  std::string name = {});

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] const Node& node(NodeId id) const {
    WCS_CHECK(id.valid() && id.value() < nodes_.size());
    return nodes_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    WCS_CHECK(id.valid() && id.value() < links_.size());
    return links_[id.value()];
  }

  // Route from src to dst. Returns an empty route when src == dst.
  // Throws if dst is unreachable.
  [[nodiscard]] const Route& route(NodeId src, NodeId dst) const;

  // Sum of link latencies along route(src, dst).
  [[nodiscard]] SimTime path_latency(NodeId src, NodeId dst) const;

  // Minimum link bandwidth along route(src, dst); +inf when src == dst.
  [[nodiscard]] double path_bandwidth(NodeId src, NodeId dst) const;

  // True if every node can reach every other node.
  [[nodiscard]] bool connected() const;

 private:
  // Per-source shortest path tree: parent link of each node.
  struct RouteTable {
    std::vector<LinkId> parent_link;  // indexed by node
    std::unordered_map<NodeId, Route> routes;
  };

  void build_table(NodeId src) const;
  [[nodiscard]] NodeId other_end(const Link& l, NodeId from) const {
    return l.a == from ? l.b : l.a;
  }

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  mutable std::unordered_map<NodeId, RouteTable> tables_;
};

}  // namespace wcs::net
