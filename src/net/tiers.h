// Hierarchical grid topology generator in the spirit of the Tiers tool
// (Doar, Globecom'96) used by the paper: a WAN core, MAN routers beneath
// it, and LAN-attached sites beneath those. Each site has a gateway; all
// hosts of a site (workers + data server) hang off that gateway and
// therefore share the site's single outgoing link — the structural
// property the paper's evaluation relies on (Sec. 5.2).
//
// The global scheduler and the external file server attach to the WAN
// core. Link bandwidths/latencies are jittered per topology seed, so the
// paper's "5 different topologies, results averaged" protocol maps to 5
// seeds here.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/topology.h"

namespace wcs::net {

struct TiersParams {
  int num_sites = 10;
  int workers_per_site = 1;
  int sites_per_man = 4;  // sites attached to each MAN router

  // Baseline link characteristics; each concrete link's bandwidth and
  // latency are jittered by ±`jitter` (relative) per topology seed.
  double wan_bandwidth_bps = mbps(155.0);   // MAN router <-> WAN core
  SimTime wan_latency_s = 0.030;
  double man_bandwidth_bps = mbps(45.0);    // site gateway <-> MAN router
  SimTime man_latency_s = 0.010;
  double uplink_bandwidth_bps = mbps(2.0);  // site shared uplink: gateway side
  SimTime uplink_latency_s = 0.005;
  double lan_bandwidth_bps = mbps(1000.0);  // host <-> site switch
  SimTime lan_latency_s = 1e-4;
  double core_bandwidth_bps = mbps(622.0);  // scheduler / file server at core
  SimTime core_latency_s = 1e-3;

  double jitter = 0.25;        // relative bandwidth/latency jitter
  std::uint64_t seed = 1;
};

// The generated topology plus the attachment points the grid layer needs.
struct GridTopology {
  Topology topology;
  NodeId scheduler_node;                  // global scheduler host
  NodeId file_server_node;                // external file server host
  std::vector<NodeId> data_server_nodes;  // one per site
  std::vector<std::vector<NodeId>> worker_nodes;  // [site][worker]
  std::vector<LinkId> site_uplinks;       // the shared outgoing link per site
};

[[nodiscard]] GridTopology build_tiers_topology(const TiersParams& params);

}  // namespace wcs::net
