// Extension E1: data/task replication mechanisms (paper Sec. 3.1/3.2).
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "ext_replication"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("ext_replication", argc, argv);
}
