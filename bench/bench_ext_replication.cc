// Extension bench E1: the paper's Sec. 3.1/3.2 claims about replication.
//
//   1. Task-centric scheduling NEEDS auxiliary mechanisms (data
//      replication / task replication) to fix the imbalance its
//      assignment creates.
//   2. For worker-centric scheduling both mechanisms are ORTHOGONAL:
//      "they might help the performance ... but are not necessary."
//
// We run storage affinity and rest.2 with and without (a) proactive data
// replication (Ranganathan & Foster style) and (b) task replication, on
// the paper workload at Table 1 defaults, and report the deltas.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  struct Variant {
    std::string label;
    sched::SchedulerSpec spec;
    bool data_replication;
  };
  auto wc = [](int n, bool task_repl) {
    sched::SchedulerSpec s;
    s.algorithm = sched::Algorithm::kRest;
    s.choose_n = n;
    s.task_replication = task_repl;
    return s;
  };
  sched::SchedulerSpec sa;
  sa.algorithm = sched::Algorithm::kStorageAffinity;

  std::vector<Variant> variants = {
      {"storage-affinity", sa, false},
      {"storage-affinity +data-repl", sa, true},
      {"rest.2", wc(2, false), false},
      {"rest.2 +data-repl", wc(2, false), true},
      {"rest.2 +task-repl", wc(2, true), false},
      {"rest.2 +both", wc(2, true), true},
  };

  std::cout << "Extension E1: replication mechanisms (Table 1 defaults)\n\n";
  std::cout << std::left << std::setw(32) << "variant" << std::right
            << std::setw(16) << "makespan (min)" << std::setw(18)
            << "transfers/site" << std::setw(16) << "repl. files"
            << std::setw(14) << "replicas" << '\n';

  std::vector<bench::SweepPoint> points;
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const Variant& v = variants[i];
    grid::GridConfig c = bench::paper_config(opt);
    if (v.data_replication) {
      replication::DataReplicatorParams rp;
      rp.popularity_threshold = 8;
      rp.placement = replication::Placement::kLeastLoaded;
      c.replication = rp;
    }
    std::vector<metrics::RunResult> runs =
        grid::run_seeds(c, job, v.spec, seeds, opt.jobs);
    const double num_runs = static_cast<double>(runs.size());
    double makespan = 0, transfers = 0, repl_files = 0, replicas = 0;
    for (const auto& r : runs) {
      makespan += r.makespan_minutes() / num_runs;
      transfers += r.transfers_per_site() / num_runs;
      repl_files += static_cast<double>(r.files_replicated) / num_runs;
      replicas += static_cast<double>(r.replicas_started) / num_runs;
    }
    std::cout << std::left << std::setw(32) << v.label << std::right
              << std::fixed << std::setprecision(0) << std::setw(16)
              << makespan << std::setprecision(1) << std::setw(18)
              << transfers << std::setprecision(0) << std::setw(16)
              << repl_files << std::setw(14) << replicas << '\n';
    bench::progress(v.label + " done");

    metrics::AveragedResult avg = metrics::average(runs);
    avg.scheduler = v.label;  // distinguish ±replication variants
    bench::SweepPoint pt;
    pt.x = static_cast<double>(i);
    pt.x_label = v.label;
    pt.wall_seconds = bench::elapsed_s(opt);
    pt.rows.push_back(std::move(avg));
    points.push_back(std::move(pt));
  }

  auto phases =
      bench::trace_representative_run(opt, bench::paper_config(opt), job);
  bench::write_report("Extension E1: replication mechanisms", "variant",
                      "makespan (minutes)", points, opt,
                      phases ? &*phases : nullptr);

  std::cout << "\nreading: data replication should recover a chunk of "
               "storage affinity's gap;\nfor rest.2 both mechanisms should "
               "move the needle far less (orthogonality).\n";
  return 0;
}
