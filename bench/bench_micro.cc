// google-benchmark microbenchmarks for the hot paths: event kernel
// throughput, max-min reallocation, scheduler weight scans, cache churn.
// These guard the "6,000-task experiment in seconds" property the figure
// benches rely on.
#include <benchmark/benchmark.h>

#include <memory>

#include "common/thread_pool.h"
#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "net/flow_manager.h"
#include "net/tiers.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "storage/block_store.h"
#include "storage/file_cache.h"
#include "workload/coadd.h"

namespace {

using namespace wcs;

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i)
      sim.schedule_in((i * 37) % 1000, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventKernel);

void BM_FlowReallocation(benchmark::State& state) {
  const int kFlows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::TiersParams tp;
    tp.num_sites = 10;
    net::GridTopology g = net::build_tiers_topology(tp);
    net::FlowManager flows(sim, g.topology);
    for (int i = 0; i < kFlows; ++i)
      flows.start_flow(g.file_server_node,
                       g.data_server_nodes[i % g.data_server_nodes.size()],
                       megabytes(25), [](FlowId) {});
    sim.run();
    benchmark::DoNotOptimize(flows.completed_flows());
  }
  state.SetItemsProcessed(state.iterations() * kFlows);
}
BENCHMARK(BM_FlowReallocation)->Arg(16)->Arg(64)->Arg(256);

void BM_Reallocate(benchmark::State& state, bool incremental) {
  // Steady-state reallocation cost at N concurrent flows. The platform is
  // the grid's LAN sharing pattern: disjoint site switches, four worker
  // flows per site, so the sharing graph is many small components. Each
  // iteration churns one site-0 flow (cancel, start, activate) — two
  // reallocations. Full mode refills the whole N-flow pool both times;
  // incremental mode floods and refills only the ~4-flow component. Flow
  // sizes are effectively infinite, so no completion ever interferes.
  const int kFlows = static_cast<int>(state.range(0));
  const int kPerSite = 4;
  const int kSites = (kFlows + kPerSite - 1) / kPerSite;
  sim::Simulator sim;
  net::Topology topo;
  std::vector<NodeId> switches;
  std::vector<NodeId> workers;
  for (int s = 0; s < kSites; ++s) {
    switches.push_back(topo.add_node("sw"));
    for (int w = 0; w < kPerSite; ++w) {
      workers.push_back(topo.add_node("w"));
      topo.add_link(switches.back(), workers.back(), 1e8, 0.0);
    }
  }
  net::FlowManager flows(sim, topo,
                         net::FlowManagerOptions{.incremental = incremental});
  std::vector<FlowId> ids;
  ids.reserve(static_cast<std::size_t>(kFlows));
  for (int i = 0; i < kFlows; ++i)
    ids.push_back(flows.start_flow(
        switches[static_cast<std::size_t>(i / kPerSite)],
        workers[static_cast<std::size_t>(i)], megabytes(1e9), [](FlowId) {}));
  for (int i = 0; i < kFlows; ++i) sim.step();  // t=0 activations

  std::size_t victim = 0;
  for (auto _ : state) {
    flows.cancel(ids[victim]);
    ids[victim] = flows.start_flow(switches[0], workers[victim],
                                   megabytes(1e9), [](FlowId) {});
    sim.step();  // the replacement's activation -> second reallocation
    victim = (victim + 1) % kPerSite;
  }
  benchmark::DoNotOptimize(flows.cancelled_flows());
  state.SetItemsProcessed(state.iterations() * 2);  // reallocations
}

void BM_Reallocate_full(benchmark::State& state) {
  BM_Reallocate(state, /*incremental=*/false);
}
void BM_Reallocate_incremental(benchmark::State& state) {
  BM_Reallocate(state, /*incremental=*/true);
}
BENCHMARK(BM_Reallocate_full)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Reallocate_incremental)->Arg(10)->Arg(100)->Arg(1000);

void BM_CacheChurn(benchmark::State& state) {
  storage::FileCache cache(6000, storage::EvictionPolicy::kLru);
  unsigned i = 0;
  for (auto _ : state) {
    FileId f(i % 20000);
    if (!cache.contains(f)) cache.insert(f);
    cache.record_access(f);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheChurn);

// Cost of the pin -> insert -> unpin cycle (one per scheduled task) in
// both cache modes, over a catalog of N overlapping coadd-window files.
// Whole-file mode is the pre-block-store reference; block mode adds the
// extent-union refcount walk per transition. The `bytes_saved` counter
// reports the dedup savings block mode banks over the run (always 0 in
// whole-file mode) — the wall-time delta is the price of those bytes.
void BM_BlockPin(benchmark::State& state, bool block_mode) {
  const std::size_t kFiles = static_cast<std::size_t>(state.range(0));
  workload::FileCatalog catalog(kFiles, megabytes(25.0));
  storage::BlockStoreParams bp;
  bp.content_overlap = 0.5;  // adjacent coadd windows share half their blocks
  storage::BlockMap map(catalog, bp);

  storage::FileCache cache(kFiles / 4, storage::EvictionPolicy::kLru);
  if (block_mode) cache.attach_block_store(&map);

  // Cyclic sweep over a catalog 4x the cache: every touch past the first
  // lap misses (a scan defeats LRU), so each op pays insert + eviction +
  // pin + unpin, and in block mode the freshly-evicted neighbour's shared
  // blocks are re-covered by the adjacent resident on the next insert.
  double saved = 0;
  unsigned i = 0;
  for (auto _ : state) {
    FileId f(i % kFiles);
    if (!cache.contains(f)) {
      if (block_mode) saved += static_cast<double>(cache.file_bytes(f)) -
                               static_cast<double>(cache.missing_bytes(f));
      cache.insert(f);
    }
    cache.pin(f);
    cache.record_access(f);
    cache.unpin(f);
    ++i;
  }
  benchmark::DoNotOptimize(cache.size());
  state.SetItemsProcessed(state.iterations());
  state.counters["bytes_saved"] =
      benchmark::Counter(saved, benchmark::Counter::kDefaults);
}
void BM_BlockPin_whole(benchmark::State& state) {
  BM_BlockPin(state, /*block_mode=*/false);
}
void BM_BlockPin_block(benchmark::State& state) {
  BM_BlockPin(state, /*block_mode=*/true);
}
BENCHMARK(BM_BlockPin_whole)->Arg(10000)->Arg(100000);
BENCHMARK(BM_BlockPin_block)->Arg(10000)->Arg(100000);

void BM_SchedulerWeightScan(benchmark::State& state) {
  // Full worker-centric request cycle cost on a paper-scale pending set.
  workload::CoaddParams cp;
  cp.num_tasks = static_cast<std::size_t>(state.range(0));
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.capacity_files = 6000;
  for (auto _ : state) {
    state.PauseTiming();
    sched::SchedulerSpec spec;
    spec.algorithm = sched::Algorithm::kCombined;
    grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run().makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerWeightScan)->Unit(benchmark::kMillisecond)->Arg(1000);

void BM_EventKernelWithCancellation(benchmark::State& state) {
  // Schedule/cancel churn: every other event is cancelled before firing,
  // the pattern worker timeouts and replica cancellations produce. Guards
  // the lazy-deletion scheme (no hashing on schedule/cancel/pop).
  for (auto _ : state) {
    sim::Simulator sim;
    std::vector<EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i)
      ids.push_back(sim.schedule_in((i * 37) % 1000, [] {}));
    for (int i = 0; i < 10000; i += 2) sim.cancel(ids[i]);
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventKernelWithCancellation);

void BM_ChooseTaskCombined(benchmark::State& state) {
  // Per-decision cost of the combined metric at a paper-scale pending
  // bag: weight() runs the totals query (incremental aggregates) plus one
  // weight evaluation — the per-task unit of the choose_task scan.
  workload::CoaddParams cp;
  cp.num_tasks = static_cast<std::size_t>(state.range(0));
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.capacity_files = 6000;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kWorkqueue;  // engine substrate only
  grid::GridSimulation engine(config, job, sched::make_scheduler(spec));
  sched::WorkerCentricParams params;
  params.metric = sched::Metric::kCombined;
  sched::WorkerCentricScheduler scheduler(params);
  scheduler.attach(engine);
  scheduler.on_job_submitted();
  unsigned i = 0;
  for (auto _ : state) {
    TaskId t(i % static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(scheduler.weight(SiteId(i % 10), t));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChooseTaskCombined)->Arg(1000)->Arg(6000);

void BM_ChooseTask(benchmark::State& state, bool use_sharded_index) {
  // Full ChooseTask(n) request cost at a large pending bag: the flat
  // reference scan is O(|pending|) per request, the sharded index
  // (sched/sharded_index.h) walks the top buckets in O(log B + n). Both
  // run the combined metric with n = 2 — the most expensive
  // configuration (every bucket is visited, with a per-bucket early
  // break) and the one the acceptance speedup is measured on. The
  // workqueue spec only provides the engine substrate; the measured
  // scheduler is standalone, and peek_choice resolves a decision without
  // consuming a task, so the bag stays at full size for every iteration.
  workload::CoaddParams cp;
  cp.num_tasks = static_cast<std::size_t>(state.range(0));
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 4;
  config.capacity_files = 6000;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kWorkqueue;  // engine substrate only
  grid::GridSimulation engine(config, job, sched::make_scheduler(spec));
  sched::WorkerCentricParams params;
  params.metric = sched::Metric::kCombined;
  params.choose_n = 2;
  params.options.use_sharded_index = use_sharded_index;
  sched::WorkerCentricScheduler scheduler(params);
  scheduler.attach(engine);
  scheduler.on_job_submitted();
  unsigned site = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.peek_choice(SiteId(site)));
    site = (site + 1) % 4;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ChooseTask_flat(benchmark::State& state) {
  BM_ChooseTask(state, /*use_sharded_index=*/false);
}
void BM_ChooseTask_sharded(benchmark::State& state) {
  BM_ChooseTask(state, /*use_sharded_index=*/true);
}
BENCHMARK(BM_ChooseTask_flat)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);
BENCHMARK(BM_ChooseTask_sharded)
    ->Unit(benchmark::kMicrosecond)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000);

void BM_RunMatrix(benchmark::State& state) {
  // Wall-clock of a 6-algorithm x 4-seed figure matrix, serial
  // (jobs = 1) vs fanned out over the thread pool (jobs = 4). The
  // acceptance bar for the parallel runner: identical output, and on
  // multi-core hardware ~jobs x less wall-clock.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  workload::CoaddParams cp;
  cp.num_tasks = 300;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.capacity_files = 6000;
  auto specs = sched::SchedulerSpec::paper_algorithms();
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  for (auto _ : state) {
    auto rows = grid::run_matrix(config, job, specs, seeds, {}, jobs);
    benchmark::DoNotOptimize(rows.front().makespan_minutes);
  }
  state.SetItemsProcessed(state.iterations() * specs.size() * seeds.size());
}
BENCHMARK(BM_RunMatrix)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ObsOverhead(benchmark::State& state) {
  // The observability contract (DESIGN.md §Observability): with obs
  // disabled the instrumented build must cost < 2% over the seed — every
  // hook is one null-pointer branch. Arg encodes the obs mode:
  //   0 = disabled, 1 = metrics + profiler, 2 = metrics + profiler + trace.
  workload::CoaddParams cp;
  cp.num_tasks = 300;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.capacity_files = 6000;
  config.obs = {};
  if (state.range(0) >= 1) {
    config.obs.metrics = true;
    config.obs.profile = true;
  }
  if (state.range(0) >= 2) config.obs.trace = true;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  spec.choose_n = 2;
  for (auto _ : state) {
    grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
    benchmark::DoNotOptimize(sim.run().makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_ObsOverhead)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

void BM_MetricsHotPath(benchmark::State& state) {
  // Counter add + histogram add, the per-event obs cost when enabled.
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("bench.counter");
  obs::FixedHistogram& h = registry.histogram("bench.hist", 0, 7200, 72);
  std::uint64_t i = 0;
  for (auto _ : state) {
    c.add();
    h.add(static_cast<double>(i % 7200));
    ++i;
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHotPath);

void BM_CoaddGeneration(benchmark::State& state) {
  workload::CoaddParams cp;
  cp.num_tasks = 6000;
  for (auto _ : state) {
    auto job = workload::generate_coadd(cp);
    benchmark::DoNotOptimize(job.num_tasks());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_CoaddGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
