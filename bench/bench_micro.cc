// google-benchmark microbenchmarks for the hot paths: event kernel
// throughput, max-min reallocation, scheduler weight scans, cache churn.
// These guard the "6,000-task experiment in seconds" property the figure
// benches rely on.
#include <benchmark/benchmark.h>

#include <memory>

#include "grid/grid_simulation.h"
#include "net/flow_manager.h"
#include "net/tiers.h"
#include "sched/factory.h"
#include "sim/simulator.h"
#include "storage/file_cache.h"
#include "workload/coadd.h"

namespace {

using namespace wcs;

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10000; ++i)
      sim.schedule_in((i * 37) % 1000, [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventKernel);

void BM_FlowReallocation(benchmark::State& state) {
  const int kFlows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::TiersParams tp;
    tp.num_sites = 10;
    net::GridTopology g = net::build_tiers_topology(tp);
    net::FlowManager flows(sim, g.topology);
    for (int i = 0; i < kFlows; ++i)
      flows.start_flow(g.file_server_node,
                       g.data_server_nodes[i % g.data_server_nodes.size()],
                       megabytes(25), [](FlowId) {});
    sim.run();
    benchmark::DoNotOptimize(flows.completed_flows());
  }
  state.SetItemsProcessed(state.iterations() * kFlows);
}
BENCHMARK(BM_FlowReallocation)->Arg(16)->Arg(64)->Arg(256);

void BM_CacheChurn(benchmark::State& state) {
  storage::FileCache cache(6000, storage::EvictionPolicy::kLru);
  unsigned i = 0;
  for (auto _ : state) {
    FileId f(i % 20000);
    if (!cache.contains(f)) cache.insert(f);
    cache.record_access(f);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheChurn);

void BM_SchedulerWeightScan(benchmark::State& state) {
  // Full worker-centric request cycle cost on a paper-scale pending set.
  workload::CoaddParams cp;
  cp.num_tasks = static_cast<std::size_t>(state.range(0));
  auto job = workload::generate_coadd(cp);
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.capacity_files = 6000;
  for (auto _ : state) {
    state.PauseTiming();
    sched::SchedulerSpec spec;
    spec.algorithm = sched::Algorithm::kCombined;
    grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run().makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerWeightScan)->Unit(benchmark::kMillisecond)->Arg(1000);

void BM_CoaddGeneration(benchmark::State& state) {
  workload::CoaddParams cp;
  cp.num_tasks = 6000;
  for (auto _ : state) {
    auto job = workload::generate_coadd(cp);
    benchmark::DoNotOptimize(job.tasks.size());
  }
  state.SetItemsProcessed(state.iterations() * 6000);
}
BENCHMARK(BM_CoaddGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
