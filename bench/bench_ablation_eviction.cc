// Ablation A3 (DESIGN.md §4): data-server eviction policy (LRU / FIFO /
// MinRef) under the tight-capacity regime (3000 files), where policy
// actually matters. The paper fixes its replacement policy implicitly;
// this bench shows how much of the small-capacity behaviour is policy-
// dependent.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  std::vector<sched::SchedulerSpec> specs;
  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  sched::SchedulerSpec sa;
  sa.algorithm = sched::Algorithm::kStorageAffinity;
  specs = {rest, sa};

  std::vector<bench::SweepPoint> points;
  for (std::size_t cap : {3000u, 6000u}) {
    for (auto policy :
         {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
          storage::EvictionPolicy::kMinRef}) {
      grid::GridConfig c = bench::paper_config(opt);
      c.capacity_files = cap;
      c.eviction = policy;
      auto rows = grid::run_matrix(
          c, job, specs, seeds, [&](const std::string& s) {
            bench::progress(std::string(storage::to_string(policy)) + " @" +
                            std::to_string(cap) + ": " + s);
          },
          opt.jobs);
      grid::print_table(std::cout,
                        std::string("Ablation A3: eviction = ") +
                            storage::to_string(policy) + ", capacity " +
                            std::to_string(cap),
                        rows);
      bench::SweepPoint pt;
      pt.x = static_cast<double>(cap);
      pt.x_label =
          std::string(storage::to_string(policy)) + "@" + std::to_string(cap);
      pt.wall_seconds = bench::elapsed_s(opt);
      pt.rows = std::move(rows);
      points.push_back(std::move(pt));
    }
  }

  auto phases =
      bench::trace_representative_run(opt, bench::paper_config(opt), job);
  bench::write_report("Ablation A3: eviction policy x capacity",
                      "policy@capacity", "makespan (minutes)", points, opt,
                      phases ? &*phases : nullptr);
  return 0;
}
