// Reproduces paper Figure 5: number of file transfers (per data server,
// averaged over sites — see DESIGN.md §4 note) with different capacities.
//
// Expected shape (paper Sec. 5.4): overlap usually has a higher number of
// file transfers than the other worker-centric metrics; storage affinity
// transfers fall with capacity as premature decisions stop being punished.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = opt.topology_seeds();

  std::vector<std::size_t> capacities{3000, 6000, 15000, 30000};
  std::vector<bench::SweepPoint> points;
  for (std::size_t cap : capacities) {
    grid::GridConfig c = bench::paper_config(opt);
    c.capacity_files = cap;
    bench::SweepPoint pt;
    pt.x = static_cast<double>(cap);
    pt.x_label = std::to_string(cap);
    pt.rows = grid::run_matrix(c, job, specs, seeds, [&](const std::string& s) {
      bench::progress("capacity " + pt.x_label + ": " + s);
    }, opt.jobs);
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases = bench::trace_representative_run(opt, bench::paper_config(opt),
                                                job);
  bench::emit_series("Figure 5: file transfers vs data-server capacity",
                     "capacity_files", points,
                     [](const metrics::AveragedResult& r) {
                       return r.transfers_per_site;
                     },
                     "file transfers per data server", opt,
                     phases ? &*phases : nullptr);
  return 0;
}
