// Reproduces paper Figure 5: file transfers vs data-server capacity.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig5_transfers"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig5_transfers", argc, argv);
}
