// Extension bench E2: scheduling under worker churn.
//
// The paper motivates worker-centric scheduling partly by grid-resource
// unreliability (Sec. 1, citing PlanetLab's "seven deadly sins"), but
// evaluates only stable platforms. This bench injects exponential
// crash/recover churn and sweeps the mean uptime, comparing the
// task-centric baseline (whose queues lose many in-flight instances per
// crash and must be actively re-placed) against pull scheduling (which
// loses at most the running task and re-homes it into the bag).
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  sched::SchedulerSpec sa;
  sa.algorithm = sched::Algorithm::kStorageAffinity;
  sched::SchedulerSpec rest2;
  rest2.algorithm = sched::Algorithm::kRest;
  rest2.choose_n = 2;
  sched::SchedulerSpec rest2_repl = rest2;
  rest2_repl.task_replication = true;
  std::vector<sched::SchedulerSpec> specs{sa, rest2, rest2_repl};

  // Mean uptimes, in hours of simulated time (0 = no churn).
  std::vector<double> uptimes_h{0, 168, 48, 12};

  std::cout << "Extension E2: makespan (min) under worker churn\n"
            << "(mean downtime = uptime/6; 5 topology+churn seeds)\n\n";
  std::cout << std::left << std::setw(22) << "mean uptime";
  for (const auto& s : specs) std::cout << std::right << std::setw(22)
                                        << s.name();
  std::cout << std::right << std::setw(14) << "failures" << '\n';

  std::vector<bench::SweepPoint> points;
  for (double up_h : uptimes_h) {
    std::cout << std::left << std::setw(22)
              << (up_h == 0 ? std::string("none")
                            : std::to_string(static_cast<int>(up_h)) + " h");
    double failures = 0;
    bench::SweepPoint pt;
    pt.x = up_h;
    pt.x_label = up_h == 0 ? std::string("none")
                           : std::to_string(static_cast<int>(up_h)) + "h";
    for (const auto& spec : specs) {
      grid::GridConfig c = bench::paper_config(opt);
      if (up_h > 0) {
        grid::GridConfig::ChurnParams churn;
        churn.mean_uptime_s = hours(up_h);
        churn.mean_downtime_s = hours(up_h) / 6.0;
        c.churn = churn;
      }
      auto runs = grid::run_seeds(c, job, spec, seeds, opt.jobs);
      double makespan = 0;
      for (const auto& r : runs) {
        makespan += r.makespan_minutes() / static_cast<double>(seeds.size());
        failures += static_cast<double>(r.worker_failures) /
                    static_cast<double>(seeds.size() * specs.size());
      }
      pt.rows.push_back(metrics::average(runs));
      std::cout << std::right << std::setw(22) << std::fixed
                << std::setprecision(0) << makespan;
      bench::progress(spec.name() + " @ uptime " + std::to_string(up_h));
    }
    std::cout << std::right << std::setw(14) << std::setprecision(1)
              << failures << '\n';
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases =
      bench::trace_representative_run(opt, bench::paper_config(opt), job);
  bench::write_report("Extension E2: makespan under worker churn",
                      "mean_uptime_h", "makespan (minutes)", points, opt,
                      phases ? &*phases : nullptr);

  std::cout << "\nreading: pull scheduling degrades gracefully; the "
               "task-centric baseline pays\nmore per crash (whole queues "
               "lost + active re-placement), and task\nreplication "
               "recovers part of the tail for the pull scheduler.\n";
  return 0;
}
