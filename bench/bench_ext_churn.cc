// Extension E2: scheduling under worker churn (paper Sec. 1).
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "ext_churn"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("ext_churn", argc, argv);
}
