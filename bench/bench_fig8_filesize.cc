// Reproduces paper Figure 8: makespan with different file sizes (5, 25,
// 50 MB; Table 1 defaults otherwise).
//
// Expected shape (paper Sec. 5.7): makespan grows almost linearly with
// file size, the algorithm ordering is preserved, combined.2 is best.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = opt.topology_seeds();

  std::vector<double> sizes_mb{5.0, 25.0, 50.0};
  std::vector<bench::SweepPoint> points;
  for (double mb : sizes_mb) {
    // File size lives in the catalog, so the workload is regenerated per
    // point (same seed: identical task -> file structure, new sizes).
    workload::Job job = bench::paper_workload(opt, megabytes(mb));
    grid::GridConfig c = bench::paper_config(opt);
    bench::SweepPoint pt;
    pt.x = mb;
    pt.x_label = std::to_string(static_cast<int>(mb)) + "MB";
    pt.rows = grid::run_matrix(c, job, specs, seeds, [&](const std::string& s) {
      bench::progress(pt.x_label + ": " + s);
    }, opt.jobs);
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases = bench::trace_representative_run(
      opt, bench::paper_config(opt), bench::paper_workload(opt));
  bench::emit_series("Figure 8: makespan vs file size", "file_size", points,
                     [](const metrics::AveragedResult& r) {
                       return r.makespan_minutes;
                     },
                     "makespan (minutes)", opt,
                     phases ? &*phases : nullptr);
  return 0;
}
