// Reproduces paper Figure 8: makespan vs file size.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig8_filesize"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig8_filesize", argc, argv);
}
