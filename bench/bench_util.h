// Shared bench-harness utilities.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §4). They share the measurement protocol: fixed workload, 5
// topology seeds, all six Sec. 5.3 algorithms, averaged rows. Options:
//
//   --tasks N      workload size (default 6000 = the paper's slice)
//   --seeds K      topology repetitions (default 5)
//   --jobs N       worker threads for independent runs (default: all
//                  hardware threads; output is identical at any level)
//   --csv PATH     also write the series as CSV
//   --fast         1500 tasks, 2 seeds (quick shape check)
//   --audit        run every simulation with the invariant auditor on
//                  (src/audit); read-only checkers, identical output
//   --report PATH  write the machine-readable run report here (default
//                  results/<bench>.json; --no-report disables)
//   --trace-out P  additionally run one representative simulation with
//                  full observability and dump its Chrome trace to P
//
// WCS_BENCH_FAST=1 in the environment implies --fast (used by CI-style
// smoke runs); WCS_BENCH_JOBS=N sets the default for --jobs. WCS_AUDIT=1
// implies --audit (see audit::default_enabled()).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/thread_pool.h"
#include "grid/experiment.h"
#include "obs/run_report.h"
#include "workload/coadd.h"

namespace wcs::bench {

struct BenchOptions {
  std::size_t tasks = 6000;
  std::size_t seeds = 5;
  std::size_t jobs = ThreadPool::default_concurrency();
  std::optional<std::string> csv_path;
  bool fast = false;
  bool audit = false;
  std::string bench_name = "bench";        // argv[0] basename
  std::optional<std::string> report_path;  // none = reporting disabled
  std::optional<std::string> trace_out;    // Chrome trace destination
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();

  [[nodiscard]] std::vector<std::uint64_t> topology_seeds() const {
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= seeds; ++i) s.push_back(i);
    return s;
  }
};

// Host seconds since parse_options(); stamps report sweep points, so
// successive points are monotone by construction.
[[nodiscard]] inline double elapsed_s(const BenchOptions& opt) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       opt.started)
      .count();
}

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  if (argc > 0 && argv[0] && *argv[0]) {
    std::string self = argv[0];
    std::size_t slash = self.find_last_of('/');
    opt.bench_name =
        slash == std::string::npos ? self : self.substr(slash + 1);
  }
  opt.report_path = "results/" + opt.bench_name + ".json";
  bool no_report = false;
  if (const char* env = std::getenv("WCS_BENCH_FAST"); env && *env == '1')
    opt.fast = true;
  if (const char* env = std::getenv("WCS_BENCH_JOBS"); env && *env)
    opt.jobs = std::stoul(env);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tasks") {
      opt.tasks = std::stoul(next());
    } else if (arg == "--seeds") {
      opt.seeds = std::stoul(next());
    } else if (arg == "--jobs") {
      opt.jobs = std::stoul(next());
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--report") {
      opt.report_path = next();
    } else if (arg == "--no-report") {
      no_report = true;
    } else if (arg == "--trace-out") {
      opt.trace_out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --tasks N --seeds K --jobs N --csv PATH "
                   "--fast --audit --report PATH --no-report "
                   "--trace-out PATH\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option " << arg << '\n';
      std::exit(2);
    }
  }
  if (opt.tasks == 0) {
    std::cerr << "--tasks must be >= 1 (0 would produce an empty sweep)\n";
    std::exit(2);
  }
  if (opt.seeds == 0) {
    std::cerr << "--seeds must be >= 1 (0 would produce an empty sweep)\n";
    std::exit(2);
  }
  if (opt.jobs == 0) opt.jobs = 1;
  if (opt.fast) {
    opt.tasks = std::min<std::size_t>(opt.tasks, 1500);
    opt.seeds = std::min<std::size_t>(opt.seeds, 2);
  }
  if (no_report) opt.report_path.reset();
  return opt;
}

// The paper's workload for a given slice size, default parameters
// otherwise (25 MB files unless a bench overrides).
inline workload::Job paper_workload(const BenchOptions& opt,
                                    Bytes file_size = megabytes(25)) {
  workload::CoaddParams p = workload::CoaddParams::paper_6000();
  p.num_tasks = opt.tasks;
  p.file_size = file_size;
  return workload::generate_coadd(p);
}

// Paper Table 1 platform defaults. Honors --audit (sticky: the config
// default already reflects WCS_AUDIT / the build type, so --audit can
// only turn auditing on, never off).
inline grid::GridConfig paper_config(const BenchOptions& opt) {
  grid::GridConfig c;
  c.tiers.num_sites = 10;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 6000;
  c.audit = c.audit || opt.audit;
  return c;
}

// One row of a figure series: x value + averaged results per algorithm.
struct SweepPoint {
  double x = 0;
  std::string x_label;
  // Stamp with elapsed_s(opt) when the point finishes (feeds the run
  // report; reports with a zero wall clock still validate).
  double wall_seconds = 0;
  std::vector<metrics::AveragedResult> rows;
};

inline void progress(const std::string& what) {
  std::cerr << "  [" << what << "]\n";
}

// --trace-out support: run ONE representative simulation (first paper
// algorithm, seed 1) with full observability and dump its Chrome trace.
// Kept out of the parallel sweep so concurrent runs never share a trace
// file. Returns a copy of the run's phase profile for the run report.
inline std::optional<obs::PhaseProfiler> trace_representative_run(
    const BenchOptions& opt, grid::GridConfig config,
    const workload::Job& job) {
  if (!opt.trace_out) return std::nullopt;
  config.obs = obs::Options::all();
  config.obs.trace_path = *opt.trace_out;
  config.tiers.seed = 1;
  sched::SchedulerSpec spec = sched::SchedulerSpec::paper_algorithms().front();
  progress("traced run: " + spec.name());
  grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
  (void)sim.run();
  std::cout << "\nChrome trace written to " << *opt.trace_out << '\n';
  return *sim.observability()->profiler();
}

// Writes the machine-readable run report (obs::RunReport schema v1) to
// opt.report_path, no-op when reporting is disabled. `phases` is the
// optional profile of a traced representative run. Benches with custom
// console output call this directly; figure benches get it via
// emit_series().
inline void write_report(const std::string& title, const std::string& x_name,
                         const std::string& metric_name,
                         const std::vector<SweepPoint>& points,
                         const BenchOptions& opt,
                         const obs::PhaseProfiler* phases = nullptr) {
  if (!opt.report_path) return;
  obs::RunReport report;
  report.bench = opt.bench_name;
  report.title = title;
  report.x_axis = x_name;
  report.metric = metric_name;
  report.config.tasks = opt.tasks;
  report.config.seeds = opt.seeds;
  report.config.jobs = opt.jobs;
  report.config.fast = opt.fast;
  report.config.audit = opt.audit;
  report.config.trace = opt.trace_out.has_value();
  for (const SweepPoint& pt : points) {
    obs::ReportPoint rp;
    rp.x = pt.x;
    rp.x_label = pt.x_label;
    rp.wall_seconds = pt.wall_seconds;
    for (const auto& r : pt.rows) rp.rows.push_back(obs::ReportRow::from(r));
    report.points.push_back(std::move(rp));
  }
  report.total_wall_seconds = elapsed_s(opt);
  report.phases = phases;
  report.write(*opt.report_path);
  std::cout << "Run report written to " << *opt.report_path << '\n';
}

// Prints the standard figure output: per-point tables, then the series
// ("x  algo1 algo2 ...") for the headline metric, optional CSV, and the
// machine-readable run report (obs::RunReport schema v1). `phases` is
// the optional profile of a traced representative run.
inline void emit_series(
    const std::string& title, const std::string& x_name,
    const std::vector<SweepPoint>& points,
    const std::function<double(const metrics::AveragedResult&)>& metric,
    const std::string& metric_name, const BenchOptions& opt,
    const obs::PhaseProfiler* phases = nullptr) {
  for (const SweepPoint& pt : points)
    grid::print_table(std::cout, title + " — " + x_name + " = " + pt.x_label,
                      pt.rows);

  std::cout << "\nSeries (" << metric_name << " vs " << x_name << "):\n";
  std::cout << x_name;
  for (const auto& r : points.front().rows) std::cout << '\t' << r.scheduler;
  std::cout << '\n';
  for (const SweepPoint& pt : points) {
    std::cout << pt.x_label;
    for (const auto& r : pt.rows)
      std::cout << '\t' << static_cast<std::uint64_t>(metric(r) + 0.5);
    std::cout << '\n';
  }

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({x_name, "algorithm", "makespan_min", "transfers_per_site",
                "total_transfers", "gigabytes", "waiting_h_per_site",
                "transfer_h_per_site", "replicas"});
    for (const SweepPoint& pt : points)
      for (const auto& r : pt.rows)
        csv.row(pt.x_label, r.scheduler, r.makespan_minutes,
                r.transfers_per_site, r.total_file_transfers,
                r.total_gigabytes, r.waiting_hours_per_site,
                r.transfer_hours_per_site, r.replicas_started);
    std::cout << "\nCSV written to " << *opt.csv_path << '\n';
  }

  write_report(title, x_name, metric_name, points, opt, phases);
}

}  // namespace wcs::bench
