// Shared bench-harness utilities.
//
// Every bench binary reproduces one table or figure of the paper (see
// DESIGN.md §4). They share the measurement protocol: fixed workload, 5
// topology seeds, all six Sec. 5.3 algorithms, averaged rows. Options:
//
//   --tasks N      workload size (default 6000 = the paper's slice)
//   --seeds K      topology repetitions (default 5)
//   --jobs N       worker threads for independent runs (default: all
//                  hardware threads; output is identical at any level)
//   --csv PATH     also write the series as CSV
//   --fast         1500 tasks, 2 seeds (quick shape check)
//   --audit        run every simulation with the invariant auditor on
//                  (src/audit); read-only checkers, identical output
//
// WCS_BENCH_FAST=1 in the environment implies --fast (used by CI-style
// smoke runs); WCS_BENCH_JOBS=N sets the default for --jobs. WCS_AUDIT=1
// implies --audit (see audit::default_enabled()).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/thread_pool.h"
#include "grid/experiment.h"
#include "workload/coadd.h"

namespace wcs::bench {

struct BenchOptions {
  std::size_t tasks = 6000;
  std::size_t seeds = 5;
  std::size_t jobs = ThreadPool::default_concurrency();
  std::optional<std::string> csv_path;
  bool fast = false;
  bool audit = false;

  [[nodiscard]] std::vector<std::uint64_t> topology_seeds() const {
    std::vector<std::uint64_t> s;
    for (std::uint64_t i = 1; i <= seeds; ++i) s.push_back(i);
    return s;
  }
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  if (const char* env = std::getenv("WCS_BENCH_FAST"); env && *env == '1')
    opt.fast = true;
  if (const char* env = std::getenv("WCS_BENCH_JOBS"); env && *env)
    opt.jobs = std::stoul(env);
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tasks") {
      opt.tasks = std::stoul(next());
    } else if (arg == "--seeds") {
      opt.seeds = std::stoul(next());
    } else if (arg == "--jobs") {
      opt.jobs = std::stoul(next());
    } else if (arg == "--csv") {
      opt.csv_path = next();
    } else if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "options: --tasks N --seeds K --jobs N --csv PATH "
                   "--fast --audit\n";
      std::exit(0);
    } else {
      std::cerr << "unknown option " << arg << '\n';
      std::exit(2);
    }
  }
  if (opt.tasks == 0) {
    std::cerr << "--tasks must be >= 1 (0 would produce an empty sweep)\n";
    std::exit(2);
  }
  if (opt.seeds == 0) {
    std::cerr << "--seeds must be >= 1 (0 would produce an empty sweep)\n";
    std::exit(2);
  }
  if (opt.jobs == 0) opt.jobs = 1;
  if (opt.fast) {
    opt.tasks = std::min<std::size_t>(opt.tasks, 1500);
    opt.seeds = std::min<std::size_t>(opt.seeds, 2);
  }
  return opt;
}

// The paper's workload for a given slice size, default parameters
// otherwise (25 MB files unless a bench overrides).
inline workload::Job paper_workload(const BenchOptions& opt,
                                    Bytes file_size = megabytes(25)) {
  workload::CoaddParams p = workload::CoaddParams::paper_6000();
  p.num_tasks = opt.tasks;
  p.file_size = file_size;
  return workload::generate_coadd(p);
}

// Paper Table 1 platform defaults. Honors --audit (sticky: the config
// default already reflects WCS_AUDIT / the build type, so --audit can
// only turn auditing on, never off).
inline grid::GridConfig paper_config(const BenchOptions& opt) {
  grid::GridConfig c;
  c.tiers.num_sites = 10;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 6000;
  c.audit = c.audit || opt.audit;
  return c;
}

// One row of a figure series: x value + averaged results per algorithm.
struct SweepPoint {
  double x = 0;
  std::string x_label;
  std::vector<metrics::AveragedResult> rows;
};

inline void progress(const std::string& what) {
  std::cerr << "  [" << what << "]\n";
}

// Prints the standard figure output: per-point tables, then the series
// ("x  algo1 algo2 ...") for the headline metric, and optional CSV.
inline void emit_series(
    const std::string& title, const std::string& x_name,
    const std::vector<SweepPoint>& points,
    const std::function<double(const metrics::AveragedResult&)>& metric,
    const std::string& metric_name, const BenchOptions& opt) {
  for (const SweepPoint& pt : points)
    grid::print_table(std::cout, title + " — " + x_name + " = " + pt.x_label,
                      pt.rows);

  std::cout << "\nSeries (" << metric_name << " vs " << x_name << "):\n";
  std::cout << x_name;
  for (const auto& r : points.front().rows) std::cout << '\t' << r.scheduler;
  std::cout << '\n';
  for (const SweepPoint& pt : points) {
    std::cout << pt.x_label;
    for (const auto& r : pt.rows)
      std::cout << '\t' << static_cast<std::uint64_t>(metric(r) + 0.5);
    std::cout << '\n';
  }

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({x_name, "algorithm", "makespan_min", "transfers_per_site",
                "total_transfers", "gigabytes", "waiting_h_per_site",
                "transfer_h_per_site", "replicas"});
    for (const SweepPoint& pt : points)
      for (const auto& r : pt.rows)
        csv.row(pt.x_label, r.scheduler, r.makespan_minutes,
                r.transfers_per_site, r.total_file_transfers,
                r.total_gigabytes, r.waiting_hours_per_site,
                r.transfer_hours_per_site, r.replicas_started);
    std::cout << "\nCSV written to " << *opt.csv_path << '\n';
  }
}

}  // namespace wcs::bench
