// Ablation A4: baselines panorama + estimate quality.
//
// Compares the paper's best pull scheduler against the no-information
// baseline (workqueue) and the dynamic-information baseline (XSufferage,
// related work Sec. 6) while degrading the platform estimates XSufferage
// depends on. The paper's Sec. 2.4 thesis regenerated as a curve:
// data-placement information is cheap and sufficient; dynamic estimates
// are a liability unless they are nearly perfect.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  sched::SchedulerSpec wq;
  wq.algorithm = sched::Algorithm::kWorkqueue;
  sched::SchedulerSpec xs;
  xs.algorithm = sched::Algorithm::kXSufferage;
  sched::SchedulerSpec rest2;
  rest2.algorithm = sched::Algorithm::kRest;
  rest2.choose_n = 2;

  std::cout << "Ablation A4: baselines vs estimate quality "
               "(makespan, minutes; Table 1 defaults)\n\n";
  std::cout << std::left << std::setw(22) << "estimate error" << std::right
            << std::setw(16) << "workqueue" << std::setw(16) << "xsufferage"
            << std::setw(16) << "rest.2" << '\n';

  std::vector<bench::SweepPoint> points;
  for (double error : {0.0, 1.0, 3.0, 9.0}) {
    grid::GridConfig c = bench::paper_config(opt);
    c.estimate_error = error;
    std::string label = "exact";
    if (error != 0) {
      label = "x";
      label += std::to_string(1.0 + error).substr(0, 4);
    }
    std::cout << std::left << std::setw(22) << label;
    bench::SweepPoint pt;
    pt.x = error;
    pt.x_label = label;
    for (const auto& spec : {wq, xs, rest2}) {
      auto runs = grid::run_seeds(c, job, spec, seeds, opt.jobs);
      double makespan = 0;
      for (const auto& r : runs)
        makespan += r.makespan_minutes() / static_cast<double>(seeds.size());
      pt.rows.push_back(metrics::average(runs));
      std::cout << std::right << std::fixed << std::setprecision(0)
                << std::setw(16) << makespan;
      bench::progress(spec.name() + " @ error " + std::to_string(error));
    }
    std::cout << '\n';
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases =
      bench::trace_representative_run(opt, bench::paper_config(opt), job);
  bench::write_report("Ablation A4: baselines vs estimate quality",
                      "estimate_error", "makespan (minutes)", points, opt,
                      phases ? &*phases : nullptr);

  std::cout << "\nreading: workqueue and rest.2 never read estimates "
               "(columns constant).\nxsufferage tolerates static per-site "
               "estimate bias (within-site rankings are\nscale-invariant) "
               "and only extreme error misroutes tasks; the case against\n"
               "estimate-driven scheduling is availability/temporal "
               "variance, not static bias.\n";
  return 0;
}
