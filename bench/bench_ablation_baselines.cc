// Ablation A4: baselines panorama + estimate quality (DESIGN.md \xc2\xa74).
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "ablation_baselines"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("ablation_baselines", argc, argv);
}
