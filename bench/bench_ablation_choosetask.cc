// Ablation A2 (DESIGN.md §4): ChooseTask(n) for n in {1, 2, 4, 8}.
//
// The paper reports trying several n and keeping only 1 and 2 ("only 1
// and 2 give good results", Sec. 5.3). This bench regenerates that
// observation: n = 2 edges out n = 1 by dodging sub-optimal deterministic
// choices, while larger n dilutes the metric with weight-proportional
// noise.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  std::vector<sched::SchedulerSpec> specs;
  for (auto algorithm : {sched::Algorithm::kRest, sched::Algorithm::kCombined})
    for (int n : {1, 2, 4, 8}) {
      sched::SchedulerSpec s;
      s.algorithm = algorithm;
      s.choose_n = n;
      specs.push_back(s);
    }

  grid::GridConfig c = bench::paper_config(opt);
  auto rows =
      grid::run_matrix(c, job, specs, seeds,
                       [](const std::string& s) { bench::progress(s); },
                       opt.jobs);
  grid::print_table(std::cout,
                    "Ablation A2: ChooseTask(n) sweep (Table 1 defaults)",
                    rows);

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({"algorithm", "makespan_min", "transfers_per_site"});
    for (const auto& r : rows)
      csv.row(r.scheduler, r.makespan_minutes, r.transfers_per_site);
  }

  bench::SweepPoint pt;
  pt.x_label = "table1-defaults";
  pt.wall_seconds = bench::elapsed_s(opt);
  pt.rows = rows;
  auto phases = bench::trace_representative_run(opt, c, job);
  bench::write_report("Ablation A2: ChooseTask(n) sweep", "config",
                      "makespan (minutes)", {pt}, opt,
                      phases ? &*phases : nullptr);
  return 0;
}
