// Ablation A1 (DESIGN.md §4): the `combined` metric as PRINTED in the
// paper (ref_t/totalRef + totalRest/rest_t) versus the prose-consistent
// normalization we ship as default (ref_t/totalRef + rest_t/totalRest).
//
// The printed formula REWARDS tasks that need more transfers (the
// totalRest/rest_t term grows with missing files), contradicting both the
// paper's stated intuition and its results; this bench quantifies how
// much worse it is, as evidence for the deviation recorded in DESIGN.md
// §1/§6.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto seeds = opt.topology_seeds();

  std::vector<sched::SchedulerSpec> specs;
  for (int n : {1, 2}) {
    for (auto formula : {sched::CombinedFormula::kProse,
                         sched::CombinedFormula::kVerbatim}) {
      sched::SchedulerSpec s;
      s.algorithm = sched::Algorithm::kCombined;
      s.choose_n = n;
      s.combined_formula = formula;
      specs.push_back(s);
    }
  }
  // Reference points.
  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  specs.push_back(rest);

  grid::GridConfig c = bench::paper_config(opt);
  auto rows =
      grid::run_matrix(c, job, specs, seeds,
                       [](const std::string& s) { bench::progress(s); },
                       opt.jobs);
  grid::print_table(std::cout,
                    "Ablation A1: combined formula, prose vs verbatim "
                    "(Table 1 defaults)",
                    rows);

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({"algorithm", "makespan_min", "transfers_per_site"});
    for (const auto& r : rows)
      csv.row(r.scheduler, r.makespan_minutes, r.transfers_per_site);
  }

  bench::SweepPoint pt;
  pt.x_label = "table1-defaults";
  pt.wall_seconds = bench::elapsed_s(opt);
  pt.rows = rows;
  auto phases = bench::trace_representative_run(opt, c, job);
  bench::write_report("Ablation A1: combined formula, prose vs verbatim",
                      "config", "makespan (minutes)", {pt}, opt,
                      phases ? &*phases : nullptr);
  return 0;
}
