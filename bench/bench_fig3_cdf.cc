// Reproduces paper Figures 1/3: the Coadd file-access distribution.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig3_cdf"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig3_cdf", argc, argv);
}
