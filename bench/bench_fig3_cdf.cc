// Reproduces paper Figures 1/3: the Coadd file-access distribution —
// cumulative % of files referenced by at least x tasks (x-axis printed in
// the paper's decreasing sense). The paper's headline: "roughly 85% of
// files are accessed by 6 or more tasks" for the 6,000-task slice.
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "workload/coadd.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  workload::JobStats stats = workload::compute_stats(job);

  std::cout << "Figure 3. File access distribution of Coadd with "
            << stats.num_tasks << " tasks\n";
  std::cout << "(fraction of files accessed by >= x tasks; paper: ~0.85 at "
               "x = 6)\n\n";
  std::cout << "  x (refs)   % of files (cumulative)\n";
  for (std::size_t x = 12; x >= 1; --x) {
    double frac = stats.refs_cdf.fraction_at_least(x) * 100.0;
    std::cout << "  " << std::setw(8) << x << "   " << std::setw(8)
              << std::fixed << std::setprecision(2) << frac << "  |";
    int bars = static_cast<int>(frac / 2.0);
    for (int b = 0; b < bars; ++b) std::cout << '#';
    std::cout << '\n';
  }
  std::cout << "\n  fraction >= 6 refs: "
            << stats.refs_cdf.fraction_at_least(6) << "  (paper: ~0.85)\n";

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({"min_refs", "fraction_of_files"});
    for (std::size_t x = 1; x <= 20; ++x)
      csv.row(x, stats.refs_cdf.fraction_at_least(x));
  }

  // No simulations here: the run report records config/wall time plus a
  // placeholder row so the schema-checked artifact set stays complete.
  metrics::AveragedResult row_stats;
  row_stats.scheduler = "workload-stats";
  row_stats.runs = 1;
  bench::SweepPoint pt;
  pt.x = 6;
  pt.x_label = ">=6 refs";
  pt.wall_seconds = bench::elapsed_s(opt);
  pt.rows.push_back(std::move(row_stats));
  bench::write_report("Figure 3: Coadd file access distribution", "min_refs",
                      "fraction of files", {pt}, opt);
  return 0;
}
