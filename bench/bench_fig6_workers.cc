// Reproduces paper Figure 6: makespan with different numbers of workers
// per site (2..10; capacity 6000, 10 sites).
//
// Expected shape (paper Sec. 5.5): makespan flattens (sometimes worsens)
// as workers are added, because the serial data server becomes the
// contention point; worker-centric metrics win at small worker counts,
// storage affinity catches up at large ones.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = opt.topology_seeds();

  std::vector<int> worker_counts{2, 3, 4, 5, 6, 7, 8, 9, 10};
  if (opt.fast) worker_counts = {2, 4, 6, 8, 10};
  std::vector<bench::SweepPoint> points;
  for (int workers : worker_counts) {
    grid::GridConfig c = bench::paper_config(opt);
    c.tiers.workers_per_site = workers;
    bench::SweepPoint pt;
    pt.x = workers;
    pt.x_label = std::to_string(workers);
    pt.rows = grid::run_matrix(c, job, specs, seeds, [&](const std::string& s) {
      bench::progress(pt.x_label + " workers/site: " + s);
    }, opt.jobs);
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases = bench::trace_representative_run(opt, bench::paper_config(opt),
                                                job);
  bench::emit_series("Figure 6: makespan vs workers per site",
                     "workers_per_site", points,
                     [](const metrics::AveragedResult& r) {
                       return r.makespan_minutes;
                     },
                     "makespan (minutes)", opt,
                     phases ? &*phases : nullptr);
  return 0;
}
