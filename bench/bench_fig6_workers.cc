// Reproduces paper Figure 6: makespan vs workers per site.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig6_workers"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig6_workers", argc, argv);
}
