// Reproduces paper Table 2: characteristics of Coadd with 6,000 tasks.
//
//   Total number of files                53390
//   Max number of files needed by a task   101
//   Min number of files needed by a task    36
//   Average number of files per task      78.4327
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "workload/coadd.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  workload::JobStats stats = workload::compute_stats(job);

  std::cout << "Table 2. Characteristics of Coadd with " << stats.num_tasks
            << " tasks (synthetic generator; paper values in parentheses)\n\n";
  auto row = [](const std::string& label, double ours, const char* paper) {
    std::cout << "  " << std::left << std::setw(44) << label << std::right
              << std::setw(12) << std::fixed << std::setprecision(4) << ours
              << "   (paper: " << paper << ")\n";
  };
  row("Total number of files",
      static_cast<double>(stats.distinct_files), "53390");
  row("Max number of files needed by a task",
      static_cast<double>(stats.max_files_per_task), "101");
  row("Min number of files needed by a task",
      static_cast<double>(stats.min_files_per_task), "36");
  row("Average number of files needed by a task", stats.avg_files_per_task,
      "78.4327");

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({"metric", "value"});
    csv.row("total_files", stats.distinct_files);
    csv.row("max_files_per_task", stats.max_files_per_task);
    csv.row("min_files_per_task", stats.min_files_per_task);
    csv.row("avg_files_per_task", stats.avg_files_per_task);
  }

  // No simulations here: the run report records config/wall time plus a
  // placeholder row so the schema-checked artifact set stays complete.
  metrics::AveragedResult row_stats;
  row_stats.scheduler = "workload-stats";
  row_stats.runs = 1;
  bench::SweepPoint pt;
  pt.x = static_cast<double>(stats.num_tasks);
  pt.x_label = std::to_string(stats.num_tasks) + " tasks";
  pt.wall_seconds = bench::elapsed_s(opt);
  pt.rows.push_back(std::move(row_stats));
  bench::write_report("Table 2: Coadd workload characteristics", "tasks",
                      "files per task", {pt}, opt);
  return 0;
}
