// Reproduces paper Table 2: characteristics of Coadd with 6,000 tasks.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "table2_workload"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("table2_workload", argc, argv);
}
