// Reproduces paper Figure 4: makespan of each algorithm with data-server
// capacities of 3000, 6000, 15000, and 30000 files (Table 1 defaults
// otherwise: 10 sites, 1 worker/site, 25 MB files).
//
// Expected shape (paper Sec. 5.4): storage affinity suffers at small
// capacities (premature scheduling decisions) and becomes comparable as
// capacity grows; overlap is the worst worker-centric metric; the
// randomized variants are best; worker-centric metrics are nearly flat in
// capacity because a task's working set is small.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = opt.topology_seeds();

  std::vector<std::size_t> capacities{3000, 6000, 15000, 30000};
  std::vector<bench::SweepPoint> points;
  for (std::size_t cap : capacities) {
    grid::GridConfig c = bench::paper_config(opt);
    c.capacity_files = cap;
    bench::SweepPoint pt;
    pt.x = static_cast<double>(cap);
    pt.x_label = std::to_string(cap);
    pt.rows = grid::run_matrix(c, job, specs, seeds, [&](const std::string& s) {
      bench::progress("capacity " + pt.x_label + ": " + s);
    }, opt.jobs);
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases = bench::trace_representative_run(opt, bench::paper_config(opt),
                                                job);
  bench::emit_series("Figure 4: makespan vs data-server capacity",
                     "capacity_files", points,
                     [](const metrics::AveragedResult& r) {
                       return r.makespan_minutes;
                     },
                     "makespan (minutes)", opt,
                     phases ? &*phases : nullptr);
  return 0;
}
