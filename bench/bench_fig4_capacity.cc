// Reproduces paper Figure 4: makespan vs data-server capacity.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig4_capacity"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig4_capacity", argc, argv);
}
