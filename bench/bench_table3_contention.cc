// Reproduces paper Table 3: rest metric per-site waiting/transfer times.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "table3_contention"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("table3_contention", argc, argv);
}
