// Reproduces paper Table 3: the rest metric's per-site data-server
// behaviour at 2, 4, 6, and 8 workers per site — average waiting time
// (hours), transfer time (hours), and number of file transfers.
//
// Expected shape (paper Sec. 5.5): transfers and transfer time fall
// monotonically with more workers (more sharing), but waiting time peaks
// at an intermediate worker count — the serial data server's queue is the
// bottleneck.
#include <iomanip>
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  auto seeds = opt.topology_seeds();

  std::cout << "Table 3. rest metric, per-site averages (paper trend: "
               "waiting peaks mid, transfers fall)\n\n";
  std::cout << std::left << std::setw(12) << "workers" << std::right
            << std::setw(18) << "waiting (hrs)" << std::setw(18)
            << "transfer (hrs)" << std::setw(20) << "# file transfers"
            << '\n';

  std::vector<std::array<double, 4>> rows;
  std::vector<bench::SweepPoint> points;
  for (int workers : {2, 4, 6, 8}) {
    grid::GridConfig c = bench::paper_config(opt);
    c.tiers.workers_per_site = workers;
    auto avg = grid::run_averaged(c, job, rest, seeds, opt.jobs);
    std::cout << std::left << std::setw(12) << workers << std::right
              << std::fixed << std::setprecision(2) << std::setw(18)
              << avg.waiting_hours_per_site << std::setw(18)
              << avg.transfer_hours_per_site << std::setw(20)
              << std::setprecision(1) << avg.transfers_per_site << '\n';
    rows.push_back({static_cast<double>(workers), avg.waiting_hours_per_site,
                    avg.transfer_hours_per_site, avg.transfers_per_site});
    bench::SweepPoint pt;
    pt.x = workers;
    pt.x_label = std::to_string(workers) + " workers";
    pt.wall_seconds = bench::elapsed_s(opt);
    pt.rows.push_back(std::move(avg));
    points.push_back(std::move(pt));
  }

  if (opt.csv_path) {
    CsvWriter csv(*opt.csv_path);
    csv.header({"workers", "waiting_hours", "transfer_hours",
                "file_transfers"});
    for (const auto& r : rows) csv.row(r[0], r[1], r[2], r[3]);
  }

  auto phases =
      bench::trace_representative_run(opt, bench::paper_config(opt), job);
  bench::write_report("Table 3: rest metric per-site contention",
                      "workers_per_site", "waiting (hours)", points, opt,
                      phases ? &*phases : nullptr);
  return 0;
}
