// Reproduces paper Figure 7: makespan vs number of sites.
//
// Thin shim: the full scenario definition (sweep axis, schedulers,
// expected shape) lives in the catalog (src/scenario/catalog.h) under
// the name "fig7_sites"; run with --help for the shared flag set or
// --list-scenarios for every registered artifact.
#include "scenario/cli.h"

int main(int argc, char** argv) {
  return wcs::scenario::scenario_main("fig7_sites", argc, argv);
}
