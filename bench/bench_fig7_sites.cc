// Reproduces paper Figure 7: makespan with different numbers of sites
// (10..26; capacity 6000, 1 worker/site).
//
// Expected shape (paper Sec. 5.6): makespan falls as sites are added;
// combined.2 performs best; randomized variants beat their deterministic
// counterparts.
#include <iostream>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace wcs;
  bench::BenchOptions opt = bench::parse_options(argc, argv);

  workload::Job job = bench::paper_workload(opt);
  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = opt.topology_seeds();

  std::vector<int> site_counts{10, 14, 18, 22, 26};
  if (opt.fast) site_counts = {10, 18, 26};
  std::vector<bench::SweepPoint> points;
  for (int sites : site_counts) {
    grid::GridConfig c = bench::paper_config(opt);
    c.tiers.num_sites = sites;
    bench::SweepPoint pt;
    pt.x = sites;
    pt.x_label = std::to_string(sites);
    pt.rows = grid::run_matrix(c, job, specs, seeds, [&](const std::string& s) {
      bench::progress(pt.x_label + " sites: " + s);
    }, opt.jobs);
    pt.wall_seconds = bench::elapsed_s(opt);
    points.push_back(std::move(pt));
  }

  auto phases = bench::trace_representative_run(opt, bench::paper_config(opt),
                                                job);
  bench::emit_series("Figure 7: makespan vs number of sites", "num_sites",
                     points,
                     [](const metrics::AveragedResult& r) {
                       return r.makespan_minutes;
                     },
                     "makespan (minutes)", opt,
                     phases ? &*phases : nullptr);
  return 0;
}
