// BM_EndToEnd: the memory-lean acceptance benchmark (DESIGN.md §Memory
// layout). Runs one worker-centric ("rest") simulation over a uniform
// bag-of-tasks workload at 100k and 1M tasks (10M behind
// WCS_BENCH_10M=1) on a 100-site x 100-worker grid and reports for each
// run:
//
//   wall time, events/sec        host clock around GridSimulation::run()
//   peak RSS                     /proc/self VmHWM (reset per run when the
//                                kernel supports clear_refs), getrusage
//                                fallback
//   event-loop heap allocations  global operator-new counter delta
//                                across run() (0 under sanitizers)
//   flow-arena stats             NodeArena page/freelist accounting
//
// The acceptance gate is the allocation rate: the pooled/slotted hot
// structures must average under kMaxAllocsPerEvent event-loop heap
// allocations per executed event at every scale. (The node-based
// --legacy-layout A/B baseline this bench originally compared against
// was removed after one PR of soak; the historical ratio was >= 3x.)
//
// Unlike the figure benches this is not a scenario-catalog shim — the
// sweep axis is the task scale — but it speaks the same CLI subset
// reproduce.sh drives (--fast/--audit/--jobs/--csv) and emits a
// schema-v1 run report (results/bench_memlean.json) plus the canonical
// summary results/BENCH_memlean.json consumed by
// scripts/check_rss_budget.sh.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/alloc_stats.h"
#include "common/arena.h"
#include "common/check.h"
#include "grid/grid_simulation.h"
#include "obs/json.h"
#include "sched/factory.h"
#include "workload/generators.h"

namespace {

// Event-loop heap-allocation budget, per executed event. The steady
// state is pooled and allocation-free; the budget covers warmup growth
// (slot tables, arena pages, callback captures) amortized over the run,
// which dominates small scales (measured: ~0.89 at 5k tasks, ~0.51 at
// 100k, falling with scale). Any per-event allocation on the hot path
// pushes the rate past 1.0 immediately, so the gate still bites.
constexpr double kMaxAllocsPerEvent = 1.0;

struct Options {
  bool fast = false;   // skip the 1M point
  bool audit = false;  // audited 100k runs (never at >= 1M; sweeps are O(n))
  std::size_t tasks_override = 0;  // replace the standard scales (CI/ASan)
  std::string csv_path = "results/bench_memlean.csv";
  std::string report_path = "results/bench_memlean.json";
  std::string summary_path = "results/BENCH_memlean.json";
};

struct Measurement {
  std::size_t tasks = 0;
  std::string scale_label;
  wcs::metrics::RunResult result;
  double wall_s = 0;
  double events_per_s = 0;
  double peak_rss_mb = 0;
  double rss_before_mb = 0;  // floor inherited from earlier runs (malloc
                             // retains freed pages), for reading peaks
  std::uint64_t event_loop_allocations = 0;  // 0 when counting disabled
  wcs::common::NodeArena::Stats flow_arena;
};

// Best-effort reset of the kernel's peak-RSS watermark so each run
// reports its own high-water mark instead of the process maximum.
void reset_peak_rss() {
  std::ofstream f("/proc/self/clear_refs");
  if (f) f << "5\n";
}

// One "Vm...: N kB" field of /proc/self/status, in megabytes; < 0 when
// /proc is unavailable.
double proc_status_mb(const char* key) {
  std::ifstream status("/proc/self/status");
  std::string line;
  const std::size_t key_len = std::strlen(key);
  while (std::getline(status, line)) {
    if (line.rfind(key, 0) == 0) {
      long kb = std::atol(line.c_str() + key_len);
      if (kb > 0) return static_cast<double>(kb) / 1024.0;
    }
  }
  return -1.0;
}

// Peak RSS in megabytes: VmHWM from /proc (resettable via clear_refs),
// falling back to getrusage(RUSAGE_SELF) where /proc is unavailable.
double peak_rss_mb() {
  const double hwm = proc_status_mb("VmHWM:");
  if (hwm >= 0) return hwm;
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kB on Linux
}

// Current RSS: the floor a later run inherits (malloc retains freed
// pages), recorded so peak numbers of non-first runs can be read fairly.
double current_rss_mb() {
  const double rss = proc_status_mb("VmRSS:");
  return rss >= 0 ? rss : 0.0;
}

double allocs_per_event(const Measurement& m) {
  return m.result.events_executed > 0
             ? static_cast<double>(m.event_loop_allocations) /
                   static_cast<double>(m.result.events_executed)
             : 0.0;
}

Measurement run_point(const wcs::workload::Job& job, std::size_t tasks,
                      const std::string& scale_label, bool audit) {
  Measurement m;
  m.tasks = tasks;
  m.scale_label = scale_label;

  wcs::grid::GridConfig config;
  config.tiers.num_sites = 100;
  config.tiers.workers_per_site = 100;
  config.tiers.seed = 17;
  config.capacity_files = 1200;  // worst-case pins 3 x 100 = 300
  config.audit = audit;
  config.obs = wcs::obs::Options{};  // measure the bare event loop

  wcs::sched::SchedulerSpec spec;  // "rest", the paper's headline metric
  auto scheduler = wcs::sched::make_scheduler(spec);

  reset_peak_rss();
  m.rss_before_mb = current_rss_mb();
  wcs::grid::GridSimulation sim(config, job, std::move(scheduler));

  const auto alloc_before = wcs::common::alloc_snapshot();
  // detlint: nondet-source -- bench wall-clock measurement, reported as metadata only
  const auto t0 = std::chrono::steady_clock::now();
  m.result = sim.run();
  // detlint: nondet-source -- bench wall-clock measurement, reported as metadata only
  const auto t1 = std::chrono::steady_clock::now();
  const auto alloc_after = wcs::common::alloc_snapshot();

  m.wall_s = std::chrono::duration<double>(t1 - t0).count();
  m.events_per_s =
      m.wall_s > 0
          ? static_cast<double>(m.result.events_executed) / m.wall_s
          : 0;
  m.peak_rss_mb = peak_rss_mb();
  m.event_loop_allocations =
      wcs::common::allocations_between(alloc_before, alloc_after);
  m.flow_arena = sim.data_plane().flows().arena().stats();

  WCS_CHECK_EQ(m.result.tasks_completed, tasks);
  std::printf(
      "BM_EndToEnd_%s  wall %8.2fs  %10.0f events/s  "
      "peak RSS %8.1f MB  %12llu event-loop allocs\n",
      scale_label.c_str(), m.wall_s, m.events_per_s, m.peak_rss_mb,
      static_cast<unsigned long long>(m.event_loop_allocations));
  std::fflush(stdout);
  return m;
}

void write_scheduler_row(wcs::obs::JsonWriter& w, const Measurement& m) {
  const auto& r = m.result;
  w.begin_object();
  w.member("name", "rest.flat");
  w.member("runs", std::uint64_t{1});
  w.member("makespan_minutes", r.makespan_minutes());
  w.member("transfers_per_site", r.transfers_per_site());
  w.member("total_file_transfers",
           static_cast<double>(r.total_file_transfers()));
  w.member("total_gigabytes", r.total_bytes_transferred() / 1.0e9);
  w.member("waiting_hours_per_site", r.waiting_hours_per_site());
  w.member("transfer_hours_per_site", r.transfer_hours_per_site());
  w.member("replicas_started", static_cast<double>(r.replicas_started));
  w.end_object();
}

void write_memlean_entry(wcs::obs::JsonWriter& w, const Measurement& m) {
  w.begin_object();
  w.member("scale", m.scale_label);
  w.member("tasks", static_cast<std::uint64_t>(m.tasks));
  w.member("workers", std::uint64_t{10000});
  // Constant since the node-based legacy layout was dropped; kept so
  // consumers (scripts/check_rss_budget.sh) key on a stable field.
  w.member("layout", "flat");
  w.member("wall_seconds", m.wall_s);
  w.member("events", static_cast<std::uint64_t>(m.result.events_executed));
  w.member("events_per_second", m.events_per_s);
  w.member("peak_rss_mb", m.peak_rss_mb);
  w.member("rss_before_mb", m.rss_before_mb);
  w.member("event_loop_allocations", m.event_loop_allocations);
  w.member("allocations_per_event", allocs_per_event(m));
  w.key("flow_arena");
  w.begin_object();
  w.member("pages", static_cast<std::uint64_t>(m.flow_arena.pages));
  w.member("page_bytes", static_cast<std::uint64_t>(m.flow_arena.page_bytes));
  w.member("total_allocations", m.flow_arena.total_allocations);
  w.member("freelist_hits", m.flow_arena.freelist_hits);
  w.member("large_allocations", m.flow_arena.large_allocations);
  w.end_object();
  w.end_object();
}

// Schema-v1 run report: one point per scale, one scheduler row each,
// plus a "memlean" payload (the validator tolerates extra keys).
void write_report(const Options& opt,
                  const std::vector<Measurement>& measurements,
                  std::size_t max_tasks, double total_wall_s) {
  std::filesystem::path path(opt.report_path);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot write " << opt.report_path);

  wcs::obs::JsonWriter w(out);
  w.begin_object();
  w.member("schema_version", 1);
  w.member("bench", "bench_memlean");
  w.member("title", "Memory-lean end-to-end: hot-structure scaling sweep");
  w.member("x_axis", "tasks");
  w.member("metric", "events_per_second");
  w.key("config");
  w.begin_object();
  w.member("tasks", static_cast<std::uint64_t>(max_tasks));
  w.member("seeds", std::uint64_t{1});
  w.member("jobs", std::uint64_t{1});
  w.member("fast", opt.fast);
  w.member("audit", opt.audit);
  w.member("trace", false);
  w.end_object();
  w.member("total_wall_seconds", total_wall_s);

  w.key("points");
  w.begin_array();
  double cumulative_wall = 0;
  for (const Measurement& m : measurements) {
    cumulative_wall += m.wall_s;
    w.begin_object();
    w.member("x", static_cast<double>(m.tasks));
    w.member("x_label", m.scale_label);
    w.member("wall_seconds", cumulative_wall);
    w.key("schedulers");
    w.begin_array();
    write_scheduler_row(w, m);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("memlean");
  w.begin_array();
  for (const Measurement& m : measurements) write_memlean_entry(w, m);
  w.end_array();
  w.end_object();
  out << "\n";
}

// Canonical summary (capital BENCH_ keeps it out of the report-lint
// glob): events/sec and peak RSS per scale, plus the per-event
// allocation rates. scripts/check_rss_budget.sh reads peak_rss_mb of
// the 100k entry.
void write_summary(const Options& opt,
                   const std::vector<Measurement>& measurements) {
  std::filesystem::path path(opt.summary_path);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot write " << opt.summary_path);

  wcs::obs::JsonWriter w(out);
  w.begin_object();
  w.member("bench", "bench_memlean");
  w.member("alloc_counting",
           wcs::common::alloc_counting_enabled());
  w.key("runs");
  w.begin_array();
  for (const Measurement& m : measurements) write_memlean_entry(w, m);
  w.end_array();
  w.key("allocs_per_event");
  w.begin_object();
  for (const Measurement& m : measurements)
    w.member(m.scale_label, allocs_per_event(m));
  w.end_object();
  w.end_object();
  out << "\n";
}

void write_csv(const Options& opt,
               const std::vector<Measurement>& measurements) {
  std::filesystem::path path(opt.csv_path);
  if (path.has_parent_path())
    std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path);
  WCS_CHECK_MSG(out.good(), "cannot write " << opt.csv_path);
  out << "tasks,wall_seconds,events,events_per_second,peak_rss_mb,"
         "event_loop_allocations\n";
  for (const Measurement& m : measurements) {
    out << m.tasks << ',' << m.wall_s << ','
        << m.result.events_executed << ',' << m.events_per_s << ','
        << m.peak_rss_mb << ',' << m.event_loop_allocations << "\n";
  }
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      WCS_CHECK_MSG(i + 1 < argc, a << " needs an argument");
      return argv[++i];
    };
    if (a == "--fast") {
      opt.fast = true;
    } else if (a == "--audit") {
      opt.audit = true;
    } else if (a == "--jobs") {
      next();  // accepted for reproduce.sh compatibility; runs are serial
    } else if (a == "--tasks") {
      opt.tasks_override = static_cast<std::size_t>(
          std::strtoull(next().c_str(), nullptr, 10));
      WCS_CHECK_MSG(opt.tasks_override > 0, "--tasks needs a positive count");
    } else if (a == "--csv") {
      opt.csv_path = next();
    } else if (a == "--report") {
      opt.report_path = next();
    } else if (a == "--summary") {
      opt.summary_path = next();
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "bench_memlean: end-to-end memory-layout scaling bench\n"
          "  --fast            100k point only (skip the 1M runs)\n"
          "  --audit           run the invariant auditor at the 100k point\n"
          "  --jobs N          accepted, ignored (runs are serial)\n"
          "  --tasks N         single custom-scale point (CI / sanitizers)\n"
          "  --csv PATH        CSV output (default results/bench_memlean.csv)\n"
          "  --report PATH     schema-v1 report (default "
          "results/bench_memlean.json)\n"
          "  --summary PATH    canonical summary (default "
          "results/BENCH_memlean.json)\n"
          "  WCS_BENCH_10M=1   append a 10M-task smoke run\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  // detlint: nondet-source -- bench wall-clock measurement, reported as metadata only
  const auto bench_start = std::chrono::steady_clock::now();

  struct Scale {
    std::size_t tasks;
    const char* label;
  };
  std::vector<Scale> scales = {{100'000, "100k"}};
  if (!opt.fast) scales.push_back({1'000'000, "1M"});
  // detlint: nondet-source -- WCS_BENCH_10M scale gate for the bench harness, not simulation state
  const char* env_10m = std::getenv("WCS_BENCH_10M");
  if (env_10m != nullptr && std::strcmp(env_10m, "1") == 0)
    scales.push_back({10'000'000, "10M"});
  std::string custom_label;
  if (opt.tasks_override != 0) {
    custom_label = std::to_string(opt.tasks_override);
    scales = {{opt.tasks_override, custom_label.c_str()}};
  }

  std::vector<Measurement> measurements;
  for (const Scale& scale : scales) {
    wcs::workload::GeneratorParams gp;
    gp.num_tasks = scale.tasks;
    gp.num_files = scale.tasks / 5;  // ~15x sharing at 3 files/task
    gp.files_per_task = 3;
    gp.seed = 1;
    const auto job = wcs::workload::generate_uniform(gp);

    const bool audit = opt.audit && scale.tasks <= 100'000;
    measurements.push_back(run_point(job, scale.tasks, scale.label, audit));
    if (wcs::common::alloc_counting_enabled()) {
      const double rate = allocs_per_event(measurements.back());
      std::printf("  %s: %.4f event-loop allocations/event\n", scale.label,
                  rate);
      WCS_CHECK_MSG(rate <= kMaxAllocsPerEvent,
                    "event loop must average <= " << kMaxAllocsPerEvent
                        << " heap allocations per event at " << scale.label
                        << "; measured " << rate);
    }
  }

  const double total_wall_s =
      // detlint: nondet-source -- bench wall-clock measurement, reported as metadata only
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  const std::size_t max_tasks = scales.back().tasks;
  write_csv(opt, measurements);
  write_report(opt, measurements, max_tasks, total_wall_s);
  write_summary(opt, measurements);
  std::printf("wrote %s, %s, %s (%.1fs total)\n", opt.csv_path.c_str(),
              opt.report_path.c_str(), opt.summary_path.c_str(), total_wall_s);
  return 0;
}
