#!/usr/bin/env bash
# Reproduce everything: build, test, regenerate every paper table/figure.
#
#   scripts/reproduce.sh                    # full scale (paper parameters)
#   scripts/reproduce.sh --fast             # 1500 tasks / 2 seeds
#   scripts/reproduce.sh --jobs 8           # fan runs over 8 threads
#   scripts/reproduce.sh --audit            # invariant auditor on every run
#   WCS_BENCH_JOBS=8 scripts/reproduce.sh   # same, via the environment
#
# Independent (algorithm, topology-seed) runs are fanned out over worker
# threads; the default is all hardware threads and the output is
# bit-identical at any --jobs level. Outputs land in results/: one .txt
# per bench, CSV series, and a schema-versioned JSON run report per bench
# (results/bench_<name>.json, validated by tools/report_lint at the end).
set -euo pipefail
cd "$(dirname "$0")/.."

FAST_FLAG=""
AUDIT_FLAG=""
JOBS_FLAGS=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --fast) FAST_FLAG="--fast"; shift ;;
    --audit) AUDIT_FLAG="--audit"; shift ;;
    --jobs) JOBS_FLAGS=(--jobs "$2"); shift 2 ;;
    *) echo "usage: $0 [--fast] [--audit] [--jobs N]" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Preflight: the tree must be determinism-lint clean before results are
# regenerated (scripts/check_detlint.sh; rules in DESIGN.md).
scripts/check_detlint.sh

mkdir -p results
for bench in build/bench/bench_*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name=$(basename "$bench")
  echo "=== $name ==="
  if [[ "$name" == "bench_micro" ]]; then
    # google-benchmark JSON, distinct from the run-report schema files.
    "$bench" --benchmark_out="results/$name.gbench.json" \
      --benchmark_out_format=json | tee "results/$name.txt"
  else
    "$bench" $FAST_FLAG $AUDIT_FLAG "${JOBS_FLAGS[@]}" \
      --csv "results/$name.csv" | tee "results/$name.txt"
  fi
done

echo "=== report_lint ==="
REPORTS=()
for report in results/bench_*.json; do
  [[ "$report" == *.gbench.json ]] || REPORTS+=("$report")
done
build/tools/report_lint "${REPORTS[@]}"

echo "done — see results/"
