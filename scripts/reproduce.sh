#!/usr/bin/env bash
# Reproduce everything: build, test, regenerate every paper table/figure.
#
#   scripts/reproduce.sh           # full scale (paper parameters, ~1 h)
#   scripts/reproduce.sh --fast    # 1500 tasks / 2 seeds (~5 min)
#
# Outputs land in results/: one .txt per bench plus CSV series.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST_FLAG=""
if [[ "${1:-}" == "--fast" ]]; then
  FAST_FLAG="--fast"
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for bench in build/bench/bench_*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name=$(basename "$bench")
  echo "=== $name ==="
  if [[ "$name" == "bench_micro" ]]; then
    "$bench" | tee "results/$name.txt"
  else
    "$bench" $FAST_FLAG --csv "results/$name.csv" | tee "results/$name.txt"
  fi
done

echo "done — see results/"
