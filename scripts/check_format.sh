#!/usr/bin/env bash
# Verify every C++ source is .clang-format-clean (skipped with a notice
# when clang-format is not installed — the CI format job provides it).
#
#   scripts/check_format.sh          # check only (CI mode)
#   scripts/check_format.sh --fix    # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT" >/dev/null 2>&1; then
  echo "skip — $FORMAT not installed; install clang-format (or set" \
       "CLANG_FORMAT) to run the format check"
  exit 0
fi

mapfile -t SOURCES < <(find src tests bench examples tools \
  \( -name '*.cc' -o -name '*.h' \) | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$FORMAT" -i "${SOURCES[@]}"
  echo "ok — formatted ${#SOURCES[@]} files"
else
  "$FORMAT" --dry-run --Werror "${SOURCES[@]}"
  echo "ok — ${#SOURCES[@]} files are clang-format-clean"
fi
