#!/usr/bin/env bash
# Documentation wall (the CI docs job):
#   1. every relative markdown link in the top-level pages and docs/
#      resolves to a real file;
#   2. docs/scenario-catalog.md matches what gen_scenario_docs renders
#      from the live scenario registry (the page is generated — a drift
#      means someone changed src/scenario without regenerating it).
#
#   scripts/check_docs.sh [BUILD_DIR]     # default: build
#
# Needs a configured build tree for the staleness half; pass the tree as
# $1 if it is not ./build.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# --- 1. relative link check -------------------------------------------------
PAGES=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
broken=0
for page in "${PAGES[@]}"; do
  [ -f "$page" ] || continue
  dir=$(dirname "$page")
  # Inline links only: [text](target). External URLs and pure #anchors
  # are skipped; a local target's #fragment is stripped before the check.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $page: ($target)" >&2
      broken=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$page" | sed -E 's/^\]\(//; s/\)$//')
done
if [ "$broken" -ne 0 ]; then
  echo "FAIL — broken relative markdown links (see above)" >&2
  exit 1
fi
echo "ok — all relative markdown links resolve"

# --- 2. scenario catalog staleness ------------------------------------------
GEN="$BUILD_DIR/tools/gen_scenario_docs"
if [ ! -x "$GEN" ]; then
  echo "building gen_scenario_docs in $BUILD_DIR ..."
  cmake --build "$BUILD_DIR" --target gen_scenario_docs -j
fi
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
"$GEN" "$tmp"
if ! diff -u docs/scenario-catalog.md "$tmp"; then
  echo "FAIL — docs/scenario-catalog.md is stale; regenerate with:" >&2
  echo "  ./$BUILD_DIR/tools/gen_scenario_docs docs/scenario-catalog.md" >&2
  exit 1
fi
echo "ok — docs/scenario-catalog.md matches the live scenario registry"
