#!/usr/bin/env bash
# Static wall, part 1: warnings-as-errors build; part 2: clang-tidy over
# the library sources (skipped with a notice when clang-tidy is not
# installed — the CI lint job provides it).
#
#   scripts/check_lint.sh
#
# Uses a dedicated build tree (build-lint/) so the regular build stays
# untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-lint

cmake -B "$BUILD_DIR" -S . -DWCS_WERROR=ON -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" -j
echo "ok — -Wall -Wextra -Wshadow -Wconversion clean with -Werror"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "skip — $TIDY not installed; install clang-tidy (or set CLANG_TIDY)" \
       "to run the .clang-tidy checks"
  exit 0
fi

# Library sources only: test/bench binaries lean on GTest/benchmark
# macros that trip readability checks they cannot fix. Promotion to
# errors comes from WarningsAsErrors: '*' in .clang-tidy itself.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)
"$TIDY" -p "$BUILD_DIR" "${SOURCES[@]}"
echo "ok — clang-tidy clean over ${#SOURCES[@]} sources"
