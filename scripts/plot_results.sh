#!/usr/bin/env bash
# Render the figure CSVs produced by the benches (--csv) into PNGs with
# gnuplot, one chart per paper figure. Usage:
#
#   scripts/plot_results.sh [results_dir]
#
# Skips silently if gnuplot is not installed.
set -euo pipefail
dir="${1:-results}"
command -v gnuplot >/dev/null || { echo "gnuplot not found; skipping"; exit 0; }

plot() {
  local csv="$1" title="$2" ylabel="$3" col="$4" out="$5"
  [[ -f "$dir/$csv" ]] || { echo "missing $dir/$csv (run the bench with --csv)"; return; }
  gnuplot <<EOF
set datafile separator ','
set terminal pngcairo size 900,600
set output '$dir/$out'
set key outside
set title '$title'
set xlabel 'x'
set ylabel '$ylabel'
set grid
# long format: x,algorithm,makespan_min,transfers_per_site,...
plot for [alg in "storage-affinity overlap rest combined rest.2 combined.2"] \
  "< awk -F, -v a=".alg." 'NR>1 && \$2==a {print \$1, \$$col}' $dir/$csv" \
  using 1:2 with linespoints title alg
EOF
  echo "wrote $dir/$out"
}

# column 3 = makespan_min, column 4 = transfers_per_site (see emit_series)
plot bench_fig4_capacity.csv  "Figure 4: makespan vs capacity"      "makespan (min)"        3 fig4.png
plot bench_fig5_transfers.csv "Figure 5: transfers vs capacity"     "transfers/data server" 4 fig5.png
plot bench_fig6_workers.csv   "Figure 6: makespan vs workers/site"  "makespan (min)"        3 fig6.png
plot bench_fig7_sites.csv     "Figure 7: makespan vs sites"         "makespan (min)"        3 fig7.png
plot bench_fig8_filesize.csv  "Figure 8: makespan vs file size"     "makespan (min)"        3 fig8.png
