#!/usr/bin/env bash
# Build with a sanitizer and run the tier-1 tests plus the parallel
# experiment-runner tests under it.
#
#   scripts/check_tsan.sh              # ThreadSanitizer (default)
#   WCS_SANITIZE=address scripts/check_tsan.sh   # AddressSanitizer
#
# Uses a dedicated build tree (build-tsan/ or build-asan/) so the regular
# build stays untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${WCS_SANITIZE:-thread}"
case "$SANITIZER" in
  thread) BUILD_DIR=build-tsan ;;
  address) BUILD_DIR=build-asan ;;
  *) echo "WCS_SANITIZE must be 'thread' or 'address' (got '$SANITIZER')" >&2
     exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DWCS_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j

# The parallel runner is the piece with real cross-thread interaction —
# run its tests first and loudly, then the whole tier-1 suite.
ctest --test-dir "$BUILD_DIR" --output-on-failure -R 'ThreadPool|ParallelRunner'
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "ok — tier-1 + parallel-runner tests clean under ${SANITIZER} sanitizer"
