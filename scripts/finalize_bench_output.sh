#!/usr/bin/env bash
# Post-processing for a bench_output.txt produced before the
# demand-fetch/replica race fix: replace the truncated Extension E1
# section with the output of the fixed binary, and append the A4
# baselines section (added to the bench suite after the run started).
# Idempotent: skips cleanly if there is nothing to fix.
set -euo pipefail
cd "$(dirname "$0")/.."

out=bench_output.txt
fixed=results/ext_replication_fixed.txt
a4=results/ablation_baselines.txt

if grep -q "terminate called" "$out"; then
  start=$(grep -n "Extension E1: replication mechanisms" "$out" | head -1 | cut -d: -f1)
  end=$(grep -n "Aborted" "$out" | head -1 | cut -d: -f1)
  [[ -n "$start" && -n "$end" && "$end" -gt "$start" ]] || {
    echo "unexpected layout; not splicing"; exit 1; }
  { head -n $((start - 1)) "$out"; cat "$fixed"; tail -n +$((end + 1)) "$out"; } \
    > "$out.tmp" && mv "$out.tmp" "$out"
  echo "spliced fixed E1 section"
fi

if ! grep -q "Ablation A4" "$out" && [[ -f "$a4" ]]; then
  cat "$a4" >> "$out"
  echo "appended A4 section"
fi
echo "bench_output.txt finalized"
