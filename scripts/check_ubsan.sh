#!/usr/bin/env bash
# Build with UndefinedBehaviorSanitizer (-fno-sanitize-recover=all: any
# finding aborts the test) and run the tier-1 suite under it.
#
#   scripts/check_ubsan.sh
#
# Uses a dedicated build tree (build-ubsan/) so the regular build stays
# untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-ubsan

cmake -B "$BUILD_DIR" -S . -DWCS_SANITIZE=undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j

ctest --test-dir "$BUILD_DIR" --output-on-failure -j

echo "ok — tier-1 tests clean under UndefinedBehaviorSanitizer"
