#!/usr/bin/env bash
# Static wall, part 3: the determinism static-analysis pass.
#
#   scripts/check_detlint.sh [--json PATH]
#
# Builds tools/detlint and runs it over src/, tests/, bench/, and
# examples/. Exits non-zero on any unsuppressed finding — the checked-in
# baseline (tools/detlint/baseline.json) is empty and should stay that
# way: new findings are fixed, or justified in-line with
# `// detlint: <rule> -- <reason>`. Rules are documented in DESIGN.md
# §Invariants & static analysis.
set -euo pipefail
cd "$(dirname "$0")/.."

JSON_OUT="${1:-}"
if [[ "$JSON_OUT" == "--json" ]]; then
  JSON_OUT="${2:?--json needs a path}"
elif [[ -n "$JSON_OUT" ]]; then
  echo "usage: $0 [--json PATH]" >&2
  exit 2
fi

cmake -B build -S . >/dev/null
cmake --build build -j --target detlint >/dev/null

ARGS=(--baseline tools/detlint/baseline.json)
if [[ -n "$JSON_OUT" ]]; then
  mkdir -p "$(dirname "$JSON_OUT")"
  ARGS+=(--json "$JSON_OUT")
fi
build/tools/detlint "${ARGS[@]}" src tests bench examples
echo "ok — detlint clean (suppressions all carry justifications)"
