#!/usr/bin/env bash
# Peak-RSS regression gate for the memory-lean layout (DESIGN.md
# §Memory layout).
#
#   scripts/check_rss_budget.sh                       # uses results/BENCH_memlean.json
#   scripts/check_rss_budget.sh path/to/summary.json  # explicit summary
#
# Reads the canonical bench summary (written by bench_memlean; run
# `build/bench/bench_memlean --fast` first if it is missing) and fails
# if the 100k-task FLAT run's peak RSS exceeds the checked-in budget by
# more than 20%. The budget is the measured baseline on the reference
# runner plus headroom for allocator/kernel noise; re-bless it here when
# an intentional change moves the footprint.
set -euo pipefail
cd "$(dirname "$0")/.."

# Measured 100k flat baseline (see results/perf_pr6.md). The gate fires
# at BUDGET_MB * 1.20.
BUDGET_MB=1400

SUMMARY="${1:-results/BENCH_memlean.json}"
if [[ ! -f "$SUMMARY" ]]; then
  echo "check_rss_budget: $SUMMARY not found — run build/bench/bench_memlean first" >&2
  exit 2
fi

python3 - "$SUMMARY" "$BUDGET_MB" <<'EOF'
import json
import sys

summary_path, budget_mb = sys.argv[1], float(sys.argv[2])
with open(summary_path) as f:
    doc = json.load(f)

# The 100k point is the budgeted one; a --tasks override (CI reduced
# scale) labels its single point with the raw task count — budget-check
# whatever flat run the summary holds at the largest scale <= 100k.
flat = [r for r in doc.get("runs", []) if r.get("layout") == "flat"
        and int(r.get("tasks", 0)) <= 100_000]
if not flat:
    sys.exit(f"check_rss_budget: no flat run at <= 100k tasks in {summary_path}")
run = max(flat, key=lambda r: int(r["tasks"]))

peak = float(run["peak_rss_mb"])
limit = budget_mb * 1.20
scale = run.get("scale", run.get("tasks"))
print(f"check_rss_budget: {scale} flat peak RSS {peak:.1f} MB "
      f"(budget {budget_mb:.0f} MB, limit {limit:.0f} MB)")
if peak > limit:
    sys.exit(f"check_rss_budget: FAIL — peak RSS {peak:.1f} MB exceeds "
             f"{limit:.0f} MB (>20% over the {budget_mb:.0f} MB budget). "
             "If the regression is intentional, re-bless BUDGET_MB in "
             "scripts/check_rss_budget.sh.")
print("check_rss_budget: OK")
EOF
