// detlint CLI. Scans the given files/directories (recursing into *.h
// and *.cc) and exits 1 on any unsuppressed finding. The wrapper that
// CI and reproduce.sh call is scripts/check_detlint.sh; the rules and
// the suppression grammar are documented in DESIGN.md §Invariants &
// static analysis.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "detlint/detlint.h"

namespace {

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: detlint [options] <path>...\n"
               "\n"
               "Determinism static-analysis pass. Paths may be files or\n"
               "directories (scanned recursively for *.h / *.cc).\n"
               "\n"
               "  --json PATH      write the machine-readable report\n"
               "  --baseline PATH  tolerate findings listed in PATH\n"
               "                   (matched by rule+file; the checked-in\n"
               "                   baseline is empty)\n"
               "  --list-rules     print the rule table and exit\n"
               "  --quiet          findings counted but not printed\n"
               "  -h, --help       this text\n"
               "\n"
               "exit status: 0 clean, 1 unsuppressed findings, 2 usage/IO\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using wcs::detlint::Finding;

  std::string json_path;
  std::string baseline_path;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") return usage(0);
    if (arg == "--list-rules") {
      for (const auto& r : wcs::detlint::rules())
        std::printf("%-16s %s\n", r.id.c_str(), r.summary.c_str());
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--json" || arg == "--baseline") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "detlint: %s needs a path\n", arg.c_str());
        return usage(2);
      }
      (arg == "--json" ? json_path : baseline_path) = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "detlint: unknown option %s\n", arg.c_str());
      return usage(2);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage(2);

  // Expand directories; sort for deterministic output.
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p, ec)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".cpp")
          files.push_back(e.path().generic_string());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "detlint: cannot read %s\n", p.c_str());
      return 2;
    }
  }

  wcs::detlint::Linter linter;
  for (const auto& f : files) {
    if (!linter.add_file_from_disk(f)) {
      std::fprintf(stderr, "detlint: cannot read %s\n", f.c_str());
      return 2;
    }
  }
  std::vector<Finding> findings = linter.run();

  if (!baseline_path.empty()) {
    try {
      const auto baseline = wcs::detlint::load_baseline(baseline_path);
      for (auto& f : findings) {
        if (!f.suppressed && baseline.count({f.rule, f.file}) != 0) {
          f.suppressed = true;
          f.suppress_reason = "baselined (" + baseline_path + ")";
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "detlint: %s\n", e.what());
      return 2;
    }
  }

  std::size_t unsuppressed = 0, suppressed = 0;
  for (const auto& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++unsuppressed;
    if (!quiet) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      if (!f.snippet.empty()) std::printf("    %s\n", f.snippet.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << wcs::detlint::report_json(findings, linter.files_added());
  }

  std::printf("detlint: %zu finding(s), %zu suppressed, %zu file(s) scanned\n",
              unsuppressed, suppressed, linter.files_added());
  return unsuppressed == 0 ? 0 : 1;
}
