#include "detlint/detlint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "obs/json.h"

// Implementation notes.
//
// detlint is a lexer, not a compiler: it strips comments, strings, and
// preprocessor directives, tokenizes what is left, and pattern-matches
// declarations and statements. That makes it fast, dependency-free, and
// wrong in corner cases — which is fine, because every rule errs toward
// a finding and findings can be suppressed with a justification.
//
// Two-phase: add_file() only stores content; run() first collects
// declarations from every file (type aliases like `using FlowMap =
// std::unordered_map<...>`, member names like `flows_`), then scans.
// Member-style names (trailing '_', or declared in headers) are shared
// across files so a loop in flow_manager.cc over a member declared in
// flow_manager.h still resolves; short local names stay file-local to
// keep name collisions from flooding other files.
//
// detlint dogfoods its own rules: the implementation uses only ordered
// containers (std::map/std::set/std::vector), so linting tools/ is
// clean by construction.

namespace wcs::detlint {
namespace {

// ---------------------------------------------------------------------------
// Rules registry.

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"bad-suppression",
       "malformed `// detlint:` directive (unknown rule or missing "
       "`-- <reason>`); justifications are mandatory"},
      {"float-accum",
       "float/double accumulation (+=, std::accumulate) inside a loop "
       "over an unordered container: summation order follows hash order"},
      {"nondet-source",
       "nondeterminism source: rand()/std::random_device, wall clocks "
       "(steady/system/high_resolution_clock, time()), getenv outside "
       "the CLI layer"},
      {"ptr-order",
       "ordering derived from addresses: std::hash<T*>, pointer-keyed "
       "ordered map/set, sorting pointer containers by value, "
       "reinterpret_cast to uintptr_t"},
      {"uninit-field",
       "arithmetic/enum/pointer field in a src/ header without a "
       "default initializer"},
      {"unordered-loop",
       "loop over std::unordered_{map,set} with side effects in the "
       "body: hash-table iteration order is not a contract"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Phase 0: cleaning. Strips comments, string/char literals, and
// preprocessor directives (replacing them with spaces so offsets and
// line numbers survive), and harvests `// detlint:` directives.

struct Suppression {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool standalone = false;  // comment-only line: applies to next code line
};

struct CleanResult {
  std::string text;                       // content with non-code blanked
  std::vector<Suppression> suppressions;  // well-formed directives
  std::vector<Finding> bad_directives;    // malformed ones (findings)
  std::vector<bool> line_has_code;        // 1-based; [0] unused
};

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Parses one line-comment body. Returns true if it was a detlint
// directive (well- or mal-formed).
bool parse_directive(const std::string& comment, int line, bool standalone,
                     const std::string& path, CleanResult& out) {
  const std::string body = trim(comment);
  constexpr std::string_view kTag = "detlint:";
  if (body.substr(0, kTag.size()) != kTag) return false;

  const std::string rest = trim(body.substr(kTag.size()));
  const std::size_t dash = rest.find("--");
  std::string rules_part = dash == std::string::npos ? rest : rest.substr(0, dash);
  std::string reason = dash == std::string::npos ? "" : trim(rest.substr(dash + 2));

  std::vector<std::string> rule_ids;
  std::string bad_rule;
  std::stringstream ss(rules_part);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    if (!is_known_rule(item) || item == "bad-suppression") bad_rule = item;
    rule_ids.push_back(item);
  }

  std::string problem;
  if (rule_ids.empty()) {
    problem = "no rule named";
  } else if (!bad_rule.empty()) {
    problem = "unknown rule '" + bad_rule + "'";
  } else if (dash == std::string::npos) {
    problem = "missing '-- <reason>'";
  } else if (reason.empty()) {
    problem = "empty reason after '--'";
  }

  if (!problem.empty()) {
    Finding f;
    f.rule = "bad-suppression";
    f.file = path;
    f.line = line;
    f.message = "malformed detlint directive (" + problem +
                "); expected '// detlint: <rule>[,<rule>] -- <reason>'";
    f.snippet = "// " + body;
    out.bad_directives.push_back(std::move(f));
    return true;
  }
  out.suppressions.push_back({line, std::move(rule_ids), std::move(reason),
                              standalone});
  return true;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

CleanResult clean_source(const std::string& path, const std::string& src) {
  CleanResult out;
  out.text.assign(src.size(), ' ');
  // Worst case one line per char; +2 for 1-based indexing and a final
  // line without a trailing newline.
  out.line_has_code.assign(std::count(src.begin(), src.end(), '\n') + 2, false);

  int line = 1;
  bool line_code = false;  // any code char emitted on this line yet?
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto newline = [&](std::size_t at) {
    out.text[at] = '\n';
    out.line_has_code[static_cast<std::size_t>(line)] = line_code;
    ++line;
    line_code = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline(i);
      ++i;
      continue;
    }
    // Preprocessor directive: blank the whole logical line (honoring
    // backslash continuations). Macro bodies are not code we scan.
    if (c == '#' && !line_code) {
      while (i < n) {
        if (src[i] == '\n') {
          if (i > 0 && src[i - 1] == '\\') {
            newline(i);
            ++i;
            continue;
          }
          break;  // directive ends; the '\n' is handled by the main loop
        }
        ++i;
      }
      continue;
    }
    // Line comment (and possibly a detlint directive).
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const bool standalone = !line_code;
      std::size_t e = i + 2;
      while (e < n && src[e] != '\n') ++e;
      parse_directive(src.substr(i + 2, e - i - 2), line, standalone, path,
                      out);
      i = e;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') newline(i);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim" (with optional u8/u/U/L
    // prefix, already emitted — blank the R back out).
    if (c == '"' && i > 0 && src[i - 1] == 'R' &&
        (i < 2 || !ident_char(src[i - 2]) ||
         std::string_view("uUL8").find(src[i - 2]) != std::string_view::npos)) {
      out.text[i - 1] = ' ';
      std::size_t d = i + 1;
      while (d < n && src[d] != '(') ++d;
      const std::string delim = ")" + src.substr(i + 1, d - i - 1) + "\"";
      std::size_t e = src.find(delim, d);
      e = (e == std::string::npos) ? n : e + delim.size();
      for (std::size_t k = i; k < e; ++k)
        if (src[k] == '\n') newline(k);
      i = e;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      std::size_t e = i + 1;
      while (e < n && src[e] != '"') {
        if (src[e] == '\\' && e + 1 < n) ++e;
        ++e;
      }
      i = (e < n) ? e + 1 : n;
      line_code = true;  // a literal is still code on this line
      continue;
    }
    // Char literal — but a ' directly after an identifier/digit char is
    // a C++14 digit separator (1'000'000), which stays in the code.
    if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
      std::size_t e = i + 1;
      while (e < n && src[e] != '\'') {
        if (src[e] == '\\' && e + 1 < n) ++e;
        ++e;
      }
      i = (e < n) ? e + 1 : n;
      line_code = true;
      continue;
    }
    out.text[i] = c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_code = true;
    ++i;
  }
  out.line_has_code[static_cast<std::size_t>(line)] = line_code;
  return out;
}

// ---------------------------------------------------------------------------
// Phase 1: tokenization of the cleaned text.

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

std::vector<Token> tokenize(const std::string& clean) {
  // Longest-match-first multi-char operators. << and >> are split into
  // single '<'/'>' so template-argument matching stays simple.
  static const std::vector<std::string> kMulti = {
      "<<=", ">>=", "...", "->", "::", "++", "--", "+=", "-=", "*=",
      "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=", "&&",
      "||"};
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = clean.size();
  while (i < n) {
    const char c = clean[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t e = i + 1;
      while (e < n && ident_char(clean[e])) ++e;
      toks.push_back({Token::Kind::kIdent, clean.substr(i, e - i), line});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t e = i + 1;
      while (e < n &&
             (ident_char(clean[e]) || clean[e] == '.' || clean[e] == '\'' ||
              ((clean[e] == '+' || clean[e] == '-') &&
               std::string_view("eEpP").find(clean[e - 1]) !=
                   std::string_view::npos)))
        ++e;
      toks.push_back({Token::Kind::kNumber, clean.substr(i, e - i), line});
      i = e;
      continue;
    }
    bool matched = false;
    for (const auto& op : kMulti) {
      if (clean.compare(i, op.size(), op) == 0) {
        toks.push_back({Token::Kind::kPunct, op, line});
        i += op.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      toks.push_back({Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Token-stream helpers.

const std::string kEmpty;

const std::string& tok(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() ? t[i].text : kEmpty;
}
bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == Token::Kind::kIdent;
}

// tokens[i] must be "<". Returns the index just past the matching ">",
// or i + 1 if this does not look like a template argument list.
std::size_t match_template(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  std::size_t j = i;
  for (; j < t.size(); ++j) {
    const std::string& s = t[j].text;
    if (s == "<") ++depth;
    else if (s == ">") {
      if (--depth == 0) return j + 1;
    } else if (s == ";" || s == "{" || s == "}") {
      break;  // ran off the declaration: not a template list
    }
  }
  return i + 1;
}

// Index just past the ")" matching tokens[i] == "(".
std::size_t match_paren(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "(") ++depth;
    else if (t[j].text == ")" && --depth == 0) return j + 1;
  }
  return t.size();
}

// Index just past the "}" matching tokens[i] == "{".
std::size_t match_brace(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (t[j].text == "{") ++depth;
    else if (t[j].text == "}" && --depth == 0) return j + 1;
  }
  return t.size();
}

// ---------------------------------------------------------------------------
// Phase 2: declaration collection.

struct Symbols {
  std::set<std::string> unordered_aliases;  // using FlowMap = unordered_map<..>
  std::set<std::string> float_aliases;      // using SimTime = double
  std::set<std::string> arith_aliases;      // using Bytes = uint64_t
  std::set<std::string> enums;
  std::set<std::string> unordered_vars;
  std::set<std::string> float_vars;
  std::set<std::string> ptr_container_vars;  // std::vector<T*> & friends

  void merge_types_from(const Symbols& o) {
    unordered_aliases.insert(o.unordered_aliases.begin(),
                             o.unordered_aliases.end());
    float_aliases.insert(o.float_aliases.begin(), o.float_aliases.end());
    arith_aliases.insert(o.arith_aliases.begin(), o.arith_aliases.end());
    enums.insert(o.enums.begin(), o.enums.end());
  }
};

const std::set<std::string>& arith_type_names() {
  static const std::set<std::string> kArith = {
      "bool",          "char",          "wchar_t",      "char8_t",
      "char16_t",      "char32_t",      "short",        "int",
      "long",          "unsigned",      "signed",       "float",
      "double",        "size_t",        "ssize_t",      "ptrdiff_t",
      "int8_t",        "int16_t",       "int32_t",      "int64_t",
      "uint8_t",       "uint16_t",      "uint32_t",     "uint64_t",
      "intptr_t",      "uintptr_t",     "int_fast32_t", "int_fast64_t",
      "uint_fast32_t", "uint_fast64_t"};
  return kArith;
}

bool is_unordered_container(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

// After a closing '>' (or an alias type name), skips cv/ref noise and
// returns the declared variable name, or "" if this is not a variable
// declaration (function return type, iterator access, temporary, ...).
std::string declared_name_at(const std::vector<Token>& t, std::size_t j) {
  while (tok(t, j) == "&" || tok(t, j) == "*" || tok(t, j) == "const") ++j;
  if (tok(t, j) == "::") return "";  // nested type access, not a variable
  if (!is_ident(t, j)) return "";
  if (tok(t, j + 1) == "(") return "";  // function declaration
  return t[j].text;
}

void collect_symbols(const std::vector<Token>& t, bool is_header,
                     Symbols& file_syms, Symbols& global_syms) {
  auto record = [&](std::set<std::string> Symbols::* field,
                    const std::string& name) {
    if (name.empty()) return;
    (file_syms.*field).insert(name);
    // Member convention (trailing '_') and header declarations are
    // visible across translation units; share them.
    if (is_header || (!name.empty() && name.back() == '_'))
      (global_syms.*field).insert(name);
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;

    // Type aliases: using X = <...>;
    if (s == "using" && is_ident(t, i + 1) && tok(t, i + 2) == "=") {
      const std::string& alias = t[i + 1].text;
      bool unordered = false;
      std::string first_type;
      for (std::size_t j = i + 3; j < t.size() && t[j].text != ";"; ++j) {
        if (is_unordered_container(t[j].text)) unordered = true;
        if (first_type.empty() && is_ident(t, j) && t[j].text != "std" &&
            t[j].text != "const" && t[j].text != "typename")
          first_type = t[j].text;
      }
      if (unordered) {
        file_syms.unordered_aliases.insert(alias);
        global_syms.unordered_aliases.insert(alias);
      } else if (first_type == "float" || first_type == "double" ||
                 global_syms.float_aliases.count(first_type) != 0) {
        file_syms.float_aliases.insert(alias);
        global_syms.float_aliases.insert(alias);
      } else if (arith_type_names().count(first_type) != 0 ||
                 global_syms.arith_aliases.count(first_type) != 0) {
        file_syms.arith_aliases.insert(alias);
        global_syms.arith_aliases.insert(alias);
      }
      continue;
    }

    // enum [class] Name
    if (s == "enum" && i + 1 < t.size()) {
      std::size_t j = i + 1;
      if (tok(t, j) == "class" || tok(t, j) == "struct") ++j;
      if (is_ident(t, j)) {
        file_syms.enums.insert(t[j].text);
        global_syms.enums.insert(t[j].text);
      }
      continue;
    }

    // std::unordered_map<K, V> name
    if (is_unordered_container(s) && tok(t, i + 1) == "<") {
      const std::size_t j = match_template(t, i + 1);
      record(&Symbols::unordered_vars, declared_name_at(t, j));
      continue;
    }

    // AliasOfUnordered name (e.g. `FlowMap flows_;`, `const FlowMap& m`)
    if (t[i].kind == Token::Kind::kIdent &&
        (file_syms.unordered_aliases.count(s) != 0 ||
         global_syms.unordered_aliases.count(s) != 0) &&
        tok(t, i - 1) != "using") {
      record(&Symbols::unordered_vars, declared_name_at(t, i + 1));
      continue;
    }

    // double/float (or alias) name
    if (t[i].kind == Token::Kind::kIdent &&
        (s == "double" || s == "float" ||
         file_syms.float_aliases.count(s) != 0 ||
         global_syms.float_aliases.count(s) != 0) &&
        tok(t, i - 1) != "using" && tok(t, i - 1) != "<" &&
        tok(t, i - 1) != ",") {
      // Exclude template args (`vector<double>`) via the next token.
      if (is_ident(t, i + 1) && tok(t, i + 2) != "(")
        record(&Symbols::float_vars, t[i + 1].text);
      continue;
    }

    // vector<T*> name (and deque/array/span)
    if ((s == "vector" || s == "deque" || s == "array" || s == "span") &&
        tok(t, i + 1) == "<") {
      const std::size_t close = match_template(t, i + 1);
      bool ptr_elem = false;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">") --depth;
        else if (t[j].text == "*" && depth == 1) ptr_elem = true;
      }
      if (ptr_elem)
        record(&Symbols::ptr_container_vars, declared_name_at(t, close));
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 3: rule scans.

struct FileContext {
  std::string path;
  std::vector<Token> tokens;
  std::vector<std::string> lines;  // original source, for snippets
  // line -> rule -> reason
  std::map<int, std::map<std::string, std::string>> suppressions;
  const Symbols* file_syms = nullptr;
  const Symbols* global_syms = nullptr;
};

bool lookup(const FileContext& ctx, std::set<std::string> Symbols::* field,
            const std::string& name) {
  return (ctx.file_syms->*field).count(name) != 0 ||
         (ctx.global_syms->*field).count(name) != 0;
}

std::string snippet_at(const FileContext& ctx, int line) {
  if (line < 1 || static_cast<std::size_t>(line) > ctx.lines.size()) return "";
  std::string s = trim(ctx.lines[static_cast<std::size_t>(line) - 1]);
  if (s.size() > 120) s = s.substr(0, 117) + "...";
  return s;
}

void add_finding(const FileContext& ctx, std::vector<Finding>& out,
                 const std::string& rule, int line, std::string message) {
  Finding f;
  f.rule = rule;
  f.file = ctx.path;
  f.line = line;
  f.message = std::move(message);
  f.snippet = snippet_at(ctx, line);
  const auto at_line = ctx.suppressions.find(line);
  if (at_line != ctx.suppressions.end()) {
    const auto r = at_line->second.find(rule);
    if (r != at_line->second.end()) {
      f.suppressed = true;
      f.suppress_reason = r->second;
    }
  }
  out.push_back(std::move(f));
}

// True if the statement/block in [begin, end) mutates state: assignment
// to a pre-existing lvalue, ++/--, or a call to anything not known to
// be a pure accessor. Declarations with initializers (`const auto& x =
// ...`) do not count; their RHS calls still do.
bool has_side_effects(const std::vector<Token>& t, std::size_t begin,
                      std::size_t end) {
  static const std::set<std::string> kCompound = {
      "=",  "+=", "-=", "*=", "/=",  "%=", "&=",
      "|=", "^=", "<<=", ">>=", "++", "--"};
  static const std::set<std::string> kPureCalls = {
      "size",  "empty", "find",  "count", "at",    "begin",    "end",
      "cbegin", "cend",  "contains", "value", "valid", "first",
      "second", "min",   "max",   "front", "back",  "c_str",    "data",
      "get",    "has",   "abs",   "floor", "ceil",  "sqrt",     "llround",
      "round",  "isfinite", "isnan"};
  static const std::set<std::string> kNotCalls = {
      "if",     "while",       "for",         "switch",     "return",
      "sizeof", "alignof",     "decltype",    "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "noexcept"};
  for (std::size_t i = begin; i < end && i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (t[i].kind == Token::Kind::kPunct && kCompound.count(s) != 0) {
      if (s == "=") {
        // `T x = ...` / `auto& x = ...` is a declaration, not a mutation:
        // the token before the declared name is a type-ish token.
        const std::string& before_lhs = tok(t, i - 2);
        const bool is_decl =
            i >= 2 && (t[i - 2].kind == Token::Kind::kIdent ||
                       before_lhs == "&" || before_lhs == "*" ||
                       before_lhs == ">" || before_lhs == "]");
        if (is_decl) continue;
      }
      return true;
    }
    if (t[i].kind == Token::Kind::kIdent && tok(t, i + 1) == "(" &&
        kPureCalls.count(s) == 0 && kNotCalls.count(s) == 0) {
      return true;
    }
  }
  return false;
}

struct UnorderedLoop {
  int line = 0;
  std::string container;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

// Finds every for-loop (range or iterator form) over an unordered
// container, with its body token range.
std::vector<UnorderedLoop> find_unordered_loops(const FileContext& ctx) {
  const auto& t = ctx.tokens;
  std::vector<UnorderedLoop> loops;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || t[i + 1].text != "(") continue;
    const std::size_t header_end = match_paren(t, i + 1);

    // Range-for: the ':' at paren depth 1.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = i + 1; j < header_end; ++j) {
      if (t[j].text == "(") ++depth;
      else if (t[j].text == ")") --depth;
      else if (t[j].text == ":" && depth == 1 && colon == 0) colon = j;
    }

    std::string container;
    if (colon != 0) {
      for (std::size_t j = colon + 1; j + 1 < header_end; ++j) {
        if (is_ident(t, j) && (lookup(ctx, &Symbols::unordered_vars, t[j].text) ||
                               is_unordered_container(t[j].text))) {
          container = t[j].text;
          break;
        }
      }
    } else {
      // Iterator form: `x.begin()` / `x.cbegin()` in the header.
      for (std::size_t j = i + 2; j + 2 < header_end; ++j) {
        if (is_ident(t, j) && (t[j + 1].text == "." || t[j + 1].text == "->") &&
            (t[j + 2].text == "begin" || t[j + 2].text == "cbegin") &&
            lookup(ctx, &Symbols::unordered_vars, t[j].text)) {
          container = t[j].text;
          break;
        }
      }
    }
    if (container.empty()) continue;

    UnorderedLoop loop;
    loop.line = t[i].line;
    loop.container = container;
    if (tok(t, header_end) == "{") {
      loop.body_begin = header_end + 1;
      loop.body_end = match_brace(t, header_end) - 1;
    } else {
      loop.body_begin = header_end;
      std::size_t j = header_end;
      int braces = 0;
      for (; j < t.size(); ++j) {
        if (t[j].text == "{") ++braces;
        else if (t[j].text == "}") --braces;
        else if (t[j].text == ";" && braces == 0) break;
      }
      loop.body_end = j;
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

void scan_unordered_loops(const FileContext& ctx, std::vector<Finding>& out) {
  for (const auto& loop : find_unordered_loops(ctx)) {
    if (has_side_effects(ctx.tokens, loop.body_begin, loop.body_end)) {
      add_finding(ctx, out, "unordered-loop", loop.line,
                  "loop over unordered container '" + loop.container +
                      "' has side effects in its body; hash iteration order "
                      "is not part of the determinism contract (iterate a "
                      "sorted view, or justify order-independence)");
    }
    // float-accum, part 1: compound float assignment inside the body.
    const auto& t = ctx.tokens;
    for (std::size_t i = loop.body_begin; i < loop.body_end; ++i) {
      const std::string& op = tok(t, i + 1);
      if (is_ident(t, i) && (op == "+=" || op == "-=" || op == "*=") &&
          lookup(ctx, &Symbols::float_vars, t[i].text)) {
        add_finding(ctx, out, "float-accum", t[i].line,
                    "float accumulation into '" + t[i].text +
                        "' inside a loop over unordered '" + loop.container +
                        "': summation order follows hash order and FP "
                        "addition is not associative");
      }
    }
  }
}

void scan_nondet_sources(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& t = ctx.tokens;
  static constexpr std::string_view kCliLayer = "src/scenario/cli.cc";
  const bool is_cli_layer =
      ctx.path.size() >= kCliLayer.size() &&
      ctx.path.compare(ctx.path.size() - kCliLayer.size(), kCliLayer.size(),
                       kCliLayer) == 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    const std::string& s = t[i].text;
    const std::string& prev = tok(t, i - 1);
    const std::string& next = tok(t, i + 1);
    if (prev == "." || prev == "->") continue;  // member access, not std

    if ((s == "rand" || s == "srand" || s == "rand_r" || s == "drand48") &&
        next == "(") {
      add_finding(ctx, out, "nondet-source", t[i].line,
                  "call to " + s +
                      "(): seed-independent randomness; use the seeded RNG "
                      "plumbed through the scenario spec");
    } else if (s == "random_device") {
      add_finding(ctx, out, "nondet-source", t[i].line,
                  "std::random_device draws entropy from the host; runs "
                  "cannot be reproduced from the seed");
    } else if (s == "steady_clock" || s == "system_clock" ||
               s == "high_resolution_clock") {
      add_finding(ctx, out, "nondet-source", t[i].line,
                  "wall clock std::chrono::" + s +
                      ": simulation state must derive time from the event "
                      "clock only (wall time is fine for profiling that "
                      "never feeds back into results)");
    } else if ((s == "time" || s == "clock") && next == "(") {
      // Bare call only; `SimTime time() const` declarations and
      // `x.time()` accessors are fine.
      const bool decl = i >= 1 && (t[i - 1].kind == Token::Kind::kIdent ||
                                   prev == "&" || prev == "*" || prev == ">");
      if (!decl || prev == "return") {
        add_finding(ctx, out, "nondet-source", t[i].line,
                    "call to " + s + "(): wall time is not reproducible");
      }
    } else if (s == "gettimeofday" || s == "clock_gettime" ||
               s == "localtime" || s == "gmtime") {
      if (next == "(")
        add_finding(ctx, out, "nondet-source", t[i].line,
                    "call to " + s + "(): wall time is not reproducible");
    } else if (s == "getenv" && !is_cli_layer) {
      add_finding(ctx, out, "nondet-source", t[i].line,
                  "getenv outside the CLI layer: environment-dependent "
                  "behaviour hides run configuration from the scenario "
                  "spec (route the knob through src/scenario/cli.cc)");
    }
  }
}

void scan_ptr_order(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t, i)) continue;
    const std::string& s = t[i].text;

    if (s == "hash" && tok(t, i + 1) == "<") {
      const std::size_t close = match_template(t, i + 1);
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">") --depth;
        else if (t[j].text == "*" && depth == 1) {
          add_finding(ctx, out, "ptr-order", t[i].line,
                      "std::hash over a pointer type hashes the address; "
                      "bucket placement varies run to run under ASLR");
          break;
        }
      }
    } else if ((s == "map" || s == "set" || s == "multimap" ||
                s == "multiset") &&
               tok(t, i + 1) == "<" && tok(t, i - 1) == "::" &&
               tok(t, i - 2) == "std") {
      // First template argument (the key) up to a depth-1 comma.
      const std::size_t close = match_template(t, i + 1);
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "<") ++depth;
        else if (t[j].text == ">") --depth;
        else if (t[j].text == "," && depth == 1) break;
        else if (t[j].text == "*" && depth == 1) {
          add_finding(ctx, out, "ptr-order", t[i].line,
                      "std::" + s +
                          " keyed by a pointer: iteration order is the "
                          "address order (key by a stable id instead)");
          break;
        }
      }
    } else if ((s == "sort" || s == "stable_sort" || s == "partial_sort" ||
                s == "nth_element") &&
               tok(t, i + 1) == "(") {
      const std::size_t close = match_paren(t, i + 1);
      // Split top-level arguments.
      std::vector<std::pair<std::size_t, std::size_t>> arg_ranges;
      std::size_t arg_begin = i + 2;
      int depth = 0;
      for (std::size_t j = i + 1; j + 1 < close; ++j) {
        const std::string& a = t[j].text;
        if (a == "(" || a == "<" || a == "[" || a == "{") ++depth;
        else if (a == ")" || a == ">" || a == "]" || a == "}") --depth;
        else if (a == "," && depth == 1) {
          arg_ranges.push_back({arg_begin, j});
          arg_begin = j + 1;
        }
      }
      arg_ranges.push_back({arg_begin, close - 1});

      std::string root;
      if (!arg_ranges.empty()) {
        for (std::size_t j = arg_ranges[0].first; j < arg_ranges[0].second;
             ++j) {
          if (is_ident(t, j)) {
            root = t[j].text;
            break;
          }
        }
      }
      if (!root.empty() && lookup(ctx, &Symbols::ptr_container_vars, root)) {
        if (arg_ranges.size() <= 2) {
          add_finding(ctx, out, "ptr-order", t[i].line,
                      "sorting pointer container '" + root +
                          "' with the default comparator orders by "
                          "address; pass a comparator over stable fields");
        } else {
          const auto& cmp = arg_ranges.back();
          bool derefs = false;
          for (std::size_t j = cmp.first; j < cmp.second; ++j) {
            if (t[j].text == "->" || t[j].text == ".") derefs = true;
          }
          if (!derefs) {
            add_finding(ctx, out, "ptr-order", t[i].line,
                        "comparator over pointer container '" + root +
                            "' never dereferences its arguments; it "
                            "compares addresses");
          }
        }
      }
    } else if (s == "reinterpret_cast" && tok(t, i + 1) == "<") {
      const std::size_t close = match_template(t, i + 1);
      for (std::size_t j = i + 1; j < close; ++j) {
        if (t[j].text == "uintptr_t" || t[j].text == "intptr_t") {
          add_finding(ctx, out, "ptr-order", t[i].line,
                      "reinterpret_cast to " + t[j].text +
                          " derives a value from an object address, which "
                          "varies run to run");
          break;
        }
      }
    }
  }
}

void scan_float_accumulate(const FileContext& ctx, std::vector<Finding>& out) {
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!(is_ident(t, i) && t[i].text == "accumulate" &&
          tok(t, i + 1) == "("))
      continue;
    const std::size_t close = match_paren(t, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (is_ident(t, j) && lookup(ctx, &Symbols::unordered_vars, t[j].text)) {
        add_finding(ctx, out, "float-accum", t[i].line,
                    "std::accumulate over unordered container '" + t[j].text +
                        "': the fold order follows hash order");
        break;
      }
    }
  }
}

// --- Rule 5: uninitialized fields in src/ headers. -------------------------

bool needs_default_init(const FileContext& ctx,
                        const std::vector<Token>& stmt) {
  // Reference members must be constructor-initialized anyway; bitfields
  // and anything already carrying '(' were filtered by the caller.
  int angle = 0;
  for (const auto& tk : stmt) {
    if (tk.text == "<") ++angle;
    else if (tk.text == ">") --angle;
    else if (tk.text == "*" && angle == 0) return true;  // raw pointer field
  }
  // First type-ish identifier.
  static const std::set<std::string> kQualifiers = {
      "const", "mutable", "volatile", "constexpr", "inline", "std",
      "typename"};
  for (const auto& tk : stmt) {
    if (tk.kind != Token::Kind::kIdent) continue;
    if (kQualifiers.count(tk.text) != 0) continue;
    return arith_type_names().count(tk.text) != 0 ||
           lookup(ctx, &Symbols::arith_aliases, tk.text) ||
           lookup(ctx, &Symbols::float_aliases, tk.text) ||
           lookup(ctx, &Symbols::enums, tk.text);
  }
  return false;
}

void analyze_member_stmt(const FileContext& ctx,
                         const std::vector<Token>& stmt, bool initialized,
                         std::vector<Finding>& out) {
  if (stmt.empty() || initialized) return;
  static const std::set<std::string> kSkipLead = {
      "using", "typedef", "friend", "static", "operator",
      "virtual", "explicit", "template", "~"};
  if (kSkipLead.count(stmt.front().text) != 0) return;
  for (const auto& tk : stmt) {
    if (tk.text == "(" || tk.text == "=" || tk.text == ":" ||
        tk.text == "&" || tk.text == "operator")
      return;  // function, initialized, bitfield, or reference
  }
  if (!needs_default_init(ctx, stmt)) return;

  // Declarator = last identifier (arrays: the name precedes '[').
  const Token* name = nullptr;
  for (const auto& tk : stmt) {
    if (tk.kind == Token::Kind::kIdent) name = &tk;
    if (tk.text == "[") break;
  }
  if (name == nullptr) return;
  add_finding(ctx, out, "uninit-field", name->line,
              "field '" + name->text +
                  "' has no default initializer; a forgotten constructor "
                  "leaves it indeterminate (add '= ...' or '{}')");
}

// Parses one class body starting at tokens[open] == "{"; returns the
// index just past the matching "}". Recurses into nested classes.
std::size_t parse_class_body(const FileContext& ctx,
                             const std::vector<Token>& t, std::size_t open,
                             std::vector<Finding>& out) {
  std::vector<Token> stmt;
  bool initialized = false;
  std::size_t i = open + 1;
  while (i < t.size()) {
    const std::string& s = t[i].text;
    if (s == "}") return i + 1;
    if ((s == "public" || s == "private" || s == "protected") &&
        tok(t, i + 1) == ":") {
      i += 2;
      continue;
    }
    if ((s == "struct" || s == "class" || s == "union") &&
        stmt.empty()) {
      // Nested type: find its body (if any) and recurse, then consume
      // through the trailing `;` (covering `struct {...} member;`).
      std::size_t j = i + 1;
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") {
        if (t[j].text == "<") j = match_template(t, j) - 1;
        ++j;
      }
      if (j < t.size() && t[j].text == "{") {
        const std::size_t past = parse_class_body(ctx, t, j, out);
        i = past;
        while (i < t.size() && t[i].text != ";") ++i;
        ++i;
      } else {
        i = j + 1;  // forward declaration
      }
      continue;
    }
    if (s == "enum" && stmt.empty()) {
      while (i < t.size() && t[i].text != ";" && t[i].text != "{") ++i;
      if (i < t.size() && t[i].text == "{") i = match_brace(t, i);
      while (i < t.size() && t[i].text != ";") ++i;
      ++i;
      continue;
    }
    if (s == "{") {
      bool is_function = false;
      for (const auto& tk : stmt)
        if (tk.text == "(") is_function = true;
      i = match_brace(t, i);
      if (is_function) {
        if (tok(t, i) == ";") ++i;  // `} ;` after an in-class definition
        stmt.clear();
        initialized = false;
      } else {
        initialized = true;  // brace-init member: `int x{0};`
      }
      continue;
    }
    if (s == ";") {
      analyze_member_stmt(ctx, stmt, initialized, out);
      stmt.clear();
      initialized = false;
      ++i;
      continue;
    }
    if (s == "=") initialized = true;
    stmt.push_back(t[i]);
    ++i;
  }
  return i;
}

void scan_uninit_fields(const FileContext& ctx, std::vector<Finding>& out) {
  // Scope: headers under src/ (the library surface; test/bench fixtures
  // churn too much to police and never outlive a run).
  const bool is_src_header =
      ctx.path.size() > 2 &&
      ctx.path.compare(ctx.path.size() - 2, 2, ".h") == 0 &&
      (ctx.path.rfind("src/", 0) == 0 ||
       ctx.path.find("/src/") != std::string::npos);
  if (!is_src_header) return;

  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s != "struct" && s != "class") continue;
    const std::string& prev = tok(t, i - 1);
    if (prev == "<" || prev == "," || prev == "enum") continue;  // tmpl params
    if (!is_ident(t, i + 1)) continue;
    // Find the body '{' (skipping a base-clause) or bail at ';'.
    std::size_t j = i + 2;
    while (j < t.size() && t[j].text != "{" && t[j].text != ";" &&
           t[j].text != ")") {
      if (t[j].text == "<") {
        j = match_template(t, j);
        continue;
      }
      ++j;
    }
    if (j < t.size() && t[j].text == "{") {
      parse_class_body(ctx, t, j, out);
      // The outer loop continues past `struct`; nested classes are
      // re-discovered and re-parsed, so findings are deduplicated later.
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

const std::vector<RuleInfo>& rules() { return rule_table(); }

bool is_known_rule(const std::string& id) {
  for (const auto& r : rule_table())
    if (r.id == id) return true;
  return false;
}

void Linter::add_file(const std::string& path, std::string content) {
  std::string norm = path;
  std::replace(norm.begin(), norm.end(), '\\', '/');
  if (norm.rfind("./", 0) == 0) norm = norm.substr(2);
  files_.push_back({std::move(norm), std::move(content)});
}

bool Linter::add_file_from_disk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  add_file(path, ss.str());
  return true;
}

std::vector<Finding> Linter::run() {
  // Deterministic regardless of add_file order.
  std::sort(files_.begin(), files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  struct Prepared {
    CleanResult clean;
    std::vector<Token> tokens;
    Symbols syms;
  };
  std::vector<Prepared> prepared(files_.size());
  Symbols global;

  for (std::size_t i = 0; i < files_.size(); ++i) {
    prepared[i].clean = clean_source(files_[i].path, files_[i].content);
    prepared[i].tokens = tokenize(prepared[i].clean.text);
    const bool is_header =
        files_[i].path.size() > 2 &&
        files_[i].path.compare(files_[i].path.size() - 2, 2, ".h") == 0;
    collect_symbols(prepared[i].tokens, is_header, prepared[i].syms, global);
  }

  std::vector<Finding> all;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    FileContext ctx;
    ctx.path = files_[i].path;
    ctx.tokens = prepared[i].tokens;
    ctx.file_syms = &prepared[i].syms;
    ctx.global_syms = &global;

    // Original lines for snippets.
    std::stringstream ls(files_[i].content);
    std::string line;
    while (std::getline(ls, line)) ctx.lines.push_back(line);

    // Suppression map: trailing directives bind to their own line,
    // standalone ones to the next line that has code.
    const auto& cr = prepared[i].clean;
    for (const auto& sup : cr.suppressions) {
      int target = sup.line;
      if (sup.standalone) {
        for (std::size_t l = static_cast<std::size_t>(sup.line) + 1;
             l < cr.line_has_code.size(); ++l) {
          if (cr.line_has_code[l]) {
            target = static_cast<int>(l);
            break;
          }
        }
      }
      for (const auto& r : sup.rules)
        ctx.suppressions[target][r] = sup.reason;
    }

    for (const auto& bad : cr.bad_directives) all.push_back(bad);
    scan_unordered_loops(ctx, all);
    scan_nondet_sources(ctx, all);
    scan_ptr_order(ctx, all);
    scan_float_accumulate(ctx, all);
    scan_uninit_fields(ctx, all);
  }

  // Dedup (nested-class re-parsing can revisit a site) and order by
  // (file, line, rule, message) for stable output.
  std::sort(all.begin(), all.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  all.erase(std::unique(all.begin(), all.end(),
                        [](const Finding& a, const Finding& b) {
                          return std::tie(a.file, a.line, a.rule, a.message) ==
                                 std::tie(b.file, b.line, b.rule, b.message);
                        }),
            all.end());
  return all;
}

std::string report_json(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  std::size_t unsuppressed = 0, suppressed = 0;
  for (const auto& f : findings) (f.suppressed ? suppressed : unsuppressed)++;

  std::ostringstream out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.member("tool", "detlint");
  w.member("schema_version", std::uint64_t{1});
  w.member("files_scanned", static_cast<std::uint64_t>(files_scanned));
  w.key("counts");
  w.begin_object();
  w.member("unsuppressed", static_cast<std::uint64_t>(unsuppressed));
  w.member("suppressed", static_cast<std::uint64_t>(suppressed));
  w.end_object();
  w.key("rules");
  w.begin_array();
  for (const auto& r : rule_table()) {
    w.begin_object();
    w.member("id", r.id);
    w.member("summary", r.summary);
    w.end_object();
  }
  w.end_array();
  w.key("findings");
  w.begin_array();
  for (const auto& f : findings) {
    if (f.suppressed) continue;
    w.begin_object();
    w.member("rule", f.rule);
    w.member("file", f.file);
    w.member("line", f.line);
    w.member("message", f.message);
    w.member("snippet", f.snippet);
    w.end_object();
  }
  w.end_array();
  w.key("suppressed");
  w.begin_array();
  for (const auto& f : findings) {
    if (!f.suppressed) continue;
    w.begin_object();
    w.member("rule", f.rule);
    w.member("file", f.file);
    w.member("line", f.line);
    w.member("reason", f.suppress_reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  return out.str();
}

std::set<std::pair<std::string, std::string>> load_baseline(
    const std::string& path) {
  const obs::JsonValue doc = obs::parse_json_file(path);
  if (!doc.is_object() || !doc.has("findings"))
    throw std::runtime_error(path + ": baseline must be {\"findings\": [...]}");
  const obs::JsonValue* arr = doc.find("findings");
  if (!arr->is_array())
    throw std::runtime_error(path + ": \"findings\" must be an array");
  std::set<std::pair<std::string, std::string>> out;
  for (const auto& e : arr->array) {
    const obs::JsonValue* rule = e.find("rule");
    const obs::JsonValue* file = e.find("file");
    if (rule == nullptr || file == nullptr || !rule->is_string() ||
        !file->is_string())
      throw std::runtime_error(
          path + ": each baseline entry needs string \"rule\" and \"file\"");
    out.insert({rule->string, file->string});
  }
  return out;
}

}  // namespace wcs::detlint
