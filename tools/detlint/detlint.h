// detlint: the in-tree determinism static-analysis pass.
//
// The byte-identity contract (DESIGN.md §Invariants & static analysis)
// says every run of the simulator must be bit-for-bit reproducible.
// Most violations of that contract enter the tree through a handful of
// mechanical patterns — iterating a hash table in a loop with side
// effects, reading a wall clock, ordering by pointer value. detlint is
// a lightweight lexer + declaration/statement scanner (no compiler
// dependency) that finds those patterns and fails the build until they
// are either fixed or explicitly justified in-line:
//
//   // detlint: <rule>[,<rule>...] -- <reason>
//
// A suppression comment applies to its own line (trailing form) or to
// the next line with code (standalone form). The reason is mandatory;
// a directive without one is itself a finding (`bad-suppression`).
//
// Rules:
//   unordered-loop  loops over std::unordered_{map,set} whose bodies
//                   carry side effects (iteration order is a hash-table
//                   implementation detail, not a contract)
//   nondet-source   rand()/std::random_device, wall clocks
//                   (steady/system/high_resolution_clock, time()),
//                   getenv outside the CLI layer
//   ptr-order       orderings derived from addresses: std::hash<T*>,
//                   pointer-keyed ordered maps/sets, sorting pointer
//                   containers by value, reinterpret_cast to uintptr_t
//   float-accum     float/double accumulation (+=, std::accumulate)
//                   inside loops over unordered containers
//   uninit-field    struct/class fields of arithmetic, enum, or
//                   pointer type in src/ headers without a default
//                   initializer (indeterminate reads are the least
//                   reproducible bug there is)
//
// The scanner is deliberately conservative: it prefers a finding that
// needs a one-line justification over a silent miss. See DESIGN.md for
// the rules table and tools/detlint/main.cc for the CLI.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace wcs::detlint {

// One rule of the pass, for --list-rules and the JSON report.
struct RuleInfo {
  std::string id;
  std::string summary;
};

// Every rule detlint knows, in stable (alphabetical) order.
[[nodiscard]] const std::vector<RuleInfo>& rules();
[[nodiscard]] bool is_known_rule(const std::string& id);

// One diagnostic. `suppressed` findings carry the justification from
// the matching `// detlint:` directive and do not fail the run.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  std::string snippet;  // the offending source line, trimmed
  bool suppressed = false;
  std::string suppress_reason;
};

// The pass. Two-phase by design: add every file first (declaration
// collection — type aliases and member names cross file boundaries),
// then run() scans. Deterministic: findings are ordered by
// (file, line, rule) regardless of add_file order.
class Linter {
 public:
  // Registers `content` under `path` (virtual paths are fine; tests
  // lint in-memory fixtures). Path is normalized to forward slashes.
  void add_file(const std::string& path, std::string content);

  // Reads `path` from disk. Returns false (and records nothing) if the
  // file cannot be read.
  bool add_file_from_disk(const std::string& path);

  [[nodiscard]] std::size_t files_added() const { return files_.size(); }

  // Runs every rule over every added file.
  [[nodiscard]] std::vector<Finding> run();

 private:
  struct SourceFile {
    std::string path;
    std::string content;
  };
  std::vector<SourceFile> files_;
};

// Serializes findings as the detlint JSON report (schema_version 1),
// written with the deterministic obs JsonWriter. Includes both
// unsuppressed findings and the suppressed list with reasons.
[[nodiscard]] std::string report_json(const std::vector<Finding>& findings,
                                      std::size_t files_scanned);

// Baseline support: a JSON file {"findings": [{"rule": .., "file": ..}]}
// of known findings to tolerate (matched by rule+file, line-drift
// tolerant). The checked-in baseline is empty — the tree stays clean —
// but the mechanism exists so a future migration can land in stages.
// Throws std::runtime_error on malformed baseline files.
[[nodiscard]] std::set<std::pair<std::string, std::string>> load_baseline(
    const std::string& path);

}  // namespace wcs::detlint
