// Renders docs/scenario-catalog.md from the LIVE scenario registry.
//
// Every entry is built with default BuildOptions (the full-scale sweep
// axes and the 6,000-task paper slice), serialized through the same JSON
// dump `--dump-scenario` uses, parsed back with obs::parse_json, and
// rendered as markdown — so the catalog page can never drift from the
// code without CI noticing (scripts/check_docs.sh regenerates the page
// and fails on any diff). Output is deterministic: registry order, no
// timestamps, writer-normalized numbers.
//
//   gen_scenario_docs            # markdown on stdout
//   gen_scenario_docs OUT.md     # write the file instead
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "scenario/catalog.h"
#include "scenario/scenario.h"
#include "scenario/spec_json.h"

namespace {

using wcs::obs::JsonValue;

// Writer-normalized doubles that hold integers render without a trailing
// ".0" already; this keeps table cells compact for the rest.
std::string num(const JsonValue& v) { return wcs::obs::json_number(v.number); }

std::string field_num(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number() ? num(*v) : "?";
}

std::string scheduler_list(const JsonValue& array) {
  std::string out;
  for (const JsonValue& s : array.array) {
    if (!out.empty()) out += ", ";
    out += "`" + s.string + "`";
  }
  return out;
}

std::string churn_cell(const JsonValue& config) {
  const JsonValue* churn = config.find("churn");
  if (churn == nullptr || churn->is_null()) return "—";
  const double up_h = churn->find("mean_uptime_s")->number / 3600.0;
  const double down_h = churn->find("mean_downtime_s")->number / 3600.0;
  std::ostringstream os;
  os << "up " << up_h << " h / down " << down_h << " h";
  return os.str();
}

std::string replication_cell(const JsonValue& config) {
  const JsonValue* repl = config.find("replication");
  if (repl == nullptr || repl->is_null()) return "—";
  std::string cell;
  if (const JsonValue* placement = repl->find("placement");
      placement != nullptr && placement->is_string())
    cell += "`" + placement->string + "`, ";
  return cell + "threshold " + field_num(*repl, "popularity_threshold");
}

std::string block_store_cell(const JsonValue& config) {
  const JsonValue* bs = config.find("block_store");
  // Older dumps have no block_store member; both read as the reference
  // whole-file mode.
  if (bs == nullptr || bs->is_null()) return "whole-file";
  std::string cell = field_num(*bs, "block_size_mb") + " MB blocks";
  if (const JsonValue* overlap = bs->find("content_overlap");
      overlap != nullptr && overlap->number > 0)
    cell += ", overlap " + num(*overlap);
  return cell;
}

// One-line description of a full generator block (spec-level workload or
// a per-point override — both carry the same shape).
std::string workload_desc(const JsonValue& wl) {
  const JsonValue* generator = wl.find("generator");
  std::string out = "`";
  out += generator != nullptr && !generator->string.empty()
             ? generator->string
             : "coadd";
  out += "`, " + field_num(wl, "num_tasks") + " tasks, " +
         field_num(wl, "file_size_mb") + " MB files";
  if (const JsonValue* open = wl.find("open")) {
    out += "; open system — " + open->find("arrival_process")->string +
           " arrivals, mean gap " + field_num(*open, "mean_interarrival_s") +
           " s";
    if (const JsonValue* tenants = open->find("tenants");
        tenants != nullptr && tenants->array.size() > 1)
      out += ", " + std::to_string(tenants->array.size()) + " tenants";
  }
  return out;
}

void render_scenario(const JsonValue& spec, const std::string& summary,
                     std::ostream& md) {
  const std::string name = spec.find("name")->string;
  md << "## `" << name << "` — " << spec.find("title")->string << "\n\n";
  md << summary << "\n\n";

  const bool stats = spec.find("kind")->string == "workload-stats";
  const JsonValue& workload = *spec.find("workload");
  md << "- **Kind**: "
     << (stats ? "workload statistics (no simulations)"
               : "sweep over " + spec.find("x_axis")->string)
     << "\n";
  if (!stats)
    md << "- **Metric**: " << spec.find("metric_name")->string << "\n";
  md << "- **Workload**: " << workload_desc(workload) << "\n";
  const JsonValue* schedulers = spec.find("schedulers");
  if (schedulers != nullptr && !schedulers->array.empty())
    md << "- **Schedulers**: " << scheduler_list(*schedulers) << "\n";
  md << "- **Run**: `./build/bench/bench_" << name
     << "` (any bench accepts `--scenario " << name << "`)\n";

  const JsonValue* points = spec.find("points");
  if (points != nullptr && !points->array.empty()) {
    md << "\n| " << spec.find("x_axis")->string
       << " | sites | workers/site | capacity (files) | eviction | "
          "block store | estimate error | churn | data replication | "
          "per-point overrides |\n";
    md << "|---|---|---|---|---|---|---|---|---|---|\n";
    for (const JsonValue& pt : points->array) {
      const JsonValue& config = *pt.find("config");
      std::string overrides;
      if (const JsonValue* fs = pt.find("file_size_mb"))
        overrides += "file size " + num(*fs) + " MB";
      if (const JsonValue* wl = pt.find("workload")) {
        if (!overrides.empty()) overrides += "; ";
        overrides += "workload " + workload_desc(*wl);
      }
      if (const JsonValue* rows = pt.find("row_labels");
          rows != nullptr && !rows->array.empty()) {
        if (!overrides.empty()) overrides += "; ";
        overrides += "rows: ";
        for (std::size_t i = 0; i < rows->array.size(); ++i)
          overrides +=
              (i != 0U ? ", " : "") + ("`" + rows->array[i].string + "`");
      } else if (const JsonValue* sch = pt.find("schedulers");
                 sch != nullptr && !sch->array.empty()) {
        if (!overrides.empty()) overrides += "; ";
        overrides += "schedulers: " + scheduler_list(*sch);
      }
      md << "| " << pt.find("label")->string << " | "
         << field_num(config, "num_sites") << " | "
         << field_num(config, "workers_per_site") << " | "
         << field_num(config, "capacity_files") << " | "
         << config.find("eviction")->string << " | "
         << block_store_cell(config) << " | "
         << field_num(config, "estimate_error") << " | " << churn_cell(config)
         << " | " << replication_cell(config) << " | "
         << (overrides.empty() ? "—" : overrides) << " |\n";
    }
  }
  if (const JsonValue* notes = spec.find("notes"))
    md << "\nReading: " << notes->string << "\n";
  md << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  wcs::scenario::register_builtin_scenarios();

  std::ostringstream md;
  md << "# Scenario catalog\n\n";
  md << "<!-- GENERATED FILE — do not edit by hand.\n";
  md << "     Regenerate with: ./build/tools/gen_scenario_docs "
        "docs/scenario-catalog.md\n";
  md << "     scripts/check_docs.sh (CI `docs` job) fails when this page\n";
  md << "     drifts from the registry in src/scenario/catalog.cc. -->\n\n";
  md << "Every paper table/figure plus the ablation and extension studies "
        "is a\nnamed entry in the declarative scenario registry "
        "(`src/scenario`). Each\nsection below is rendered from the spec "
        "a default (full-scale) build\nwould execute — the same data "
        "`--dump-scenario NAME` prints as JSON.\nSweep tables list one "
        "row per point; `--fast` coarsens the axes and\nshrinks the "
        "workload (see [operators-guide.md](operators-guide.md)).\n\n";

  const std::vector<std::string> names = wcs::scenario::scenario_names();
  for (const std::string& name : names) {
    const wcs::scenario::ScenarioSpec spec =
        wcs::scenario::build_scenario(name, wcs::scenario::BuildOptions{});
    std::ostringstream json;
    wcs::scenario::dump_scenario(spec, json);
    render_scenario(wcs::obs::parse_json(json.str()),
                    wcs::scenario::scenario_summary(name), md);
  }

  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "cannot open " << argv[1] << " for writing\n";
      return 1;
    }
    out << md.str();
  } else {
    std::cout << md.str();
  }
  return 0;
}
