// report_lint: validate bench run reports against the run-report schema
// (v1 and v2 — v2 adds the optional per-tenant sections; see
// obs/run_report.h).
//
//   report_lint results/bench_*.json
//
// Prints every violation (prefixed with the offending path) and exits
// non-zero if any file fails — CI runs this over the smoke-bench
// artifacts so a schema drift fails the build instead of silently
// breaking the perf-trajectory tooling.
#include <iostream>
#include <string>
#include <vector>

#include "obs/run_report.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: report_lint <report.json> [more.json ...]\n";
    return 2;
  }
  std::size_t bad_files = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::vector<std::string> violations =
        wcs::obs::validate_report_file(path);
    if (violations.empty()) {
      std::cout << "ok  " << path << '\n';
      continue;
    }
    ++bad_files;
    for (const std::string& v : violations) std::cerr << "FAIL " << v << '\n';
  }
  if (bad_files > 0) {
    std::cerr << bad_files << " of " << (argc - 1)
              << " report(s) failed schema validation\n";
    return 1;
  }
  std::cout << (argc - 1) << " report(s) schema-valid\n";
  return 0;
}
