// Config-file-driven experiments: describe platform, workload and
// scheduler in an .ini file and run it — no recompilation.
//
//   ./ini_experiment experiment.ini
//   ./ini_experiment            (uses a built-in demo config)
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/config_file.h"
#include "grid/experiment.h"
#include "grid/experiment_io.h"
#include "workload/coadd.h"

using namespace wcs;

namespace {

constexpr const char* kDemoConfig = R"(# demo experiment
[platform]
num_sites = 6
workers_per_site = 2
capacity_files = 2000
uplink_mbps = 2.0
eviction = lru

[workload]
num_tasks = 800
file_size_mb = 25

[scheduler]
algorithm = rest
choose_n = 2

[replication]
enabled = true
popularity_threshold = 6
placement = least-loaded

[churn]
enabled = true
mean_uptime_h = 72
mean_downtime_h = 6
)";

}  // namespace

int main(int argc, char** argv) {
  ConfigFile cfg;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in.good()) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    cfg = ConfigFile::parse(in);
    std::cout << "experiment: " << argv[1] << '\n';
  } else {
    cfg = ConfigFile::parse_string(kDemoConfig);
    std::cout << "experiment: built-in demo\n" << kDemoConfig << '\n';
  }

  grid::GridConfig config = grid::grid_config_from(cfg);
  workload::Job job = workload::generate_coadd(grid::coadd_params_from(cfg));
  sched::SchedulerSpec spec = grid::scheduler_spec_from(cfg);

  auto result =
      grid::run_averaged(config, job, spec, grid::default_topology_seeds());

  std::cout << "algorithm:        " << result.scheduler << '\n'
            << "makespan:         " << result.makespan_minutes
            << " min (best " << result.makespan_minutes_min << ", worst "
            << result.makespan_minutes_max << ")\n"
            << "transfers/site:   " << result.transfers_per_site << '\n'
            << "data moved:       " << result.total_gigabytes << " GB\n"
            << "task replicas:    " << result.replicas_started << '\n';
  return 0;
}
