// Extending the library: plugging a user-defined scheduling metric into
// the worker-centric framework by subclassing sched::Scheduler directly.
//
// The custom policy here scores tasks by NET BYTES: bytes already cached
// minus a penalty on bytes still to transfer — a byte-aware blend of the
// paper's overlap and rest metrics that would matter if file sizes varied.
// It is compared against the built-in paper algorithms on the same
// platform.
//
//   ./custom_metric [num_tasks]
#include <iostream>
#include <limits>
#include <string>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"

using namespace wcs;

namespace {

// A pull scheduler with a custom CalculateWeight(): this is all it takes
// to prototype a new metric against the engine. (The built-in
// WorkerCentricScheduler keeps an incremental index for speed; a
// prototype can just scan the site cache.)
class NetBytesScheduler final : public sched::Scheduler {
 public:
  explicit NetBytesScheduler(double transfer_penalty)
      : penalty_(transfer_penalty) {}

  void on_job_submitted() override {
    pending_.clear();
    for (const auto& t : engine().job().tasks()) pending_.push_back(t.id);
  }

  void on_worker_idle(WorkerId worker) override {
    if (pending_.empty()) return;
    const storage::FileCache& cache =
        engine().site_cache(engine().site_of(worker));
    const workload::Job& job = engine().job();

    std::size_t best_index = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      double cached = 0, missing = 0;
      for (FileId f : job.task(pending_[i]).files) {
        double bytes = static_cast<double>(job.catalog.size(f));
        (cache.contains(f) ? cached : missing) += bytes;
      }
      double score = cached - penalty_ * missing;
      if (score > best_score) {
        best_score = score;
        best_index = i;
      }
    }
    TaskId chosen = pending_[best_index];
    pending_[best_index] = pending_.back();
    pending_.pop_back();
    engine().assign_task(chosen, worker);
  }

  void on_task_completed(TaskId, WorkerId) override {}

  [[nodiscard]] std::string name() const override {
    return "net-bytes(p=" + std::to_string(penalty_).substr(0, 3) + ")";
  }

 private:
  double penalty_;
  std::vector<TaskId> pending_;
};

metrics::RunResult run_with(const grid::GridConfig& config,
                            const workload::Job& job,
                            std::unique_ptr<sched::Scheduler> scheduler) {
  grid::GridSimulation sim(config, job, std::move(scheduler));
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 1000;

  workload::CoaddParams wp;
  wp.num_tasks = num_tasks;
  workload::Job job = workload::generate_coadd(wp);

  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.tiers.workers_per_site = 1;
  config.capacity_files = 6000;
  config.tiers.seed = 1;

  std::cout << "algorithm            makespan(min)  transfers/site\n";
  auto report = [](const metrics::RunResult& r) {
    printf("%-20s %13.0f %15.1f\n", r.scheduler.c_str(),
           r.makespan_minutes(), r.transfers_per_site());
  };

  for (double penalty : {0.0, 0.5, 1.0, 2.0})
    report(run_with(config, job,
                    std::make_unique<NetBytesScheduler>(penalty)));

  for (const auto& spec :
       {sched::Algorithm::kOverlap, sched::Algorithm::kRest}) {
    sched::SchedulerSpec s;
    s.algorithm = spec;
    report(run_with(config, job, sched::make_scheduler(s)));
  }

  std::cout << "\nnote: penalty 0 reduces to byte-weighted overlap; large\n"
               "penalties approach the rest metric's transfer-minimizing\n"
               "behaviour — reproducing the paper's finding that metrics\n"
               "which consider the files still to be transferred win.\n";
  return 0;
}
