// Full paper campaign on one command: runs all six Sec. 5.3 algorithms on
// the Table 1 default platform over 5 topologies, prints the comparison
// table, and exports both the workload trace and a CSV of results — the
// same artifacts a user would keep from a real scheduling study.
//
//   ./coadd_campaign [num_tasks] [output_prefix]
#include <iostream>
#include <string>

#include "common/csv.h"
#include "grid/experiment.h"
#include "workload/coadd.h"
#include "workload/trace.h"

using namespace wcs;

int main(int argc, char** argv) {
  std::size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 1500;
  std::string prefix = argc > 2 ? argv[2] : "campaign";

  workload::CoaddParams wp = workload::CoaddParams::paper_6000();
  wp.num_tasks = num_tasks;
  workload::Job job = workload::generate_coadd(wp);
  workload::save_job(job, prefix + "_workload.trace");
  std::cout << "workload trace saved to " << prefix << "_workload.trace\n";

  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.tiers.workers_per_site = 1;
  config.capacity_files = 6000;

  auto specs = sched::SchedulerSpec::paper_algorithms();
  auto seeds = grid::default_topology_seeds();
  auto rows = grid::run_matrix(config, job, specs, seeds,
                               [](const std::string& s) {
                                 std::cerr << "  [" << s << "]\n";
                               });

  grid::print_table(std::cout,
                    "Coadd campaign (" + std::to_string(num_tasks) +
                        " tasks, Table 1 platform, 5 topologies)",
                    rows);

  CsvWriter csv(prefix + "_results.csv");
  csv.header({"algorithm", "makespan_min", "makespan_min_best",
              "makespan_min_worst", "transfers_per_site", "gigabytes",
              "replicas"});
  for (const auto& r : rows)
    csv.row(r.scheduler, r.makespan_minutes, r.makespan_minutes_min,
            r.makespan_minutes_max, r.transfers_per_site, r.total_gigabytes,
            r.replicas_started);
  std::cout << "results CSV saved to " << prefix << "_results.csv\n";

  // Headline comparison, the paper's conclusion in one line.
  const auto& sa = rows[0];
  double best_wc = rows[1].makespan_minutes;
  std::string best_name = rows[1].scheduler;
  for (std::size_t i = 2; i < rows.size(); ++i)
    if (rows[i].makespan_minutes < best_wc) {
      best_wc = rows[i].makespan_minutes;
      best_name = rows[i].scheduler;
    }
  std::cout << "\nbest worker-centric (" << best_name << ") vs task-centric: "
            << best_wc << " vs " << sa.makespan_minutes << " minutes ("
            << (sa.makespan_minutes - best_wc) / sa.makespan_minutes * 100.0
            << "% improvement)\n";
  return 0;
}
