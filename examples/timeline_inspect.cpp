// Timeline inspection: run one experiment with full lifecycle recording
// and print where task time actually goes — queue wait vs data wait vs
// execution — plus a per-worker utilization bar. This is the per-task
// view of the contention the paper aggregates in Table 3.
//
//   ./timeline_inspect [num_tasks] [algorithm] [workers_per_site]
#include <iomanip>
#include <iostream>
#include <map>
#include <string>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "metrics/timeline.h"
#include "workload/coadd.h"

using namespace wcs;

int main(int argc, char** argv) {
  std::size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 600;
  std::string algorithm = argc > 2 ? argv[2] : "rest";
  int workers = argc > 3 ? std::stoi(argv[3]) : 4;

  workload::CoaddParams wp;
  wp.num_tasks = num_tasks;
  workload::Job job = workload::generate_coadd(wp);

  grid::GridConfig config;
  config.tiers.num_sites = 5;
  config.tiers.workers_per_site = workers;
  config.capacity_files = 6000;
  config.record_timeline = true;

  sched::SchedulerSpec spec;
  for (const auto& s : sched::SchedulerSpec::paper_algorithms())
    if (s.name() == algorithm) spec = s;
  if (spec.name() != algorithm && algorithm == "workqueue")
    spec.algorithm = sched::Algorithm::kWorkqueue;

  grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
  auto result = sim.run();
  const metrics::TimelineRecorder& timeline = *sim.timeline();

  std::cout << "algorithm " << result.scheduler << ", " << num_tasks
            << " tasks, " << workers << " workers/site — makespan "
            << std::fixed << std::setprecision(0)
            << result.makespan_minutes() << " min\n\n";

  auto stats = timeline.phase_stats();
  auto line = [](const char* label, const RunningStats& s) {
    std::cout << "  " << std::left << std::setw(12) << label << std::right
              << std::fixed << std::setprecision(1) << std::setw(10)
              << s.mean() / 60 << " min avg" << std::setw(10) << s.max() / 60
              << " min max\n";
  };
  std::cout << "per-task phases (" << stats.exec.count() << " tasks):\n";
  line("queue wait", stats.queue_wait);
  line("data wait", stats.data_wait);
  line("execution", stats.exec);

  // Worker busy fractions from exec/fetch spans.
  std::map<unsigned, double> busy;
  for (const auto& span : timeline.completed_spans())
    busy[span.worker.value()] += span.total_s() - span.queue_wait_s();
  std::cout << "\nworker utilization (fetch+exec time / makespan):\n";
  for (const auto& [worker, seconds] : busy) {
    double frac = seconds / result.makespan_s;
    std::cout << "  w" << std::setw(2) << worker << " ";
    int bars = static_cast<int>(frac * 40);
    for (int i = 0; i < bars; ++i) std::cout << '#';
    std::cout << ' ' << std::setprecision(0) << frac * 100 << "%\n";
  }

  std::cout << "\nhint: rerun with more workers per site to watch queue "
               "wait grow\n(the Table 3 effect), or with 'workqueue' to "
               "watch data wait explode.\n";
  return 0;
}
