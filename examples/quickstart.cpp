// Quickstart: generate a Coadd-like workload, build a grid platform, run
// one worker-centric scheduler, and print the headline metrics.
//
//   ./quickstart [num_tasks] [algorithm]
//
// Algorithms: workqueue, storage-affinity, overlap, rest, combined,
// rest.2, combined.2.
#include <cstdlib>
#include <iostream>
#include <string>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"

using namespace wcs;

namespace {

sched::SchedulerSpec parse_algorithm(const std::string& name) {
  for (const sched::SchedulerSpec& s : sched::SchedulerSpec::paper_algorithms())
    if (s.name() == name) return s;
  if (name == "workqueue") {
    sched::SchedulerSpec s;
    s.algorithm = sched::Algorithm::kWorkqueue;
    return s;
  }
  if (name == "xsufferage") {
    sched::SchedulerSpec s;
    s.algorithm = sched::Algorithm::kXSufferage;
    return s;
  }
  std::cerr << "unknown algorithm '" << name << "'\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 1000;
  std::string algorithm = argc > 2 ? argv[2] : "rest.2";

  // 1. Workload: a scaled Coadd slice (paper Sec. 5.1).
  workload::CoaddParams wp;
  wp.num_tasks = num_tasks;
  workload::Job job = workload::generate_coadd(wp);
  workload::JobStats stats = workload::compute_stats(job);
  std::cout << "workload: " << job.name() << " — " << stats.num_tasks
            << " tasks, " << stats.distinct_files << " files, "
            << stats.avg_files_per_task << " files/task avg\n";

  // 2. Platform: paper Table 1 defaults — 10 sites, 1 worker per site,
  // 6,000-file data servers.
  grid::GridConfig config;
  config.tiers.num_sites = 10;
  config.tiers.workers_per_site = 1;
  config.capacity_files = 6000;
  config.tiers.seed = 1;

  // 3. Run one simulation.
  sched::SchedulerSpec spec = parse_algorithm(algorithm);
  grid::GridSimulation sim(config, job, sched::make_scheduler(spec));
  metrics::RunResult result = sim.run();

  std::cout << "algorithm: " << result.scheduler << '\n'
            << "makespan:  " << result.makespan_minutes() << " minutes\n"
            << "transfers: " << result.total_file_transfers() << " ("
            << result.transfers_per_site() << " per site, "
            << result.total_bytes_transferred() / 1e9 << " GB)\n"
            << "cache hits: " << result.total_cache_hits() << '\n'
            << "evictions: " << result.total_evictions() << '\n'
            << "events:    " << result.events_executed << '\n';
  return 0;
}
