// Workload explorer: generates each built-in workload family, prints its
// Table-2-style characteristics and reference CDF, and shows how sharing
// structure drives scheduler benefit (transfers under rest vs workqueue).
//
//   ./workload_explorer [num_tasks]
#include <iomanip>
#include <iostream>

#include "grid/experiment.h"
#include "workload/coadd.h"
#include "workload/generators.h"

using namespace wcs;

namespace {

void characterize(const workload::Job& job) {
  workload::JobStats s = workload::compute_stats(job);
  std::cout << "\n== " << job.name() << " ==\n";
  std::cout << "  tasks: " << s.num_tasks
            << "  distinct files: " << s.distinct_files
            << "  files/task: " << s.min_files_per_task << ".."
            << s.max_files_per_task << " (avg " << std::fixed
            << std::setprecision(1) << s.avg_files_per_task << ")\n";
  std::cout << "  sharing:";
  for (std::size_t k : {2u, 4u, 6u, 10u})
    std::cout << "  >=" << k << " refs: " << std::setprecision(0)
              << s.refs_cdf.fraction_at_least(k) * 100 << "%";
  std::cout << '\n';
}

void scheduling_value(const workload::Job& job) {
  grid::GridConfig c;
  c.tiers.num_sites = 4;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 3000;

  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  sched::SchedulerSpec wq;
  wq.algorithm = sched::Algorithm::kWorkqueue;
  auto r_rest = grid::run_once(c, job, rest, 1);
  auto r_wq = grid::run_once(c, job, wq, 1);
  std::cout << "  transfers rest vs workqueue: "
            << r_rest.total_file_transfers() << " vs "
            << r_wq.total_file_transfers() << "  (locality value: "
            << std::fixed << std::setprecision(2)
            << static_cast<double>(r_wq.total_file_transfers()) /
                   static_cast<double>(r_rest.total_file_transfers())
            << "x)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 400;

  workload::CoaddParams coadd;
  coadd.num_tasks = num_tasks;
  coadd.file_size = megabytes(5);
  workload::Job coadd_job = workload::generate_coadd(coadd);
  characterize(coadd_job);
  scheduling_value(coadd_job);

  workload::GeneratorParams gp;
  gp.num_tasks = num_tasks;
  gp.num_files = num_tasks * 5;
  gp.files_per_task = 25;
  gp.file_size = megabytes(5);

  workload::Job uniform = workload::generate_uniform(gp);
  characterize(uniform);
  scheduling_value(uniform);

  workload::Job zipf = workload::generate_zipf(gp, 1.1);
  characterize(zipf);
  scheduling_value(zipf);

  workload::Job partitioned = workload::generate_partitioned(gp);
  characterize(partitioned);
  scheduling_value(partitioned);

  std::cout << "\nreading: spatial workloads (coadd) reward data-aware "
               "pull scheduling most;\nzipf popularity still helps; "
               "partitioned (zero sharing) makes all schedulers equal.\n";
  return 0;
}
