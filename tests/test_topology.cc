// Unit + property tests for net::Topology and the Tiers generator.
#include <gtest/gtest.h>

#include "common/units.h"
#include "net/tiers.h"
#include "net/topology.h"

namespace wcs::net {
namespace {

Topology line3(double bw = mbps(8), double lat = 0.01) {
  // a --l0-- b --l1-- c
  Topology t;
  NodeId a = t.add_node("a");
  NodeId b = t.add_node("b");
  NodeId c = t.add_node("c");
  t.add_link(a, b, bw, lat);
  t.add_link(b, c, bw, lat);
  return t;
}

TEST(Topology, AddNodesAndLinks) {
  Topology t = line3();
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_EQ(t.node(NodeId(0)).name, "a");
  EXPECT_EQ(t.link(LinkId(1)).a, NodeId(1));
}

TEST(Topology, SelfLoopRejected) {
  Topology t;
  NodeId a = t.add_node("a");
  EXPECT_THROW(t.add_link(a, a, 1, 0), std::logic_error);
}

TEST(Topology, NonPositiveBandwidthRejected) {
  Topology t;
  NodeId a = t.add_node("a");
  NodeId b = t.add_node("b");
  EXPECT_THROW(t.add_link(a, b, 0, 0), std::logic_error);
}

TEST(Topology, RouteOnLine) {
  Topology t = line3();
  const Route& r = t.route(NodeId(0), NodeId(2));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], LinkId(0));
  EXPECT_EQ(r[1], LinkId(1));
}

TEST(Topology, RouteToSelfIsEmpty) {
  Topology t = line3();
  EXPECT_TRUE(t.route(NodeId(1), NodeId(1)).empty());
  EXPECT_DOUBLE_EQ(t.path_latency(NodeId(1), NodeId(1)), 0.0);
}

TEST(Topology, RouteIsSymmetricInLinkSet) {
  Topology t = line3();
  Route fwd = t.route(NodeId(0), NodeId(2));
  Route rev = t.route(NodeId(2), NodeId(0));
  ASSERT_EQ(fwd.size(), rev.size());
  EXPECT_EQ(fwd[0], rev[1]);
  EXPECT_EQ(fwd[1], rev[0]);
}

TEST(Topology, PathLatencySumsLinks) {
  Topology t = line3(mbps(8), 0.01);
  EXPECT_DOUBLE_EQ(t.path_latency(NodeId(0), NodeId(2)), 0.02);
}

TEST(Topology, PathBandwidthIsBottleneck) {
  Topology t;
  NodeId a = t.add_node("a");
  NodeId b = t.add_node("b");
  NodeId c = t.add_node("c");
  t.add_link(a, b, 100, 0.01);
  t.add_link(b, c, 10, 0.01);
  EXPECT_DOUBLE_EQ(t.path_bandwidth(a, c), 10.0);
}

TEST(Topology, PicksLowerLatencyPath) {
  // square: a-b-d (fast) vs a-c-d (slow)
  Topology t;
  NodeId a = t.add_node("a");
  NodeId b = t.add_node("b");
  NodeId c = t.add_node("c");
  NodeId d = t.add_node("d");
  t.add_link(a, b, 1e6, 0.001);
  t.add_link(b, d, 1e6, 0.001);
  t.add_link(a, c, 1e6, 0.1);
  t.add_link(c, d, 1e6, 0.1);
  EXPECT_DOUBLE_EQ(t.path_latency(a, d), 0.002);
}

TEST(Topology, UnreachableThrows) {
  Topology t;
  NodeId a = t.add_node("a");
  NodeId b = t.add_node("b");
  (void)b;
  Topology t2 = std::move(t);  // silence unused warnings simply
  EXPECT_THROW((void)t2.route(a, NodeId(1)), std::logic_error);
  EXPECT_FALSE(t2.connected());
}

TEST(Topology, ConnectedOnLine) { EXPECT_TRUE(line3().connected()); }

// --- Tiers generator ----------------------------------------------------

TEST(Tiers, DefaultShape) {
  TiersParams p;  // 10 sites, 1 worker/site
  GridTopology g = build_tiers_topology(p);
  EXPECT_EQ(g.data_server_nodes.size(), 10u);
  EXPECT_EQ(g.worker_nodes.size(), 10u);
  for (const auto& site : g.worker_nodes) EXPECT_EQ(site.size(), 1u);
  EXPECT_EQ(g.site_uplinks.size(), 10u);
  EXPECT_TRUE(g.topology.connected());
}

TEST(Tiers, WorkerCountHonored) {
  TiersParams p;
  p.num_sites = 4;
  p.workers_per_site = 7;
  GridTopology g = build_tiers_topology(p);
  EXPECT_EQ(g.worker_nodes.size(), 4u);
  for (const auto& site : g.worker_nodes) EXPECT_EQ(site.size(), 7u);
}

TEST(Tiers, SiteHostsShareTheUplink) {
  TiersParams p;
  p.num_sites = 3;
  p.workers_per_site = 2;
  GridTopology g = build_tiers_topology(p);
  for (std::size_t s = 0; s < 3; ++s) {
    LinkId uplink = g.site_uplinks[s];
    auto crosses_uplink = [&](NodeId from) {
      const Route& r = g.topology.route(from, g.file_server_node);
      return std::find(r.begin(), r.end(), uplink) != r.end();
    };
    EXPECT_TRUE(crosses_uplink(g.data_server_nodes[s]));
    for (NodeId w : g.worker_nodes[s]) EXPECT_TRUE(crosses_uplink(w));
  }
}

TEST(Tiers, DifferentSitesUseDifferentUplinks) {
  TiersParams p;
  p.num_sites = 3;
  GridTopology g = build_tiers_topology(p);
  const Route& r0 =
      g.topology.route(g.data_server_nodes[0], g.file_server_node);
  EXPECT_EQ(std::find(r0.begin(), r0.end(), g.site_uplinks[1]), r0.end());
}

TEST(Tiers, SeedChangesLinkParameters) {
  TiersParams a, b;
  a.seed = 1;
  b.seed = 2;
  GridTopology ga = build_tiers_topology(a);
  GridTopology gb = build_tiers_topology(b);
  double bwa = ga.topology.link(ga.site_uplinks[0]).bandwidth_bps;
  double bwb = gb.topology.link(gb.site_uplinks[0]).bandwidth_bps;
  EXPECT_NE(bwa, bwb);
}

TEST(Tiers, SameSeedIsDeterministic) {
  TiersParams p;
  p.seed = 9;
  GridTopology a = build_tiers_topology(p);
  GridTopology b = build_tiers_topology(p);
  ASSERT_EQ(a.topology.num_links(), b.topology.num_links());
  for (LinkId::underlying_type l = 0; l < a.topology.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(a.topology.link(LinkId(l)).bandwidth_bps,
                     b.topology.link(LinkId(l)).bandwidth_bps);
    EXPECT_DOUBLE_EQ(a.topology.link(LinkId(l)).latency_s,
                     b.topology.link(LinkId(l)).latency_s);
  }
}

TEST(Tiers, JitterStaysWithinBounds) {
  TiersParams p;
  p.jitter = 0.25;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    p.seed = seed;
    GridTopology g = build_tiers_topology(p);
    for (LinkId uplink : g.site_uplinks) {
      double bw = g.topology.link(uplink).bandwidth_bps;
      EXPECT_GE(bw, p.uplink_bandwidth_bps * 0.75 - 1);
      EXPECT_LE(bw, p.uplink_bandwidth_bps * 1.25 + 1);
    }
  }
}

class TiersConnectivity : public ::testing::TestWithParam<int> {};

TEST_P(TiersConnectivity, AllSitesReachCoreHosts) {
  TiersParams p;
  p.num_sites = GetParam();
  p.workers_per_site = 2;
  p.seed = static_cast<std::uint64_t>(GetParam());
  GridTopology g = build_tiers_topology(p);
  EXPECT_TRUE(g.topology.connected());
  for (NodeId ds : g.data_server_nodes) {
    EXPECT_FALSE(g.topology.route(ds, g.file_server_node).empty());
    EXPECT_GT(g.topology.path_latency(ds, g.scheduler_node), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, TiersConnectivity,
                         ::testing::Values(1, 2, 4, 10, 16, 26, 90));

}  // namespace
}  // namespace wcs::net
