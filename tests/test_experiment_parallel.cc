// The parallel experiment runner: the thread pool primitive, and the
// determinism contract — run_matrix()/run_averaged()/run_seeds() at any
// --jobs level return byte-identical results to the serial path, because
// every (spec, seed) run is an isolated simulation collected in
// submission order.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "grid/experiment.h"
#include "workload/generators.h"

namespace wcs {
namespace {

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&done] { ++done; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, ExceptionsPropagateAtGet) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) (void)pool.submit([&done] { ++done; });
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, RejectsZeroThreads) {
  EXPECT_THROW(ThreadPool{0}, std::logic_error);
}

// --- Parallel == serial, byte for byte ------------------------------------

grid::GridConfig small_config() {
  grid::GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 40;
  return c;
}

workload::Job small_job() {
  workload::GeneratorParams p;
  p.num_tasks = 40;
  p.num_files = 120;
  p.files_per_task = 4;
  p.mflop_per_file = 1e3;
  p.seed = 5;
  return workload::generate_uniform(p);
}

std::vector<sched::SchedulerSpec> two_specs() {
  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  sched::SchedulerSpec combined2;
  combined2.algorithm = sched::Algorithm::kCombined;
  combined2.choose_n = 2;
  return {rest, combined2};
}

// Field-for-field bitwise comparison: the doubles must be the SAME
// bits, not merely close — the parallel path must not reorder any
// floating-point reduction.
void expect_identical(const metrics::AveragedResult& a,
                      const metrics::AveragedResult& b) {
  EXPECT_EQ(a.scheduler, b.scheduler);
  EXPECT_EQ(a.runs, b.runs);
  auto bits = [](double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof(u));
    return u;
  };
  EXPECT_EQ(bits(a.makespan_minutes), bits(b.makespan_minutes));
  EXPECT_EQ(bits(a.transfers_per_site), bits(b.transfers_per_site));
  EXPECT_EQ(bits(a.total_file_transfers), bits(b.total_file_transfers));
  EXPECT_EQ(bits(a.total_gigabytes), bits(b.total_gigabytes));
  EXPECT_EQ(bits(a.waiting_hours_per_site), bits(b.waiting_hours_per_site));
  EXPECT_EQ(bits(a.transfer_hours_per_site), bits(b.transfer_hours_per_site));
  EXPECT_EQ(bits(a.replicas_started), bits(b.replicas_started));
  EXPECT_EQ(bits(a.replicas_cancelled), bits(b.replicas_cancelled));
  EXPECT_EQ(bits(a.makespan_minutes_min), bits(b.makespan_minutes_min));
  EXPECT_EQ(bits(a.makespan_minutes_max), bits(b.makespan_minutes_max));
}

TEST(ParallelRunner, MatrixIsByteIdenticalToSerial) {
  const auto config = small_config();
  const auto job = small_job();
  const auto specs = two_specs();
  const std::vector<std::uint64_t> seeds{1, 2, 3};

  const auto serial =
      grid::run_matrix(config, job, specs, seeds, {}, /*jobs=*/1);
  const auto parallel =
      grid::run_matrix(config, job, specs, seeds, {}, /*jobs=*/4);

  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_identical(serial[i], parallel[i]);
}

TEST(ParallelRunner, AveragedIsByteIdenticalToSerial) {
  const auto config = small_config();
  const auto job = small_job();
  const std::vector<std::uint64_t> seeds{1, 2, 3};
  const sched::SchedulerSpec spec = two_specs()[1];  // randomized variant

  expect_identical(grid::run_averaged(config, job, spec, seeds, 1),
                   grid::run_averaged(config, job, spec, seeds, 4));
}

TEST(ParallelRunner, RunSeedsPreservesSeedOrder) {
  const auto config = small_config();
  const auto job = small_job();
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  const sched::SchedulerSpec spec = two_specs()[0];

  const auto serial = grid::run_seeds(config, job, spec, seeds, 1);
  const auto parallel = grid::run_seeds(config, job, spec, seeds, 4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(parallel[i].makespan_s, serial[i].makespan_s) << "seed " << i;
    EXPECT_EQ(parallel[i].events_executed, serial[i].events_executed);
    EXPECT_EQ(parallel[i].tasks_completed, serial[i].tasks_completed);
  }
}

TEST(ParallelRunner, ProgressFiresOncePerSpecInOrder) {
  const auto config = small_config();
  const auto job = small_job();
  const auto specs = two_specs();
  const std::vector<std::uint64_t> seeds{1, 2};

  std::vector<std::string> notes;
  (void)grid::run_matrix(config, job, specs, seeds,
                         [&](const std::string& s) { notes.push_back(s); },
                         /*jobs=*/4);
  ASSERT_EQ(notes.size(), 2u);
  EXPECT_TRUE(notes[0].starts_with("rest:"));
  EXPECT_TRUE(notes[1].starts_with("combined.2:"));
}

}  // namespace
}  // namespace wcs
