// Cross-cutting property tests: invariants that must hold for EVERY
// scheduler on randomized workloads and platforms. These are the
// regression net for the whole stack (kernel + flows + storage + engine +
// schedulers together).
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "common/stats.h"
#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "obs/metrics.h"
#include "workload/coadd.h"
#include "workload/generators.h"

namespace wcs::grid {
namespace {

struct Case {
  sched::Algorithm algorithm;
  int choose_n;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  sched::SchedulerSpec s;
  s.algorithm = info.param.algorithm;
  s.choose_n = info.param.choose_n;
  std::string n = s.name() + "_s" + std::to_string(info.param.seed);
  for (char& c : n)
    if (c == '-' || c == '.') c = '_';
  return n;
}

class AllSchedulers : public ::testing::TestWithParam<Case> {};

TEST_P(AllSchedulers, InvariantsHoldOnCoaddSlice) {
  const Case& param = GetParam();
  workload::CoaddParams cp;
  cp.num_tasks = 120;
  cp.seed = 42 + param.seed;
  auto job = workload::generate_coadd(cp);

  GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 250;  // tight: forces eviction churn
  sched::SchedulerSpec spec;
  spec.algorithm = param.algorithm;
  spec.choose_n = param.choose_n;
  spec.seed = param.seed;

  auto r = run_once(c, job, spec, param.seed);

  // 1. Every task completes exactly once.
  EXPECT_EQ(r.tasks_completed, job.num_tasks());

  // 2. Makespan is positive and the clock is sane.
  EXPECT_GT(r.makespan_s, 0.0);

  // 3. Assignment accounting: first instances + replicas.
  EXPECT_EQ(r.assignments, job.num_tasks() + r.replicas_started);
  EXPECT_LE(r.replicas_cancelled, r.replicas_started);

  // 4. Each site's served batches carry consistent accounting.
  std::uint64_t batches = 0;
  for (const auto& s : r.sites) {
    batches += s.batches_served;
    EXPECT_GE(s.waiting_s, 0.0);
    EXPECT_GE(s.transfer_s, 0.0);
    EXPECT_NEAR(s.bytes_transferred,
                static_cast<double>(s.file_transfers) * 25e6, 1.0);
  }
  // Every completed task instance was served one batch; cancelled
  // fetching instances add cancelled batches instead.
  EXPECT_GE(batches, job.num_tasks());

  // 5. File-serving accounting: every served or cancelled batch serves at
  // most max|t| files; and every referenced file had to be transferred to
  // some site at least once.
  std::size_t max_files = 0;
  for (const workload::Task& t : job.tasks())
    max_files = std::max(max_files, t.files.size());
  std::uint64_t total_batches = 0;
  for (const auto& s : r.sites)
    total_batches += s.batches_served + s.batches_cancelled;
  EXPECT_LE(r.total_file_transfers() + r.total_cache_hits(),
            total_batches * max_files);
  EXPECT_GE(r.total_file_transfers(),
            workload::compute_stats(job).distinct_files);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllSchedulers,
    ::testing::Values(
        Case{sched::Algorithm::kWorkqueue, 1, 1},
        Case{sched::Algorithm::kWorkqueue, 1, 2},
        Case{sched::Algorithm::kStorageAffinity, 1, 1},
        Case{sched::Algorithm::kStorageAffinity, 1, 2},
        Case{sched::Algorithm::kOverlap, 1, 1},
        Case{sched::Algorithm::kOverlap, 1, 2},
        Case{sched::Algorithm::kRest, 1, 1},
        Case{sched::Algorithm::kRest, 1, 2},
        Case{sched::Algorithm::kRest, 2, 1},
        Case{sched::Algorithm::kRest, 2, 2},
        Case{sched::Algorithm::kCombined, 1, 1},
        Case{sched::Algorithm::kCombined, 1, 2},
        Case{sched::Algorithm::kCombined, 2, 1},
        Case{sched::Algorithm::kCombined, 2, 2}),
    case_name);

class WorkloadRegimes : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadRegimes, LocalityAwareBeatsBlindPullWhenSharingExists) {
  // On a high-sharing sliding-window workload whose task ORDER is
  // scrambled (so FIFO cannot ride the spatial order), rest must move
  // fewer bytes than blind workqueue. (Makespan comparisons are left to
  // the benches; transfer counts are the robust invariant.)
  auto ordered = workload::generate_sliding_window(
      80, /*width=*/12, /*stride=*/GetParam(), megabytes(5), 1.0);
  std::vector<std::size_t> perm(ordered.num_tasks());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng shuffle_rng(99);
  shuffle_rng.shuffle(perm);
  workload::Job job;
  job.set_name("shuffled-window");
  job.catalog = ordered.catalog;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const workload::Task t =
        ordered.task(TaskId(static_cast<TaskId::underlying_type>(perm[i])));
    job.add_task(t.files, t.mflop);
  }
  GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 200;
  sched::SchedulerSpec rest;
  rest.algorithm = sched::Algorithm::kRest;
  sched::SchedulerSpec wq;
  wq.algorithm = sched::Algorithm::kWorkqueue;
  auto r_rest = run_once(c, job, rest, 1);
  auto r_wq = run_once(c, job, wq, 1);
  EXPECT_LT(r_rest.total_file_transfers(), r_wq.total_file_transfers());
}

INSTANTIATE_TEST_SUITE_P(Strides, WorkloadRegimes, ::testing::Values(1, 2, 4));

TEST(ZeroSharing, AllLocalitySchedulersDegradeToSameTransfers) {
  // Partitioned workload: no reuse possible; every scheduler transfers
  // exactly the catalog once.
  workload::GeneratorParams gp;
  gp.num_tasks = 40;
  gp.files_per_task = 6;
  gp.file_size = megabytes(5);
  auto job = workload::generate_partitioned(gp);
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 400;
  for (auto a : {sched::Algorithm::kWorkqueue, sched::Algorithm::kOverlap,
                 sched::Algorithm::kRest, sched::Algorithm::kCombined}) {
    sched::SchedulerSpec spec;
    spec.algorithm = a;
    auto r = run_once(c, job, spec, 1);
    EXPECT_EQ(r.total_file_transfers(), 240u) << spec.name();
    EXPECT_EQ(r.total_cache_hits(), 0u) << spec.name();
  }
}

TEST(CapacitySweep, TransfersDecreaseMonotonicallyWithCapacity) {
  workload::CoaddParams cp;
  cp.num_tasks = 150;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  // Scheduling dynamics shift slightly between capacities (different
  // assignment orders), so require near-monotonicity point to point and
  // a strict decrease end to end.
  std::uint64_t first = 0;
  std::uint64_t prev = UINT64_MAX;
  std::uint64_t last = 0;
  for (std::size_t cap : {120u, 300u, 800u, 2000u}) {
    c.capacity_files = cap;
    auto r = run_once(c, job, spec, 1);
    if (first == 0) first = r.total_file_transfers();
    EXPECT_LE(static_cast<double>(r.total_file_transfers()),
              static_cast<double>(prev) * 1.05)
        << "capacity " << cap;
    prev = r.total_file_transfers();
    last = prev;
  }
  EXPECT_LT(last, first);
}

TEST(SiteSweep, MakespanShrinksWithMoreSites) {
  workload::CoaddParams cp;
  cp.num_tasks = 150;
  auto job = workload::generate_coadd(cp);
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  GridConfig c;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 500;
  c.tiers.num_sites = 2;
  auto r2 = run_once(c, job, spec, 1);
  c.tiers.num_sites = 8;
  auto r8 = run_once(c, job, spec, 1);
  EXPECT_LT(r8.makespan_s, r2.makespan_s);
}

TEST(FileSizeSweep, MakespanRoughlyLinearInFileSize) {
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 500;
  std::vector<double> makespans;
  for (double mb : {5.0, 25.0, 50.0}) {
    workload::CoaddParams cp;
    cp.num_tasks = 100;
    cp.file_size = megabytes(mb);
    cp.mflop_per_file = 1e-6;  // isolate the network term
    auto job = workload::generate_coadd(cp);
    makespans.push_back(run_once(c, job, spec, 1).makespan_s);
  }
  EXPECT_NEAR(makespans[1] / makespans[0], 5.0, 0.8);
  EXPECT_NEAR(makespans[2] / makespans[1], 2.0, 0.3);
}

TEST(EvictionPolicies, AllCompleteAndDiffer) {
  workload::CoaddParams cp;
  cp.num_tasks = 120;
  auto job = workload::generate_coadd(cp);
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 150;  // heavy churn
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  std::vector<std::uint64_t> transfers;
  for (auto policy :
       {storage::EvictionPolicy::kLru, storage::EvictionPolicy::kFifo,
        storage::EvictionPolicy::kMinRef}) {
    c.eviction = policy;
    auto r = run_once(c, job, spec, 1);
    EXPECT_EQ(r.tasks_completed, 120u);
    transfers.push_back(r.total_file_transfers());
  }
  // The policies must actually behave differently under churn.
  EXPECT_TRUE(transfers[0] != transfers[1] || transfers[1] != transfers[2]);
}

// --- statistics-toolkit properties (common/stats.h and obs/metrics.h) ---

TEST(StatsProperties, RunningStatsMergeIsAssociative) {
  // merge(merge(a, b), c) and merge(a, merge(b, c)) must agree with each
  // other and with a single pass over the concatenated stream.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(-100, 100);
  for (int trial = 0; trial < 20; ++trial) {
    RunningStats a, b, c, all;
    auto feed = [&](RunningStats& s, int n) {
      for (int i = 0; i < n; ++i) {
        double x = dist(rng);
        s.add(x);
        all.add(x);
      }
    };
    feed(a, trial);  // includes the empty-partition edge case
    feed(b, 13);
    feed(c, 5);

    RunningStats left = a;
    left.merge(b);
    left.merge(c);
    RunningStats bc = b;
    bc.merge(c);
    RunningStats right = a;
    right.merge(bc);

    for (const RunningStats* s : {&left, &right}) {
      EXPECT_EQ(s->count(), all.count());
      EXPECT_NEAR(s->mean(), all.mean(), 1e-9);
      EXPECT_NEAR(s->variance(), all.variance(), 1e-7);
      EXPECT_DOUBLE_EQ(s->min(), all.min());
      EXPECT_DOUBLE_EQ(s->max(), all.max());
    }
  }
}

TEST(StatsProperties, FixedHistogramMergeIsAssociativeAndExact) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-10, 110);  // spills both ends
  obs::FixedHistogram a(0, 100, 10), b(0, 100, 10), c(0, 100, 10),
      all(0, 100, 10);
  auto feed = [&](obs::FixedHistogram& h, int n) {
    for (int i = 0; i < n; ++i) {
      double x = dist(rng);
      h.add(x);
      all.add(x);
    }
  };
  feed(a, 37);
  feed(b, 0);  // empty-operand edge case
  feed(c, 53);

  obs::FixedHistogram left = a;
  left.merge(b);
  left.merge(c);
  obs::FixedHistogram bc = b;
  bc.merge(c);
  obs::FixedHistogram right = a;
  right.merge(bc);

  for (const obs::FixedHistogram* h : {&left, &right}) {
    EXPECT_EQ(h->count(), all.count());
    EXPECT_EQ(h->underflow(), all.underflow());
    EXPECT_EQ(h->overflow(), all.overflow());
    EXPECT_DOUBLE_EQ(h->sum(), all.sum());
    for (std::size_t i = 0; i < all.num_buckets(); ++i)
      EXPECT_EQ(h->bucket(i), all.bucket(i));
  }
}

TEST(StatsProperties, FixedHistogramQuantilesAreMonotone) {
  std::mt19937_64 rng(13);
  std::exponential_distribution<double> dist(1.0 / 20.0);
  obs::FixedHistogram h(0, 100, 25);
  for (int i = 0; i < 500; ++i) h.add(dist(rng));
  double prev = h.quantile(0);
  for (int i = 1; i <= 100; ++i) {
    double q = h.quantile(static_cast<double>(i) / 100.0);
    EXPECT_GE(q, prev) << "quantile not monotone at q=" << i / 100.0;
    EXPECT_GE(q, h.lo());
    EXPECT_LE(q, h.hi());
    prev = q;
  }
}

TEST(StatsProperties, CounterOverflowWrapsModulo64) {
  // Deltas across a wrap stay correct under unsigned arithmetic — the
  // documented contract for long-running counters.
  obs::Counter c;
  const std::uint64_t near_max = ~std::uint64_t{0} - 2;
  c.add(near_max);
  std::uint64_t before = c.value();
  c.add(10);  // wraps
  EXPECT_EQ(c.value(), near_max + 10);  // both sides wrap identically
  EXPECT_EQ(c.value() - before, 10u);
  EXPECT_LT(c.value(), before);  // it really did wrap
}

}  // namespace
}  // namespace wcs::grid
