// Tests for the compute capacity model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compute/capacity.h"

namespace wcs::compute {
namespace {

TEST(Top500, Has500DescendingEntries) {
  const auto& t = top500_rmax_gflops();
  ASSERT_EQ(t.size(), 500u);
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GE(t[i - 1], t[i]);
}

TEST(Top500, EndpointsMatchJune2006Shape) {
  const auto& t = top500_rmax_gflops();
  EXPECT_NEAR(t.front(), 280600.0, 1.0);
  EXPECT_NEAR(t.back(), 2737.0, 1.0);
}

TEST(Top500, AllPositive) {
  for (double v : top500_rmax_gflops()) EXPECT_GT(v, 0.0);
}

TEST(SampleWorker, DividedBy100PerPaper) {
  const auto& t = top500_rmax_gflops();
  double max_mflops = t.front() * 1e3 / 100.0;
  double min_mflops = t.back() * 1e3 / 100.0;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double m = sample_worker_mflops(rng);
    EXPECT_GE(m, min_mflops - 1e-9);
    EXPECT_LE(m, max_mflops + 1e-9);
  }
}

TEST(SampleWorker, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(sample_worker_mflops(a), sample_worker_mflops(b));
}

TEST(SampleWorker, SpreadIsHeavyTailed) {
  // Most machines sit near the bottom of the list; the sample max should
  // dwarf the median.
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) v.push_back(sample_worker_mflops(rng));
  std::sort(v.begin(), v.end());
  EXPECT_GT(v.back() / v[v.size() / 2], 5.0);
}

TEST(Worker, ComputeTime) {
  Worker w;
  w.mflops = 500.0;
  EXPECT_DOUBLE_EQ(w.compute_time_s(1000.0), 2.0);
}

TEST(Worker, ComputeTimeRequiresSpeed) {
  Worker w;  // mflops == 0
  EXPECT_THROW((void)w.compute_time_s(100.0), std::logic_error);
}

}  // namespace
}  // namespace wcs::compute
