// Tests for the worker-churn extension: crashes lose queued/running task
// instances; every scheduler must re-home orphans and still finish the
// job. (Motivated by the paper's own premise that grid resources are
// unreliable, Sec. 1.)
#include <gtest/gtest.h>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "workload/coadd.h"

namespace wcs::grid {
namespace {

GridConfig churny_config(double mean_uptime_s, int sites = 3,
                         int workers = 2) {
  GridConfig c;
  c.tiers.num_sites = sites;
  c.tiers.workers_per_site = workers;
  c.capacity_files = 400;
  GridConfig::ChurnParams churn;
  churn.mean_uptime_s = mean_uptime_s;
  churn.mean_downtime_s = mean_uptime_s / 4;
  c.churn = churn;
  return c;
}

workload::Job small_coadd(std::size_t tasks, std::uint64_t seed = 42) {
  workload::CoaddParams cp;
  cp.num_tasks = tasks;
  cp.seed = seed;
  return workload::generate_coadd(cp);
}

sched::SchedulerSpec spec_of(sched::Algorithm a, bool task_repl = false) {
  sched::SchedulerSpec s;
  s.algorithm = a;
  s.task_replication = task_repl;
  return s;
}

class ChurnAllSchedulers : public ::testing::TestWithParam<sched::Algorithm> {
};

TEST_P(ChurnAllSchedulers, JobCompletesDespiteCrashes) {
  auto job = small_coadd(80);
  // Aggressive churn: uptime comparable to a few task executions.
  GridConfig c = churny_config(/*mean_uptime_s=*/20000);
  auto r = run_once(c, job, spec_of(GetParam()), 1);
  EXPECT_EQ(r.tasks_completed, 80u);
  EXPECT_GT(r.worker_failures, 0u);
  EXPECT_GT(r.makespan_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ChurnAllSchedulers,
                         ::testing::Values(sched::Algorithm::kWorkqueue,
                                           sched::Algorithm::kStorageAffinity,
                                           sched::Algorithm::kOverlap,
                                           sched::Algorithm::kRest,
                                           sched::Algorithm::kCombined));

TEST(Churn, DisabledByDefaultNoFailures) {
  auto job = small_coadd(40);
  GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 400;
  auto r = run_once(c, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_EQ(r.worker_failures, 0u);
  EXPECT_EQ(r.instances_lost, 0u);
}

TEST(Churn, Deterministic) {
  auto job = small_coadd(60);
  GridConfig c = churny_config(30000);
  auto r1 = run_once(c, job, spec_of(sched::Algorithm::kRest), 2);
  auto r2 = run_once(c, job, spec_of(sched::Algorithm::kRest), 2);
  EXPECT_DOUBLE_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.worker_failures, r2.worker_failures);
  EXPECT_EQ(r1.instances_lost, r2.instances_lost);
}

TEST(Churn, SeedChangesFailurePattern) {
  auto job = small_coadd(60);
  GridConfig c = churny_config(30000);
  auto r1 = run_once(c, job, spec_of(sched::Algorithm::kRest), 1);
  GridConfig c2 = c;
  c2.churn->seed = 99;
  auto r2 = run_once(c2, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_NE(r1.worker_failures + r1.instances_lost * 1000,
            r2.worker_failures + r2.instances_lost * 1000);
}

TEST(Churn, MoreChurnMeansLongerMakespan) {
  auto job = small_coadd(100);
  GridConfig calm;
  calm.tiers.num_sites = 3;
  calm.tiers.workers_per_site = 2;
  calm.capacity_files = 400;
  auto r_calm = run_once(calm, job, spec_of(sched::Algorithm::kRest), 1);
  GridConfig stormy = churny_config(/*mean_uptime_s=*/10000);
  auto r_stormy = run_once(stormy, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_GT(r_stormy.worker_failures, 3u);
  EXPECT_GT(r_stormy.makespan_s, r_calm.makespan_s);
}

TEST(Churn, LostInstancesAreAccounted) {
  auto job = small_coadd(80);
  GridConfig c = churny_config(15000);
  auto r = run_once(c, job, spec_of(sched::Algorithm::kStorageAffinity), 1);
  EXPECT_EQ(r.tasks_completed, 80u);
  // Task-centric queues hold many tasks, so crashes lose instances.
  EXPECT_GT(r.instances_lost, 0u);
  EXPECT_GE(r.worker_recoveries + 100, r.worker_failures);  // sanity
}

TEST(Churn, TaskReplicationCoexistsWithChurn) {
  auto job = small_coadd(60);
  GridConfig c = churny_config(20000);
  auto r = run_once(c, job, spec_of(sched::Algorithm::kRest, true), 1);
  EXPECT_EQ(r.tasks_completed, 60u);
}

TEST(Churn, DataReplicationCoexistsWithChurn) {
  auto job = small_coadd(60);
  GridConfig c = churny_config(20000);
  replication::DataReplicatorParams rp;
  rp.popularity_threshold = 2;
  rp.check_interval_s = 2000;
  c.replication = rp;
  auto r = run_once(c, job, spec_of(sched::Algorithm::kRest), 1);
  EXPECT_EQ(r.tasks_completed, 60u);
}

TEST(Churn, RejectsNonPositiveTimes) {
  auto job = small_coadd(10);
  GridConfig c = churny_config(100);
  c.churn->mean_uptime_s = 0;
  EXPECT_THROW(GridSimulation(c, job,
                              sched::make_scheduler(
                                  spec_of(sched::Algorithm::kRest))),
               std::logic_error);
}

}  // namespace
}  // namespace wcs::grid
