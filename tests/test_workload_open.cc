// Open-system workload plane: the generator registry, arrival-process
// draws, the multi-tenant bag-stream generator's stream hygiene, and
// the trace round-trip of arrival-timed workloads.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "workload/open.h"
#include "workload/registry.h"
#include "workload/trace.h"

namespace wcs::workload {
namespace {

TEST(WorkloadRegistry, BuiltinsRegisterOnceAndResolve) {
  register_builtin_generators();
  register_builtin_generators();  // idempotent
  for (const char* name :
       {"coadd", "uniform", "zipf", "partitioned", "trace", "multi-tenant"}) {
    EXPECT_TRUE(has_generator(name)) << name;
    EXPECT_FALSE(generator_summary(name).empty()) << name;
  }
  EXPECT_FALSE(has_generator("no-such-generator"));
}

TEST(WorkloadRegistry, DefaultSpecBuildsClosedCoadd) {
  register_builtin_generators();
  GeneratorSpec spec;
  spec.coadd.num_tasks = 40;
  const Workload wl = build_workload(spec);
  EXPECT_EQ(wl.job.num_tasks(), 40u);
  EXPECT_FALSE(wl.open());
  EXPECT_TRUE(wl.arrivals.arrival_s.empty());
}

TEST(WorkloadRegistry, OpenParamsStampArrivalsOverClosedBuiltins) {
  register_builtin_generators();
  GeneratorSpec spec;
  spec.coadd.num_tasks = 40;
  spec.open.process = ArrivalProcess::kPoisson;
  spec.open.mean_interarrival_s = 100.0;
  const Workload wl = build_workload(spec);
  ASSERT_EQ(wl.arrivals.arrival_s.size(), 40u);
  EXPECT_TRUE(wl.open());
  double prev = 0;
  for (double a : wl.arrivals.arrival_s) {
    EXPECT_GE(a, prev);  // stamped in id order: nondecreasing
    prev = a;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(DrawArrivals, DeterministicNondecreasingAndCalibrated) {
  OpenParams p;
  p.mean_interarrival_s = 250.0;
  p.seed = 77;
  for (ArrivalProcess process : {ArrivalProcess::kPoisson,
                                 ArrivalProcess::kDiurnal,
                                 ArrivalProcess::kBursty}) {
    SCOPED_TRACE(to_string(process));
    p.process = process;
    const std::vector<double> a = draw_arrivals(4000, p, /*tenant=*/0);
    ASSERT_EQ(a.size(), 4000u);
    EXPECT_GT(a.front(), 0.0);
    for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
    // Same (params, tenant) redraw is identical; a different tenant's
    // substream is not.
    EXPECT_EQ(a, draw_arrivals(4000, p, 0));
    EXPECT_NE(a, draw_arrivals(4000, p, 1));
    // All processes are calibrated to the same long-run mean gap, so
    // they compare at equal offered load. The bursty tail is heavy;
    // allow a loose band.
    const double mean_gap = a.back() / static_cast<double>(a.size());
    EXPECT_GT(mean_gap, 0.5 * p.mean_interarrival_s);
    EXPECT_LT(mean_gap, 2.0 * p.mean_interarrival_s);
  }
}

TEST(DrawArrivals, AtT0IsTheClosedDegenerate) {
  OpenParams p;
  const std::vector<double> a = draw_arrivals(10, p, 0);
  for (double t : a) EXPECT_EQ(t, 0.0);
}

TEST(MultiTenant, GeneratesPerTenantBlocksWithOwnArrivalStreams) {
  CoaddParams bag;
  bag.num_tasks = 90;
  OpenParams open;
  open.process = ArrivalProcess::kPoisson;
  open.mean_interarrival_s = 300.0;
  open.tenants = {{"astro", 3}, {"bio", 1}};
  const Workload wl = generate_multi_tenant(bag, open);

  // Even split of the base task count; per-task metadata parallel.
  EXPECT_EQ(wl.job.num_tasks(), 90u);
  ASSERT_EQ(wl.arrivals.arrival_s.size(), 90u);
  ASSERT_EQ(wl.arrivals.tenant_of.size(), 90u);
  ASSERT_EQ(wl.arrivals.tenants.size(), 2u);
  EXPECT_EQ(wl.arrivals.tenants[0].name, "astro");
  EXPECT_EQ(wl.arrivals.tenants[1].weight, 1u);
  EXPECT_TRUE(wl.open());

  // Task ids are per-tenant contiguous blocks in roster order.
  for (std::size_t i = 0; i < 45; ++i)
    EXPECT_EQ(wl.arrivals.tenant_of[i], 0u) << i;
  for (std::size_t i = 45; i < 90; ++i)
    EXPECT_EQ(wl.arrivals.tenant_of[i], 1u) << i;
}

TEST(MultiTenant, RosterGrowthNeverPerturbsExistingTenants) {
  // The stream-hygiene property: with explicit tasks_per_tenant, adding
  // tenant N+1 must leave tenants 1..N byte-identical — same file ids,
  // same per-task file sets and mflop, same arrival times.
  CoaddParams bag;
  bag.num_tasks = 0;  // unused when tasks_per_tenant is explicit
  OpenParams open;
  open.process = ArrivalProcess::kBursty;
  open.mean_interarrival_s = 200.0;
  open.tasks_per_tenant = 30;
  open.tenants = {{"a", 2}, {"b", 1}};
  const Workload two = generate_multi_tenant(bag, open);

  open.tenants.push_back({"c", 5});
  const Workload three = generate_multi_tenant(bag, open);

  ASSERT_EQ(two.job.num_tasks(), 60u);
  ASSERT_EQ(three.job.num_tasks(), 90u);
  for (std::size_t i = 0; i < 60; ++i) {
    const TaskId id(static_cast<TaskId::underlying_type>(i));
    const Task before = two.job.task(id);
    const Task after = three.job.task(id);
    ASSERT_EQ(before.files.size(), after.files.size()) << i;
    for (std::size_t f = 0; f < before.files.size(); ++f)
      EXPECT_EQ(before.files[f], after.files[f]) << i;
    EXPECT_EQ(before.mflop, after.mflop) << i;
    EXPECT_EQ(two.arrivals.arrival_s[i], three.arrivals.arrival_s[i]) << i;
    EXPECT_EQ(two.arrivals.tenant_of[i], three.arrivals.tenant_of[i]) << i;
  }
  // Tenant c's files occupy a fresh id range appended after a's and b's.
  for (FileId f : three.job.task(TaskId(60)).files)
    EXPECT_GE(f.value(), two.job.catalog.num_files());
}

TEST(TraceRoundTrip, ArrivalTimedWorkloadSurvivesSaveLoad) {
  CoaddParams bag;
  bag.num_tasks = 24;
  OpenParams open;
  open.process = ArrivalProcess::kPoisson;
  open.mean_interarrival_s = 150.0;
  open.tenants = {{"astro", 3}, {"bio", 1}, {"geo", 2}};
  const Workload original = generate_multi_tenant(bag, open);

  std::stringstream buf;
  save_workload(original, buf);
  const Workload loaded = load_workload(buf);

  ASSERT_EQ(loaded.job.num_tasks(), original.job.num_tasks());
  ASSERT_EQ(loaded.job.catalog.num_files(), original.job.catalog.num_files());
  for (const Task& task : original.job.tasks()) {
    const Task got = loaded.job.task(task.id);
    ASSERT_EQ(got.files.size(), task.files.size());
    for (std::size_t f = 0; f < task.files.size(); ++f)
      EXPECT_EQ(got.files[f], task.files[f]);
    EXPECT_EQ(got.mflop, task.mflop);
  }
  EXPECT_EQ(loaded.arrivals.arrival_s, original.arrivals.arrival_s);
  EXPECT_EQ(loaded.arrivals.tenant_of, original.arrivals.tenant_of);
  ASSERT_EQ(loaded.arrivals.tenants.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_EQ(loaded.arrivals.tenants[t].name,
              original.arrivals.tenants[t].name);
    EXPECT_EQ(loaded.arrivals.tenants[t].weight,
              original.arrivals.tenants[t].weight);
  }
  EXPECT_TRUE(loaded.open());

  // A closed workload serializes to the legacy job-only format: no
  // tenant/arrival directives.
  Workload closed;
  closed.job = original.job;
  std::stringstream closed_buf;
  save_workload(closed, closed_buf);
  EXPECT_EQ(closed_buf.str().find("tenant "), std::string::npos);
  EXPECT_EQ(closed_buf.str().find("arrival "), std::string::npos);
  const Workload closed_loaded = load_workload(closed_buf);
  EXPECT_FALSE(closed_loaded.open());
}

}  // namespace
}  // namespace wcs::workload
