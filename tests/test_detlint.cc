// detlint fixture + self-test suite. Each rule gets at least one
// positive, one clean, and one suppressed case over in-memory snippets;
// malformed suppressions must be rejected (and reported) rather than
// honored; the JSON report round-trips through the obs parser; and the
// tree-clean gate lints the real repository sources, which is what
// makes "the tree stays detlint-clean" a CTest-visible invariant.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "detlint/detlint.h"
#include "obs/json.h"

namespace wcs::detlint {
namespace {

std::vector<Finding> lint(const std::string& path, const std::string& src) {
  Linter l;
  l.add_file(path, src);
  return l.run();
}

std::vector<Finding> unsuppressed(const std::vector<Finding>& fs) {
  std::vector<Finding> out;
  for (const auto& f : fs)
    if (!f.suppressed) out.push_back(f);
  return out;
}

std::vector<Finding> with_rule(const std::vector<Finding>& fs,
                               const std::string& rule) {
  std::vector<Finding> out;
  for (const auto& f : fs)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// --- rule: unordered-loop --------------------------------------------------

TEST(DetlintUnorderedLoop, FlagsSideEffectingRangeFor) {
  const auto fs = lint("src/a.cc", R"cc(
    void tally(std::unordered_map<int, int>& m, int& total) {
      for (const auto& [k, v] : m) total += v;
    }
  )cc");
  const auto hits = with_rule(unsuppressed(fs), "unordered-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("'m'"), std::string::npos);
}

TEST(DetlintUnorderedLoop, FlagsIteratorFormAndAliasedTypes) {
  const auto fs = lint("src/a.cc", R"cc(
    using FlowMap = std::unordered_map<int, double>;
    void drain(FlowMap flows_, std::vector<int>& out) {
      for (auto it = flows_.begin(); it != flows_.end(); ++it)
        out.push_back(it->first);
    }
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "unordered-loop").size(), 1u);
}

TEST(DetlintUnorderedLoop, CleanForPureExistentialScan) {
  const auto fs = lint("src/a.cc", R"cc(
    bool any_positive(const std::unordered_map<int, int>& m) {
      for (const auto& kv : m)
        if (kv.second > 0) return true;
      return false;
    }
  )cc");
  EXPECT_TRUE(with_rule(fs, "unordered-loop").empty());
}

TEST(DetlintUnorderedLoop, CleanForOrderedContainers) {
  const auto fs = lint("src/a.cc", R"cc(
    void tally(std::map<int, int>& m, int& total) {
      for (const auto& [k, v] : m) total += v;
    }
  )cc");
  EXPECT_TRUE(with_rule(fs, "unordered-loop").empty());
}

TEST(DetlintUnorderedLoop, SuppressedWithReason) {
  const auto fs = lint("src/a.cc", R"cc(
    void collect(std::unordered_map<int, int>& m, std::vector<int>& v) {
      // detlint: unordered-loop -- collect-then-sort: v is sorted before use
      for (const auto& [k, val] : m) v.push_back(k);
    }
  )cc");
  const auto hits = with_rule(fs, "unordered-loop");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].suppressed);
  EXPECT_NE(hits[0].suppress_reason.find("collect-then-sort"),
            std::string::npos);
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- rule: nondet-source ---------------------------------------------------

TEST(DetlintNondetSource, FlagsRandAndRandomDeviceAndClocks) {
  const auto fs = lint("src/a.cc", R"cc(
    int a() { return rand(); }
    std::mt19937 b() { return std::mt19937(std::random_device{}()); }
    long c() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
    long d() { return time(nullptr); }
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "nondet-source").size(), 4u);
}

TEST(DetlintNondetSource, CleanForSimClockAccessors) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Sim { double time() const { return t_; } double t_ = 0; };
    double now(const Sim& s) { return s.time(); }
  )cc");
  EXPECT_TRUE(with_rule(fs, "nondet-source").empty());
}

TEST(DetlintNondetSource, GetenvAllowedOnlyInCliLayer) {
  const std::string src = R"cc(
    const char* v() { return std::getenv("WCS_FOO"); }
  )cc";
  EXPECT_EQ(with_rule(lint("src/obs/observability.cc", src), "nondet-source")
                .size(),
            1u);
  EXPECT_TRUE(
      with_rule(lint("src/scenario/cli.cc", src), "nondet-source").empty());
}

TEST(DetlintNondetSource, SuppressedWithReason) {
  const auto fs = lint("src/a.cc", R"cc(
    // detlint: nondet-source -- wall-clock profiling only, never fed back
    auto t0 = std::chrono::steady_clock::now();
  )cc");
  const auto hits = with_rule(fs, "nondet-source");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].suppressed);
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- rule: ptr-order -------------------------------------------------------

TEST(DetlintPtrOrder, FlagsPointerKeyedOrderedMap) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Flow;
    std::map<Flow*, int> by_ptr;
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "ptr-order").size(), 1u);
}

TEST(DetlintPtrOrder, FlagsDefaultComparatorSortOfPointers) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Flow;
    void order(std::vector<Flow*>& v) { std::sort(v.begin(), v.end()); }
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "ptr-order").size(), 1u);
}

TEST(DetlintPtrOrder, FlagsHashOfPointerAndUintptrCast) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Flow;
    std::size_t h(Flow* f) { return std::hash<Flow*>{}(f); }
    std::size_t addr(Flow* f) { return reinterpret_cast<std::uintptr_t>(f); }
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "ptr-order").size(), 2u);
}

TEST(DetlintPtrOrder, CleanWhenComparatorDereferences) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Flow { int id; };
    void order(std::vector<Flow*>& v) {
      std::sort(v.begin(), v.end(),
                [](const Flow* a, const Flow* b) { return a->id < b->id; });
    }
  )cc");
  EXPECT_TRUE(with_rule(fs, "ptr-order").empty());
}

TEST(DetlintPtrOrder, SuppressedWithReason) {
  const auto fs = lint("src/a.cc", R"cc(
    struct Flow;
    // detlint: ptr-order -- membership-only set, iteration never observed
    std::map<Flow*, int> by_ptr;
  )cc");
  const auto hits = with_rule(fs, "ptr-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].suppressed);
}

// --- rule: float-accum -----------------------------------------------------

TEST(DetlintFloatAccum, FlagsFloatCompoundAddInUnorderedLoop) {
  const auto fs = lint("src/a.cc", R"cc(
    double sum(const std::unordered_map<int, double>& rates) {
      double total = 0;
      for (const auto& [id, r] : rates) total += r;
      return total;
    }
  )cc");
  const auto hits = with_rule(unsuppressed(fs), "float-accum");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("'total'"), std::string::npos);
}

TEST(DetlintFloatAccum, FlagsAccumulateOverUnordered) {
  const auto fs = lint("src/a.cc", R"cc(
    double sum(const std::unordered_set<double>& xs) {
      return std::accumulate(xs.begin(), xs.end(), 0.0);
    }
  )cc");
  EXPECT_EQ(with_rule(unsuppressed(fs), "float-accum").size(), 1u);
}

TEST(DetlintFloatAccum, CleanOverOrderedContainerOrIntSums) {
  const auto fs = lint("src/a.cc", R"cc(
    double sum_map(const std::map<int, double>& by_key) {
      double total = 0;
      for (const auto& [k, v] : by_key) total += v;
      return total;
    }
    int count(const std::unordered_map<int, int>& m) {
      int n = 0;
      // detlint: unordered-loop -- fixture: integer count is order-independent
      for (const auto& [k, v] : m) n += v;
      return n;
    }
  )cc");
  EXPECT_TRUE(with_rule(fs, "float-accum").empty());
}

TEST(DetlintFloatAccum, SuppressedWithReason) {
  const auto fs = lint("src/a.cc", R"cc(
    double sum(const std::unordered_map<int, double>& rates) {
      double total = 0;
      // detlint: float-accum,unordered-loop -- fixture: compared with tolerance downstream
      for (const auto& [id, r] : rates) total += r;
      return total;
    }
  )cc");
  EXPECT_EQ(with_rule(fs, "float-accum").size(), 1u);
  EXPECT_TRUE(unsuppressed(fs).empty());
}

// --- rule: uninit-field ----------------------------------------------------

TEST(DetlintUninitField, FlagsBareArithEnumAndPointerFields) {
  const auto fs = lint("src/x/widget.h", R"cc(
    enum class Mode { kFast, kSlow };
    struct Widget {
      int count;
      double ratio;
      Widget* next;
      Mode mode;
      std::string name;   // class type: default ctor is fine
      int ready = 0;      // initialized: fine
      std::uint32_t slots{0};  // brace-init: fine
    };
  )cc");
  const auto hits = with_rule(unsuppressed(fs), "uninit-field");
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_NE(hits[0].message.find("'count'"), std::string::npos);
  EXPECT_NE(hits[1].message.find("'ratio'"), std::string::npos);
  EXPECT_NE(hits[2].message.find("'next'"), std::string::npos);
  EXPECT_NE(hits[3].message.find("'mode'"), std::string::npos);
}

TEST(DetlintUninitField, ScopedToSrcHeadersOnly) {
  const std::string src = "struct W { int count; };\n";
  EXPECT_EQ(with_rule(lint("src/w.h", src), "uninit-field").size(), 1u);
  EXPECT_TRUE(with_rule(lint("src/w.cc", src), "uninit-field").empty());
  EXPECT_TRUE(with_rule(lint("tests/w.h", src), "uninit-field").empty());
}

TEST(DetlintUninitField, CleanForInitializedAndNonTrivialFields) {
  const auto fs = lint("src/w.h", R"cc(
    struct Clean {
      int count = 0;
      double ratio{1.0};
      std::vector<int> xs;
      std::function<void(int)> cb;
      static constexpr int kMax = 4;
      void run();
      int helper() const { return count; }
    };
  )cc");
  EXPECT_TRUE(with_rule(fs, "uninit-field").empty());
}

TEST(DetlintUninitField, SuppressedWithReason) {
  const auto fs = lint("src/w.h", R"cc(
    struct Raw {
      int fd;  // detlint: uninit-field -- fixture: always set by open()
    };
  )cc");
  const auto hits = with_rule(fs, "uninit-field");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].suppressed);
}

// --- suppression grammar ---------------------------------------------------

TEST(DetlintSuppression, MissingReasonIsRejectedAndReported) {
  const auto fs = lint("src/a.cc", R"cc(
    // detlint: nondet-source
    auto t0 = std::chrono::steady_clock::now();
  )cc");
  // The malformed directive is itself a finding...
  EXPECT_EQ(with_rule(fs, "bad-suppression").size(), 1u);
  // ...and it does NOT suppress the underlying finding.
  const auto nondet = with_rule(fs, "nondet-source");
  ASSERT_EQ(nondet.size(), 1u);
  EXPECT_FALSE(nondet[0].suppressed);
}

TEST(DetlintSuppression, EmptyReasonAndUnknownRuleAreRejected) {
  const auto fs = lint("src/a.cc", R"cc(
    int a = 0;  // detlint: unordered-loop --
    int b = 0;  // detlint: not-a-rule -- some reason
  )cc");
  EXPECT_EQ(with_rule(fs, "bad-suppression").size(), 2u);
}

TEST(DetlintSuppression, OnlyNamedRuleIsSuppressed) {
  const auto fs = lint("src/a.cc", R"cc(
    double sum(const std::unordered_map<int, double>& rates) {
      double total = 0;
      // detlint: unordered-loop -- fixture: only the loop rule is justified
      for (const auto& [id, r] : rates) total += r;
      return total;
    }
  )cc");
  // float-accum still fires unsuppressed; unordered-loop is covered.
  EXPECT_TRUE(with_rule(unsuppressed(fs), "unordered-loop").empty());
  EXPECT_EQ(with_rule(unsuppressed(fs), "float-accum").size(), 1u);
}

// --- JSON report -----------------------------------------------------------

TEST(DetlintReport, JsonMatchesSchemaViaObsParser) {
  const auto fs = lint("src/a.cc", R"cc(
    int a() { return rand(); }
    // detlint: nondet-source -- fixture: suppressed entry for the report
    auto t0 = std::chrono::steady_clock::now();
  )cc");
  const std::string json = report_json(fs, /*files_scanned=*/1);
  const obs::JsonValue doc = obs::parse_json(json);

  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("tool")->string, "detlint");
  EXPECT_EQ(doc.find("schema_version")->number, 1);
  EXPECT_EQ(doc.find("files_scanned")->number, 1);

  const obs::JsonValue* counts = doc.find("counts");
  ASSERT_TRUE(counts != nullptr && counts->is_object());
  EXPECT_EQ(counts->find("unsuppressed")->number, 1);
  EXPECT_EQ(counts->find("suppressed")->number, 1);

  const obs::JsonValue* rules_arr = doc.find("rules");
  ASSERT_TRUE(rules_arr != nullptr && rules_arr->is_array());
  EXPECT_EQ(rules_arr->array.size(), rules().size());
  for (const auto& r : rules_arr->array) {
    EXPECT_TRUE(r.has("id"));
    EXPECT_TRUE(r.has("summary"));
  }

  const obs::JsonValue* findings = doc.find("findings");
  ASSERT_TRUE(findings != nullptr && findings->is_array());
  ASSERT_EQ(findings->array.size(), 1u);
  for (const char* key : {"rule", "file", "line", "message", "snippet"})
    EXPECT_TRUE(findings->array[0].has(key)) << key;

  const obs::JsonValue* sup = doc.find("suppressed");
  ASSERT_TRUE(sup != nullptr && sup->is_array());
  ASSERT_EQ(sup->array.size(), 1u);
  EXPECT_TRUE(sup->array[0].has("reason"));
}

TEST(DetlintReport, BaselineRoundTripsAndRejectsMalformed) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "detlint_test";
  fs::create_directories(dir);

  const fs::path good = dir / "baseline.json";
  std::ofstream(good) << R"({"findings": [{"rule": "ptr-order",
                             "file": "src/a.cc"}]})";
  const auto set = load_baseline(good.string());
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.count({"ptr-order", "src/a.cc"}) != 0);

  const fs::path bad = dir / "bad.json";
  std::ofstream(bad) << R"({"findings": [{"rule": 7}]})";
  EXPECT_THROW((void)load_baseline(bad.string()), std::runtime_error);
}

// --- the tree-clean self-test ----------------------------------------------

TEST(DetlintSelfTest, RepositoryTreeIsClean) {
  namespace fs = std::filesystem;
  const fs::path root = WCS_SOURCE_DIR;
  Linter linter;
  std::size_t files = 0;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    for (const auto& e : fs::recursive_directory_iterator(root / dir)) {
      if (!e.is_regular_file()) continue;
      const std::string ext = e.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      ASSERT_TRUE(linter.add_file_from_disk(e.path().string()))
          << e.path().string();
      ++files;
    }
  }
  ASSERT_GT(files, 100u);  // sanity: the walk found the real tree

  std::string offenders;
  std::size_t count = 0;
  for (const auto& f : linter.run()) {
    if (f.suppressed) {
      // Every suppression must carry a justification.
      EXPECT_FALSE(f.suppress_reason.empty()) << f.file << ":" << f.line;
      continue;
    }
    ++count;
    offenders += "\n  " + f.file + ":" + std::to_string(f.line) + " [" +
                 f.rule + "] " + f.message;
  }
  EXPECT_EQ(count, 0u) << "unsuppressed detlint findings:" << offenders
                       << "\n(fix them or add '// detlint: <rule> -- "
                          "<reason>' with a real justification)";
}

}  // namespace
}  // namespace wcs::detlint
