// Differential proof harness for incremental max-min reallocation.
//
// The equivalence contract (net/flow_manager.h): incremental
// dirty-component rebalancing and the full from-scratch recompute
// (--full-realloc) are BYTE-IDENTICAL — same rates, same settle points,
// same completion times, same event-id consumption. This suite drives a
// mirrored pair of FlowManagers — one per mode, over the same topology —
// through identical operation sequences and compares every observable
// bitwise after every operation:
//
//   * randomized churn (7 seeds x 2 topology families): start / cancel /
//     advance over partitioned multi-star platforms (many small
//     components — the incremental sweet spot) and a shared chain (one
//     big overlapping component — the flood-logic stress);
//   * adversarial fixtures: a shared-bottleneck chain with a midstream
//     cancel, a single-link star with simultaneous completions (event-id
//     tie-breaking must agree), and zero-byte / same-node edge flows;
//   * an eviction-churn grid stress: full GridSimulation runs with worker
//     crashes, cache eviction pressure, and the invariant auditor on
//     (including the `flow-rates` checker), incremental vs full.
//
// "Bitwise" means bitwise: doubles are compared through their bit
// patterns, not an epsilon.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "audit/checkers.h"
#include "common/rng.h"
#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "net/flow_manager.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "workload/coadd.h"

namespace wcs::net {
namespace {

std::uint64_t bits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

#define EXPECT_SAME_BITS(a, b) \
  EXPECT_EQ(bits(a), bits(b)) << #a " = " << (a) << " vs " #b " = " << (b)

// A mirrored FlowManager pair over one shared topology: every operation
// is applied to both sides, every completion is logged per side, and
// expect_equivalent() compares the full observable state bitwise.
struct Mirror {
  Topology topo;
  sim::Simulator inc_sim;
  sim::Simulator full_sim;
  std::unique_ptr<FlowManager> inc;
  std::unique_ptr<FlowManager> full;
  std::vector<std::pair<std::uint64_t, double>> inc_done;
  std::vector<std::pair<std::uint64_t, double>> full_done;

  void init() {
    inc = std::make_unique<FlowManager>(inc_sim, topo,
                                        FlowManagerOptions{.incremental = true});
    full = std::make_unique<FlowManager>(
        full_sim, topo, FlowManagerOptions{.incremental = false});
  }

  FlowId start(NodeId src, NodeId dst, Bytes bytes) {
    FlowId a = inc->start_flow(src, dst, bytes, [this](FlowId id) {
      inc_done.emplace_back(id.value(), inc_sim.now());
    });
    FlowId b = full->start_flow(src, dst, bytes, [this](FlowId id) {
      full_done.emplace_back(id.value(), full_sim.now());
    });
    EXPECT_EQ(a.value(), b.value());
    return a;
  }

  void cancel(FlowId id) {
    EXPECT_EQ(inc->cancel(id), full->cancel(id));
  }

  // Advance both sides by one event. The contract implies identical
  // event streams, so single-stepping keeps the pair in lockstep.
  bool step() {
    const bool a = inc_sim.step();
    const bool b = full_sim.step();
    EXPECT_EQ(a, b);
    EXPECT_SAME_BITS(inc_sim.now(), full_sim.now());
    return a && b;
  }

  void run_all() {
    while (step()) {
    }
    ASSERT_EQ(inc_done.size(), full_done.size());
    for (std::size_t i = 0; i < inc_done.size(); ++i) {
      EXPECT_EQ(inc_done[i].first, full_done[i].first) << "completion " << i;
      EXPECT_SAME_BITS(inc_done[i].second, full_done[i].second);
    }
  }

  void expect_equivalent(const char* context) {
    SCOPED_TRACE(context);
    EXPECT_EQ(inc_sim.executed_events(), full_sim.executed_events());
    EXPECT_EQ(inc->active_flows(), full->active_flows());
    EXPECT_EQ(inc->completed_flows(), full->completed_flows());
    EXPECT_EQ(inc->cancelled_flows(), full->cancelled_flows());
    EXPECT_SAME_BITS(inc->bytes_started(), full->bytes_started());
    EXPECT_SAME_BITS(inc->bytes_delivered(), full->bytes_delivered());

    const audit::FlowAuditSnapshot a = inc->audit_snapshot();
    const audit::FlowAuditSnapshot b = full->audit_snapshot();
    ASSERT_EQ(a.flows.size(), b.flows.size());
    for (std::size_t i = 0; i < a.flows.size(); ++i) {
      SCOPED_TRACE("flow " + std::to_string(a.flows[i].id));
      EXPECT_EQ(a.flows[i].id, b.flows[i].id);
      EXPECT_EQ(a.flows[i].active, b.flows[i].active);
      EXPECT_SAME_BITS(a.flows[i].total_bytes, b.flows[i].total_bytes);
      EXPECT_SAME_BITS(a.flows[i].remaining_bytes, b.flows[i].remaining_bytes);
      EXPECT_SAME_BITS(a.flows[i].rate_bps, b.flows[i].rate_bps);
    }
    ASSERT_EQ(a.links.size(), b.links.size());
    for (std::size_t i = 0; i < a.links.size(); ++i) {
      SCOPED_TRACE("link " + std::to_string(i));
      EXPECT_EQ(a.links[i].flows, b.links[i].flows);
      EXPECT_SAME_BITS(a.links[i].allocated_bps, b.links[i].allocated_bps);
      EXPECT_SAME_BITS(
          inc->link_bytes(LinkId(static_cast<LinkId::underlying_type>(i))),
          full->link_bytes(LinkId(static_cast<LinkId::underlying_type>(i))));
    }

    // The induction invariant on the incremental side: every live rate
    // equals what a from-scratch fill would produce, bitwise. This is
    // exactly what the `flow-rates` audit checker enforces in-sim.
    std::vector<audit::Violation> violations;
    audit::check_flow_rates(inc->audit_rates_snapshot(), violations);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front().message);
  }
};

// --- Randomized churn, partitioned multi-star -----------------------------

class FlowDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowDifferential, RandomChurnOnMultiStarStaysBitIdentical) {
  // 4 disjoint hub-and-leaf stars: flows never cross stars, so the
  // sharing graph always has several connected components and the
  // incremental path genuinely rebalances a strict subset of the pool.
  Rng rng(GetParam());
  Mirror m;
  const int kHubs = 4, kLeaves = 4;
  std::vector<std::vector<NodeId>> leaves(kHubs);
  for (int h = 0; h < kHubs; ++h) {
    NodeId hub = m.topo.add_node("hub");
    for (int l = 0; l < kLeaves; ++l) {
      leaves[h].push_back(m.topo.add_node("leaf"));
      m.topo.add_link(hub, leaves[h].back(), rng.uniform_real(1e5, 1e7),
                      rng.uniform_real(0.0, 0.01));
    }
  }
  m.init();

  std::vector<FlowId> live;
  for (int op = 0; op < 80; ++op) {
    const std::size_t kind = rng.index(5);
    if (kind <= 1 || live.empty()) {
      const std::size_t h = rng.index(kHubs);
      const std::size_t s = rng.index(kLeaves);
      std::size_t d = rng.index(kLeaves);
      // ~1 in 10 flows is a same-node transfer; ~1 in 10 is zero-byte.
      if (rng.index(10) != 0)
        while (d == s) d = rng.index(kLeaves);
      const Bytes bytes =
          rng.index(10) == 0
              ? 0u
              : static_cast<Bytes>(rng.uniform_int(1'000, 50'000'000));
      live.push_back(m.start(leaves[h][s], leaves[h][d], bytes));
    } else if (kind == 2) {
      const std::size_t victim = rng.index(live.size());
      m.cancel(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::size_t steps = 1 + rng.index(3);
      for (std::size_t i = 0; i < steps; ++i)
        if (!m.step()) break;
    }
    m.expect_equivalent("after op");
  }
  m.run_all();
  m.expect_equivalent("after drain");
}

TEST_P(FlowDifferential, RandomChurnOnSharedChainStaysBitIdentical) {
  // One 8-node chain with a thin middle link: flows span random
  // overlapping segments, so most of the pool collapses into a single
  // shared component and the dirty-set flood has to do real work.
  Rng rng(GetParam());
  Mirror m;
  const int kNodes = 8;
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) nodes.push_back(m.topo.add_node("n"));
  for (int i = 0; i + 1 < kNodes; ++i) {
    const double cap = i == kNodes / 2 ? 2e5 : rng.uniform_real(1e6, 1e7);
    m.topo.add_link(nodes[i], nodes[i + 1], cap, 0.0);
  }
  m.init();

  std::vector<FlowId> live;
  for (int op = 0; op < 60; ++op) {
    const std::size_t kind = rng.index(5);
    if (kind <= 1 || live.empty()) {
      const std::size_t s = rng.index(kNodes);
      std::size_t d = rng.index(kNodes);
      while (d == s) d = rng.index(kNodes);
      live.push_back(m.start(
          nodes[s], nodes[d],
          static_cast<Bytes>(rng.uniform_int(10'000, 20'000'000))));
    } else if (kind == 2) {
      const std::size_t victim = rng.index(live.size());
      m.cancel(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      const std::size_t steps = 1 + rng.index(3);
      for (std::size_t i = 0; i < steps; ++i)
        if (!m.step()) break;
    }
    m.expect_equivalent("after op");
  }
  m.run_all();
  m.expect_equivalent("after drain");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowDifferential,
                         ::testing::Range<std::uint64_t>(1, 8));

// --- Adversarial fixtures -------------------------------------------------

TEST(FlowDifferentialFixtures, SharedBottleneckChainWithMidstreamCancel) {
  // a --10MB/s-- b --1MB/s-- c --10MB/s-- d; four overlapping flows all
  // contend on the thin b-c link. Cancelling the b->c flow midstream
  // re-seeds the component from the released route; rates, settle points
  // and completions must track the full recompute bitwise.
  Mirror m;
  NodeId a = m.topo.add_node("a");
  NodeId b = m.topo.add_node("b");
  NodeId c = m.topo.add_node("c");
  NodeId d = m.topo.add_node("d");
  m.topo.add_link(a, b, 1e7, 0.0);
  m.topo.add_link(b, c, 1e6, 0.0);
  m.topo.add_link(c, d, 1e7, 0.0);
  m.init();

  m.start(a, d, 8'000'000);
  FlowId victim = m.start(b, c, 6'000'000);
  m.start(c, d, 4'000'000);
  m.start(a, b, 2'000'000);
  // Consume the four t=0 activations, then let some progress accrue.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(m.step());
  m.expect_equivalent("after activations");
  m.cancel(victim);
  m.expect_equivalent("after cancel");
  m.run_all();
  m.expect_equivalent("after drain");
}

TEST(FlowDifferentialFixtures, SingleLinkStarSimultaneousCompletions) {
  // Four identical flows on one link finish at the same instant: the
  // event kernel breaks the tie by event id, so identical completion
  // ORDER across modes requires identical event-id consumption — the
  // strictest consequence of the settle-only-on-rate-change discipline.
  Mirror m;
  NodeId a = m.topo.add_node("a");
  NodeId b = m.topo.add_node("b");
  NodeId e = m.topo.add_node("e");
  NodeId f = m.topo.add_node("f");
  m.topo.add_link(a, b, 1e6, 0.0);
  m.topo.add_link(e, f, 2e6, 0.0);
  m.init();

  for (int i = 0; i < 4; ++i) m.start(a, b, 1'000'000);
  m.run_all();
  m.expect_equivalent("after batch");
  ASSERT_EQ(m.inc_done.size(), 4u);
  // All four completed at the same simulated instant, in id order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(m.inc_done[i].first, i);
    EXPECT_SAME_BITS(m.inc_done[i].second, m.inc_done[0].second);
  }

  // Second wave: a disjoint-link flow sized to finish simultaneously
  // with a shared-link pair (same double instant, different links).
  m.start(a, b, 1'000'000);
  m.start(a, b, 1'000'000);  // shared: each at 0.5 MB/s -> t = +2
  m.start(e, f, 4'000'000);  // alone at 2 MB/s -> t = +2
  m.run_all();
  m.expect_equivalent("after second wave");
}

// --- Grid-level eviction-churn stress under the auditor -------------------

TEST(FlowDifferentialGrid, EvictionChurnRunsBitIdenticalUnderAudit) {
  // Full GridSimulation differential: small caches force eviction, worker
  // crashes force batch cancellation (flows aborted midstream), and the
  // invariant auditor sweeps every 500 events — including the
  // `flow-rates` checker, which recomputes every live rate from scratch
  // and demands bitwise equality with the incremental allocation. The
  // run totals of both modes must agree exactly, scheduler by scheduler.
  workload::CoaddParams cp;
  cp.num_tasks = 200;
  cp.seed = 9;
  auto job = workload::generate_coadd(cp);

  grid::GridConfig base;
  base.tiers.num_sites = 3;
  base.tiers.workers_per_site = 4;
  base.capacity_files = 2500;  // tight: sustained eviction pressure
  base.churn = grid::GridConfig::ChurnParams{
      .mean_uptime_s = 20000.0, .mean_downtime_s = 2000.0, .seed = 17};
  base.audit = true;
  base.audit_interval_events = 500;

  for (const auto& spec : sched::SchedulerSpec::paper_algorithms()) {
    SCOPED_TRACE(spec.name());
    grid::GridConfig c = base;
    c.flow.incremental = true;
    const auto inc = grid::run_once(c, job, spec, /*seed=*/5);
    c.flow.incremental = false;
    const auto full = grid::run_once(c, job, spec, /*seed=*/5);

    EXPECT_SAME_BITS(inc.makespan_s, full.makespan_s);
    EXPECT_EQ(inc.tasks_completed, full.tasks_completed);
    EXPECT_EQ(inc.events_executed, full.events_executed);
    EXPECT_EQ(inc.total_file_transfers(), full.total_file_transfers());
    EXPECT_SAME_BITS(inc.total_bytes_transferred(),
                     full.total_bytes_transferred());
  }
}

}  // namespace
}  // namespace wcs::net
