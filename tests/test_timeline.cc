// Tests for the per-task timeline recorder (unit + through the engine).
#include <gtest/gtest.h>

#include <sstream>

#include "grid/experiment.h"
#include "grid/grid_simulation.h"
#include "metrics/timeline.h"
#include "workload/coadd.h"

namespace wcs::metrics {
namespace {

TEST(TimelineRecorder, RecordsInOrder) {
  TimelineRecorder rec;
  rec.record(1.0, TimelineEventKind::kAssigned, TaskId(0), WorkerId(0));
  rec.record(2.0, TimelineEventKind::kFetchStart, TaskId(0), WorkerId(0));
  ASSERT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.events()[0].kind, TimelineEventKind::kAssigned);
  EXPECT_DOUBLE_EQ(rec.events()[1].time, 2.0);
}

TEST(TimelineRecorder, SpanPhases) {
  TimelineRecorder rec;
  rec.record(10, TimelineEventKind::kAssigned, TaskId(3), WorkerId(1));
  rec.record(12, TimelineEventKind::kFetchStart, TaskId(3), WorkerId(1));
  rec.record(30, TimelineEventKind::kExecStart, TaskId(3), WorkerId(1));
  rec.record(42, TimelineEventKind::kCompleted, TaskId(3), WorkerId(1));
  auto spans = rec.completed_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].queue_wait_s(), 2.0);
  EXPECT_DOUBLE_EQ(spans[0].data_wait_s(), 18.0);
  EXPECT_DOUBLE_EQ(spans[0].exec_s(), 12.0);
  EXPECT_DOUBLE_EQ(spans[0].total_s(), 32.0);
}

TEST(TimelineRecorder, CancelledInstancesProduceNoSpan) {
  TimelineRecorder rec;
  // Two concurrent instances, recorded in simulated-time order (the
  // recorder asserts monotonic timestamps): worker 0's is cancelled at
  // t=3, the winning replica on worker 1 completes at t=5.
  rec.record(1, TimelineEventKind::kAssigned, TaskId(0), WorkerId(0));
  rec.record(1, TimelineEventKind::kAssigned, TaskId(0), WorkerId(1));
  rec.record(2, TimelineEventKind::kFetchStart, TaskId(0), WorkerId(0));
  rec.record(2, TimelineEventKind::kFetchStart, TaskId(0), WorkerId(1));
  rec.record(3, TimelineEventKind::kCancelled, TaskId(0), WorkerId(0));
  rec.record(4, TimelineEventKind::kExecStart, TaskId(0), WorkerId(1));
  rec.record(5, TimelineEventKind::kCompleted, TaskId(0), WorkerId(1));
  auto spans = rec.completed_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].worker, WorkerId(1));
}

TEST(TimelineRecorder, CsvDump) {
  TimelineRecorder rec;
  rec.record(1.5, TimelineEventKind::kAssigned, TaskId(2), WorkerId(4));
  rec.record(2.0, TimelineEventKind::kWorkerFailed, TaskId::invalid(),
             WorkerId(4));
  std::ostringstream os;
  rec.dump_csv(os);
  EXPECT_EQ(os.str(),
            "time_s,event,task,worker\n"
            "1.5,assigned,2,4\n"
            "2,worker-failed,,4\n");
}

TEST(TimelineRecorder, KindNames) {
  EXPECT_STREQ(to_string(TimelineEventKind::kExecStart), "exec-start");
  EXPECT_STREQ(to_string(TimelineEventKind::kWorkerRecovered),
               "worker-recovered");
}

// --- Through the engine ----------------------------------------------------

TEST(TimelineIntegration, DisabledByDefault) {
  workload::CoaddParams cp;
  cp.num_tasks = 10;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 1;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 300;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  grid::GridSimulation sim(c, job, sched::make_scheduler(spec));
  (void)sim.run();
  EXPECT_EQ(sim.timeline(), nullptr);
}

TEST(TimelineIntegration, CompleteLifecyclePerTask) {
  workload::CoaddParams cp;
  cp.num_tasks = 30;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 1;
  c.capacity_files = 300;
  c.record_timeline = true;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  grid::GridSimulation sim(c, job, sched::make_scheduler(spec));
  auto r = sim.run();
  ASSERT_NE(sim.timeline(), nullptr);
  auto spans = sim.timeline()->completed_spans();
  ASSERT_EQ(spans.size(), 30u);
  for (const auto& s : spans) {
    EXPECT_GE(s.queue_wait_s(), 0.0);
    EXPECT_GT(s.data_wait_s(), 0.0);  // at least one transfer or hit walk
    EXPECT_GT(s.exec_s(), 0.0);
    EXPECT_LE(s.completed, r.makespan_s + 1e-9);
  }
  // Phase totals are internally consistent with the makespan.
  auto stats = sim.timeline()->phase_stats();
  EXPECT_EQ(stats.exec.count(), 30u);
  EXPECT_GT(stats.data_wait.mean(), 0.0);
}

TEST(TimelineIntegration, ChurnEventsAppear) {
  workload::CoaddParams cp;
  cp.num_tasks = 40;
  auto job = workload::generate_coadd(cp);
  grid::GridConfig c;
  c.tiers.num_sites = 2;
  c.tiers.workers_per_site = 2;
  c.capacity_files = 300;
  c.record_timeline = true;
  grid::GridConfig::ChurnParams churn;
  churn.mean_uptime_s = 15000;
  churn.mean_downtime_s = 4000;
  c.churn = churn;
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  grid::GridSimulation sim(c, job, sched::make_scheduler(spec));
  auto r = sim.run();
  EXPECT_EQ(r.tasks_completed, 40u);
  bool saw_failure = false;
  for (const auto& e : sim.timeline()->events())
    if (e.kind == TimelineEventKind::kWorkerFailed) saw_failure = true;
  EXPECT_TRUE(saw_failure);
  EXPECT_EQ(sim.timeline()->completed_spans().size(), 40u);
}

}  // namespace
}  // namespace wcs::metrics
