// Open-system end-to-end tests: the WRR tenant layer's deterministic
// service sequence, workload-aware scheduler construction, and full
// arrival-timed runs draining with per-tenant metrics and the
// tenant-accounting checker clean under --audit.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fake_engine.h"
#include "grid/experiment.h"
#include "sched/factory.h"
#include "sched/tenant_wrr.h"
#include "workload/registry.h"

namespace wcs::sched {
namespace {

// Minimal pull-style inner: always claims pending work and records the
// order in which the WRR layer serves its tenant.
class RecordingInner final : public Scheduler {
 public:
  RecordingInner(std::uint32_t tenant, std::vector<std::uint32_t>& order)
      : tenant_(tenant), order_(order) {}

  void on_job_submitted() override {}
  void on_worker_idle(WorkerId worker) override {
    (void)worker;
    order_.push_back(tenant_);
  }
  void on_task_completed(TaskId, WorkerId) override {}
  void on_tasks_arrived(const std::vector<TaskId>&) override {}
  [[nodiscard]] bool supports_arrivals() const override { return true; }
  [[nodiscard]] std::size_t pending_count() const override { return 100; }
  [[nodiscard]] std::string name() const override { return "recording"; }

 private:
  std::uint32_t tenant_;
  std::vector<std::uint32_t>& order_;
};

workload::ArrivalSchedule three_tenant_schedule() {
  workload::ArrivalSchedule s;
  s.tenants = {{"a", 3}, {"b", 1}, {"c", 2}};
  for (std::uint32_t t = 0; t < 3; ++t)
    for (int i = 0; i < 10; ++i) s.tenant_of.push_back(t);
  return s;
}

TEST(TenantWrr, SmoothWrrSequenceIsDeterministic) {
  // Smooth WRR over weights {3, 1, 2} with every tenant eligible must
  // serve exactly 0 2 0 1 2 0 per cycle — the deterministic-sequence
  // contract of the tenant layer.
  const workload::ArrivalSchedule schedule = three_tenant_schedule();
  std::vector<std::uint32_t> order;
  TenantWrrScheduler wrr(schedule, [&](std::uint32_t tenant) {
    return std::make_unique<RecordingInner>(tenant, order);
  });

  const workload::Job job = testing::make_job({{0}, {1}}, 2);
  testing::FakeEngine engine(job, /*num_sites=*/1, /*workers_per_site=*/2);
  wrr.attach(engine);
  wrr.on_job_submitted();

  for (int i = 0; i < 12; ++i) wrr.on_worker_idle(WorkerId(0));
  const std::vector<std::uint32_t> expected = {0, 2, 0, 1, 2, 0,
                                               0, 2, 0, 1, 2, 0};
  EXPECT_EQ(order, expected);

  // Over any whole number of cycles each tenant is served exactly in
  // proportion to its weight — the fairness observable.
  ASSERT_EQ(wrr.served_counts().size(), 3u);
  EXPECT_EQ(wrr.served_counts()[0], 6u);
  EXPECT_EQ(wrr.served_counts()[1], 2u);
  EXPECT_EQ(wrr.served_counts()[2], 4u);
  EXPECT_EQ(wrr.num_tenants(), 3u);
  EXPECT_TRUE(wrr.supports_arrivals());
}

TEST(Factory, WorkloadAwareConstructionWrapsOnlyMultiTenant) {
  SchedulerSpec spec;
  spec.algorithm = Algorithm::kRest;

  // Closed batch: the plain scheduler, same name.
  EXPECT_EQ(make_scheduler(spec, nullptr)->name(), "rest");

  // Single-tenant timed arrivals: still the plain (pull) scheduler.
  workload::ArrivalSchedule timed;
  timed.arrival_s = {0.0, 10.0, 20.0};
  EXPECT_EQ(make_scheduler(spec, &timed)->name(), "rest");

  // Multi-tenant: the WRR tenant layer wraps one inner per tenant.
  const workload::ArrivalSchedule multi = three_tenant_schedule();
  const auto wrapped = make_scheduler(spec, &multi);
  EXPECT_EQ(wrapped->name(), "rest+wrr");
  EXPECT_TRUE(wrapped->supports_arrivals());
}

}  // namespace
}  // namespace wcs::sched

namespace wcs::grid {
namespace {

GridConfig small_grid() {
  GridConfig c;
  c.tiers.num_sites = 3;
  c.tiers.workers_per_site = 3;
  c.capacity_files = 2000;
  c.audit = true;  // tenant-accounting checker must stay clean
  return c;
}

sched::SchedulerSpec pull_spec() {
  sched::SchedulerSpec spec;
  spec.algorithm = sched::Algorithm::kRest;
  return spec;
}

TEST(OpenSystem, SingleTenantTimedRunDrainsWithTenantMetrics) {
  workload::register_builtin_generators();
  workload::GeneratorSpec gen;
  gen.coadd.num_tasks = 80;
  gen.open.process = workload::ArrivalProcess::kPoisson;
  gen.open.mean_interarrival_s = 120.0;
  const workload::Workload wl = workload::build_workload(gen);
  ASSERT_TRUE(wl.open());

  const metrics::RunResult r = run_once(small_grid(), wl, pull_spec(), 7);
  EXPECT_EQ(r.tasks_completed, 80u);
  EXPECT_DOUBLE_EQ(r.jain_fairness(), 1.0);  // one tenant: fair by law
  ASSERT_EQ(r.tenants.size(), 1u);
  const metrics::TenantResult& t = r.tenants[0];
  EXPECT_EQ(t.tasks, 80u);
  EXPECT_EQ(t.completed, 80u);
  EXPECT_GE(t.time_to_first_task_s, 0.0);
  EXPECT_GT(t.makespan_s, 0.0);
  EXPECT_GT(t.sojourn_mean_s, 0.0);
  EXPECT_LE(t.sojourn_p50_s, t.sojourn_p95_s);
  EXPECT_LE(t.sojourn_p95_s, t.sojourn_p99_s);
  // Arrivals gate execution: the last task cannot complete before it
  // arrives, so the makespan covers the arrival horizon.
  EXPECT_GE(r.makespan_s, wl.arrivals.arrival_s.back());
}

TEST(OpenSystem, MultiTenantWrrRunDrainsAllTenants) {
  workload::register_builtin_generators();
  workload::GeneratorSpec gen;
  gen.generator = "multi-tenant";
  gen.coadd.num_tasks = 60;
  gen.open.process = workload::ArrivalProcess::kPoisson;
  gen.open.mean_interarrival_s = 150.0;
  gen.open.tenants = {{"astro", 3}, {"bio", 1}};
  const workload::Workload wl = workload::build_workload(gen);
  ASSERT_TRUE(wl.open());

  const metrics::RunResult r = run_once(small_grid(), wl, pull_spec(), 7);
  EXPECT_EQ(r.tasks_completed, wl.job.num_tasks());
  ASSERT_EQ(r.tenants.size(), 2u);
  EXPECT_EQ(r.tenants[0].name, "astro");
  EXPECT_EQ(r.tenants[0].weight, 3u);
  EXPECT_EQ(r.tenants[1].name, "bio");
  for (const metrics::TenantResult& t : r.tenants) {
    EXPECT_EQ(t.completed, t.tasks);
    EXPECT_GT(t.sojourn_mean_s, 0.0);
  }
  // Drained run: every tenant finishes everything, so the served-share
  // index is computable and in range.
  const double j = r.jain_fairness();
  EXPECT_GT(j, 0.0);
  EXPECT_LE(j, 1.0);
}

TEST(OpenSystem, OpenRunsAreDeterministic) {
  workload::register_builtin_generators();
  workload::GeneratorSpec gen;
  gen.generator = "multi-tenant";
  gen.coadd.num_tasks = 40;
  gen.open.process = workload::ArrivalProcess::kBursty;
  gen.open.mean_interarrival_s = 100.0;
  gen.open.tenants = {{"a", 2}, {"b", 1}};
  const workload::Workload wl = workload::build_workload(gen);

  const metrics::RunResult r1 = run_once(small_grid(), wl, pull_spec(), 7);
  const metrics::RunResult r2 = run_once(small_grid(), wl, pull_spec(), 7);
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  EXPECT_EQ(r1.events_executed, r2.events_executed);
  EXPECT_EQ(r1.total_file_transfers(), r2.total_file_transfers());
  ASSERT_EQ(r1.tenants.size(), r2.tenants.size());
  for (std::size_t t = 0; t < r1.tenants.size(); ++t) {
    EXPECT_EQ(r1.tenants[t].sojourn_mean_s, r2.tenants[t].sojourn_mean_s);
    EXPECT_EQ(r1.tenants[t].makespan_s, r2.tenants[t].makespan_s);
  }
}

}  // namespace
}  // namespace wcs::grid
